module pcc

go 1.24
