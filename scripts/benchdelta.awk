# benchdelta.awk — compact bytes/op and allocs/op delta table between two
# BENCH_*.json snapshots produced by scripts/bench.sh:
#
#   awk -f scripts/benchdelta.awk OLD.json NEW.json
#
# benchstat already covers sec/op statistics; this view exists so allocation
# regressions (the quantity the trial-arena work optimizes) stand out at a
# glance in CI logs even for single-sample -benchtime=1x runs, where
# benchstat hides everything behind high variance warnings. Deltas are
# NEW/OLD ratios; allocs and bytes are deterministic per benchmark, so a
# single sample is meaningful for them.
function field(line, name,    v) {
    if (match(line, "\"" name "\": [0-9.eE+-]+")) {
        v = substr(line, RSTART, RLENGTH)
        sub(".*: ", "", v)
        return v + 0
    }
    return -1
}
function ratio(new, old) {
    if (old <= 0 || new < 0) return "n/a"
    return sprintf("%.2fx", new / old)
}
/^[[:space:]]*"Benchmark/ {
    name = $1
    gsub(/[":]/, "", name)
    ns = field($0, "ns_per_op")
    bytes = field($0, "bytes_per_op")
    allocs = field($0, "allocs_per_op")
    if (FNR == NR || !(name in oldNs)) {
        if (FNR == NR) {
            oldNs[name] = ns; oldBytes[name] = bytes; oldAllocs[name] = allocs
            next
        }
        # New benchmark with no baseline: report absolute values.
        printf "%-36s %12s %14d B/op %12d allocs/op (new)\n", name, "-", bytes, allocs
        next
    }
    if (!header++) {
        printf "%-36s %12s %20s %22s\n", "benchmark", "time", "bytes/op", "allocs/op"
    }
    printf "%-36s %12s %14d (%s) %12d (%s)\n", name, ratio(ns, oldNs[name]), bytes, ratio(bytes, oldBytes[name]), allocs, ratio(allocs, oldAllocs[name])
}
END {
    if (!header) print "no comparable benchmarks found"
}
