#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the pccserve daemon.
#
# Builds pccserve and pccbench, starts the daemon on a scratch port with a
# scratch cache, POSTs a small parklot sweep, and asserts:
#
#   1. the streamed report equals a direct pccbench run of the same unit
#      (the daemon serves exactly what the CLI computes),
#   2. re-POSTing the identical sweep returns a byte-identical body and the
#      second serve was a cache hit (/v1/stats),
#   3. SIGTERM drains: readyz flips to 503 and the process exits 0.
#
# Usage: scripts/serve_smoke.sh [SCALE]   # default scale 0.05
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-0.05}"
SEED=42
PORT="${PORT:-18080}"
TMP="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/pccserve" ./cmd/pccserve
go build -o "$TMP/pccbench" ./cmd/pccbench

"$TMP/pccserve" -addr "127.0.0.1:$PORT" -cachedir "$TMP/cache" &
SRV_PID=$!

# Wait for readiness.
for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$PORT/readyz" > /dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://127.0.0.1:$PORT/readyz" > /dev/null

REQ="{\"experiments\":[\"parklot\"],\"scales\":[$SCALE],\"seeds\":[$SEED]}"
curl -fsS -N -X POST -d "$REQ" "http://127.0.0.1:$PORT/v1/sweep" > "$TMP/sweep1.ndjson"
curl -fsS -N -X POST -d "$REQ" "http://127.0.0.1:$PORT/v1/sweep" > "$TMP/sweep2.ndjson"

# 1. Served report == direct pccbench run. pccbench appends a "(exp in Ns)"
# timing line the server intentionally omits; strip it before comparing.
"$TMP/pccbench" -exp parklot -scale "$SCALE" -seed "$SEED" \
    | sed '/^(parklot in /d' | sed '/^$/d' > "$TMP/direct.txt"
python3 - "$TMP/sweep1.ndjson" "$TMP/direct.txt" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines[-1].get("done") is True, f"sweep did not finish: {lines[-1]}"
served = lines[0]["report"].rstrip("\n")
direct = open(sys.argv[2]).read().rstrip("\n")
assert served == direct, "served report differs from direct pccbench run:\n%s\n---\n%s" % (served, direct)
print("served report matches direct pccbench run")
EOF

# 2. Byte-identical re-serve, from cache.
cmp "$TMP/sweep1.ndjson" "$TMP/sweep2.ndjson"
echo "repeated sweep is byte-identical"
HITS=$(curl -fsS "http://127.0.0.1:$PORT/v1/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["cache"]["hits"])')
if [ "$HITS" -lt 1 ]; then
    echo "serve_smoke.sh: second sweep was not served from cache (hits=$HITS)" >&2
    exit 1
fi
echo "second sweep came from the cache (hits=$HITS)"

# 3. SIGTERM drain: readyz goes 503, process exits 0.
kill -TERM "$SRV_PID"
for _ in $(seq 1 50); do
    CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/readyz" || echo down)
    [ "$CODE" != "200" ] && break
    sleep 0.1
done
if wait "$SRV_PID"; then
    echo "pccserve drained and exited 0"
else
    echo "serve_smoke.sh: pccserve exited non-zero on SIGTERM" >&2
    exit 1
fi
