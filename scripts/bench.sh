#!/usr/bin/env bash
# bench.sh — run the tier-1 benchmark set and snapshot it as JSON.
#
# Usage:
#   scripts/bench.sh [OUT.json]        # default: BENCH_<n+1>.json, one past the
#                                      # highest checked-in snapshot, so a bare
#                                      # run extends the trajectory instead of
#                                      # clobbering a previous PR's point
#   scripts/bench.sh -mem [EXP]        # allocation-profile one sweep (default
#                                      # fig14) via pccbench -memprofile and
#                                      # print the top-10 alloc sites, so perf
#                                      # PRs can see where trial memory goes
#   scripts/bench.sh -shards n [OUT]   # run the suite with an n-shard ceiling
#                                      # per trial (exported as PCC_SHARDS);
#                                      # BenchmarkWideChain additionally pins
#                                      # its own shards=1 / shards=NumCPU pair
#                                      # regardless, so one snapshot carries
#                                      # the intra-trial speedup comparison
#   BENCHTIME=5x scripts/bench.sh      # override go test -benchtime (default 1x)
#   COUNT=3 scripts/bench.sh           # override -count (default 1)
#   MEMSCALE=0.1 scripts/bench.sh -mem # override the -mem sweep's scale
#
# The tier-1 set is: every paper-experiment benchmark at the repo root
# (bench_test.go) plus the scheduler/network microbenchmarks in
# internal/sim and internal/netem. Raw `go test -bench` output is kept next
# to the JSON (OUT.json -> OUT.txt) so benchstat can compare two snapshots:
#
#   go run golang.org/x/perf/cmd/benchstat@latest old.txt new.txt
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op,
# metrics{...}} and exists so the repo carries a perf trajectory: each perf
# PR checks in a fresh BENCH_<n>.json produced by this script.
set -euo pipefail
cd "$(dirname "$0")/.."

# -mem: dump the top-10 allocation sites of one experiment sweep. This is
# the sanity view for trial-memory work: after the arena PR the top entries
# should be run-phase churn and first-build warm-up, not per-trial setup.
if [ "${1:-}" = "-mem" ]; then
    EXPID="${2:-fig14}"
    SCALE="${MEMSCALE:-0.1}"
    BIN="$(mktemp -d)/pccbench"
    PROF="${BIN%/*}/mem.pprof"
    go build -o "$BIN" ./cmd/pccbench
    "$BIN" -exp "$EXPID" -scale "$SCALE" -memprofile "$PROF" > /dev/null
    echo "== top-10 alloc sites for -exp $EXPID -scale $SCALE (alloc_space) =="
    go tool pprof -top -nodecount=10 -sample_index=alloc_space "$BIN" "$PROF"
    echo
    echo "== top-10 alloc sites for -exp $EXPID -scale $SCALE (alloc_objects) =="
    go tool pprof -top -nodecount=10 -sample_index=alloc_objects "$BIN" "$PROF"
    exit 0
fi

# -shards: cap intra-trial engine sharding for the whole suite. The env var
# is what internal/exp reads (same resolution order as pccbench -shards).
if [ "${1:-}" = "-shards" ]; then
    export PCC_SHARDS="$2"
    shift 2
fi

next_index() {
    local max=0 n
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        n="${f#BENCH_}"; n="${n%.json}"
        case "$n" in *[!0-9]*) continue ;; esac
        [ "$n" -gt "$max" ] && max="$n"
    done
    echo $((max + 1))
}

OUT="${1:-BENCH_$(next_index).json}"
RAW="${OUT%.json}.txt"
BENCHTIME="${BENCHTIME:-1x}"
COUNT="${COUNT:-1}"

# Propagate the bench run's own exit code and never snapshot a failed or
# empty run: a crashed benchmark must fail CI with its real status, not
# leave a partial BENCH_<n>.json that looks like a perf data point.
status=0
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
    . ./internal/sim ./internal/netem | tee "$RAW" || status=$?
if [ "$status" -ne 0 ]; then
    rm -f "$RAW"
    echo "bench.sh: benchmark run failed (exit $status); no snapshot written" >&2
    exit "$status"
fi
if ! grep -q '^Benchmark' "$RAW"; then
    rm -f "$RAW"
    echo "bench.sh: benchmark run produced no results; no snapshot written" >&2
    exit 1
fi

awk -v benchtime="$BENCHTIME" -v out="$OUT" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""; metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op")          ns = v
        else if (u == "B/op")      bytes = v
        else if (u == "allocs/op") allocs = v
        else {
            gsub(/"/, "", u)
            metrics = metrics sprintf("%s\"%s\": %s", metrics == "" ? "" : ", ", u, v)
        }
    }
    if (ns == "") next
    entry = sprintf("    \"%s\": {\"ns_per_op\": %s", name, ns)
    if (bytes != "")   entry = entry sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "")  entry = entry sprintf(", \"allocs_per_op\": %s", allocs)
    if (metrics != "") entry = entry sprintf(", \"metrics\": {%s}", metrics)
    entry = entry "}"
    if (!(name in entries)) order[n++] = name
    entries[name] = entry   # -count > 1: last run wins, keys stay unique
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", benchtime > out
    for (i = 0; i < n; i++)
        printf "%s%s\n", entries[order[i]], i + 1 < n ? "," : "" >> out
    printf "  }\n}\n" >> out
}
' "$RAW"

# The raw -bench output only matters for benchstat comparisons (CI sets
# KEEP_RAW=1 for exactly that); a bare local run should leave just the JSON
# snapshot behind, not accumulate BENCH_<n>.txt litter next to it.
if [ "${KEEP_RAW:-0}" = "1" ]; then
    echo "wrote $OUT (raw output in $RAW)"
else
    rm -f "$RAW"
    echo "wrote $OUT"
fi
