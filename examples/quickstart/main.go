// Quickstart: run one PCC flow over a simulated 100 Mbps / 30 ms path and
// watch the learner track the link capacity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pcc/internal/exp"
	"pcc/internal/netem"
)

func main() {
	r := exp.NewRunner(exp.PathSpec{
		RateMbps:  100,
		RTT:       0.030,
		BufBytes:  375 * netem.KB,
		QueueKind: "droptail",
		Seed:      1,
	})
	flow := r.AddFlow(exp.FlowSpec{Proto: "pcc", Bucket: 1, TraceRate: true})

	fmt.Println("PCC on a clean 100 Mbps, 30 ms RTT path")
	fmt.Println("t(s)  goodput(Mbps)  controller_rate(Mbps)  state")
	for _, until := range []float64{1, 2, 5, 10, 20, 30} {
		r.Run(until)
		series := flow.SeriesMbps()
		last := 0.0
		if len(series) > 0 {
			last = series[len(series)-1]
		}
		fmt.Printf("%4.0f  %13.1f  %21.1f  %s\n",
			until, last, flow.PCC.Controller().Rate()*8/1e6, flow.PCC.Controller().State())
	}
	fmt.Printf("\naverage goodput over 30 s: %.1f Mbps (capacity 100)\n", flow.GoodputMbps(30))
	fmt.Printf("monitor intervals: %d, decisions: %d, reversions: %d\n",
		flow.PCC.MICount, flow.PCC.Controller().Decisions(), flow.PCC.Controller().Reversions())
}
