// Parking lot: a multi-bottleneck topology the classic dumbbell cannot
// express. Three 100 Mbps links in series; one long PCC flow crosses all of
// them while each link also carries its own single-hop PCC cross flow.
// Watch the long flow get squeezed by compounded per-hop loss — and the
// per-link counters prove conservation at every hop.
//
//	go run ./examples/parkinglot
package main

import (
	"fmt"

	"pcc/internal/exp"
	"pcc/internal/netem"
)

func main() {
	const (
		hops = 3
		dur  = 60.0
	)
	ts := exp.TopologySpec{Seed: 1}
	for i := 0; i < hops; i++ {
		ts.Links = append(ts.Links, exp.LinkSpec{
			Name: fmt.Sprintf("hop%d", i+1),
			From: fmt.Sprintf("n%d", i), To: fmt.Sprintf("n%d", i+1),
			RateMbps: 100, Delay: 0.005, BufBytes: 250 * netem.KB,
		})
	}
	r := exp.NewTopologyRunner(ts)

	// The long flow's forward route chains every hop; its ACKs return over
	// an uncongested delay hop matching the forward propagation.
	longFwd := []netem.HopSpec{netem.DelayHop(0.002)}
	for i := 0; i < hops; i++ {
		longFwd = append(longFwd, netem.LinkHop(fmt.Sprintf("hop%d", i+1)))
	}
	long := r.AddFlow(exp.FlowSpec{
		Proto:    "pcc",
		FwdRoute: longFwd,
		RevRoute: []netem.HopSpec{netem.DelayHop(0.002 + hops*0.005)},
		Bucket:   1,
	})

	cross := make([]*exp.Flow, hops)
	for i := range cross {
		cross[i] = r.AddFlow(exp.FlowSpec{
			Proto:    "pcc",
			FwdRoute: []netem.HopSpec{netem.DelayHop(0.002), netem.LinkHop(fmt.Sprintf("hop%d", i+1))},
			RevRoute: []netem.HopSpec{netem.DelayHop(0.007)},
			Bucket:   1,
		})
	}

	fmt.Printf("parking lot: %d × 100 Mbps hops, 1 long flow + %d cross flows (all PCC)\n\n", hops, hops)
	r.Run(dur)

	fmt.Printf("long flow (crosses every hop): %6.1f Mbps\n", long.WindowMbps(10, dur))
	for i, c := range cross {
		fmt.Printf("cross flow on hop%d:            %6.1f Mbps\n", i+1, c.WindowMbps(10, dur))
	}
	fmt.Println("\nper-link accounting (offered = delivered + wire_lost + queue_dropped):")
	for _, s := range r.Topo.Stats() {
		fmt.Printf("  %-5s delivered=%-8d wire_lost=%-4d queue_dropped=%d\n",
			s.Name, s.Delivered, s.WireLost, s.QueueDropped)
	}
	fmt.Println("\nthe long flow pays the sum of per-hop loss rates — the paper's")
	fmt.Println("single-bottleneck equilibrium (§2.2) does not protect it here.")
}
