// Incast (§4.1.8): 33 synchronized senders each push 256 KB to one receiver
// through a 1 Gbps, 1 ms fan-in with a shallow switch buffer. TCP's
// synchronized window bursts collapse into RTO recovery; PCC's paced rates
// do not.
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"pcc/internal/exp"
	"pcc/internal/netem"
)

func main() {
	const senders = 33
	const sizeKB = 256
	fmt.Printf("incast: %d senders x %d KB, 1 Gbps, 1 ms RTT, 64 KB buffer\n", senders, sizeKB)
	for _, proto := range []string{"pcc", "newreno"} {
		r := exp.NewRunner(exp.PathSpec{
			RateMbps: 1000, RTT: 0.001, BufBytes: 64 * netem.KB, Seed: 3,
		})
		flows := make([]*exp.Flow, senders)
		for i := range flows {
			flows[i] = r.AddFlow(exp.FlowSpec{Proto: proto, FlowKB: sizeKB})
		}
		r.Run(60)
		var last float64
		var bytes int64
		unfinished := 0
		for _, f := range flows {
			bytes += f.Recv.UniqueBytes()
			if f.DoneAt < 0 {
				unfinished++
			} else if f.DoneAt > last {
				last = f.DoneAt
			}
		}
		if last == 0 {
			last = 60
		}
		fmt.Printf("  %-8s aggregate goodput %7.1f Mbps (last completion %.3f s, unfinished %d)\n",
			proto, netem.ToMbps(float64(bytes)/last), last, unfinished)
	}
}
