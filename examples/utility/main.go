// Utility plugging (§2.4, §4.4): the same PCC machinery optimizes different
// objectives by swapping the utility function — no AQM changes needed.
//
// Two scenarios:
//
//  1. An interactive flow on a bufferbloated FQ link: the latency utility
//     keeps self-inflicted queueing near zero while the safe utility (like
//     TCP) fills the buffer.
//
//  2. A flow facing 30% random loss under FQ: the loss-resilient utility
//     u = T·(1−L) keeps sending at its share where the safe utility gives up.
//
//     go run ./examples/utility
package main

import (
	"fmt"

	"pcc/internal/core"
	"pcc/internal/exp"
	"pcc/internal/netem"
)

func main() {
	fmt.Println("scenario 1: 40 Mbps, 20 ms, deep FIFO + FQ (bufferbloat)")
	for _, mode := range []string{"safe", "latency"} {
		r := exp.NewRunner(exp.PathSpec{
			RateMbps: 40, RTT: 0.020, BufBytes: 2000 * netem.KB,
			QueueKind: "fq", Seed: 7,
		})
		spec := exp.FlowSpec{Proto: "pcc"}
		if mode == "latency" {
			cfg := core.InteractiveConfig(0.020)
			spec.PCCConfig = &cfg
		}
		f := r.AddFlow(spec)
		r.Run(40)
		fmt.Printf("  %-8s utility: %5.1f Mbps at mean RTT %6.1f ms (power %.0f)\n",
			mode, f.GoodputMbps(40), f.RS.MeanRTT()*1e3, f.GoodputMbps(40)/f.RS.MeanRTT())
	}

	fmt.Println("\nscenario 2: 100 Mbps, 30 ms, 30% random loss under FQ")
	for _, mode := range []string{"safe", "resilient"} {
		r := exp.NewRunner(exp.PathSpec{
			RateMbps: 100, RTT: 0.030, Loss: 0.30,
			BufBytes: 375 * netem.KB, QueueKind: "fq", Seed: 7,
		})
		spec := exp.FlowSpec{Proto: "pcc"}
		if mode == "resilient" {
			cfg := core.HeavyLossConfig(0.030)
			spec.PCCConfig = &cfg
		}
		f := r.AddFlow(spec)
		r.Run(60)
		fmt.Printf("  %-10s utility: %5.1f Mbps (achievable %.0f)\n",
			mode, f.GoodputMbps(60), 100*(1-0.30))
	}
}
