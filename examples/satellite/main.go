// Satellite: the §4.1.3 motivating scenario — a 42 Mbps, 800 ms RTT link
// with 0.74% random loss (the WINDS satellite system parameters). TCP Hybla
// was purpose-built for this link; PCC beats it by an order of magnitude
// with no satellite-specific tuning.
//
//	go run ./examples/satellite
package main

import (
	"fmt"

	"pcc/internal/exp"
	"pcc/internal/netem"
)

func main() {
	fmt.Println("satellite link: 42 Mbps, 800 ms RTT, 0.74% loss, 1 MB buffer")
	results := map[string]float64{}
	for _, proto := range []string{"pcc", "hybla", "illinois", "cubic"} {
		r := exp.NewRunner(exp.PathSpec{
			RateMbps: 42, RTT: 0.8, Loss: 0.0074,
			BufBytes: 1000 * netem.KB, Seed: 42,
		})
		f := r.AddFlow(exp.FlowSpec{Proto: proto})
		r.Run(100)
		results[proto] = f.GoodputMbps(100)
		fmt.Printf("  %-9s %6.2f Mbps\n", proto, results[proto])
	}
	if results["hybla"] > 0 {
		fmt.Printf("\nPCC/Hybla = %.1fx (paper Fig. 6: 17x at 1 MB buffer)\n",
			results["pcc"]/results["hybla"])
	}
}
