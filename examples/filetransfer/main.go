// Filetransfer: move real bytes over real UDP sockets on loopback using the
// PCC transport (internal/transport) — the same controller that drives the
// simulations, pacing a genuine network flow (§2.3: deployable today as a
// user-space transport).
//
//	go run ./examples/filetransfer
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"pcc/internal/core"
	"pcc/internal/transport"
)

func main() {
	const size = 2 << 20 // 2 MiB
	data := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(data)

	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer recvConn.Close()
	sendConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer sendConn.Close()

	var out bytes.Buffer
	recv := transport.NewReceiver(recvConn, &out)
	go recv.Run()

	cfg := core.DefaultConfig(0.001) // loopback RTT hint
	sender, err := transport.NewSender(sendConn, recvConn.LocalAddr().(*net.UDPAddr), cfg, bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	go sender.Run()
	<-sender.Done()
	<-recv.Done()
	elapsed := time.Since(start)

	sent, rtx := sender.Stats()
	ok := bytes.Equal(out.Bytes(), data)
	fmt.Printf("transferred %d bytes over loopback UDP in %.3f s (%.1f Mbps)\n",
		size, elapsed.Seconds(), float64(size)*8/1e6/elapsed.Seconds())
	fmt.Printf("packets sent: %d, retransmitted: %d, payload intact: %v\n", sent, rtx, ok)
}
