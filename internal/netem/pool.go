package netem

// PacketPool is a free list of Packets. It is deliberately not a sync.Pool:
// each simulation engine owns exactly one PacketPool and every Get/Put
// happens on that engine's goroutine, so recycling is allocation-free,
// deterministic, and never crosses goroutines even when many engines run in
// parallel (see internal/exp's worker pool).
//
// A nil *PacketPool is valid: Get falls back to the heap and Put discards,
// so components can take an optional pool without nil checks.
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed packet, recycling one if available.
func (pl *PacketPool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	return &Packet{}
}

// Put recycles a packet the caller has finished with. The packet must not
// be referenced again: the next Get may hand it out. Double-Put is a caller
// bug (the list does not deduplicate).
func (pl *PacketPool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	*p = Packet{}
	pl.free = append(pl.free, p)
}

// Size returns the number of packets currently parked in the free list.
func (pl *PacketPool) Size() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}
