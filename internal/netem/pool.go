package netem

// PacketPool is a free list of Packets. It is deliberately not a sync.Pool:
// each simulation engine owns exactly one PacketPool and every Get/Put
// happens on that engine's goroutine, so recycling is allocation-free,
// deterministic, and never crosses goroutines even when many engines run in
// parallel (see internal/exp's worker pool).
//
// A nil *PacketPool is valid: Get falls back to the heap and Put discards,
// so components can take an optional pool without nil checks.
type PacketPool struct {
	free   []*Packet
	missed int // Gets since the last RebalancePools that fell through to the heap
	// startFree is the free-list level RebalancePools last restored; the
	// next call ratchets it by the misses observed since, so repeated
	// identical runs converge on a start stock that never runs dry.
	startFree int
}

// Get returns a zeroed packet, recycling one if available.
func (pl *PacketPool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	pl.missed++
	return &Packet{}
}

// Put recycles a packet the caller has finished with. The packet must not
// be referenced again: the next Get may hand it out. Double-Put is a caller
// bug (the list does not deduplicate).
func (pl *PacketPool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	*p = Packet{}
	pl.free = append(pl.free, p)
}

// RebalancePools shifts parked packets between per-shard pools so each pool
// recovers roughly the number of packets it was forced to heap-allocate since
// the last call. Packets migrate between shards during a run — a packet is
// recycled into the pool of the shard where it dies (receiver sink, drop at a
// queue), not the pool that allocated it — so without rebalancing the donor
// shard's pool allocates afresh every trial while the recipient's free list
// grows without bound. Call it between runs on the coordinating goroutine;
// the shift only moves spare zeroed packets, so it cannot affect simulation
// results.
func RebalancePools(pools []*PacketPool) {
	// Target start-of-run stock: the level this pool started its last run
	// with, raised by the shortfall it still hit. A pool that ran dry mid-run
	// by k packets needs k more at the start, not k more than wherever its
	// free list drifted to by the end — the latter oscillates.
	for _, pl := range pools {
		if pl == nil {
			continue
		}
		pl.startFree += pl.missed
		pl.missed = 0
	}
	for _, pl := range pools {
		if pl == nil {
			continue
		}
		for len(pl.free) < pl.startFree {
			var donor *PacketPool
			spare := 0
			for _, d := range pools {
				if d != nil && d != pl && len(d.free)-d.startFree > spare {
					donor, spare = d, len(d.free)-d.startFree
				}
			}
			if donor == nil {
				break
			}
			n := min(pl.startFree-len(pl.free), spare)
			for i := 0; i < n; i++ {
				last := len(donor.free) - 1
				pl.free = append(pl.free, donor.free[last])
				donor.free[last] = nil
				donor.free = donor.free[:last]
			}
		}
	}
	// Remember what was actually restored: an unreachable target (total
	// population still too small) re-ratchets from reality next time.
	for _, pl := range pools {
		if pl == nil {
			continue
		}
		pl.startFree = len(pl.free)
	}
}

// Size returns the number of packets currently parked in the free list.
func (pl *PacketPool) Size() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}
