package netem

import (
	"testing"

	"pcc/internal/sim"
)

// lossyRunOutcome drives a fixed burst pattern through a lossy 3-hop
// topology (fresh or re-specced by the caller) and returns the per-link
// stats plus total deliveries — enough state to detect any divergence in
// queueing, serialization, or the loss RNG streams.
func lossyRunOutcome(eng *sim.Engine, topo *Topology, delivered *int) ([]LinkStats, int) {
	for burst := 0; burst < 40; burst++ {
		at := float64(burst) * 0.004
		eng.At(at, func() {
			for i := 0; i < 30; i++ {
				topo.SendData(&Packet{Flow: 0, Size: 1500})
			}
		})
	}
	eng.Run()
	return topo.Stats(), *delivered
}

// TestRespecReproducesFreshTopology is the netem-level arena guarantee:
// engine reset + link/queue/flow respec must reproduce a fresh build's
// behaviour exactly — including the wire-loss draws — across repeated
// trials and changed parameters.
func TestRespecReproducesFreshTopology(t *testing.T) {
	t.Parallel()
	build := func() (*sim.Engine, *Topology, *int) {
		eng := sim.NewEngine()
		seeds := sim.NewSeeds(5)
		topo, delivered := threeHopTopo(t, eng, seeds, []int{10 * 1500, -1, -1}, []float64{0, 0.08, 0.02})
		return eng, topo, delivered
	}
	eng, topo, delivered := build()
	wantStats, wantDel := lossyRunOutcome(eng, topo, delivered)

	// Re-spec the same topology in place, twice, expecting identical runs.
	pool := topo.Pool
	for trial := 0; trial < 2; trial++ {
		eng.Reset(func(a any) {
			if p, ok := a.(*Packet); ok {
				pool.Put(p)
			}
		})
		seeds := sim.NewSeeds(5)
		// Same draw order as threeHopTopo: three link streams, then the
		// flow stream.
		for i, name := range []string{"l1", "l2", "l3"} {
			l := topo.LinkByName(name)
			l.Queue.(*DropTail).Reset([]int{10 * 1500, -1, -1}[i], pool)
			l.Reset(Mbps(100), 0.001, []float64{0, 0.08, 0.02}[i], seeds.Next())
		}
		*delivered = 0
		topo.RespecFlow(0,
			[]HopSpec{DelayHop(0.002), LinkHop("l1"), LinkHop("l2"), LinkHop("l3")},
			[]HopSpec{DelayHop(0.005)},
			seeds,
			func(p *Packet) { *delivered++; pool.Put(p) },
			nil)
		gotStats, gotDel := lossyRunOutcome(eng, topo, delivered)
		if gotDel != wantDel {
			t.Fatalf("trial %d: delivered %d, want %d", trial, gotDel, wantDel)
		}
		for i := range wantStats {
			if gotStats[i] != wantStats[i] {
				t.Fatalf("trial %d link %s: stats %+v, want %+v", trial, wantStats[i].Name, gotStats[i], wantStats[i])
			}
		}
		if wantStats[1].WireLost == 0 {
			t.Fatal("middle hop lost nothing; loss stream not exercised")
		}
	}
}

// TestRespecFlowRebuildsOnShapeChange verifies the teardown path: changing
// a flow's route shape under RespecFlow re-routes packets correctly and
// leaves no stale routing-table entries behind.
func TestRespecFlowRebuildsOnShapeChange(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(3)
	topo := NewTopology(eng)
	pool := &PacketPool{}
	topo.UsePool(pool)
	topo.AddLink("a", "A", "B", NewDropTail(-1), Mbps(100), 0.001, 0, seeds.NextRand())
	topo.AddLink("b", "B", "C", NewDropTail(-1), Mbps(100), 0.001, 0, seeds.NextRand())

	got := 0
	sink := func(p *Packet) { got++; pool.Put(p) }
	topo.AddFlow(0, []HopSpec{LinkHop("a"), LinkHop("b")}, []HopSpec{DelayHop(0.001)}, seeds, sink, nil)
	eng.At(0, func() { topo.SendData(&Packet{Flow: 0, Size: 1500}) })
	eng.Run()
	if got != 1 {
		t.Fatalf("2-hop route delivered %d, want 1", got)
	}

	eng.Reset(nil)
	seeds.Reset(3)
	// New shape: single link hop. The old "b" routing entry must be gone.
	topo.RespecFlow(0, []HopSpec{LinkHop("a")}, []HopSpec{DelayHop(0.001)}, seeds, sink, nil)
	got = 0
	eng.At(0, func() { topo.SendData(&Packet{Flow: 0, Size: 1500}) })
	eng.Run()
	if got != 1 {
		t.Fatalf("re-specced 1-hop route delivered %d, want 1", got)
	}
	if fwd, _ := topo.FlowRoutes(0); len(fwd.hops) != 1 {
		t.Fatalf("re-specced route has %d hops, want 1", len(fwd.hops))
	}
	// The dropped second hop's pipe must have left the engine's pipe list:
	// inject straight onto link b and confirm its exit discards (flow 0 no
	// longer routes over it), rather than forwarding or panicking.
	before := pool.Size()
	topo.LinkByName("b").Send(&Packet{Flow: 0, Size: 1500})
	eng.Run()
	if pool.Size() != before+1 {
		t.Fatalf("stale route entry still consumes packets from link b")
	}
}

// TestQueueResets pins that each queue kind's Reset drains into the pool
// and restores constructor state with the new capacity.
func TestQueueResets(t *testing.T) {
	t.Parallel()
	pool := &PacketPool{}

	dt := NewDropTail(3000)
	dt.Enqueue(&Packet{Size: 1500}, 0)
	dt.Enqueue(&Packet{Size: 1500}, 0)
	dt.Enqueue(&Packet{Size: 1500}, 0) // dropped: over cap
	dt.Reset(6000, pool)
	if dt.Len() != 0 || dt.Bytes() != 0 || dt.Dropped() != 0 || dt.DroppedBytes() != 0 || dt.CapBytes != 6000 {
		t.Fatalf("DropTail.Reset left state: %+v", dt)
	}
	if pool.Size() != 2 {
		t.Fatalf("DropTail.Reset recycled %d packets, want 2", pool.Size())
	}

	cd := NewCoDel(30000)
	cd.Pool = pool
	for i := 0; i < 4; i++ {
		cd.Enqueue(&Packet{Size: 1500}, float64(i)*0.001)
	}
	cd.Reset(60000)
	if cd.Len() != 0 || cd.Dropped() != 0 || cd.CapBytes != 60000 || cd.dropping || cd.firstAbove != 0 {
		t.Fatalf("CoDel.Reset left state: %+v", cd)
	}

	fq := NewFQCoDel(30000)
	fq.Pool = pool
	fq.Enqueue(&Packet{Flow: 0, Size: 1500}, 0)
	fq.Enqueue(&Packet{Flow: 1, Size: 1500}, 0)
	fq.Reset(60000)
	if fq.Len() != 0 || fq.Bytes() != 0 || len(fq.active) != 0 || fq.PerFlowBytes != 60000 {
		t.Fatalf("FQ.Reset left state: %+v", fq)
	}
	if fq.Dropped() != 0 {
		t.Fatalf("FQ.Reset left child drop counts: %d", fq.Dropped())
	}
	// Children are CoDel instances reset with the new cap.
	for _, fl := range fq.flows {
		if fl == nil {
			continue
		}
		if cd, ok := fl.q.(*CoDel); !ok || cd.CapBytes != 60000 {
			t.Fatalf("FQ child not re-specced: %+v", fl.q)
		}
	}
}

// TestLinkResetReplaysLossStream pins that Link.Reset's reseed reproduces a
// fresh generator's draw sequence even after the old stream materialized.
func TestLinkResetReplaysLossStream(t *testing.T) {
	t.Parallel()
	run := func(l *Link, eng *sim.Engine) (lost int64) {
		for i := 0; i < 200; i++ {
			l.Send(&Packet{Size: 1500})
		}
		eng.Run()
		return l.WireLost()
	}
	seeds := sim.NewSeeds(21)
	engA := sim.NewEngine()
	fresh := NewLink(engA, NewDropTail(-1), Mbps(100), 0, 0.1, seeds.NextRand())
	fresh.Sink = func(p *Packet) {}
	wantLost := run(fresh, engA)

	engB := sim.NewEngine()
	reused := NewLink(engB, NewDropTail(-1), Mbps(100), 0, 0.2, sim.NewSeeds(99).NextRand())
	reused.Sink = func(p *Packet) {}
	run(reused, engB) // materialize and advance the old stream
	engB.Reset(nil)
	seeds.Reset(21)
	reused.Queue.(*DropTail).Reset(-1, nil)
	reused.Reset(Mbps(100), 0, 0.1, seeds.Next())
	if got := run(reused, engB); got != wantLost {
		t.Fatalf("re-specced link lost %d, fresh lost %d", got, wantLost)
	}
	if reused.OfferedBytes() != fresh.OfferedBytes() || reused.DeliveredBytes() != fresh.DeliveredBytes() {
		t.Fatal("byte ledgers diverged after respec")
	}
}
