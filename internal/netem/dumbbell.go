package netem

import (
	"math/rand"

	"pcc/internal/sim"
)

// Dumbbell is the topology used by every experiment in the paper: n senders
// share one bottleneck link toward their receivers. Per-flow access
// propagation delays model heterogeneous RTTs (§4.1.5); the acknowledgment
// path is uncongested but may have its own propagation delay and random
// loss (§4.1.4 injects loss "on both forward and backward paths").
//
// All propagation delay lives in the per-flow forward/reverse delays; the
// bottleneck link contributes only queueing plus serialization.
type Dumbbell struct {
	Eng        *sim.Engine
	Bottleneck *Link
	// Pool, when set, recycles ACKs dropped by reverse-path loss. Assign it
	// (and Bottleneck.Pool) via UsePool.
	Pool *PacketPool

	flows  map[int]*dumbbellFlow
	sendFn func(any)
}

type dumbbellFlow struct {
	fwdDelay float64
	revDelay float64
	revLoss  float64
	rng      *rand.Rand
	dataSink func(*Packet)
	ackSink  func(*Packet)
	ackFn    func(any)
}

// NewDumbbell builds a dumbbell with the given bottleneck rate, queue, and
// wire loss. The loss rng is derived from seeds.
func NewDumbbell(eng *sim.Engine, q Queue, rateBps, lossRate float64, seeds *sim.Seeds) *Dumbbell {
	d := &Dumbbell{Eng: eng, flows: map[int]*dumbbellFlow{}}
	d.Bottleneck = NewLink(eng, q, rateBps, 0, lossRate, seeds.NextRand())
	d.Bottleneck.Sink = d.deliverData
	d.sendFn = func(a any) { d.Bottleneck.Send(a.(*Packet)) }
	return d
}

// UsePool routes every drop point of the topology — bottleneck queue
// rejection, dequeue-time AQM drops (CoDel, including CoDel children under
// FQ), wire loss, and reverse-path ACK loss — through the given free list.
// The pool must belong to the same engine/goroutine as the dumbbell.
func (d *Dumbbell) UsePool(pool *PacketPool) {
	d.Pool = pool
	d.Bottleneck.Pool = pool
	queueUsePool(d.Bottleneck.Queue, pool)
}

// queueUsePool wires a free list into the queue kinds that drop packets at
// dequeue time (enqueue-time rejections are recycled by the Link).
func queueUsePool(q Queue, pool *PacketPool) {
	switch q := q.(type) {
	case *CoDel:
		q.Pool = pool
	case *FQ:
		q.Pool = pool
		for _, fl := range q.flows {
			queueUsePool(fl.q, pool)
		}
	}
}

// FlowConfig describes one flow's path through the dumbbell.
type FlowConfig struct {
	// FwdDelay is the sender→bottleneck propagation delay (seconds).
	FwdDelay float64
	// RevDelay is the receiver→sender propagation delay (seconds).
	RevDelay float64
	// RevLoss is the Bernoulli loss probability on the ACK path.
	RevLoss float64
}

// SymmetricRTT returns a FlowConfig splitting rtt evenly between the two
// directions with no reverse loss.
func SymmetricRTT(rtt float64) FlowConfig {
	return FlowConfig{FwdDelay: rtt / 2, RevDelay: rtt / 2}
}

// AddFlow registers flow id with its path configuration and delivery
// callbacks. dataSink receives data packets at the receiver; ackSink
// receives ACKs back at the sender.
func (d *Dumbbell) AddFlow(id int, cfg FlowConfig, seeds *sim.Seeds, dataSink, ackSink func(*Packet)) {
	f := &dumbbellFlow{
		fwdDelay: cfg.FwdDelay,
		revDelay: cfg.RevDelay,
		revLoss:  cfg.RevLoss,
		rng:      seeds.NextRand(),
		dataSink: dataSink,
		ackSink:  ackSink,
	}
	f.ackFn = func(a any) { f.ackSink(a.(*Packet)) }
	d.flows[id] = f
}

// SetFlowDelays changes a flow's propagation delays at runtime (used by the
// rapidly-changing-network experiment).
func (d *Dumbbell) SetFlowDelays(id int, fwd, rev float64) {
	f := d.flows[id]
	f.fwdDelay = fwd
	f.revDelay = rev
}

// SendData injects a data packet at flow p.Flow's sender.
func (d *Dumbbell) SendData(p *Packet) {
	f := d.flows[p.Flow]
	if f == nil {
		panic("netem: SendData for unregistered flow")
	}
	d.Eng.PostArg(f.fwdDelay, d.sendFn, p)
}

// deliverData hands a packet emerging from the bottleneck to its receiver.
func (d *Dumbbell) deliverData(p *Packet) {
	f := d.flows[p.Flow]
	if f == nil || f.dataSink == nil {
		return
	}
	f.dataSink(p)
}

// SendAck injects an ACK at flow p.Flow's receiver; it traverses the
// uncongested reverse path, subject to reverse loss.
func (d *Dumbbell) SendAck(p *Packet) {
	f := d.flows[p.Flow]
	if f == nil {
		panic("netem: SendAck for unregistered flow")
	}
	if f.revLoss > 0 && f.rng.Float64() < f.revLoss {
		d.Pool.Put(p)
		return
	}
	d.Eng.PostArg(f.revDelay, f.ackFn, p)
}
