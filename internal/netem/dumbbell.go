package netem

import (
	"math/rand"

	"pcc/internal/sim"
)

// Dumbbell is the topology used by every experiment in the paper: n senders
// share one bottleneck link toward their receivers. Per-flow access
// propagation delays model heterogeneous RTTs (§4.1.5); the acknowledgment
// path is uncongested but may have its own propagation delay and random
// loss (§4.1.4 injects loss "on both forward and backward paths").
//
// All propagation delay lives in the per-flow forward/reverse delays; the
// bottleneck link contributes only queueing plus serialization.
type Dumbbell struct {
	Eng        *sim.Engine
	Bottleneck *Link

	flows map[int]*dumbbellFlow
}

type dumbbellFlow struct {
	fwdDelay float64
	revDelay float64
	revLoss  float64
	rng      *rand.Rand
	dataSink func(*Packet)
	ackSink  func(*Packet)
}

// NewDumbbell builds a dumbbell with the given bottleneck rate, queue, and
// wire loss. The loss rng is derived from seeds.
func NewDumbbell(eng *sim.Engine, q Queue, rateBps, lossRate float64, seeds *sim.Seeds) *Dumbbell {
	d := &Dumbbell{Eng: eng, flows: map[int]*dumbbellFlow{}}
	d.Bottleneck = NewLink(eng, q, rateBps, 0, lossRate, seeds.NextRand())
	d.Bottleneck.Sink = d.deliverData
	return d
}

// FlowConfig describes one flow's path through the dumbbell.
type FlowConfig struct {
	// FwdDelay is the sender→bottleneck propagation delay (seconds).
	FwdDelay float64
	// RevDelay is the receiver→sender propagation delay (seconds).
	RevDelay float64
	// RevLoss is the Bernoulli loss probability on the ACK path.
	RevLoss float64
}

// SymmetricRTT returns a FlowConfig splitting rtt evenly between the two
// directions with no reverse loss.
func SymmetricRTT(rtt float64) FlowConfig {
	return FlowConfig{FwdDelay: rtt / 2, RevDelay: rtt / 2}
}

// AddFlow registers flow id with its path configuration and delivery
// callbacks. dataSink receives data packets at the receiver; ackSink
// receives ACKs back at the sender.
func (d *Dumbbell) AddFlow(id int, cfg FlowConfig, seeds *sim.Seeds, dataSink, ackSink func(*Packet)) {
	d.flows[id] = &dumbbellFlow{
		fwdDelay: cfg.FwdDelay,
		revDelay: cfg.RevDelay,
		revLoss:  cfg.RevLoss,
		rng:      seeds.NextRand(),
		dataSink: dataSink,
		ackSink:  ackSink,
	}
}

// SetFlowDelays changes a flow's propagation delays at runtime (used by the
// rapidly-changing-network experiment).
func (d *Dumbbell) SetFlowDelays(id int, fwd, rev float64) {
	f := d.flows[id]
	f.fwdDelay = fwd
	f.revDelay = rev
}

// SendData injects a data packet at flow p.Flow's sender.
func (d *Dumbbell) SendData(p *Packet) {
	f := d.flows[p.Flow]
	if f == nil {
		panic("netem: SendData for unregistered flow")
	}
	d.Eng.After(f.fwdDelay, func() { d.Bottleneck.Send(p) })
}

// deliverData hands a packet emerging from the bottleneck to its receiver.
func (d *Dumbbell) deliverData(p *Packet) {
	f := d.flows[p.Flow]
	if f == nil || f.dataSink == nil {
		return
	}
	f.dataSink(p)
}

// SendAck injects an ACK at flow p.Flow's receiver; it traverses the
// uncongested reverse path, subject to reverse loss.
func (d *Dumbbell) SendAck(p *Packet) {
	f := d.flows[p.Flow]
	if f == nil {
		panic("netem: SendAck for unregistered flow")
	}
	if f.revLoss > 0 && f.rng.Float64() < f.revLoss {
		return
	}
	sink := f.ackSink
	d.Eng.After(f.revDelay, func() { sink(p) })
}
