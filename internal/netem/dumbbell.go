package netem

import (
	"fmt"

	"pcc/internal/sim"
)

// Dumbbell is the topology used by most experiments in the paper: n senders
// share one bottleneck link toward their receivers. Per-flow access
// propagation delays model heterogeneous RTTs (§4.1.5); the acknowledgment
// path is uncongested but may have its own propagation delay and random
// loss (§4.1.4 injects loss "on both forward and backward paths").
//
// Since the general-topology refactor, Dumbbell is a thin constructor over
// Topology: each flow's forward route is [access-delay hop, bottleneck
// link] and its reverse route a single delay hop with optional Bernoulli
// loss — exactly the event and RNG sequence of the original hardwired
// implementation, so recorded experiment outputs are unchanged. All
// propagation delay lives in the per-flow access hops; the bottleneck link
// contributes only queueing plus serialization.
type Dumbbell struct {
	Eng *sim.Engine
	// Topo is the underlying graph; use it for per-link stats or to layer
	// extra links/routes onto a dumbbell-based experiment. Topo.Pool holds
	// the free list UsePool installs.
	Topo       *Topology
	Bottleneck *Link
}

// BottleneckLink is the name Dumbbell registers its shared link under.
const BottleneckLink = "bottleneck"

// NewDumbbell builds a dumbbell with the given bottleneck rate, queue, and
// wire loss. The loss rng is derived from seeds.
func NewDumbbell(eng *sim.Engine, q Queue, rateBps, lossRate float64, seeds *sim.Seeds) *Dumbbell {
	d := &Dumbbell{Eng: eng, Topo: NewTopology(eng)}
	d.Bottleneck = d.Topo.AddLink(BottleneckLink, "senders", "receivers", q, rateBps, 0, lossRate, seeds.NextRand())
	return d
}

// UsePool routes every drop point of the topology — bottleneck queue
// rejection, dequeue-time AQM drops (CoDel, including CoDel children under
// FQ), wire loss, and reverse-path ACK loss — through the given free list.
// The pool must belong to the same engine/goroutine as the dumbbell.
func (d *Dumbbell) UsePool(pool *PacketPool) {
	d.Topo.UsePool(pool)
}

// FlowConfig describes one flow's path through the dumbbell.
type FlowConfig struct {
	// FwdDelay is the sender→bottleneck propagation delay (seconds).
	FwdDelay float64
	// RevDelay is the receiver→sender propagation delay (seconds).
	RevDelay float64
	// RevLoss is the Bernoulli loss probability on the ACK path.
	RevLoss float64
}

// SymmetricRTT returns a FlowConfig splitting rtt evenly between the two
// directions with no reverse loss.
func SymmetricRTT(rtt float64) FlowConfig {
	return FlowConfig{FwdDelay: rtt / 2, RevDelay: rtt / 2}
}

// AddFlow registers flow id with its path configuration and delivery
// callbacks. dataSink receives data packets at the receiver; ackSink
// receives ACKs back at the sender.
func (d *Dumbbell) AddFlow(id int, cfg FlowConfig, seeds *sim.Seeds, dataSink, ackSink func(*Packet)) {
	d.Topo.AddFlow(id,
		[]HopSpec{DelayHop(cfg.FwdDelay), LinkHop(BottleneckLink)},
		[]HopSpec{LossyDelayHop(cfg.RevDelay, cfg.RevLoss)},
		seeds, dataSink, ackSink)
}

// RespecFlow is AddFlow's arena-reuse counterpart: for a known flow id it
// re-specs the existing access hops and reverse path in place (see
// Topology.RespecFlow); for a new id it registers the flow exactly as
// AddFlow does. Call only between simulations, after the engine was Reset.
func (d *Dumbbell) RespecFlow(id int, cfg FlowConfig, seeds *sim.Seeds, dataSink, ackSink func(*Packet)) {
	d.Topo.RespecFlow(id,
		[]HopSpec{DelayHop(cfg.FwdDelay), LinkHop(BottleneckLink)},
		[]HopSpec{LossyDelayHop(cfg.RevDelay, cfg.RevLoss)},
		seeds, dataSink, ackSink)
}

// SetFlowDelays changes a flow's propagation delays at runtime (used by the
// rapidly-changing-network experiment).
func (d *Dumbbell) SetFlowDelays(id int, fwd, rev float64) {
	fr, rr := d.Topo.FlowRoutes(id)
	if fr == nil {
		panic(fmt.Sprintf("netem: SetFlowDelays for unregistered flow %d", id))
	}
	fr.SetDelay(0, fwd)
	rr.SetDelay(0, rev)
}

// SendData injects a data packet at flow p.Flow's sender.
func (d *Dumbbell) SendData(p *Packet) { d.Topo.SendData(p) }

// SendAck injects an ACK at flow p.Flow's receiver; it traverses the
// uncongested reverse path, subject to reverse loss.
func (d *Dumbbell) SendAck(p *Packet) { d.Topo.SendAck(p) }
