package netem

import (
	"math/rand"

	"pcc/internal/sim"
)

// Units helpers. All rates in this repository are bytes per second.

// Mbps converts megabits per second to bytes per second.
func Mbps(m float64) float64 { return m * 1e6 / 8 }

// ToMbps converts bytes per second to megabits per second.
func ToMbps(bps float64) float64 { return bps * 8 / 1e6 }

// KB is 1000 bytes (the paper specifies buffer sizes in KB).
const KB = 1000

// Link models a store-and-forward link: a queue, a serialization rate, a
// propagation delay, and an optional Bernoulli random-loss process applied
// after transmission (wire loss, not queue drop). Delivery is via the Sink
// callback.
//
// Rate, Delay and LossRate may be changed at any time (the rapidly-changing
// network of §4.1.7); changes apply from the next packet transmission.
type Link struct {
	Eng   *sim.Engine
	Queue Queue
	// Rate is the serialization rate, bytes/s.
	Rate float64
	// Delay is the one-way propagation delay, seconds.
	Delay float64
	// LossRate is the Bernoulli per-packet wire loss probability.
	LossRate float64
	// Sink receives packets that survive transmission and loss.
	Sink func(*Packet)

	// Pool, when set, recycles packets the link drops (queue overflow or
	// wire loss). It must be the free list of the engine that owns this
	// link so recycling never crosses goroutines.
	Pool *PacketPool

	// XDeliver, when set, replaces the propagation stage: packets that
	// survive transmission and loss are handed to XDeliver(Delay, p) instead
	// of the local pipe. A sharded Topology installs it on links whose
	// endpoints live on different shards, turning the propagation delay into
	// a cross-shard mailbox post (the delay is the conservative lookahead
	// budget, so it must stay >= the shard group's lookahead). All counters
	// are final before the handoff.
	XDeliver func(delay float64, p *Packet)

	rng       Rng
	busy      bool
	delivered int64
	lost      int64
	// down marks the link administratively down (fault injection, see
	// fault.go): Send still queues (the router buffers), but nothing
	// serializes, the in-flight train is dropped, and arriving finish events
	// for packets already on the wire head are discarded into the fault
	// ledger below.
	down bool
	// faultDrops/faultDroppedBytes count packets destroyed by a fault —
	// the in-flight train flushed when the link went down plus any packet
	// whose serialization completed while down. They are a first-class term
	// of the conservation identity (see LinkStats.Conserved).
	faultDrops        int64
	faultDroppedBytes int64
	// Byte-granular accounting, so conservation can be audited per hop
	// when flows mix packet sizes: offeredBytes counts every byte handed to
	// Send; deliveredBytes/lostBytes split the bytes that finished
	// serialization; the queue tracks its own dropped bytes. The remainder
	// (offered − delivered − lost − queue-dropped − queued) is exactly the
	// packet on the wire head, exposed as TxBytes.
	offeredBytes   int64
	deliveredBytes int64
	lostBytes      int64
	txBytes        int64 // size of the packet serializing now; 0 when idle
	busyUntil      float64
	// finishFn/deliverFn are allocated once so per-packet scheduling needs
	// no capturing closures (see sim.Engine.PostArg). The serializer has at
	// most one outstanding event per link (the packet on the wire head),
	// so it stays a plain engine event.
	finishFn  func(any)
	deliverFn func(any)
	// faultDropFn destroys an in-flight packet flushed from the propagation
	// pipe by SetDown. finish counted it delivered before it entered the
	// pipe, so the ledger moves it from delivered to fault-dropped.
	faultDropFn func(any)
	// pipe is the link's propagation delay line: every packet that survives
	// transmission rides it to the Sink. In-flight packets on a high-BDP
	// link number in the thousands; batching them into one FIFO ring with a
	// single self-rearming scheduler slot keeps the engine's heap at
	// O(links), not O(in-flight packets) (see sim.Pipe).
	pipe *sim.Pipe
	// dt caches Queue's concrete type when it is a plain DropTail — the
	// overwhelmingly common case — so the two per-packet queue operations
	// (Enqueue in Send, Dequeue in transmitNext) dispatch directly and
	// inline instead of going through the Queue interface.
	dt *DropTail
}

// NewLink builds a link with the given queue and parameters. The rng drives
// the loss process only; a nil rng disables random loss regardless of
// LossRate.
func NewLink(eng *sim.Engine, q Queue, rateBps, delay, lossRate float64, rng *rand.Rand) *Link {
	l := &Link{Eng: eng, Queue: q, Rate: rateBps, Delay: delay, LossRate: lossRate, rng: WrapRng(rng)}
	l.dt, _ = q.(*DropTail)
	l.finishFn = func(a any) { l.finish(a.(*Packet)) }
	// Sink is typically assigned after construction; the delivery paths
	// read it at delivery time.
	l.deliverFn = func(a any) { l.Sink(a.(*Packet)) }
	l.faultDropFn = func(a any) {
		p := a.(*Packet)
		l.delivered--
		l.deliveredBytes -= int64(p.Size)
		l.faultDrops++
		l.faultDroppedBytes += int64(p.Size)
		l.Pool.Put(p)
	}
	l.pipe = eng.NewPipe(l.deliverFn)
	return l
}

// Reset re-specs the link in place for a new simulation on a reset engine:
// new rate/delay/loss parameters, a re-seeded loss stream, and zeroed
// counters, with the propagation pipe and queue storage retained. The seed
// must come from the same derivation-chain position a fresh NewLink would
// have drawn its rng from, so the loss process is bit-identical to a fresh
// build. The caller resets the queue separately (capacity may change).
func (l *Link) Reset(rateBps, delay, lossRate float64, seed int64) {
	l.Rate, l.Delay, l.LossRate = rateBps, delay, lossRate
	l.dt, _ = l.Queue.(*DropTail)
	l.rng.Reseed(seed)
	l.busy = false
	l.down = false
	l.delivered, l.lost = 0, 0
	l.faultDrops, l.faultDroppedBytes = 0, 0
	l.offeredBytes, l.deliveredBytes, l.lostBytes, l.txBytes = 0, 0, 0, 0
	l.busyUntil = 0
}

// Send offers a packet to the link. Packets rejected by the queue are
// dropped silently (the queue counts them).
func (l *Link) Send(p *Packet) {
	l.offeredBytes += int64(p.Size)
	var ok bool
	if l.dt != nil {
		ok = l.dt.Enqueue(p, l.Eng.Now())
	} else {
		ok = l.Queue.Enqueue(p, l.Eng.Now())
	}
	if !ok {
		l.Pool.Put(p)
		return
	}
	if !l.busy && !l.down {
		l.transmitNext()
	}
}

// transmitNext pulls the next packet from the queue and schedules its
// serialization completion.
func (l *Link) transmitNext() {
	var p *Packet
	if l.dt != nil {
		p = l.dt.pop()
	} else {
		p = l.Queue.Dequeue(l.Eng.Now())
	}
	if p == nil {
		l.busy = false
		l.txBytes = 0
		return
	}
	l.busy = true
	l.txBytes = int64(p.Size)
	txTime := float64(p.Size) / l.Rate
	l.busyUntil = l.Eng.Now() + txTime
	l.Eng.PostArg(txTime, l.finishFn, p)
}

func (l *Link) finish(p *Packet) {
	if l.down {
		// The link went down while this packet was on the wire head: it is
		// destroyed, and the serializer parks until SetDown(false) restarts
		// it. The queue keeps its contents (those bytes stay accounted as
		// QueuedBytes).
		l.faultDrops++
		l.faultDroppedBytes += int64(p.Size)
		l.Pool.Put(p)
		l.busy = false
		l.txBytes = 0
		return
	}
	if l.LossRate > 0 && l.rng.Valid() && l.rng.Float64() < l.LossRate {
		l.lost++
		l.lostBytes += int64(p.Size)
		l.Pool.Put(p)
	} else {
		l.delivered++
		l.deliveredBytes += int64(p.Size)
		if l.XDeliver != nil {
			l.XDeliver(l.Delay, p)
		} else if l.Delay == 0 {
			// Zero-delay link (the dumbbell bottleneck: all propagation
			// lives in the access hops): the pipe would never batch —
			// delivery lands at the finish instant, so the slot drains
			// before the next serialization completes. Scheduling directly
			// draws the same sequence number and fires the same callback at
			// the same time, skipping the ring bookkeeping.
			l.Eng.PostArg(0, l.deliverFn, p)
		} else {
			l.pipe.Post(l.Delay, p)
		}
	}
	l.transmitNext()
}

// SetDown changes the link's administrative state. Taking a link down
// destroys its in-flight propagation train (flushed from the pipe into the
// fault ledger) and parks the serializer: the packet on the wire head, if
// any, is destroyed when its finish event arrives, and queued packets stay
// buffered. Bringing the link up restarts transmission from the queue.
//
// Two in-flight populations escape the flush by construction, both
// harmlessly: zero-delay deliveries (they complete at the same instant they
// start, before any fault event scheduled later can observe them) and
// out-of-order entries that fell back to plain engine events when the
// link's delay shrank mid-flight (rare, already counted delivered; they
// deliver as if they crossed just before the cut).
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if down {
		l.pipe.Flush(l.faultDropFn)
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// FaultDropped returns the number of packets destroyed by fault injection
// (in-flight train flushed on SetDown plus wire-head packets finishing while
// down).
func (l *Link) FaultDropped() int64 { return l.faultDrops }

// FaultDroppedBytes returns the wire bytes destroyed by fault injection.
func (l *Link) FaultDroppedBytes() int64 { return l.faultDroppedBytes }

// Delivered returns the number of packets delivered to the sink.
func (l *Link) Delivered() int64 { return l.delivered }

// WireLost returns the number of packets lost to the random-loss process.
func (l *Link) WireLost() int64 { return l.lost }

// OfferedBytes returns the wire bytes of every packet offered to the link,
// accepted or not.
func (l *Link) OfferedBytes() int64 { return l.offeredBytes }

// DeliveredBytes returns the wire bytes delivered to the sink.
func (l *Link) DeliveredBytes() int64 { return l.deliveredBytes }

// WireLostBytes returns the wire bytes lost to the random-loss process.
func (l *Link) WireLostBytes() int64 { return l.lostBytes }

// TxBytes returns the size of the packet currently serializing (0 when the
// link is idle) — the only bytes inside the link that are neither queued
// nor yet delivered/lost.
func (l *Link) TxBytes() int64 { return l.txBytes }

// Utilization returns the fraction of [since, now] the link spent
// transmitting, assuming the caller tracked `since` themselves; exposed as a
// simple helper for experiments that need instantaneous busy state.
func (l *Link) Busy() bool { return l.busy }
