package netem

import (
	"math/rand"

	"pcc/internal/sim"
)

// Units helpers. All rates in this repository are bytes per second.

// Mbps converts megabits per second to bytes per second.
func Mbps(m float64) float64 { return m * 1e6 / 8 }

// ToMbps converts bytes per second to megabits per second.
func ToMbps(bps float64) float64 { return bps * 8 / 1e6 }

// KB is 1000 bytes (the paper specifies buffer sizes in KB).
const KB = 1000

// Link models a store-and-forward link: a queue, a serialization rate, a
// propagation delay, and an optional Bernoulli random-loss process applied
// after transmission (wire loss, not queue drop). Delivery is via the Sink
// callback.
//
// Rate, Delay and LossRate may be changed at any time (the rapidly-changing
// network of §4.1.7); changes apply from the next packet transmission.
type Link struct {
	Eng   *sim.Engine
	Queue Queue
	// Rate is the serialization rate, bytes/s.
	Rate float64
	// Delay is the one-way propagation delay, seconds.
	Delay float64
	// LossRate is the Bernoulli per-packet wire loss probability.
	LossRate float64
	// Sink receives packets that survive transmission and loss.
	Sink func(*Packet)

	// Pool, when set, recycles packets the link drops (queue overflow or
	// wire loss). It must be the free list of the engine that owns this
	// link so recycling never crosses goroutines.
	Pool *PacketPool

	// XDeliver, when set, replaces the propagation stage: packets that
	// survive transmission and loss are handed to XDeliver(Delay, p) instead
	// of the local pipe. A sharded Topology installs it on links whose
	// endpoints live on different shards, turning the propagation delay into
	// a cross-shard mailbox post (the delay is the conservative lookahead
	// budget, so it must stay >= the shard group's lookahead). All counters
	// are final before the handoff.
	XDeliver func(delay float64, p *Packet)

	rng       Rng
	busy      bool
	delivered int64
	lost      int64
	// Byte-granular accounting, so conservation can be audited per hop
	// when flows mix packet sizes: offeredBytes counts every byte handed to
	// Send; deliveredBytes/lostBytes split the bytes that finished
	// serialization; the queue tracks its own dropped bytes. The remainder
	// (offered − delivered − lost − queue-dropped − queued) is exactly the
	// packet on the wire head, exposed as TxBytes.
	offeredBytes   int64
	deliveredBytes int64
	lostBytes      int64
	txBytes        int64 // size of the packet serializing now; 0 when idle
	busyUntil      float64
	// finishFn/deliverFn are allocated once so per-packet scheduling needs
	// no capturing closures (see sim.Engine.PostArg). The serializer has at
	// most one outstanding event per link (the packet on the wire head),
	// so it stays a plain engine event.
	finishFn  func(any)
	deliverFn func(any)
	// pipe is the link's propagation delay line: every packet that survives
	// transmission rides it to the Sink. In-flight packets on a high-BDP
	// link number in the thousands; batching them into one FIFO ring with a
	// single self-rearming scheduler slot keeps the engine's heap at
	// O(links), not O(in-flight packets) (see sim.Pipe).
	pipe *sim.Pipe
	// dt caches Queue's concrete type when it is a plain DropTail — the
	// overwhelmingly common case — so the two per-packet queue operations
	// (Enqueue in Send, Dequeue in transmitNext) dispatch directly and
	// inline instead of going through the Queue interface.
	dt *DropTail
}

// NewLink builds a link with the given queue and parameters. The rng drives
// the loss process only; a nil rng disables random loss regardless of
// LossRate.
func NewLink(eng *sim.Engine, q Queue, rateBps, delay, lossRate float64, rng *rand.Rand) *Link {
	l := &Link{Eng: eng, Queue: q, Rate: rateBps, Delay: delay, LossRate: lossRate, rng: WrapRng(rng)}
	l.dt, _ = q.(*DropTail)
	l.finishFn = func(a any) { l.finish(a.(*Packet)) }
	// Sink is typically assigned after construction; the delivery paths
	// read it at delivery time.
	l.deliverFn = func(a any) { l.Sink(a.(*Packet)) }
	l.pipe = eng.NewPipe(l.deliverFn)
	return l
}

// Reset re-specs the link in place for a new simulation on a reset engine:
// new rate/delay/loss parameters, a re-seeded loss stream, and zeroed
// counters, with the propagation pipe and queue storage retained. The seed
// must come from the same derivation-chain position a fresh NewLink would
// have drawn its rng from, so the loss process is bit-identical to a fresh
// build. The caller resets the queue separately (capacity may change).
func (l *Link) Reset(rateBps, delay, lossRate float64, seed int64) {
	l.Rate, l.Delay, l.LossRate = rateBps, delay, lossRate
	l.dt, _ = l.Queue.(*DropTail)
	l.rng.Reseed(seed)
	l.busy = false
	l.delivered, l.lost = 0, 0
	l.offeredBytes, l.deliveredBytes, l.lostBytes, l.txBytes = 0, 0, 0, 0
	l.busyUntil = 0
}

// Send offers a packet to the link. Packets rejected by the queue are
// dropped silently (the queue counts them).
func (l *Link) Send(p *Packet) {
	l.offeredBytes += int64(p.Size)
	var ok bool
	if l.dt != nil {
		ok = l.dt.Enqueue(p, l.Eng.Now())
	} else {
		ok = l.Queue.Enqueue(p, l.Eng.Now())
	}
	if !ok {
		l.Pool.Put(p)
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext pulls the next packet from the queue and schedules its
// serialization completion.
func (l *Link) transmitNext() {
	var p *Packet
	if l.dt != nil {
		p = l.dt.pop()
	} else {
		p = l.Queue.Dequeue(l.Eng.Now())
	}
	if p == nil {
		l.busy = false
		l.txBytes = 0
		return
	}
	l.busy = true
	l.txBytes = int64(p.Size)
	txTime := float64(p.Size) / l.Rate
	l.busyUntil = l.Eng.Now() + txTime
	l.Eng.PostArg(txTime, l.finishFn, p)
}

func (l *Link) finish(p *Packet) {
	if l.LossRate > 0 && l.rng.Valid() && l.rng.Float64() < l.LossRate {
		l.lost++
		l.lostBytes += int64(p.Size)
		l.Pool.Put(p)
	} else {
		l.delivered++
		l.deliveredBytes += int64(p.Size)
		if l.XDeliver != nil {
			l.XDeliver(l.Delay, p)
		} else if l.Delay == 0 {
			// Zero-delay link (the dumbbell bottleneck: all propagation
			// lives in the access hops): the pipe would never batch —
			// delivery lands at the finish instant, so the slot drains
			// before the next serialization completes. Scheduling directly
			// draws the same sequence number and fires the same callback at
			// the same time, skipping the ring bookkeeping.
			l.Eng.PostArg(0, l.deliverFn, p)
		} else {
			l.pipe.Post(l.Delay, p)
		}
	}
	l.transmitNext()
}

// Delivered returns the number of packets delivered to the sink.
func (l *Link) Delivered() int64 { return l.delivered }

// WireLost returns the number of packets lost to the random-loss process.
func (l *Link) WireLost() int64 { return l.lost }

// OfferedBytes returns the wire bytes of every packet offered to the link,
// accepted or not.
func (l *Link) OfferedBytes() int64 { return l.offeredBytes }

// DeliveredBytes returns the wire bytes delivered to the sink.
func (l *Link) DeliveredBytes() int64 { return l.deliveredBytes }

// WireLostBytes returns the wire bytes lost to the random-loss process.
func (l *Link) WireLostBytes() int64 { return l.lostBytes }

// TxBytes returns the size of the packet currently serializing (0 when the
// link is idle) — the only bytes inside the link that are neither queued
// nor yet delivered/lost.
func (l *Link) TxBytes() int64 { return l.txBytes }

// Utilization returns the fraction of [since, now] the link spent
// transmitting, assuming the caller tracked `since` themselves; exposed as a
// simple helper for experiments that need instantaneous busy state.
func (l *Link) Busy() bool { return l.busy }
