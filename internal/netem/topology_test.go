package netem

import (
	"strings"
	"testing"

	"pcc/internal/sim"
)

// threeHopTopo builds A→B→C→D with the given per-link queue capacities and
// wire-loss rates, one registered flow (id 0) routed over all three links,
// and returns the topology plus a delivery counter.
func threeHopTopo(t *testing.T, eng *sim.Engine, seeds *sim.Seeds, bufBytes []int, loss []float64) (*Topology, *int) {
	t.Helper()
	topo := NewTopology(eng)
	pool := &PacketPool{}
	topo.UsePool(pool)
	names := []string{"l1", "l2", "l3"}
	nodes := []string{"A", "B", "C", "D"}
	for i, n := range names {
		topo.AddLink(n, nodes[i], nodes[i+1], NewDropTail(bufBytes[i]), Mbps(100), 0.001, loss[i], seeds.NextRand())
	}
	delivered := 0
	topo.AddFlow(0,
		[]HopSpec{DelayHop(0.002), LinkHop("l1"), LinkHop("l2"), LinkHop("l3")},
		[]HopSpec{DelayHop(0.005)},
		seeds,
		func(p *Packet) { delivered++; pool.Put(p) },
		nil)
	return topo, &delivered
}

func TestTopologyMultiHopTiming(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	topo := NewTopology(eng)
	topo.AddLink("l1", "A", "B", NewDropTail(-1), 1500*100, 0.010, 0, nil)
	topo.AddLink("l2", "B", "C", NewDropTail(-1), 1500*100, 0.020, 0, nil)
	var arrival float64
	topo.AddFlow(0,
		[]HopSpec{DelayHop(0.003), LinkHop("l1"), LinkHop("l2")},
		[]HopSpec{DelayHop(0.001)},
		seeds,
		func(p *Packet) { arrival = eng.Now() },
		nil)
	eng.At(0, func() { topo.SendData(pkt(0, 0, 1500)) })
	eng.Run()
	// access 3 ms + 2×(serialization 10 ms) + 10 ms + 20 ms propagation.
	want := 0.003 + 0.010 + 0.010 + 0.010 + 0.020
	if arrival < want-1e-9 || arrival > want+1e-9 {
		t.Fatalf("arrival at %v, want %v", arrival, want)
	}
}

// TestTopologyPerLinkAccounting drives a bursty flow through a 3-hop route
// with a tiny first-hop buffer and wire loss on the middle hop, and asserts
// conservation at every hop: packets offered = delivered + wire-lost +
// queue-dropped once the network drains.
func TestTopologyPerLinkAccounting(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(7)
	topo, delivered := threeHopTopo(t, eng, seeds,
		[]int{15 * 1500, -1, -1}, []float64{0, 0.05, 0.01})
	const n = 5000
	// Burst 50 packets at a time so the shallow first-hop queue drops some.
	for burst := 0; burst < n/50; burst++ {
		at := float64(burst) * 0.005
		eng.At(at, func() {
			for i := 0; i < 50; i++ {
				topo.SendData(&Packet{Flow: 0, Size: 1500})
			}
		})
	}
	eng.Run()

	stats := topo.Stats()
	if len(stats) != 3 {
		t.Fatalf("Stats() returned %d links, want 3", len(stats))
	}
	offered := int64(n)
	for _, s := range stats {
		got := s.Delivered + s.WireLost + s.QueueDropped
		if got != offered {
			t.Errorf("link %s: delivered(%d)+wire_lost(%d)+queue_dropped(%d) = %d, want offered %d",
				s.Name, s.Delivered, s.WireLost, s.QueueDropped, got, offered)
		}
		// What this hop delivered is exactly what the next hop was offered.
		offered = s.Delivered
	}
	if int64(*delivered) != stats[2].Delivered {
		t.Errorf("receiver saw %d packets, last hop delivered %d", *delivered, stats[2].Delivered)
	}
	if stats[0].QueueDropped == 0 {
		t.Error("shallow first hop never dropped: burst pattern too gentle to exercise accounting")
	}
	if stats[1].WireLost == 0 {
		t.Error("lossy middle hop never lost a packet")
	}
}

// TestTopologySharedLinkAckCompetition is the congested-reverse-path shape
// at the netem layer: two opposing flows where each flow's ACKs traverse
// the other flow's data bottleneck, asserting both traffic kinds are
// counted by the shared link.
func TestTopologySharedLinkAckCompetition(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(3)
	topo := NewTopology(eng)
	pool := &PacketPool{}
	topo.UsePool(pool)
	topo.AddLink("ab", "A", "B", NewDropTail(-1), Mbps(10), 0.005, 0, seeds.NextRand())
	topo.AddLink("ba", "B", "A", NewDropTail(-1), Mbps(10), 0.005, 0, seeds.NextRand())

	acks := map[int]int{}
	mkSinks := func(id int) (func(*Packet), func(*Packet)) {
		return func(p *Packet) { // data arrives: echo an ACK
				pool.Put(p)
				a := pool.Get()
				a.Flow, a.Ack, a.Size = id, true, 40
				topo.SendAck(a)
			}, func(p *Packet) {
				acks[id]++
				pool.Put(p)
			}
	}
	d0, a0 := mkSinks(0)
	topo.AddFlow(0, []HopSpec{LinkHop("ab")}, []HopSpec{LinkHop("ba")}, seeds, d0, a0)
	d1, a1 := mkSinks(1)
	topo.AddFlow(1, []HopSpec{LinkHop("ba")}, []HopSpec{LinkHop("ab")}, seeds, d1, a1)

	const n = 200
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			p0 := pool.Get()
			p0.Flow, p0.Size = 0, 1500
			topo.SendData(p0)
			p1 := pool.Get()
			p1.Flow, p1.Size = 1, 1500
			topo.SendData(p1)
		}
	})
	eng.Run()
	if acks[0] != n || acks[1] != n {
		t.Fatalf("acks = %v, want %d each", acks, n)
	}
	// Each link carried n data packets of one flow and n ACKs of the other.
	for _, s := range topo.Stats() {
		if s.Delivered != 2*n {
			t.Errorf("link %s delivered %d, want %d (data + opposing ACKs)", s.Name, s.Delivered, 2*n)
		}
	}
}

func TestTopologyDelayHopLoss(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(9)
	topo := NewTopology(eng)
	pool := &PacketPool{}
	topo.UsePool(pool)
	topo.AddLink("l", "A", "B", NewDropTail(-1), Mbps(1000), 0, 0, nil)
	got := 0
	topo.AddFlow(0,
		[]HopSpec{LossyDelayHop(0.001, 0.2), LinkHop("l")},
		[]HopSpec{DelayHop(0.001)},
		seeds,
		func(p *Packet) { got++; pool.Put(p) },
		nil)
	const n = 20000
	for i := 0; i < n; i++ {
		eng.At(float64(i)*1e-5, func() {
			p := pool.Get()
			p.Flow, p.Size = 0, 1500
			topo.SendData(p)
		})
	}
	eng.Run()
	rate := 1 - float64(got)/n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("delay-hop empirical loss %.3f, want ~0.20", rate)
	}
	if pool.Size() == 0 {
		t.Fatal("lost packets were not recycled through the pool")
	}
}

// TestRouteSetLoss covers the runtime loss mutator (the varying-network
// knob for delay hops): loss switched on mid-run drops packets, and the
// mutators reject link hops.
func TestRouteSetLoss(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(5)
	topo := NewTopology(eng)
	pool := &PacketPool{}
	topo.UsePool(pool)
	topo.AddLink("l", "A", "B", NewDropTail(-1), Mbps(1000), 0, 0, nil)
	got := 0
	fwd, _ := topo.AddFlow(0,
		[]HopSpec{DelayHop(0.001), LinkHop("l")},
		[]HopSpec{DelayHop(0.001)},
		seeds,
		func(p *Packet) { got++; pool.Put(p) },
		nil)
	send := func() {
		p := pool.Get()
		p.Flow, p.Size = 0, 1500
		topo.SendData(p)
	}
	eng.At(0, send)
	eng.At(0.01, func() { fwd.SetLoss(0, 1) }) // certain loss from now on
	eng.At(0.02, send)
	eng.Run()
	if got != 1 {
		t.Fatalf("delivered %d packets, want 1 (second one eaten by SetLoss(0, 1))", got)
	}
	mustPanic(t, []string{"SetLoss", "link hop"}, func() { fwd.SetLoss(1, 0.5) })
	mustPanic(t, []string{"SetDelay", "link hop"}, func() { fwd.SetDelay(1, 0.5) })
}

// mustPanic asserts fn panics with a message containing every want string.
func mustPanic(t *testing.T, wants []string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", wants)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		for _, w := range wants {
			if !strings.Contains(msg, w) {
				t.Errorf("panic %q does not mention %q", msg, w)
			}
		}
	}()
	fn()
}

func TestTopologyRouteValidation(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	topo := NewTopology(eng)
	topo.AddLink("l1", "A", "B", NewDropTail(-1), Mbps(10), 0, 0, nil)
	topo.AddLink("l2", "B", "C", NewDropTail(-1), Mbps(10), 0, 0, nil)
	topo.AddLink("back", "B", "A", NewDropTail(-1), Mbps(10), 0, 0, nil)

	mustPanic(t, []string{"unknown link", "nope", "7"}, func() {
		topo.AddFlow(7, []HopSpec{LinkHop("nope")}, []HopSpec{DelayHop(0)}, seeds, nil, nil)
	})
	mustPanic(t, []string{"disconnected", "l1"}, func() {
		// l2 ends at C; l1 starts at A.
		topo.AddFlow(8, []HopSpec{LinkHop("l2"), LinkHop("l1")}, []HopSpec{DelayHop(0)}, seeds, nil, nil)
	})
	mustPanic(t, []string{"twice", "l1", "9"}, func() {
		// A loop A→B→A→B revisits l1 in the same direction.
		topo.AddFlow(9, []HopSpec{LinkHop("l1"), LinkHop("back"), LinkHop("l1")}, []HopSpec{DelayHop(0)}, seeds, nil, nil)
	})
	mustPanic(t, []string{"empty route", "10"}, func() {
		topo.AddFlow(10, nil, nil, seeds, nil, nil)
	})
	mustPanic(t, []string{"duplicate link", "l1"}, func() {
		topo.AddLink("l1", "A", "B", NewDropTail(-1), Mbps(10), 0, 0, nil)
	})

	topo.AddFlow(0, []HopSpec{LinkHop("l1"), LinkHop("l2")}, []HopSpec{DelayHop(0)}, seeds, nil, nil)
	mustPanic(t, []string{"duplicate flow", "0"}, func() {
		topo.AddFlow(0, []HopSpec{LinkHop("l1")}, []HopSpec{DelayHop(0)}, seeds, nil, nil)
	})
}

// TestDumbbellPanicsCarryFlowID pins the diagnostic quality of the
// unregistered-flow panics: the offending id must appear in the message
// (the seed implementation nil-dereffed in SetFlowDelays and panicked
// without the id in SendData/SendAck).
func TestDumbbellPanicsCarryFlowID(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	d := NewDumbbell(eng, NewDropTail(-1), Mbps(100), 0, seeds)
	d.AddFlow(0, SymmetricRTT(0.030), seeds, nil, nil)

	mustPanic(t, []string{"SendData", "41"}, func() { d.SendData(&Packet{Flow: 41}) })
	mustPanic(t, []string{"SendAck", "42"}, func() { d.SendAck(&Packet{Flow: 42, Ack: true}) })
	mustPanic(t, []string{"SetFlowDelays", "43"}, func() { d.SetFlowDelays(43, 0.01, 0.01) })
}
