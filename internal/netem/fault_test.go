package netem

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pcc/internal/sim"
)

// linkConserved checks the byte conservation identity directly on a Link:
// every byte offered is delivered, wire-lost, queue-dropped, fault-dropped,
// still queued, or on the wire head.
func linkConserved(l *Link) bool {
	return l.OfferedBytes() == l.DeliveredBytes()+l.WireLostBytes()+
		l.Queue.DroppedBytes()+l.FaultDroppedBytes()+int64(l.Queue.Bytes())+l.TxBytes()
}

// TestMaterializeFlapExpansion pins FlapSpec expansion without jitter: exact
// down/up cadence, termination at Until, and the down/up pairing that
// guarantees the link ends the schedule healed.
func TestMaterializeFlapExpansion(t *testing.T) {
	s := &FaultSchedule{Flaps: []FlapSpec{{Link: "x", FirstDownAt: 1, DownDur: 0.5, UpDur: 1.5, Until: 5}}}
	evs := s.Materialize(nil, nil)
	// Cycles start at t=1, 3, 5 — but 5 is not < Until, so two cycles.
	want := []FaultEvent{
		{At: 1, Kind: FaultLinkDown, Link: "x"},
		{At: 1.5, Kind: FaultLinkUp, Link: "x"},
		{At: 3, Kind: FaultLinkDown, Link: "x"},
		{At: 3.5, Kind: FaultLinkUp, Link: "x"},
	}
	if len(evs) != len(want) {
		t.Fatalf("materialized %d events, want %d: %+v", len(evs), len(want), evs)
	}
	downs := 0
	for i, ev := range want {
		if evs[i].At != ev.At || evs[i].Kind != ev.Kind || evs[i].Link != ev.Link {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], ev)
		}
		if evs[i].Kind == FaultLinkDown {
			downs++
		} else {
			downs--
		}
	}
	if downs != 0 {
		t.Fatal("unbalanced down/up events: link would end the schedule down")
	}
}

// TestMaterializeCountLimit pins the Count limit and the one-shot default.
func TestMaterializeCountLimit(t *testing.T) {
	s := &FaultSchedule{Flaps: []FlapSpec{{Link: "x", FirstDownAt: 0, DownDur: 1, UpDur: 1, Count: 3}}}
	if got := len(s.Materialize(nil, nil)); got != 6 {
		t.Fatalf("Count=3 produced %d events, want 6", got)
	}
	s = &FaultSchedule{Flaps: []FlapSpec{{Link: "x", FirstDownAt: 2, DownDur: 1, UpDur: 1}}}
	if got := len(s.Materialize(nil, nil)); got != 2 {
		t.Fatalf("limitless spec produced %d events, want exactly one cycle (2)", got)
	}
}

// TestMaterializeJitterDeterministic draws two expansions from identically
// seeded RNGs (must match bit-for-bit), one from a different seed (must
// differ), and checks every jittered phase stays within the ±Jitter band.
func TestMaterializeJitterDeterministic(t *testing.T) {
	s := &FaultSchedule{Flaps: []FlapSpec{{Link: "x", FirstDownAt: 1, DownDur: 0.4, UpDur: 0.6, Jitter: 0.3, Count: 20}}}
	a := s.Materialize(nil, rand.New(rand.NewSource(7)))
	b := s.Materialize(nil, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind || a[i].Link != b[i].Link {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := s.Materialize(nil, rand.New(rand.NewSource(8)))
	same := true
	for i := range a {
		if a[i].At != c[i].At {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered schedules")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].At < a[j].At }) {
		t.Fatalf("materialized events not time-sorted: %+v", a)
	}
	for i := 0; i+1 < len(a); i++ {
		gap := a[i+1].At - a[i].At
		base := 0.4 // down phase precedes an up event
		if a[i].Kind == FaultLinkUp {
			base = 0.6
		}
		if gap < base*0.7-1e-12 || gap > base*1.3+1e-12 {
			t.Fatalf("phase %d duration %v outside ±30%% of %v", i, gap, base)
		}
	}
}

// TestMaterializeMergesEventsAndFlaps checks explicit events and flap
// expansions sort into one timeline, appended to the caller's slice.
func TestMaterializeMergesEventsAndFlaps(t *testing.T) {
	s := &FaultSchedule{
		Events: []FaultEvent{{At: 2.5, Kind: FaultDegrade, Link: "y", RateBps: 100, Delay: -1, Loss: -1}},
		Flaps:  []FlapSpec{{Link: "x", FirstDownAt: 1, DownDur: 1, UpDur: 1, Count: 2}},
	}
	evs := s.Materialize(make([]FaultEvent, 0, 8), nil)
	wantAt := []float64{1, 2, 2.5, 3, 4}
	if len(evs) != len(wantAt) {
		t.Fatalf("got %d events, want %d", len(evs), len(wantAt))
	}
	for i, at := range wantAt {
		if evs[i].At != at {
			t.Fatalf("event %d at %v, want %v (merged timeline %+v)", i, evs[i].At, at, evs)
		}
	}
	if evs[2].Kind != FaultDegrade {
		t.Fatalf("degrade lost its slot in the merged timeline: %+v", evs)
	}
	if !(&FaultSchedule{}).Empty() || (s.Empty()) {
		t.Fatal("Empty() misreports")
	}
	var nilSched *FaultSchedule
	if !nilSched.Empty() {
		t.Fatal("nil schedule must be Empty")
	}
}

// TestSetDownDropsInFlight takes a link down while a packet train is in
// flight: the train must move from the delivered ledger to the fault ledger,
// queued packets must stay buffered, and conservation must hold at every
// transition.
func TestSetDownDropsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	// 1500 B at 1.5 MB/s = 1 ms serialization, 50 ms propagation: a deep
	// in-flight train.
	link := NewLink(eng, NewDropTail(-1), 1500*1000, 0.050, 0, seeds.NextRand())
	delivered := 0
	link.Sink = func(p *Packet) { delivered++ }
	eng.At(0, func() {
		for i := int64(0); i < 20; i++ {
			link.Send(pkt(0, i, 1500))
		}
	})
	// At t=10.5ms: ~10 packets fully serialized (in flight), one on the wire
	// head, the rest queued. None has arrived yet (propagation 50 ms).
	eng.At(0.0105, func() {
		if link.Down() {
			t.Error("link down before SetDown")
		}
		link.SetDown(true)
		if !link.Down() {
			t.Error("Down() false after SetDown(true)")
		}
		if link.FaultDropped() == 0 {
			t.Error("no in-flight packets moved to the fault ledger")
		}
		if !linkConserved(link) {
			t.Error("conservation broken immediately after SetDown(true)")
		}
	})
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets, want 0 (all destroyed or still queued)", delivered)
	}
	// The wire-head packet finished serialization while down: it must be in
	// the fault ledger too, never delivered.
	if got := link.FaultDropped(); got != 11 {
		t.Fatalf("fault ledger has %d packets, want 11 (10 in flight + wire head)", got)
	}
	if q := link.Queue.Len(); q != 9 {
		t.Fatalf("queue holds %d packets, want 9 (buffering continues while down)", q)
	}
	if !linkConserved(link) {
		t.Fatal("conservation broken at end of run")
	}
}

// TestSetDownUpResumes drops the link, keeps offering traffic (which must
// buffer), brings it back up, and checks the buffered packets all flow out.
func TestSetDownUpResumes(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	link := NewLink(eng, NewDropTail(-1), 1500*1000, 0.010, 0, seeds.NextRand())
	var arrivals []float64
	link.Sink = func(p *Packet) { arrivals = append(arrivals, eng.Now()) }
	eng.At(0, func() { link.SetDown(true) })
	eng.At(0.1, func() {
		for i := int64(0); i < 5; i++ {
			link.Send(pkt(0, i, 1500))
		}
	})
	eng.At(0.2, func() {
		if len(arrivals) != 0 {
			t.Errorf("%d deliveries while down", len(arrivals))
		}
		link.SetDown(false)
	})
	eng.Run()
	if len(arrivals) != 5 {
		t.Fatalf("delivered %d after link-up, want all 5 buffered packets", len(arrivals))
	}
	// First packet: serialization restarts at 0.2, 1 ms per packet + 10 ms
	// propagation.
	if want := 0.2 + 0.001 + 0.010; math.Abs(arrivals[0]-want) > 1e-9 {
		t.Fatalf("first post-heal arrival at %v, want %v", arrivals[0], want)
	}
	if link.FaultDropped() != 0 {
		t.Fatalf("fault ledger %d, want 0 (nothing was in flight at SetDown)", link.FaultDropped())
	}
	if !linkConserved(link) {
		t.Fatal("conservation broken")
	}
}

// TestSetDownIdempotent pins that redundant SetDown calls do not double-drop
// or double-start the serializer.
func TestSetDownIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	link := NewLink(eng, NewDropTail(-1), 1500*1000, 0.050, 0, seeds.NextRand())
	n := 0
	link.Sink = func(p *Packet) { n++ }
	eng.At(0, func() {
		for i := int64(0); i < 4; i++ {
			link.Send(pkt(0, i, 1500))
		}
	})
	eng.At(0.0025, func() {
		link.SetDown(true)
		first := link.FaultDropped()
		link.SetDown(true)
		if link.FaultDropped() != first {
			t.Error("second SetDown(true) dropped again")
		}
	})
	eng.At(0.01, func() { link.SetDown(false); link.SetDown(false) })
	eng.Run()
	if !linkConserved(link) {
		t.Fatal("conservation broken")
	}
	if n+int(link.FaultDropped()) != 4 {
		t.Fatalf("delivered %d + fault-dropped %d, want 4 total", n, link.FaultDropped())
	}
}

// TestVaryingDoesNotResurrectDownedLink composes the two variation layers on
// one dumbbell bottleneck: VaryingSpec keeps re-drawing rate/loss/RTT while
// a fault holds the link down. Parameter writes must not restart the
// serializer; after the fault heals, traffic resumes under whatever
// parameters the redraw last chose, and conservation holds throughout.
func TestVaryingDoesNotResurrectDownedLink(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(3)
	d := NewDumbbell(eng, NewDropTail(-1), Mbps(100), 0, seeds)
	deliveredAt := []float64{}
	d.AddFlow(0, SymmetricRTT(0.030), seeds,
		func(p *Packet) { deliveredAt = append(deliveredAt, eng.Now()) }, nil)
	spec := VaryingSpec{Period: 0.05, RateMin: Mbps(50), RateMax: Mbps(100), RTTMin: 0.01, RTTMax: 0.05, LossMin: 0, LossMax: 0}
	StartVarying(eng, d, 0, spec, seeds.NextRand(), 1)
	// Steady trickle of offered traffic for the whole second.
	for i := 0; i < 100; i++ {
		i := i
		eng.At(float64(i)*0.01, func() {
			d.SendData(&Packet{Flow: 0, Seq: int64(i), Size: 1500, Sent: eng.Now()})
		})
	}
	// Fault window [0.3, 0.6): several redraw periods land inside it.
	eng.At(0.3, func() { d.Bottleneck.SetDown(true) })
	eng.At(0.45, func() {
		if !d.Bottleneck.Down() {
			t.Error("varying redraw resurrected a downed link")
		}
		if !linkConserved(d.Bottleneck) {
			t.Error("conservation broken while down under varying redraws")
		}
	})
	eng.At(0.6, func() { d.Bottleneck.SetDown(false) })
	eng.Run()
	for _, at := range deliveredAt {
		if at >= 0.3 && at < 0.6 {
			t.Fatalf("delivery at %v inside the outage window", at)
		}
	}
	var after int
	for _, at := range deliveredAt {
		if at >= 0.6 {
			after++
		}
	}
	if after == 0 {
		t.Fatal("no deliveries after the link healed")
	}
	if !linkConserved(d.Bottleneck) {
		t.Fatal("conservation broken at end of run")
	}
}

// TestLinkResetWhileDown resets a link that is administratively down (the
// trial-arena respec path): the rebuilt link must come up clean — up, empty
// fault ledger, normal transmission.
func TestLinkResetWhileDown(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(5)
	link := NewLink(eng, NewDropTail(-1), 1500*1000, 0.050, 0, seeds.NextRand())
	link.Sink = func(p *Packet) {}
	eng.At(0, func() {
		for i := int64(0); i < 8; i++ {
			link.Send(pkt(0, i, 1500))
		}
	})
	eng.At(0.003, func() { link.SetDown(true) })
	eng.RunUntil(0.003)
	if !link.Down() || link.FaultDropped() == 0 {
		t.Fatalf("setup failed: down=%v faultDropped=%d", link.Down(), link.FaultDropped())
	}

	eng.Reset(nil)
	link.Queue = NewDropTail(-1)
	seeds2 := sim.NewSeeds(5)
	link.Reset(1500*1000, 0.010, 0, seeds2.Next())
	if link.Down() {
		t.Fatal("Reset left the link administratively down")
	}
	if link.FaultDropped() != 0 || link.FaultDroppedBytes() != 0 {
		t.Fatal("Reset did not clear the fault ledger")
	}
	delivered := 0
	link.Sink = func(p *Packet) { delivered++ }
	eng.At(0, func() { link.Send(pkt(0, 0, 1500)) })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("reset link delivered %d, want 1", delivered)
	}
	if !linkConserved(link) {
		t.Fatal("conservation broken after reset")
	}
}
