package netem

import (
	"math/rand"

	"pcc/internal/sim"
)

// VaryingSpec describes the rapidly-changing network of §4.1.7: every Period
// seconds, bandwidth, RTT and loss rate are each re-drawn independently and
// uniformly from their ranges.
type VaryingSpec struct {
	// Period between re-draws (paper: 5 s).
	Period float64
	// RateMin/RateMax bound the bottleneck rate, bytes/s (paper: 10–100 Mbps).
	RateMin, RateMax float64
	// RTTMin/RTTMax bound the path RTT, seconds (paper: 10–100 ms).
	RTTMin, RTTMax float64
	// LossMin/LossMax bound the wire loss probability (paper: 0–1%).
	LossMin, LossMax float64
}

// Sample holds one drawn network condition.
type Sample struct {
	At   float64
	Rate float64
	RTT  float64
	Loss float64
}

// StartVarying re-draws the dumbbell's bottleneck rate/loss and flow id's
// path delays every spec.Period seconds until stop, recording each drawn
// condition. The returned slice is appended to as the simulation runs; read
// it only after the engine finishes.
func StartVarying(eng *sim.Engine, d *Dumbbell, flowID int, spec VaryingSpec, rng *rand.Rand, stop float64) *[]Sample {
	trace := &[]Sample{}
	var redraw func()
	redraw = func() {
		now := eng.Now()
		if now >= stop {
			return
		}
		rate := spec.RateMin + rng.Float64()*(spec.RateMax-spec.RateMin)
		rtt := spec.RTTMin + rng.Float64()*(spec.RTTMax-spec.RTTMin)
		loss := spec.LossMin + rng.Float64()*(spec.LossMax-spec.LossMin)
		d.Bottleneck.Rate = rate
		d.Bottleneck.LossRate = loss
		d.SetFlowDelays(flowID, rtt/2, rtt/2)
		*trace = append(*trace, Sample{At: now, Rate: rate, RTT: rtt, Loss: loss})
		eng.After(spec.Period, redraw)
	}
	eng.After(0, redraw)
	return trace
}
