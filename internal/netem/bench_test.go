package netem_test

import (
	"testing"

	"pcc/internal/netem"
	"pcc/internal/sim"
)

// BenchmarkLinkForward measures the per-packet cost of the store-and-forward
// path (enqueue → serialize → deliver) with packet recycling through the
// engine-local free list. This is the inner loop under every experiment.
func BenchmarkLinkForward(b *testing.B) {
	eng := sim.NewEngine()
	pool := &netem.PacketPool{}
	l := netem.NewLink(eng, netem.NewDropTail(64*netem.KB), netem.Mbps(1000), 0.0001, 0, nil)
	l.Pool = pool
	delivered := 0
	l.Sink = func(p *netem.Packet) {
		delivered++
		pool.Put(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	var feed func()
	feed = func() {
		if sent >= b.N {
			return
		}
		p := pool.Get()
		p.Flow, p.Seq, p.Size = 0, int64(sent), 1500
		sent++
		l.Send(p)
		// Feed at exactly the serialization rate so the queue stays shallow.
		eng.Post(1500/netem.Mbps(1000), feed)
	}
	eng.Post(0, feed)
	eng.Run()
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}

// BenchmarkDeepBDP is the heap-depth stress the delay pipes exist for: a
// single flow pushed at line rate through a 1 Gbps link with a 500 ms
// propagation delay and an effectively unlimited buffer, so tens of
// thousands of packets are in flight at steady state. Before the per-link
// pipe each of them was a scheduler event (O(log BDP) per packet); with the
// pipe they share one self-rearming slot and per-packet work is O(1) and
// 0 allocs/op.
func BenchmarkDeepBDP(b *testing.B) {
	eng := sim.NewEngine()
	pool := &netem.PacketPool{}
	l := netem.NewLink(eng, netem.NewDropTail(-1), netem.Mbps(1000), 0.5, 0, nil)
	l.Pool = pool
	delivered := 0
	l.Sink = func(p *netem.Packet) {
		delivered++
		pool.Put(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	var feed func()
	feed = func() {
		if sent >= b.N {
			return
		}
		p := pool.Get()
		p.Flow, p.Seq, p.Size = 0, int64(sent), 1500
		sent++
		l.Send(p)
		// Feed at exactly the serialization rate: the 500 ms pipe holds
		// ~41k packets at steady state.
		eng.Post(1500/netem.Mbps(1000), feed)
	}
	eng.Post(0, feed)
	eng.Run()
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}

// BenchmarkTopologyForward3Hop measures the per-packet cost of a routed
// 3-hop path (access delay hop + three store-and-forward links) through a
// general Topology. The multi-hop fast path must stay 0 allocs/op: all
// route scheduling is closure-free and every delivery recycles through the
// engine-local free list.
func BenchmarkTopologyForward3Hop(b *testing.B) {
	eng := sim.NewEngine()
	pool := &netem.PacketPool{}
	topo := netem.NewTopology(eng)
	topo.UsePool(pool)
	nodes := []string{"A", "B", "C", "D"}
	for i := 0; i < 3; i++ {
		topo.AddLink(nodes[i]+nodes[i+1], nodes[i], nodes[i+1],
			netem.NewDropTail(64*netem.KB), netem.Mbps(1000), 0.0001, 0, nil)
	}
	delivered := 0
	topo.AddFlow(0,
		[]netem.HopSpec{netem.DelayHop(0.0001), netem.LinkHop("AB"), netem.LinkHop("BC"), netem.LinkHop("CD")},
		[]netem.HopSpec{netem.DelayHop(0.0001)},
		sim.NewSeeds(1),
		func(p *netem.Packet) {
			delivered++
			pool.Put(p)
		},
		nil)
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	var feed func()
	feed = func() {
		if sent >= b.N {
			return
		}
		p := pool.Get()
		p.Flow, p.Seq, p.Size = 0, int64(sent), 1500
		sent++
		topo.SendData(p)
		// Feed at exactly the serialization rate so queues stay shallow.
		eng.Post(1500/netem.Mbps(1000), feed)
	}
	eng.Post(0, feed)
	eng.Run()
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}
