package netem

import "math"

// Node→shard partitioning for the sharded conservative engine.
//
// The partitioner's contract with sim.ShardGroup is purely about delay:
// every edge whose endpoints land on different shards must have positive
// propagation delay, and the group's lookahead is the minimum such delay.
// Zero-delay edges (back-to-back links, mid-box hand-offs) therefore force
// their endpoints into one shard — a zero-delay cut would collapse the
// conservative window to nothing.
//
// Within that constraint the partitioner is deliberately simple: contract
// zero-delay edges with a union-find, then slice the resulting clusters
// into contiguous blocks in first-appearance order. Chain-shaped topologies
// (the widechain experiment, parking lots, WAN paths) appear in path order,
// so contiguous blocks are also locality-preserving cuts; fancier balancing
// can replace this without touching the protocol.

// Edge is one directed link for partitioning purposes: From and To are node
// names, Delay the propagation delay in seconds.
type Edge struct {
	From, To string
	Delay    float64
}

// PartitionNodes splits the nodes reachable from edges into at most
// maxShards shards. It returns the node→shard assignment, the shard count
// actually used, and the group lookahead (the minimum delay over cut edges;
// +Inf when no edge crosses shards). A nil map with count 1 means sharding
// is not worthwhile (maxShards < 2 or the zero-delay contraction leaves a
// single cluster).
func PartitionNodes(edges []Edge, maxShards int) (map[string]int, int, float64) {
	return PartitionNodesHinted(edges, maxShards, nil)
}

// PartitionNodesHinted is PartitionNodes with generator-produced locality
// hints: nodes sharing a hint value are contracted onto one cluster exactly
// like zero-delay neighborhoods, so a topology generator's structure (a
// fat-tree pod, a transit domain with its stubs, a LEO segment) survives
// into the shard layout and cut edges fall only on the wide-delay
// inter-group links. Nodes absent from hints keep their own cluster; a nil
// map is plain PartitionNodes. Fault pins (zero-delay edges) compose with
// hints — both are union-find contractions.
func PartitionNodesHinted(edges []Edge, maxShards int, hints map[string]int) (map[string]int, int, float64) {
	if maxShards < 2 {
		return nil, 1, 0
	}

	// Index nodes in first-appearance order so the layout is deterministic
	// and path-shaped inputs stay in path order.
	idx := make(map[string]int)
	var names []string
	id := func(name string) int {
		if i, ok := idx[name]; ok {
			return i
		}
		i := len(names)
		idx[name] = i
		names = append(names, name)
		return i
	}
	for _, e := range edges {
		id(e.From)
		id(e.To)
	}
	n := len(names)
	if n < 2 {
		return nil, 1, 0
	}

	// Union-find with union-by-min-index: the root of a set is always its
	// smallest member, so cluster numbering below stays in first-appearance
	// order without a second normalization pass.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		a, b := find(x), find(y)
		if a == b {
			return
		}
		if a < b {
			parent[b] = a
		} else {
			parent[a] = b
		}
	}
	for _, e := range edges {
		if e.Delay > 0 {
			continue
		}
		union(idx[e.From], idx[e.To])
	}
	if hints != nil {
		// Union each hint group onto its first-appearing member. Iterating
		// names (not the map) keeps the contraction order deterministic.
		hintRoot := make(map[int]int)
		for i, name := range names {
			h, ok := hints[name]
			if !ok {
				continue
			}
			if r, seen := hintRoot[h]; seen {
				union(i, r)
			} else {
				hintRoot[h] = i
			}
		}
	}

	// Number clusters by first appearance (a set's root has the smallest
	// index, so the root is always seen before its members).
	clusterOf := make([]int, n)
	nClusters := 0
	for i := 0; i < n; i++ {
		r := find(i)
		if r == i {
			clusterOf[i] = nClusters
			nClusters++
		} else {
			clusterOf[i] = clusterOf[r]
		}
	}
	if nClusters < 2 {
		return nil, 1, 0
	}

	shards := maxShards
	if nClusters < shards {
		shards = nClusters
	}

	// Contiguous cluster blocks: cluster c → shard c*shards/nClusters.
	// Every shard gets at least one cluster and block boundaries respect
	// the first-appearance (path) order.
	assign := make(map[string]int, n)
	for i, name := range names {
		assign[name] = clusterOf[i] * shards / nClusters
	}

	lookahead := math.Inf(1)
	for _, e := range edges {
		if assign[e.From] != assign[e.To] && e.Delay < lookahead {
			lookahead = e.Delay
		}
	}
	return assign, shards, lookahead
}
