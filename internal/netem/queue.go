package netem

// Queue is a router queue. Implementations decide drop policy at enqueue
// (drop-tail) and/or dequeue (CoDel) time. Queues are driven by a Link.
type Queue interface {
	// Enqueue offers p to the queue at time now. It reports whether the
	// packet was accepted; a false return means the packet was dropped.
	Enqueue(p *Packet, now float64) bool
	// Dequeue removes and returns the next packet to transmit, or nil if
	// the queue is empty (an AQM may drop internally and still return the
	// next surviving packet).
	Dequeue(now float64) *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int
	// Dropped returns the cumulative number of packets dropped by the queue.
	Dropped() int64
	// DroppedBytes returns the cumulative wire bytes of those drops, so
	// byte-level conservation can be checked per hop even when flows mix
	// packet sizes (a packet count alone cannot say how many bytes a
	// mixed-MTU queue shed).
	DroppedBytes() int64
}

// fifo is the common packet ring shared by queue implementations. The ring
// grows geometrically (always to a power of two, so indexing is a mask, not
// a division) and never shrinks; queues in these simulations reach a
// steady-state size quickly, so this avoids per-packet allocation.
type fifo struct {
	buf   []*Packet
	head  int
	count int
	bytes int
}

func (f *fifo) push(p *Packet) {
	if f.count == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.count)&(len(f.buf)-1)] = p
	f.count++
	f.bytes += p.Size
}

func (f *fifo) pop() *Packet {
	if f.count == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.count--
	f.bytes -= p.Size
	return p
}

func (f *fifo) peek() *Packet {
	if f.count == 0 {
		return nil
	}
	return f.buf[f.head]
}

// drain pops every queued packet into pool (discarding when pool is nil),
// leaving the ring storage in place for reuse.
func (f *fifo) drain(pool *PacketPool) {
	for {
		p := f.pop()
		if p == nil {
			return
		}
		pool.Put(p)
	}
}

func (f *fifo) grow() {
	n := len(f.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]*Packet, n)
	for i := 0; i < f.count; i++ {
		nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = nb
	f.head = 0
}

// DropTail is a FIFO queue with a byte capacity limit (and an optional packet
// limit). It models the shallow- and deep-buffered routers of §4.1.3–§4.1.6
// and, with a huge capacity, the "bufferbloat" configuration of §4.4.1.
type DropTail struct {
	fifo
	// CapBytes is the capacity in bytes. Zero means "one packet" is still
	// admitted when empty (a link needs at least one packet in flight to
	// make progress); negative means unlimited.
	CapBytes int
	// CapPackets optionally limits the number of packets; <=0 disables it.
	CapPackets int
	drops      int64
	dropBytes  int64
}

// NewDropTail returns a drop-tail queue holding at most capBytes bytes.
// capBytes < 0 means unlimited.
func NewDropTail(capBytes int) *DropTail {
	return &DropTail{CapBytes: capBytes}
}

// Reset re-specs the queue in place for a new simulation: queued packets
// drain into pool, drop counters zero, and the capacity is replaced, with
// the ring storage retained (so a warm queue re-spec allocates nothing).
func (q *DropTail) Reset(capBytes int, pool *PacketPool) {
	q.drain(pool)
	q.CapBytes = capBytes
	q.CapPackets = 0
	q.drops, q.dropBytes = 0, 0
}

// Enqueue implements Queue. A packet is accepted if the queue is empty (so a
// single-packet buffer is representable with a tiny CapBytes) or if it fits
// within the byte and packet caps.
func (q *DropTail) Enqueue(p *Packet, now float64) bool {
	if q.count > 0 {
		if q.CapBytes >= 0 && q.bytes+p.Size > q.CapBytes {
			q.drops++
			q.dropBytes += int64(p.Size)
			return false
		}
		if q.CapPackets > 0 && q.count+1 > q.CapPackets {
			q.drops++
			q.dropBytes += int64(p.Size)
			return false
		}
	}
	p.Enq = now
	q.push(p)
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue(now float64) *Packet { return q.pop() }

// Len implements Queue.
func (q *DropTail) Len() int { return q.count }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// Dropped implements Queue.
func (q *DropTail) Dropped() int64 { return q.drops }

// DroppedBytes implements Queue.
func (q *DropTail) DroppedBytes() int64 { return q.dropBytes }
