package netem

import (
	"testing"

	"pcc/internal/sim"
)

// TestByteConservationMixedSizes drives bursts of mixed-size packets
// (512/1400/9000 B) through a 3-hop route with a shallow first-hop buffer
// and wire loss on the interior hops, then checks the byte-granular ledger
// at every hop: offered bytes = delivered + wire-lost + queue-dropped +
// queued + serializing. Packet counts cannot certify this once sizes mix —
// one dropped jumbo weighs as much as seventeen mice.
func TestByteConservationMixedSizes(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(11)
	topo, _ := threeHopTopo(t, eng, seeds,
		[]int{15 * 1500, -1, -1}, []float64{0, 0.05, 0.01})
	sizes := []int{512, 1400, 9000}
	var offeredBytes int64
	for burst := 0; burst < 100; burst++ {
		at := float64(burst) * 0.005
		eng.At(at, func() {
			for i := 0; i < 50; i++ {
				size := sizes[i%len(sizes)]
				offeredBytes += int64(size)
				topo.SendData(&Packet{Flow: 0, Size: size})
			}
		})
	}
	eng.Run()

	want := offeredBytes
	for _, s := range topo.Stats() {
		if s.OfferedBytes != want {
			t.Errorf("link %s: offered %d bytes, want %d (previous hop's deliveries)",
				s.Name, s.OfferedBytes, want)
		}
		if !s.Conserved() {
			t.Errorf("link %s: byte ledger does not balance: offered=%d delivered=%d wire_lost=%d queue_dropped=%d queued=%d tx=%d",
				s.Name, s.OfferedBytes, s.DeliveredBytes, s.WireLostBytes,
				s.QueueDroppedBytes, s.QueuedBytes, s.TxBytes)
		}
		// The drained network holds nothing: bytes either made it out of
		// the hop or were dropped there.
		if s.QueuedBytes != 0 || s.TxBytes != 0 {
			t.Errorf("link %s: %d queued + %d serializing bytes after drain", s.Name, s.QueuedBytes, s.TxBytes)
		}
		want = s.DeliveredBytes
	}
	stats := topo.Stats()
	if stats[0].QueueDroppedBytes == 0 {
		t.Error("shallow first hop never dropped bytes: burst too gentle to exercise the ledger")
	}
	if stats[1].WireLostBytes == 0 {
		t.Error("lossy middle hop never recorded wire-lost bytes")
	}
}
