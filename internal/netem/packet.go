// Package netem implements the network substrate used by every experiment in
// this repository: packets, drop-tail and CoDel queues, fair queueing (DRR),
// rate/delay/loss links, and dumbbell topologies with optionally
// time-varying parameters.
//
// Conventions used throughout the repository:
//
//   - rates are bytes per second (float64),
//   - sizes are bytes (int),
//   - times are seconds (float64, from the sim engine clock).
//
// The packet type is deliberately flat and reused for data and ACKs; in the
// spirit of zero-copy packet processing there is no payload, only metadata —
// the simulations only need byte accounting, not byte contents.
package netem

// Packet is a simulated packet. Packets are heap-allocated by senders and
// recycled through a per-flow free list where that matters; they must not be
// retained by queues after delivery.
type Packet struct {
	// Flow identifies the sending flow; queues with per-flow state (FQ) and
	// receivers demultiplex on it.
	Flow int
	// Seq is the data sequence number (in packets, not bytes).
	Seq int64
	// Size is the wire size in bytes.
	Size int
	// Sent is the time the sender handed the packet to the network; echoed
	// in ACKs for RTT measurement.
	Sent float64
	// Enq is the time the packet entered the current queue; used by CoDel
	// for sojourn-time measurement. Owned by the queue between Enqueue and
	// Dequeue.
	Enq float64

	// Ack marks an acknowledgment travelling the reverse path.
	Ack bool
	// CumAck is the receiver's next expected sequence number (cumulative
	// acknowledgment), valid when Ack is set.
	CumAck int64
	// SackSeq is the sequence number of the specific data packet that
	// triggered this ACK (selective acknowledgment granularity).
	SackSeq int64
	// EchoSent is the Sent timestamp of the acknowledged data packet.
	EchoSent float64
	// Marked carries an optional congestion mark (used by tests probing AQM
	// behaviour; PCC itself needs no marks).
	Marked bool
}

// IsData reports whether p is a data packet.
func (p *Packet) IsData() bool { return !p.Ack }
