package netem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pcc/internal/sim"
)

func pkt(flow int, seq int64, size int) *Packet {
	return &Packet{Flow: flow, Seq: seq, Size: size}
}

func TestDropTailByteCap(t *testing.T) {
	q := NewDropTail(3000)
	if !q.Enqueue(pkt(0, 0, 1500), 0) || !q.Enqueue(pkt(0, 1, 1500), 0) {
		t.Fatal("packets within capacity rejected")
	}
	if q.Enqueue(pkt(0, 2, 1500), 0) {
		t.Fatal("packet beyond capacity accepted")
	}
	if q.Dropped() != 1 {
		t.Fatalf("drops = %d, want 1", q.Dropped())
	}
	if q.Bytes() != 3000 || q.Len() != 2 {
		t.Fatalf("bytes=%d len=%d", q.Bytes(), q.Len())
	}
}

func TestDropTailAdmitsWhenEmpty(t *testing.T) {
	// A one-byte buffer still admits a single packet so the link can make
	// progress (single-packet-buffer router, §4.1.6).
	q := NewDropTail(1)
	if !q.Enqueue(pkt(0, 0, 1500), 0) {
		t.Fatal("empty queue must admit one packet regardless of capacity")
	}
	if q.Enqueue(pkt(0, 1, 1500), 0) {
		t.Fatal("second packet must be rejected")
	}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(-1)
	for i := int64(0); i < 100; i++ {
		q.Enqueue(pkt(0, i, 100), 0)
	}
	for i := int64(0); i < 100; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d returned %+v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Fatal("empty queue returned a packet")
	}
}

// Property: enqueued = dequeued + dropped, and bytes never exceed capacity.
func TestDropTailConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewDropTail(10 * 1500)
		enq, deq, seq := 0, 0, int64(0)
		for _, op := range ops {
			if op%3 == 0 {
				if q.Dequeue(0) != nil {
					deq++
				}
			} else {
				if q.Enqueue(pkt(0, seq, 1500), 0) {
					enq++
				}
				seq++
			}
			if q.Bytes() > 10*1500 {
				return false
			}
		}
		return enq == deq+q.Len()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCoDelDropsOnStandingQueue(t *testing.T) {
	q := NewCoDel(-1)
	now := 0.0
	// Build a standing queue and dequeue slower than arrivals so sojourn
	// stays far above target for much longer than interval.
	for i := int64(0); i < 200; i++ {
		q.Enqueue(pkt(0, i, 1500), now)
	}
	drops := int64(0)
	for i := 0; i < 150; i++ {
		now += 0.02 // 20 ms per dequeue: sojourn grows way beyond 5 ms
		if q.Dequeue(now) == nil {
			break
		}
		drops = q.Dropped()
	}
	if drops == 0 {
		t.Fatal("CoDel never dropped despite a persistent standing queue")
	}
}

func TestCoDelNoDropsUnderTarget(t *testing.T) {
	q := NewCoDel(-1)
	now := 0.0
	for i := int64(0); i < 1000; i++ {
		q.Enqueue(pkt(0, i, 1500), now)
		now += 0.001
		if q.Dequeue(now) == nil {
			t.Fatal("lost a packet")
		}
	}
	if q.Dropped() != 0 {
		t.Fatalf("CoDel dropped %d packets with sojourn ~1 ms < target", q.Dropped())
	}
}

func TestFQFairAlternation(t *testing.T) {
	fq := NewFQ(1 << 20)
	for i := int64(0); i < 50; i++ {
		fq.Enqueue(pkt(0, i, 1500), 0)
		fq.Enqueue(pkt(1, i, 1500), 0)
	}
	counts := map[int]int{}
	for i := 0; i < 40; i++ {
		p := fq.Dequeue(0)
		counts[p.Flow]++
	}
	if counts[0] != 20 || counts[1] != 20 {
		t.Fatalf("DRR not fair over equal-size packets: %v", counts)
	}
}

func TestFQByteFairnessUnequalSizes(t *testing.T) {
	// Flow 0 sends 500 B packets, flow 1 sends 1500 B packets; DRR should
	// serve roughly equal BYTES, i.e. 3x as many small packets.
	fq := NewFQ(1 << 20)
	for i := int64(0); i < 300; i++ {
		fq.Enqueue(pkt(0, i, 500), 0)
		fq.Enqueue(pkt(1, i, 1500), 0)
	}
	bytes := map[int]int{}
	for i := 0; i < 200; i++ {
		p := fq.Dequeue(0)
		bytes[p.Flow] += p.Size
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("byte shares unfair: %v (ratio %.2f)", bytes, ratio)
	}
}

func TestFQIsolation(t *testing.T) {
	// A flooding flow must not be able to push out the quiet flow's packet.
	fq := NewFQ(10 * 1500)
	for i := int64(0); i < 100; i++ {
		fq.Enqueue(pkt(0, i, 1500), 0)
	}
	if !fq.Enqueue(pkt(1, 0, 1500), 0) {
		t.Fatal("quiet flow's packet rejected despite per-flow queueing")
	}
	// The quiet flow's packet must be served within the first few rounds.
	for i := 0; i < 3; i++ {
		if fq.Dequeue(0).Flow == 1 {
			return
		}
	}
	t.Fatal("quiet flow not served promptly")
}

func TestLinkSerializationTiming(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	link := NewLink(eng, NewDropTail(-1), 1500*100, 0.010, 0, seeds.NextRand())
	var arrivals []float64
	link.Sink = func(p *Packet) { arrivals = append(arrivals, eng.Now()) }
	eng.At(0, func() {
		link.Send(pkt(0, 0, 1500))
		link.Send(pkt(0, 1, 1500))
	})
	eng.Run()
	// Serialization 1500B at 150000 B/s = 10 ms, plus 10 ms propagation.
	want := []float64{0.020, 0.030}
	for i, w := range want {
		if diff := arrivals[i] - w; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("arrival %d at %v, want %v", i, arrivals[i], w)
		}
	}
}

func TestLinkRandomLossRate(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(7)
	link := NewLink(eng, NewDropTail(-1), 1500*1e6, 0, 0.1, seeds.NextRand())
	delivered := 0
	link.Sink = func(p *Packet) { delivered++ }
	const n = 20000
	eng.At(0, func() {
		for i := int64(0); i < n; i++ {
			link.Send(pkt(0, i, 1500))
		}
	})
	eng.Run()
	lossRate := 1 - float64(delivered)/n
	if lossRate < 0.08 || lossRate > 0.12 {
		t.Fatalf("empirical loss %.3f, want ~0.10", lossRate)
	}
}

func TestDumbbellRTT(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	d := NewDumbbell(eng, NewDropTail(-1), Mbps(100), 0, seeds)
	var rtt float64
	d.AddFlow(0, SymmetricRTT(0.030), seeds,
		func(p *Packet) {
			d.SendAck(&Packet{Flow: 0, Ack: true, Size: 40, EchoSent: p.Sent})
		},
		func(p *Packet) { rtt = eng.Now() - p.EchoSent })
	eng.At(0, func() {
		d.SendData(&Packet{Flow: 0, Seq: 0, Size: 1500, Sent: 0})
	})
	eng.Run()
	minRTT := 0.030 + 1500/Mbps(100)
	if rtt < minRTT-1e-9 || rtt > minRTT+0.001 {
		t.Fatalf("rtt = %v, want ~%v", rtt, minRTT)
	}
}

func TestVaryingRedraw(t *testing.T) {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(1)
	d := NewDumbbell(eng, NewDropTail(-1), Mbps(100), 0, seeds)
	d.AddFlow(0, SymmetricRTT(0.030), seeds, nil, nil)
	spec := VaryingSpec{Period: 1, RateMin: Mbps(10), RateMax: Mbps(100), RTTMin: 0.01, RTTMax: 0.1, LossMin: 0, LossMax: 0.01}
	trace := StartVarying(eng, d, 0, spec, seeds.NextRand(), 10)
	eng.RunUntil(10)
	if len(*trace) != 10 {
		t.Fatalf("got %d redraws, want 10", len(*trace))
	}
	for _, s := range *trace {
		if s.Rate < Mbps(10) || s.Rate > Mbps(100) || s.RTT < 0.01 || s.RTT > 0.1 || s.Loss < 0 || s.Loss > 0.01 {
			t.Fatalf("sample out of range: %+v", s)
		}
	}
}

func TestUnitsRoundTrip(t *testing.T) {
	if got := ToMbps(Mbps(42)); got != 42 {
		t.Fatalf("ToMbps(Mbps(42)) = %v", got)
	}
}
