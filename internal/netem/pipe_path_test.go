package netem

import (
	"testing"

	"pcc/internal/sim"
)

// The delay-pipe invariant under test in this file: a link's propagation
// pipe is purely a scheduling structure. It must not touch packets (queue
// timestamps included), must not change which packets an AQM drops, and
// must shift every delivery by exactly the propagation delay relative to a
// zero-delay link fed identically.

type pipeRun struct {
	seqs  []int64   // delivered sequence numbers, in order
	times []float64 // delivery times
	enqs  []float64 // Enq timestamps observed at the sink
	drops int64
}

// runOverloadedLink feeds an open-loop 2x-overload schedule (with an initial
// burst so sojourn climbs) into a link built around q, and records what the
// sink sees.
func runOverloadedLink(q Queue, delay float64, flows int) pipeRun {
	eng := sim.NewEngine()
	pool := &PacketPool{}
	l := NewLink(eng, q, Mbps(10), delay, 0, nil)
	l.Pool = pool
	queueUsePool(q, pool)
	var out pipeRun
	l.Sink = func(p *Packet) {
		out.seqs = append(out.seqs, p.Seq)
		out.times = append(out.times, eng.Now())
		out.enqs = append(out.enqs, p.Enq)
		pool.Put(p)
	}
	interval := 1500 / Mbps(10) / 2 // 2x the drain rate
	seq := int64(0)
	send := func(flow int) {
		p := pool.Get()
		p.Flow, p.Seq, p.Size = flow, seq, 1500
		seq++
		l.Send(p)
	}
	// Initial burst to push sojourn past CoDel's target quickly.
	eng.At(0, func() {
		for i := 0; i < 40; i++ {
			send(i % flows)
		}
	})
	for i := 0; i < 1500; i++ {
		i := i
		eng.At(0.001+float64(i)*interval, func() { send(i % flows) })
	}
	eng.RunUntil(5)
	out.drops = q.Dropped()
	return out
}

// checkShifted asserts run d is run zero shifted by exactly delay: same
// survivors in the same order, every delivery exactly delay later, and the
// queue-entry timestamps (CoDel's sojourn basis) untouched by the pipe.
func checkShifted(t *testing.T, zero, d pipeRun, delay float64) {
	t.Helper()
	if d.drops == 0 {
		t.Fatal("overload produced no AQM/queue drops; test is not exercising the drop path")
	}
	if d.drops != zero.drops {
		t.Fatalf("drop count changed with delay: %d vs %d — the pipe leaked into queue behaviour", d.drops, zero.drops)
	}
	if len(d.seqs) != len(zero.seqs) {
		t.Fatalf("delivered %d packets with delay, %d without", len(d.seqs), len(zero.seqs))
	}
	for i := range d.seqs {
		if d.seqs[i] != zero.seqs[i] {
			t.Fatalf("survivor set diverged at %d: seq %d vs %d", i, d.seqs[i], zero.seqs[i])
		}
		if want := zero.times[i] + delay; d.times[i] != want {
			t.Fatalf("delivery %d at %v, want exactly %v (+%v)", i, d.times[i], want, delay)
		}
		if d.enqs[i] != zero.enqs[i] {
			t.Fatalf("packet %d Enq changed: %v vs %v — the pipe must not touch queue timestamps", i, d.enqs[i], zero.enqs[i])
		}
	}
}

// TestCoDelThroughDelayPipe drives CoDel's sojourn-based control law through
// the per-link delay pipe. The control law reads Packet.Enq at dequeue; a
// correct pipe changes nothing but the delivery instant.
func TestCoDelThroughDelayPipe(t *testing.T) {
	t.Parallel()
	const delay = 0.080
	zero := runOverloadedLink(NewCoDel(-1), 0, 1)
	d := runOverloadedLink(NewCoDel(-1), delay, 1)
	checkShifted(t, zero, d, delay)
}

// TestCoDelSojournThroughPipe additionally pins the sojourn arithmetic:
// every delivered packet left the queue after a sojourn of (delivery time −
// delay − Enq) ≥ 0, and once the control law is dropping, observed sojourns
// must have exceeded CoDel's target at some point.
func TestCoDelSojournThroughPipe(t *testing.T) {
	t.Parallel()
	const delay = 0.080
	q := NewCoDel(-1)
	d := runOverloadedLink(q, delay, 1)
	maxSojourn := 0.0
	for i := range d.seqs {
		sojournPlusTx := d.times[i] - delay - d.enqs[i]
		if sojournPlusTx < 0 {
			t.Fatalf("packet %d: negative queue residence %v — Enq was rewritten downstream", d.seqs[i], sojournPlusTx)
		}
		if sojournPlusTx > maxSojourn {
			maxSojourn = sojournPlusTx
		}
	}
	if maxSojourn <= q.Target {
		t.Fatalf("max sojourn %v never exceeded CoDel target %v despite 2x overload", maxSojourn, q.Target)
	}
}

// TestFQCoDelThroughDelayPipe runs the fq_codel composition (DRR scheduler,
// CoDel child per flow) through the delay pipe with three competing flows.
func TestFQCoDelThroughDelayPipe(t *testing.T) {
	t.Parallel()
	const delay = 0.050
	zero := runOverloadedLink(NewFQCoDel(64*KB), 0, 3)
	d := runOverloadedLink(NewFQCoDel(64*KB), delay, 3)
	checkShifted(t, zero, d, delay)
}

// TestFQDropTailThroughDelayPipe covers plain per-flow fair queueing (drop
// tail children) through the pipe, including enqueue-time drops.
func TestFQDropTailThroughDelayPipe(t *testing.T) {
	t.Parallel()
	const delay = 0.025
	zero := runOverloadedLink(NewFQ(8*KB), 0, 3)
	d := runOverloadedLink(NewFQ(8*KB), delay, 3)
	checkShifted(t, zero, d, delay)
}
