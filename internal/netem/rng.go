package netem

import (
	"math/rand"

	"pcc/internal/sim"
)

// Rng is a lazily materialized deterministic random stream for loss
// processes. Seeding a math/rand generator fills a 607-word feedback
// register — by far the most expensive part of setting up a link or flow —
// yet most links and routes in the experiment suite never draw from their
// stream (their loss probability is zero). Rng therefore records only the
// seed at construction time and builds the generator on first draw: the
// seed-derivation chain (sim.Seeds) advances identically whether or not the
// stream is ever used, and the draw sequence once materialized is identical
// to an eagerly constructed generator, so recorded experiment outputs are
// unchanged.
//
// The zero Rng is "no stream": Valid reports false and loss processes stay
// disabled, mirroring the old nil-*rand.Rand convention.
type Rng struct {
	seed int64
	r    *rand.Rand
	ok   bool
	// stale marks a materialized generator whose seed changed (Reseed on a
	// stream that already drew); it is re-seeded in place on the next draw,
	// so reuse never reallocates the 607-word register.
	stale bool
}

// SeededRng returns a stream that will materialize rand.New(rand.NewSource
// (seed)) on first draw.
func SeededRng(seed int64) Rng { return Rng{seed: seed, ok: true} }

// WrapRng adopts an existing generator (nil yields the invalid zero Rng).
func WrapRng(r *rand.Rand) Rng {
	if r == nil {
		return Rng{}
	}
	return Rng{r: r, ok: true}
}

// Valid reports whether the stream exists; an invalid stream must not be
// drawn from.
func (g *Rng) Valid() bool { return g.ok }

// Reseed rewinds the stream to a new seed in place, keeping any generator
// already materialized (it is lazily re-seeded on the next draw, which
// yields the identical sequence to a fresh rand.New(rand.NewSource(seed))).
// It is the arena-reuse counterpart of SeededRng.
func (g *Rng) Reseed(seed int64) {
	g.seed = seed
	g.ok = true
	g.stale = g.r != nil
}

// Float64 draws from the stream, materializing the generator on first use.
func (g *Rng) Float64() float64 {
	if g.r == nil {
		// The cached source makes later re-seeds of this stream a state
		// copy; the stream itself is bit-identical to rand.NewSource's.
		g.r = rand.New(sim.NewCachedSource(g.seed))
	} else if g.stale {
		g.r.Seed(g.seed)
		g.stale = false
	}
	return g.r.Float64()
}
