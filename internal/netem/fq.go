package netem

// FQ implements per-flow fair queueing with a Deficit Round Robin scheduler
// (Shreedhar & Varghese, SIGCOMM '95). Each flow gets its own child queue —
// either a plain drop-tail FIFO ("bufferbloat" when the cap is huge) or a
// CoDel instance (the fq_codel configuration) — and the scheduler serves
// active flows in round-robin order with a byte deficit counter, giving
// long-term per-flow throughput fairness regardless of how aggressive each
// flow's congestion controller is.
//
// FQ is the isolation substrate assumed by §2.4/§4.4 for heterogeneous
// utility functions.
type FQ struct {
	// NewChild constructs the per-flow child queue; defaults to a drop-tail
	// queue of PerFlowBytes.
	NewChild func() Queue
	// Quantum is the DRR quantum in bytes (default 1500: one MSS per round).
	Quantum int
	// PerFlowBytes caps each default child queue (ignored when NewChild is
	// set). Negative = unlimited.
	PerFlowBytes int
	// Pool is propagated to child queues (created lazily per flow) so their
	// dequeue-time AQM drops recycle packets.
	Pool *PacketPool

	// flows is indexed by flow id (small non-negative integers; see
	// Topology.flows), with nil holes for ids never seen.
	flows  []*fqFlow
	active []*fqFlow // round-robin list of flows with queued packets
	next   int       // scheduler position in active
	bytes  int
	count  int
}

type fqFlow struct {
	id      int
	q       Queue
	deficit int
	active  bool
}

// NewFQ returns a fair queue whose per-flow child queues hold at most
// perFlowBytes bytes each (negative = unlimited).
func NewFQ(perFlowBytes int) *FQ {
	return &FQ{Quantum: 1500, PerFlowBytes: perFlowBytes}
}

// NewFQCoDel returns fair queueing with a CoDel child per flow (fq_codel).
func NewFQCoDel(perFlowBytes int) *FQ {
	fq := NewFQ(perFlowBytes)
	fq.NewChild = func() Queue { return NewCoDel(perFlowBytes) }
	return fq
}

func (f *FQ) flow(id int) *fqFlow {
	if id < 0 {
		panic("netem: FQ flow ids must be non-negative")
	}
	if id < len(f.flows) && f.flows[id] != nil {
		return f.flows[id]
	}
	var child Queue
	if f.NewChild != nil {
		child = f.NewChild()
	} else {
		child = NewDropTail(f.PerFlowBytes)
	}
	queueUsePool(child, f.Pool)
	fl := &fqFlow{id: id, q: child}
	f.flows = growPut(f.flows, id, fl)
	return fl
}

// Reset re-specs the fair queue in place for a new simulation: every child
// queue drains into the pool and is re-specced with the new per-flow
// capacity (drop-tail and CoDel children are handled directly; children of
// other types are discarded and rebuilt lazily), the DRR scheduler state
// clears, and the quantum returns to its default. Callers using a custom
// NewChild must refresh that closure themselves if it captured the old
// capacity.
func (f *FQ) Reset(perFlowBytes int) {
	f.Quantum = 1500
	f.PerFlowBytes = perFlowBytes
	for i, fl := range f.flows {
		if fl == nil {
			continue
		}
		switch q := fl.q.(type) {
		case *DropTail:
			q.Reset(perFlowBytes, f.Pool)
		case *CoDel:
			q.Reset(perFlowBytes)
		default:
			for {
				p := fl.q.Dequeue(0)
				if p == nil {
					break
				}
				f.Pool.Put(p)
			}
			f.flows[i] = nil
			continue
		}
		fl.active = false
		fl.deficit = 0
	}
	f.active = f.active[:0]
	f.next = 0
	f.bytes, f.count = 0, 0
}

// Enqueue implements Queue.
func (f *FQ) Enqueue(p *Packet, now float64) bool {
	fl := f.flow(p.Flow)
	if !fl.q.Enqueue(p, now) {
		// The child queue counted the drop; Dropped() aggregates children.
		return false
	}
	f.bytes += p.Size
	f.count++
	if !fl.active {
		fl.active = true
		fl.deficit = 0
		f.active = append(f.active, fl)
	}
	return true
}

// Dequeue implements Queue, serving active flows by deficit round robin.
func (f *FQ) Dequeue(now float64) *Packet {
	for len(f.active) > 0 {
		if f.next >= len(f.active) {
			f.next = 0
		}
		fl := f.active[f.next]
		if fl.q.Len() == 0 {
			// Child drained (possibly via internal AQM drops): deactivate.
			f.deactivate(f.next)
			continue
		}
		head := f.peekChild(fl)
		if head == nil {
			f.deactivate(f.next)
			continue
		}
		if fl.deficit < head.Size {
			fl.deficit += f.Quantum
			f.next++
			continue
		}
		before := fl.q.Bytes()
		beforeLen := fl.q.Len()
		p := fl.q.Dequeue(now)
		// Account for packets the child's AQM dropped internally plus the
		// packet actually handed to us.
		f.bytes -= before - fl.q.Bytes()
		f.count -= beforeLen - fl.q.Len()
		if p == nil {
			f.deactivate(f.next)
			continue
		}
		fl.deficit -= p.Size
		if fl.q.Len() == 0 {
			f.deactivate(f.next)
		}
		return p
	}
	return nil
}

// peekChild returns the size-bearing head packet of a child queue. Child
// queues are our own implementations, so we can type-switch to peek without
// extending the Queue interface.
func (f *FQ) peekChild(fl *fqFlow) *Packet {
	switch q := fl.q.(type) {
	case *DropTail:
		return q.peek()
	case *CoDel:
		return q.q.peek()
	default:
		// Unknown child type: fall back to a conservative fixed-size
		// assumption so DRR still makes progress.
		return &Packet{Size: f.Quantum}
	}
}

func (f *FQ) deactivate(i int) {
	fl := f.active[i]
	fl.active = false
	f.active = append(f.active[:i], f.active[i+1:]...)
	if f.next > i {
		f.next--
	}
}

// Len implements Queue.
func (f *FQ) Len() int { return f.count }

// Bytes implements Queue.
func (f *FQ) Bytes() int { return f.bytes }

// Dropped implements Queue, summing scheduler-level and child-level drops.
func (f *FQ) Dropped() int64 {
	var n int64
	for _, fl := range f.flows {
		if fl != nil {
			n += fl.q.Dropped()
		}
	}
	return n
}

// DroppedBytes implements Queue, summing over the per-flow child queues.
func (f *FQ) DroppedBytes() int64 {
	var n int64
	for _, fl := range f.flows {
		if fl != nil {
			n += fl.q.DroppedBytes()
		}
	}
	return n
}
