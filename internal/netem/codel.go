package netem

import "math"

// CoDel implements the Controlled Delay AQM (Nichols & Jacobson, ACM Queue
// 2012), the algorithm behind the Linux codel qdisc referenced in §4.4.1.
//
// CoDel measures each packet's sojourn time at dequeue. When sojourn stays
// above Target for at least Interval, CoDel enters a dropping state and
// drops packets at increasing frequency (the control law spaces drops by
// Interval/sqrt(count)) until sojourn falls below Target.
type CoDel struct {
	q fifo
	// Target is the acceptable standing queue delay (default 5 ms).
	Target float64
	// Interval is the sliding-window width (default 100 ms).
	Interval float64
	// CapBytes bounds the physical queue (CoDel still needs a hard limit);
	// negative means unlimited.
	CapBytes int
	// Pool, when set, recycles packets dropped at dequeue time by the
	// control law (enqueue-time rejections are recycled by the Link).
	Pool *PacketPool

	drops      int64
	dropBytes  int64
	dropping   bool
	firstAbove float64 // time at which dropping may begin; 0 = sojourn not above target
	dropNext   float64 // time of next scheduled drop while dropping
	dropCount  int     // drops since entering dropping state
}

// NewCoDel returns a CoDel queue with the standard 5 ms / 100 ms parameters
// and the given physical byte capacity (negative = unlimited).
func NewCoDel(capBytes int) *CoDel {
	return &CoDel{Target: 0.005, Interval: 0.100, CapBytes: capBytes}
}

// Reset re-specs the queue in place for a new simulation: queued packets
// drain into the pool, the control law returns to its initial state, and
// the standard parameters are restored with a new physical capacity.
func (c *CoDel) Reset(capBytes int) {
	c.q.drain(c.Pool)
	c.Target, c.Interval = 0.005, 0.100
	c.CapBytes = capBytes
	c.drops, c.dropBytes = 0, 0
	c.dropping = false
	c.firstAbove, c.dropNext = 0, 0
	c.dropCount = 0
}

// Enqueue implements Queue.
func (c *CoDel) Enqueue(p *Packet, now float64) bool {
	if c.q.count > 0 && c.CapBytes >= 0 && c.q.bytes+p.Size > c.CapBytes {
		c.drops++
		c.dropBytes += int64(p.Size)
		return false
	}
	p.Enq = now
	c.q.push(p)
	return true
}

// shouldDrop applies the sojourn-time test to packet p at time now.
func (c *CoDel) shouldDrop(p *Packet, now float64) bool {
	sojourn := now - p.Enq
	if sojourn < c.Target || c.q.bytes < 2*1500 {
		// Below target (or queue nearly empty): leave the
		// dropping-eligibility window.
		c.firstAbove = 0
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.Interval
		return false
	}
	return now >= c.firstAbove
}

// Dequeue implements Queue. It may drop packets internally and returns the
// first surviving packet (or nil).
func (c *CoDel) Dequeue(now float64) *Packet {
	p := c.q.pop()
	if p == nil {
		c.dropping = false
		return nil
	}
	if c.dropping {
		if !c.shouldDrop(p, now) {
			c.dropping = false
			return p
		}
		for now >= c.dropNext && c.dropping {
			c.drops++
			c.dropBytes += int64(p.Size)
			c.dropCount++
			c.Pool.Put(p)
			p = c.q.pop()
			if p == nil {
				c.dropping = false
				return nil
			}
			if !c.shouldDrop(p, now) {
				c.dropping = false
				return p
			}
			c.dropNext += c.Interval / math.Sqrt(float64(c.dropCount))
		}
		return p
	}
	if c.shouldDrop(p, now) {
		// Enter dropping state: drop this packet and arm the control law.
		c.drops++
		c.dropBytes += int64(p.Size)
		c.Pool.Put(p)
		p2 := c.q.pop()
		c.dropping = true
		// Resume from the previous drop frequency if we re-enter quickly
		// (the "count decay" refinement from the reference pseudocode).
		if c.dropCount > 2 && now-c.dropNext < 8*c.Interval {
			c.dropCount -= 2
		} else {
			c.dropCount = 1
		}
		c.dropNext = now + c.Interval/math.Sqrt(float64(c.dropCount))
		return p2
	}
	return p
}

// Len implements Queue.
func (c *CoDel) Len() int { return c.q.count }

// Bytes implements Queue.
func (c *CoDel) Bytes() int { return c.q.bytes }

// Dropped implements Queue.
func (c *CoDel) Dropped() int64 { return c.drops }

// DroppedBytes implements Queue.
func (c *CoDel) DroppedBytes() int64 { return c.dropBytes }
