package netem

import (
	"fmt"
	"math/rand"

	"pcc/internal/sim"
)

// Topology is a general network graph: named nodes joined by directed Links,
// with every flow assigned an explicit forward and reverse route (an ordered
// chain of hops). It generalizes the dumbbell every paper experiment runs
// on — multiple bottlenecks in series (parking lot), congested ACK paths
// (data and ACKs of opposing flows sharing a link), and cross-traffic that
// touches only a subset of hops — while keeping the simulator's invariants:
// all per-packet scheduling is closure-free and batched (each delay stage is
// a sim.Pipe allocated once at registration), every drop point recycles
// through the topology's PacketPool, and for a fixed seed the event sequence
// is bit-reproducible.
//
// A route hop is either
//
//   - a link hop: the packet is offered to a shared store-and-forward Link
//     (queueing + serialization + propagation + wire loss), or
//   - a delay hop: a pure propagation delay with optional Bernoulli loss and
//     no queueing — the per-flow access segments of the dumbbell.
//
// Each Link keeps its own Delivered/WireLost counters and its queue counts
// drops, so per-hop accounting holds at every link of a route:
// packets offered = delivered + wire-lost + queue-dropped.
type Topology struct {
	Eng *sim.Engine
	// Pool, when set via UsePool, recycles every packet the topology drops:
	// queue rejections, AQM drops, wire loss, and delay-hop loss. It must
	// belong to the same engine/goroutine as the topology.
	Pool *PacketPool

	links   []*linkInfo
	linkIdx map[string]int
	// Node names are interned to dense integer ids at first sight (AddLink
	// endpoint order): per-node state lives in slices indexed by that id,
	// so construction and respec at generated-topology scale (hundreds of
	// nodes, thousands of links) do integer indexing on the hot paths while
	// the public API stays string-keyed.
	nodeIdx    map[string]int
	nodeNames  []string
	nodeShards []int
	// flows is indexed by flow id. Flow ids are required to be small
	// non-negative integers (the harness hands out 0,1,2,…) precisely so
	// the per-packet route lookups here and in linkInfo are direct slice
	// indexing, not map probes.
	flows []*topoFlow

	// Sharded mode (see Shard): nodes are partitioned across the engines of
	// a sim.ShardGroup, every link and hop lives on its node's engine, and
	// packets cross shard boundaries only through the group's conservative
	// mailbox — always under a propagation delay >= lookahead. nil group
	// means the classic single-engine topology; all sharded fields are then
	// unused and every shard index resolves to 0.
	group *sim.ShardGroup
	// shardAssign is the node→shard plan handed to Shard, consulted once
	// per node when the name is interned (absent names mean shard 0).
	shardAssign map[string]int
	pools       []*PacketPool // per-shard free lists, indexed by shard
	lookahead   float64
}

// Shard switches the topology to sharded mode: node name → shard index per
// nodeShard (missing names mean shard 0), one engine and one packet pool per
// shard. It must be called before any AddLink/AddFlow — links and routes are
// pinned to engines at registration — and replaces UsePool (the per-shard
// pools cover every drop point). The topology's Eng/Pool become shard 0's.
func (t *Topology) Shard(group *sim.ShardGroup, nodeShard map[string]int, pools []*PacketPool) {
	if len(t.links) > 0 || len(t.flows) > 0 {
		panic("netem: Shard must be called before AddLink/AddFlow")
	}
	if group.Len() != len(pools) {
		panic(fmt.Sprintf("netem: %d shards but %d pools", group.Len(), len(pools)))
	}
	t.group = group
	t.shardAssign = nodeShard
	t.pools = pools
	t.lookahead = group.Lookahead()
	t.Eng = group.Engine(0)
	t.Pool = pools[0]
}

// nodeID interns a node name, assigning its dense id and shard on first
// sight.
func (t *Topology) nodeID(name string) int {
	if i, ok := t.nodeIdx[name]; ok {
		return i
	}
	i := len(t.nodeNames)
	t.nodeIdx[name] = i
	t.nodeNames = append(t.nodeNames, name)
	shard := 0
	if t.shardAssign != nil {
		shard = t.shardAssign[name]
	}
	t.nodeShards = append(t.nodeShards, shard)
	return i
}

// NodeShard returns the shard a node lives on (0 when unsharded or unknown).
func (t *Topology) NodeShard(node string) int {
	if i, ok := t.nodeIdx[node]; ok {
		return t.nodeShards[i]
	}
	if t.shardAssign == nil {
		return 0
	}
	return t.shardAssign[node]
}

// engineFor returns the engine of a shard (the topology engine when
// unsharded).
func (t *Topology) engineFor(shard int) *sim.Engine {
	if t.group == nil {
		return t.Eng
	}
	return t.group.Engine(shard)
}

// poolShard returns shard's free list, or nil when unsharded — callers then
// fall back to the dynamic t.Pool so UsePool can still be wired up after
// routes exist.
func (t *Topology) poolShard(shard int) *PacketPool {
	if t.pools == nil {
		return nil
	}
	return t.pools[shard]
}

// recycle returns a packet to the free list of the shard it currently
// belongs to.
func (t *Topology) recycle(shard int, p *Packet) {
	if t.pools != nil {
		t.pools[shard].Put(p)
		return
	}
	t.Pool.Put(p)
}

// RouteEnds reports which shards a route starts and ends on: the from-shard
// of its first link hop and the to-shard of its last link hop. Routes with
// no link hops are (0, 0). The harness uses this to place each flow's sender
// and receiver on the engines their packets are injected at and delivered
// to.
func (t *Topology) RouteEnds(specs []HopSpec) (entry, exit int) {
	first, last := "", ""
	for i := range specs {
		if specs[i].Link == "" {
			continue
		}
		if first == "" {
			first = specs[i].Link
		}
		last = specs[i].Link
	}
	if first == "" {
		return 0, 0
	}
	// Two name probes total, not one per hop — RouteEnds runs once per
	// flow per trial, which at generated-topology scale is thousands of
	// routes with hundreds of hops between them.
	fi := t.linkAt(first)
	if fi == nil {
		panic(fmt.Sprintf("netem: RouteEnds over unknown link %q", first))
	}
	li := fi
	if last != first {
		if li = t.linkAt(last); li == nil {
			panic(fmt.Sprintf("netem: RouteEnds over unknown link %q", last))
		}
	}
	return fi.shard, li.sinkShard
}

// linkInfo is a Link plus its place in the graph and the per-flow routing
// tables consulted when a packet exits the link.
type linkInfo struct {
	link     *Link
	name     string
	from, to string
	// fromID/toID are the interned endpoint ids (see Topology.nodeID).
	fromID, toID int
	// shard/sinkShard are the link's endpoint shards (both 0 unsharded):
	// the link object lives on shard's engine; dispatch runs on sinkShard's
	// (via the group mailbox when they differ).
	shard     int
	sinkShard int
	// data/ack index a flow id to the route hop that traverses this link,
	// so the link's exit can continue the packet along its route. A nil
	// entry means the flow does not route over this link in that direction.
	data []*hop
	ack  []*hop
}

// hopAt returns s[id], tolerating ids beyond the table.
func hopAt(s []*hop, id int) *hop {
	if id < len(s) {
		return s[id]
	}
	return nil
}

// growPut grows a flow-indexed table to cover id and stores v there. Shared
// by the per-link route tables, the topology flow table, and FQ's per-flow
// queue table.
func growPut[T any](s []T, id int, v T) []T {
	for len(s) <= id {
		var zero T
		s = append(s, zero)
	}
	s[id] = v
	return s
}

// dispatch is the link's Sink: it looks up the exiting packet's route hop
// and forwards along the route. Packets of unrouted flows are recycled.
func (li *linkInfo) dispatch(t *Topology, p *Packet) {
	m := li.data
	if p.Ack {
		m = li.ack
	}
	if h := hopAt(m, p.Flow); h != nil {
		h.forward(p)
		return
	}
	t.recycle(li.sinkShard, p)
}

// topoFlow is one registered flow: its two routes plus the single lossy-hop
// RNG stream both routes share (kept here so RespecFlow can rewind it in
// place instead of allocating a new stream per trial).
type topoFlow struct {
	fwd, rev *Route
	rng      *Rng
}

// hop is one step of one flow's route in one direction. Exactly one of link
// and the delay/loss fields is meaningful.
type hop struct {
	t    *Topology
	link *linkInfo // link hop when non-nil

	delay float64 // delay hop: one-way propagation, seconds (mutable)
	loss  float64 // delay hop: Bernoulli loss probability (mutable)
	rng   *Rng

	// eng/shard pin the hop to the engine it executes on (enter runs
	// there). xdst >= 0 marks a cross-shard delay hop: delivery goes
	// through the group mailbox to shard xdst instead of a local pipe.
	// pool/dstPool are the home- and delivery-shard free lists; nil means
	// fall back to the dynamic t.Pool (unsharded mode).
	eng     *sim.Engine
	shard   int
	xdst    int
	pool    *PacketPool
	dstPool *PacketPool

	next *hop          // nil ⇒ this is the last hop
	sink func(*Packet) // terminal delivery, set on the last hop only
	// deliverFn is the delay hop's delivery callback, shared by the pipe
	// and the zero-delay direct path.
	deliverFn func(any)
	// pipe is a delay hop's propagation delay line (see sim.Pipe): the
	// hop's whole in-flight train shares one self-rearming scheduler slot,
	// so an 800 ms satellite access segment holds one slot, not one heap
	// event per packet. If SetDelay shrinks the delay mid-flight, the pipe
	// transparently falls back to per-event scheduling for the overtaking
	// packets, preserving the exact delivery order of the per-event path.
	pipe *sim.Pipe
}

// enter offers a packet to this hop.
func (h *hop) enter(p *Packet) {
	if h.link != nil {
		h.link.link.Send(p)
		return
	}
	if h.loss > 0 && h.rng.Valid() && h.rng.Float64() < h.loss {
		if h.pool != nil {
			h.pool.Put(p)
		} else {
			h.t.Pool.Put(p)
		}
		return
	}
	if h.xdst >= 0 {
		h.t.group.Post(h.shard, h.xdst, h.delay, h.deliverFn, p)
		return
	}
	if h.delay == 0 {
		// Same (at, seq) draw and callback as the pipe path, without the
		// ring bookkeeping a never-batching zero-delay stage would pay.
		h.eng.PostArg(0, h.deliverFn, p)
		return
	}
	h.pipe.Post(h.delay, p)
}

// forward moves a packet that finished this hop to the next one, or delivers
// it at the end of the route. It runs on the hop's delivery shard (xdst for
// a cross-shard delay hop, the link's to-shard for a link hop, the home
// shard otherwise).
func (h *hop) forward(p *Packet) {
	if h.next != nil {
		h.next.enter(p)
		return
	}
	if h.sink != nil {
		h.sink(p)
		return
	}
	if h.dstPool != nil {
		h.dstPool.Put(p)
		return
	}
	h.t.Pool.Put(p)
}

// Route is one direction of a flow's path through the topology.
type Route struct {
	hops []*hop
}

// SetDelay updates the propagation delay of hop i, which must be a delay
// hop (used by the rapidly-changing-network experiment).
func (r *Route) SetDelay(i int, delay float64) {
	h := r.hops[i]
	if h.link != nil {
		panic(fmt.Sprintf("netem: SetDelay on link hop %d (adjust the Link instead)", i))
	}
	if h.xdst >= 0 && delay < h.t.lookahead {
		panic(fmt.Sprintf("netem: SetDelay %v on cross-shard hop %d below group lookahead %v", delay, i, h.t.lookahead))
	}
	h.delay = delay
}

// SetLoss updates the Bernoulli loss probability of delay hop i.
func (r *Route) SetLoss(i int, loss float64) {
	h := r.hops[i]
	if h.link != nil {
		panic(fmt.Sprintf("netem: SetLoss on link hop %d (adjust the Link instead)", i))
	}
	h.loss = loss
}

// HopSpec describes one hop of a route: either a named link of the topology
// (Link != ""), or a pure propagation-delay hop with optional Bernoulli
// loss. The zero HopSpec is a zero-delay hop.
type HopSpec struct {
	// Link names a link registered with AddLink.
	Link string
	// Delay is the one-way propagation delay of a delay hop, seconds.
	Delay float64
	// Loss is the Bernoulli loss probability of a delay hop.
	Loss float64
}

// LinkHop routes over the named link.
func LinkHop(name string) HopSpec { return HopSpec{Link: name} }

// DelayHop is a pure propagation segment.
func DelayHop(delay float64) HopSpec { return HopSpec{Delay: delay} }

// LossyDelayHop is a propagation segment with Bernoulli loss (the
// uncongested-but-lossy reverse path of §4.1.4).
func LossyDelayHop(delay, loss float64) HopSpec { return HopSpec{Delay: delay, Loss: loss} }

// NewTopology returns an empty topology on the given engine.
func NewTopology(eng *sim.Engine) *Topology {
	return &Topology{
		Eng:     eng,
		linkIdx: map[string]int{},
		nodeIdx: map[string]int{},
	}
}

// linkAt resolves a link name to its info, nil when absent.
func (t *Topology) linkAt(name string) *linkInfo {
	if i, ok := t.linkIdx[name]; ok {
		return t.links[i]
	}
	return nil
}

// AddLink creates the directed link from→to and registers it under name.
// Nodes exist implicitly as link endpoints. The rng drives the link's wire
// loss process only; nil disables random loss. If UsePool was already
// called, the new link joins the pool.
func (t *Topology) AddLink(name, from, to string, q Queue, rateBps, delay, lossRate float64, rng *rand.Rand) *Link {
	if _, dup := t.linkIdx[name]; dup {
		panic(fmt.Sprintf("netem: duplicate link %q", name))
	}
	fromID, toID := t.nodeID(from), t.nodeID(to)
	sFrom, sTo := t.nodeShards[fromID], t.nodeShards[toID]
	li := &linkInfo{name: name, from: from, to: to, fromID: fromID, toID: toID, shard: sFrom, sinkShard: sTo}
	li.link = NewLink(t.engineFor(sFrom), q, rateBps, delay, lossRate, rng)
	li.link.Sink = func(p *Packet) { li.dispatch(t, p) }
	if sFrom != sTo {
		if delay < t.lookahead {
			panic(fmt.Sprintf("netem: cross-shard link %q delay %v below group lookahead %v (partition zero/low-delay endpoints together)", name, delay, t.lookahead))
		}
		// The propagation stage becomes a mailbox post: dispatch then runs
		// on the destination shard, where the downstream hops live.
		xfn := func(a any) { li.dispatch(t, a.(*Packet)) }
		li.link.XDeliver = func(d float64, p *Packet) { t.group.Post(sFrom, sTo, d, xfn, p) }
	}
	if pl := t.poolShard(sFrom); pl != nil {
		li.link.Pool = pl
		queueUsePool(q, pl)
	} else if t.Pool != nil {
		li.link.Pool = t.Pool
		queueUsePool(q, t.Pool)
	}
	t.linkIdx[name] = len(t.links)
	t.links = append(t.links, li)
	return li.link
}

// LinkByName returns the named link (nil if absent), for runtime parameter
// changes and per-link assertions.
func (t *Topology) LinkByName(name string) *Link {
	if li := t.linkAt(name); li != nil {
		return li.link
	}
	return nil
}

// NumLinks returns the registered link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// LinkAt returns link i in AddLink order — the index-based counterpart of
// LinkByName for respec loops that already know registration order, so a
// thousand-link rewind does integer indexing instead of map probes.
func (t *Topology) LinkAt(i int) *Link { return t.links[i].link }

// NumNodes returns the interned node count (link endpoints seen so far).
func (t *Topology) NumNodes() int { return len(t.nodeNames) }

// queueUsePool wires a free list into the queue kinds that drop packets at
// dequeue time (enqueue-time rejections are recycled by the Link).
func queueUsePool(q Queue, pool *PacketPool) {
	switch q := q.(type) {
	case *CoDel:
		q.Pool = pool
	case *FQ:
		q.Pool = pool
		for _, fl := range q.flows {
			if fl != nil {
				queueUsePool(fl.q, pool)
			}
		}
	}
}

// UsePool routes every drop point of the topology — queue rejection,
// dequeue-time AQM drops, wire loss, and delay-hop loss — through the given
// free list. Links added later join the pool automatically.
func (t *Topology) UsePool(pool *PacketPool) {
	if t.pools != nil {
		panic("netem: UsePool on a sharded topology (Shard installs per-shard pools)")
	}
	t.Pool = pool
	for _, li := range t.links {
		li.link.Pool = pool
		queueUsePool(li.link.Queue, pool)
	}
}

// AddFlow registers flow id with explicit forward and reverse routes and
// delivery callbacks: dataSink receives data packets at the end of the
// forward route, ackSink receives ACKs at the end of the reverse route.
// Exactly one RNG stream is drawn from seeds per flow — shared by the lossy
// delay hops of both routes — so adding or removing loss on a hop never
// perturbs the draws other components see.
//
// Consecutive link hops must connect head-to-tail in the graph; delay hops
// are node-less access/propagation segments and may appear anywhere. A flow
// may traverse a given link at most once per direction.
func (t *Topology) AddFlow(id int, fwd, rev []HopSpec, seeds *sim.Seeds, dataSink, ackSink func(*Packet)) (fwdRoute, revRoute *Route) {
	if id < 0 {
		panic(fmt.Sprintf("netem: flow id %d must be non-negative (ids index the route tables)", id))
	}
	if id < len(t.flows) && t.flows[id] != nil {
		panic(fmt.Sprintf("netem: duplicate flow %d", id))
	}
	// The stream is derived eagerly (so the seed chain other components see
	// never shifts) but materialized lazily on the first loss draw.
	rng := new(Rng)
	*rng = SeededRng(seeds.Next())
	fsrc, fdst := t.flowEnds(fwd)
	f := &topoFlow{
		fwd: t.buildRoute(id, false, fwd, rng, dataSink, fsrc, fdst),
		rev: t.buildRoute(id, true, rev, rng, ackSink, fdst, fsrc),
		rng: rng,
	}
	t.checkFlowRng(id, f)
	t.flows = growPut(t.flows, id, f)
	return f.fwd, f.rev
}

// flowEnds resolves the shards a flow's sender and receiver live on: the
// forward route's entry and exit shards. The reverse route runs between the
// same two parties in the opposite direction.
func (t *Topology) flowEnds(fwd []HopSpec) (src, dst int) {
	if t.group == nil {
		return 0, 0
	}
	return t.RouteEnds(fwd)
}

// checkFlowRng enforces the one sharding constraint routes cannot express
// structurally: a flow's lossy delay hops all share one RNG stream, so in
// sharded mode every delay hop of the flow must execute on one shard or the
// stream would be drawn from two goroutines (a race, and a nondeterministic
// draw interleaving). Checked for all delay hops — not just currently lossy
// ones — because SetLoss can add loss later.
func (t *Topology) checkFlowRng(id int, f *topoFlow) {
	if t.group == nil {
		return
	}
	home := -1
	for _, r := range [2]*Route{f.fwd, f.rev} {
		for _, h := range r.hops {
			if h.link != nil {
				continue
			}
			if home < 0 {
				home = h.shard
			} else if h.shard != home {
				panic(fmt.Sprintf("netem: flow %d has delay hops on shards %d and %d; a sharded flow must keep all delay hops (its shared loss RNG) on one shard", id, home, h.shard))
			}
		}
	}
}

// RespecFlow re-registers flow id for a new trial on a reset engine. For an
// unknown id it is exactly AddFlow. For a known id it re-specs the existing
// routes in place when their shapes (hop count, link names, hop kinds) match
// the specs — updating delay/loss parameters, rewinding the flow's RNG
// stream, and re-pointing the delivery sinks, with every hop, pipe and
// routing-table entry reused — and otherwise tears the old routes down and
// rebuilds them. Either way exactly one seed is drawn from the chain, at the
// same position AddFlow draws it, so the loss process is bit-identical to a
// fresh build.
//
// RespecFlow must only be called between simulations (after Engine.Reset):
// re-speccing routes with packets in flight would mis-deliver them.
func (t *Topology) RespecFlow(id int, fwd, rev []HopSpec, seeds *sim.Seeds, dataSink, ackSink func(*Packet)) (fwdRoute, revRoute *Route) {
	f := t.flow(id)
	if f == nil {
		return t.AddFlow(id, fwd, rev, seeds, dataSink, ackSink)
	}
	seed := seeds.Next()
	if routeShape(f.fwd, fwd) && routeShape(f.rev, rev) {
		f.rng.Reseed(seed)
		t.respecRoute(id, f.fwd, fwd, dataSink)
		t.respecRoute(id, f.rev, rev, ackSink)
		return f.fwd, f.rev
	}
	t.dropRoute(id, false, f.fwd)
	t.dropRoute(id, true, f.rev)
	rng := f.rng
	rng.Reseed(seed)
	fsrc, fdst := t.flowEnds(fwd)
	f.fwd = t.buildRoute(id, false, fwd, rng, dataSink, fsrc, fdst)
	f.rev = t.buildRoute(id, true, rev, rng, ackSink, fdst, fsrc)
	t.checkFlowRng(id, f)
	return f.fwd, f.rev
}

// routeShape reports whether an existing route has the same shape as specs:
// same hop count, with link hops over the same links and delay hops in the
// same positions. Parameters (delay, loss) are not part of the shape.
func routeShape(r *Route, specs []HopSpec) bool {
	if len(r.hops) != len(specs) {
		return false
	}
	for i, hs := range specs {
		h := r.hops[i]
		if hs.Link != "" {
			if h.link == nil || h.link.name != hs.Link {
				return false
			}
		} else if h.link != nil {
			return false
		}
	}
	return true
}

// respecRoute applies new hop parameters and the terminal sink to a
// shape-matching route.
func (t *Topology) respecRoute(id int, r *Route, specs []HopSpec, sink func(*Packet)) {
	for i, hs := range specs {
		h := r.hops[i]
		if hs.Link != "" {
			if hs.Delay != 0 || hs.Loss != 0 {
				panic(fmt.Sprintf("netem: flow %d hop over link %q also sets Delay/Loss (a link hop uses the Link's own parameters; add a separate delay hop)", id, hs.Link))
			}
			continue
		}
		if h.xdst >= 0 && hs.Delay < t.lookahead {
			panic(fmt.Sprintf("netem: flow %d respec sets cross-shard hop %d delay %v below group lookahead %v", id, i, hs.Delay, t.lookahead))
		}
		h.delay = hs.Delay
		h.loss = hs.Loss
	}
	r.hops[len(r.hops)-1].sink = sink
}

// dropRoute unregisters one direction of a flow's path: link routing-table
// entries clear and delay-hop pipes leave the engine's pipe list.
func (t *Topology) dropRoute(id int, ack bool, r *Route) {
	for _, h := range r.hops {
		h.sink = nil
		if h.link != nil {
			if ack {
				h.link.ack[id] = nil
			} else {
				h.link.data[id] = nil
			}
		} else if h.pipe != nil {
			h.eng.DropPipe(h.pipe)
		}
	}
}

// buildRoute assembles and registers one direction of a flow's path.
// entryShard/exitShard are where packets are injected and delivered (both 0
// unsharded); the route's hops must walk from one to the other, crossing
// shards only over cross-shard links or delay hops of at least the group
// lookahead.
func (t *Topology) buildRoute(id int, ack bool, specs []HopSpec, rng *Rng, sink func(*Packet), entryShard, exitShard int) *Route {
	if len(specs) == 0 {
		panic(fmt.Sprintf("netem: empty route for flow %d", id))
	}
	dir := "data"
	if ack {
		dir = "ack"
	}
	r := &Route{hops: make([]*hop, 0, len(specs))}
	at := ""          // current node, once a link hop pins it
	cur := entryShard // shard the route is executing on
	for _, hs := range specs {
		h := &hop{t: t, xdst: -1}
		if hs.Link != "" {
			if hs.Delay != 0 || hs.Loss != 0 {
				panic(fmt.Sprintf("netem: flow %d hop over link %q also sets Delay/Loss (a link hop uses the Link's own parameters; add a separate delay hop)", id, hs.Link))
			}
			li := t.linkAt(hs.Link)
			if li == nil {
				panic(fmt.Sprintf("netem: flow %d routes over unknown link %q", id, hs.Link))
			}
			if at != "" && at != li.from {
				panic(fmt.Sprintf("netem: flow %d %s route is disconnected: at node %q but link %q starts at %q",
					id, dir, at, hs.Link, li.from))
			}
			if li.shard != cur {
				// A shard change without a link can only ride a delay hop
				// (the resolve pass below turns the preceding delay hop into
				// the crossing). Jumping straight between link hops on
				// different shards has no propagation delay to hide behind.
				if n := len(r.hops); n == 0 || r.hops[n-1].link != nil {
					panic(fmt.Sprintf("netem: flow %d %s route jumps from shard %d to link %q on shard %d without a delay hop",
						id, dir, cur, hs.Link, li.shard))
				}
			}
			at = li.to
			m := &li.data
			if ack {
				m = &li.ack
			}
			if hopAt(*m, id) != nil {
				panic(fmt.Sprintf("netem: flow %d traverses link %q twice on its %s route", id, hs.Link, dir))
			}
			h.link = li
			h.shard = li.shard
			h.eng = t.engineFor(li.shard)
			cur = li.sinkShard
			*m = growPut(*m, id, h)
		} else {
			h.delay = hs.Delay
			h.loss = hs.Loss
			h.rng = rng
			h.shard = cur
			h.eng = t.engineFor(cur)
			h.deliverFn = func(a any) { h.forward(a.(*Packet)) }
		}
		r.hops = append(r.hops, h)
	}
	// Resolve pass: each delay hop delivers where the next hop executes (or
	// at the route exit); a target on another shard makes it a cross-shard
	// hop riding the group mailbox instead of a local pipe.
	for i, h := range r.hops {
		if h.link != nil {
			h.pool = t.poolShard(h.shard)
			h.dstPool = t.poolShard(h.link.sinkShard)
			continue
		}
		target := exitShard
		if i+1 < len(r.hops) {
			target = r.hops[i+1].shard
		}
		h.pool = t.poolShard(h.shard)
		if target != h.shard {
			if h.delay < t.lookahead {
				panic(fmt.Sprintf("netem: flow %d %s route crosses shard %d→%d over a %vs delay hop, below group lookahead %v",
					id, dir, h.shard, target, h.delay, t.lookahead))
			}
			h.xdst = target
			h.dstPool = t.poolShard(target)
		} else {
			h.dstPool = t.poolShard(h.shard)
			h.pipe = h.eng.NewPipe(h.deliverFn)
		}
	}
	if last := r.hops[len(r.hops)-1]; last.link != nil && last.link.sinkShard != exitShard {
		panic(fmt.Sprintf("netem: flow %d %s route ends on shard %d but its receiver lives on shard %d",
			id, dir, last.link.sinkShard, exitShard))
	}
	for i := 0; i < len(r.hops)-1; i++ {
		r.hops[i].next = r.hops[i+1]
	}
	r.hops[len(r.hops)-1].sink = sink
	return r
}

// flow returns the registered flow, or nil.
func (t *Topology) flow(id int) *topoFlow {
	if id >= 0 && id < len(t.flows) {
		return t.flows[id]
	}
	return nil
}

// FlowRoutes returns the registered routes of flow id (nil, nil if the flow
// is unknown).
func (t *Topology) FlowRoutes(id int) (fwd, rev *Route) {
	f := t.flow(id)
	if f == nil {
		return nil, nil
	}
	return f.fwd, f.rev
}

// SendData injects a data packet at the head of flow p.Flow's forward route.
func (t *Topology) SendData(p *Packet) {
	f := t.flow(p.Flow)
	if f == nil {
		panic(fmt.Sprintf("netem: SendData for unregistered flow %d", p.Flow))
	}
	f.fwd.hops[0].enter(p)
}

// SendAck injects an ACK at the head of flow p.Flow's reverse route.
func (t *Topology) SendAck(p *Packet) {
	f := t.flow(p.Flow)
	if f == nil {
		panic(fmt.Sprintf("netem: SendAck for unregistered flow %d", p.Flow))
	}
	f.rev.hops[0].enter(p)
}

// LinkEnds returns the endpoint node names of the named link. It panics on
// an unknown name: callers resolving fault targets or flow endpoints cannot
// proceed with a silent miss.
func (t *Topology) LinkEnds(name string) (from, to string) {
	li := t.linkAt(name)
	if li == nil {
		panic(fmt.Sprintf("netem: LinkEnds of unknown link %q", name))
	}
	return li.from, li.to
}

// LinkStats is one link's cumulative accounting, in packets and in wire
// bytes. At any point, bytes offered to the link equal DeliveredBytes +
// WireLostBytes + QueueDroppedBytes + FaultDroppedBytes + QueuedBytes +
// TxBytes (the packet on the wire head) — the Conserved method checks
// exactly that identity, which packet counts alone cannot express once flows
// mix packet sizes.
type LinkStats struct {
	Name         string
	Delivered    int64
	WireLost     int64
	QueueDropped int64
	FaultDropped int64

	OfferedBytes      int64
	DeliveredBytes    int64
	WireLostBytes     int64
	QueueDroppedBytes int64
	FaultDroppedBytes int64
	QueuedBytes       int64
	TxBytes           int64
}

// Conserved reports whether the link's byte ledger balances: every byte
// offered is delivered, lost on the wire, dropped by the queue, destroyed by
// fault injection, still queued, or serializing.
func (s LinkStats) Conserved() bool {
	return s.OfferedBytes == s.DeliveredBytes+s.WireLostBytes+s.QueueDroppedBytes+s.FaultDroppedBytes+s.QueuedBytes+s.TxBytes
}

// Stats returns per-link accounting in AddLink order (deterministic, so
// reports embedding it stay byte-identical across runs).
func (t *Topology) Stats() []LinkStats {
	out := make([]LinkStats, len(t.links))
	for i, li := range t.links {
		out[i] = LinkStats{
			Name:         li.name,
			Delivered:    li.link.Delivered(),
			WireLost:     li.link.WireLost(),
			QueueDropped: li.link.Queue.Dropped(),
			FaultDropped: li.link.FaultDropped(),

			OfferedBytes:      li.link.OfferedBytes(),
			DeliveredBytes:    li.link.DeliveredBytes(),
			WireLostBytes:     li.link.WireLostBytes(),
			QueueDroppedBytes: li.link.Queue.DroppedBytes(),
			FaultDroppedBytes: li.link.FaultDroppedBytes(),
			QueuedBytes:       int64(li.link.Queue.Bytes()),
			TxBytes:           li.link.TxBytes(),
		}
	}
	return out
}
