package netem

import (
	"fmt"
	"math/rand"
	"sort"
)

// Fault injection: deterministic, timed hard faults layered on top of the
// smooth variation VaryingSpec models. A FaultSchedule is attached to a
// topology spec (see internal/exp) and resolved at build time into plain
// engine events, so faults compose with trial arenas, Link.Reset and
// sharding without touching the simulator's (at, seq) determinism: the
// schedule's event times are fixed before the simulation starts, and every
// fault acts on the engine that owns its target link.
//
// Fault semantics at the link level are implemented by Link.SetDown (drop
// the in-flight train into the fault ledger, park the serializer, keep the
// queue) and by direct parameter writes for Degrade. Node faults
// additionally freeze the endpoints' sender/receiver state (see
// internal/cc Freeze/Unfreeze); that wiring lives in the harness, which
// knows which flows terminate at which nodes.

// FaultKind enumerates the fault event types.
type FaultKind uint8

const (
	// FaultLinkDown takes the named Link down: in-flight packets are
	// destroyed (fault ledger), queued packets stay buffered, nothing
	// serializes until the link comes back up.
	FaultLinkDown FaultKind = iota
	// FaultLinkUp brings the named Link back up.
	FaultLinkUp
	// FaultDegrade steps the named Link's capacity / propagation delay /
	// loss rate to new values — a hard step, distinct from VaryingSpec's
	// smooth periodic redraw. Fields that are negative (or RateBps <= 0)
	// keep the link's current value, so a pure loss spike need not restate
	// rate and delay.
	FaultDegrade
	// FaultPartition takes every link in Links down at once — a routing
	// partition cutting a named link set.
	FaultPartition
	// FaultHeal brings every link in Links back up.
	FaultHeal
	// FaultNodeCrash takes every link incident to Node down and freezes the
	// senders/receivers living at the node (no sends, no ACKs, timers
	// parked).
	FaultNodeCrash
	// FaultNodeRestart brings the node's incident links back up and unfreezes
	// its endpoints; frozen transfers resume where they stopped.
	FaultNodeRestart
)

// String names the kind for reports and errors.
func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultDegrade:
		return "degrade"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultNodeCrash:
		return "node-crash"
	case FaultNodeRestart:
		return "node-restart"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultEvent is one timed fault. Which operand fields are read depends on
// Kind: Link for the link kinds and Degrade, Links for Partition/Heal, Node
// for the node kinds, and RateBps/Delay/Loss for Degrade only.
type FaultEvent struct {
	// At is the absolute simulation time the fault fires.
	At float64
	// Kind selects the fault type.
	Kind FaultKind
	// Link names the target of LinkDown/LinkUp/Degrade.
	Link string
	// Links names the target set of Partition/Heal.
	Links []string
	// Node names the target of NodeCrash/NodeRestart.
	Node string
	// RateBps/Delay/Loss are Degrade's new parameters. RateBps <= 0 keeps
	// the current rate; Delay < 0 and Loss < 0 keep the current delay and
	// loss (zero is a legal value for both).
	RateBps float64
	Delay   float64
	Loss    float64
}

// FlapSpec is a compact description of a link flap pattern: starting at
// FirstDownAt, the link repeats down-for-DownDur / up-for-UpDur cycles.
// Jitter, when non-zero, perturbs each phase duration uniformly by up to
// ±Jitter (a fraction, e.g. 0.3 for ±30%) using the seeded RNG handed to
// Materialize, so flap timing varies across trials but is bit-reproducible
// for a given seed. The pattern stops after Count cycles, or at Until
// (whichever limit is set; with both set, whichever comes first). A spec
// with neither limit flaps exactly once. Every cycle emits a down and a
// matching up, so the link always ends the schedule healed.
type FlapSpec struct {
	Link        string
	FirstDownAt float64
	DownDur     float64
	UpDur       float64
	Jitter      float64
	Count       int
	Until       float64
}

// FaultSchedule is the full fault plan for one trial: explicit events plus
// flap patterns expanded at materialization time.
type FaultSchedule struct {
	Events []FaultEvent
	Flaps  []FlapSpec
}

// Empty reports whether the schedule contains nothing to inject.
func (s *FaultSchedule) Empty() bool {
	return s == nil || (len(s.Events) == 0 && len(s.Flaps) == 0)
}

// Materialize appends the schedule's concrete event list to dst and returns
// it, sorted by time (stable, so same-instant events keep their schedule
// order). Flap patterns are expanded with phase-duration jitter drawn from
// rng — exactly one stream, consumed in spec order, so materialization is
// deterministic for a given seed. A nil rng disables jitter.
func (s *FaultSchedule) Materialize(dst []FaultEvent, rng *rand.Rand) []FaultEvent {
	if s == nil {
		return dst
	}
	dst = append(dst, s.Events...)
	for _, f := range s.Flaps {
		jit := func(d float64) float64 {
			if f.Jitter <= 0 || rng == nil {
				return d
			}
			d *= 1 + f.Jitter*(2*rng.Float64()-1)
			if d < 0 {
				return 0
			}
			return d
		}
		count := f.Count
		if count <= 0 && f.Until <= 0 {
			count = 1
		}
		t := f.FirstDownAt
		for k := 0; (count <= 0 || k < count) && (f.Until <= 0 || t < f.Until); k++ {
			dst = append(dst, FaultEvent{At: t, Kind: FaultLinkDown, Link: f.Link})
			t += jit(f.DownDur)
			dst = append(dst, FaultEvent{At: t, Kind: FaultLinkUp, Link: f.Link})
			t += jit(f.UpDur)
		}
	}
	sort.SliceStable(dst, func(i, j int) bool { return dst[i].At < dst[j].At })
	return dst
}
