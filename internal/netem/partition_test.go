package netem

import (
	"fmt"
	"math"
	"testing"
)

func TestPartitionChainContiguous(t *testing.T) {
	// 9-node chain with per-hop delays 1..8 ms; 4 shards must slice it into
	// contiguous blocks and the lookahead must be the smallest cut delay.
	var edges []Edge
	for i := 0; i < 8; i++ {
		edges = append(edges,
			Edge{From: node(i), To: node(i + 1), Delay: float64(i+1) * 1e-3},
			Edge{From: node(i + 1), To: node(i), Delay: float64(i+1) * 1e-3})
	}
	assign, shards, lookahead := PartitionNodes(edges, 4)
	if shards != 4 {
		t.Fatalf("shards = %d, want 4", shards)
	}
	prev := 0
	minCut := math.Inf(1)
	for i := 0; i < 9; i++ {
		s := assign[node(i)]
		if s < prev || s > prev+1 {
			t.Fatalf("chain assignment not contiguous: node %d on shard %d after shard %d", i, s, prev)
		}
		if i > 0 && s != prev {
			if d := float64(i) * 1e-3; d < minCut {
				minCut = d
			}
		}
		prev = s
	}
	if prev != 3 {
		t.Fatalf("last node on shard %d, want 3", prev)
	}
	if lookahead != minCut {
		t.Fatalf("lookahead = %v, want min cut delay %v", lookahead, minCut)
	}
}

func TestPartitionZeroDelayMerges(t *testing.T) {
	// Dumbbell shape: zero-delay bottleneck forces everything into one
	// cluster, so sharding is declined.
	edges := []Edge{
		{From: "s1", To: "sw", Delay: 5e-3},
		{From: "s2", To: "sw", Delay: 5e-3},
		{From: "sw", To: "rt", Delay: 0},
		{From: "rt", To: "d1", Delay: 5e-3},
		{From: "rt", To: "d2", Delay: 5e-3},
	}
	// Zero-delay edge contracts sw+rt but the leaves still form clusters.
	assign, shards, _ := PartitionNodes(edges, 4)
	if shards < 2 {
		t.Fatalf("leaf clusters should still shard, got %d", shards)
	}
	if assign["sw"] != assign["rt"] {
		t.Fatalf("zero-delay endpoints split: sw=%d rt=%d", assign["sw"], assign["rt"])
	}

	// All edges zero-delay: one cluster, no sharding.
	for i := range edges {
		edges[i].Delay = 0
	}
	assign, shards, lookahead := PartitionNodes(edges, 4)
	if assign != nil || shards != 1 || lookahead != 0 {
		t.Fatalf("all-zero-delay graph should decline sharding, got %v %d %v", assign, shards, lookahead)
	}
}

func TestPartitionClampsToClusters(t *testing.T) {
	edges := []Edge{
		{From: "a", To: "b", Delay: 1e-3},
		{From: "b", To: "a", Delay: 1e-3},
	}
	assign, shards, lookahead := PartitionNodes(edges, 8)
	if shards != 2 {
		t.Fatalf("shards = %d, want 2 (clamped to cluster count)", shards)
	}
	if assign["a"] == assign["b"] {
		t.Fatal("two positive-delay clusters landed on one shard")
	}
	if lookahead != 1e-3 {
		t.Fatalf("lookahead = %v, want 1e-3", lookahead)
	}
}

func TestPartitionDeclinesSingleShard(t *testing.T) {
	edges := []Edge{{From: "a", To: "b", Delay: 1e-3}}
	if assign, shards, _ := PartitionNodes(edges, 1); assign != nil || shards != 1 {
		t.Fatalf("maxShards=1 should decline, got %v %d", assign, shards)
	}
	if assign, shards, _ := PartitionNodes(nil, 4); assign != nil || shards != 1 {
		t.Fatalf("empty edge set should decline, got %v %d", assign, shards)
	}
}

func TestPartitionDisconnectedLookahead(t *testing.T) {
	// Two disconnected components: no cut edges, lookahead +Inf.
	edges := []Edge{
		{From: "a", To: "b", Delay: 0},
		{From: "c", To: "d", Delay: 0},
	}
	_, shards, lookahead := PartitionNodes(edges, 2)
	if shards != 2 {
		t.Fatalf("shards = %d, want 2", shards)
	}
	if !math.IsInf(lookahead, 1) {
		t.Fatalf("lookahead = %v, want +Inf for disconnected components", lookahead)
	}
}

func TestPartitionHintsGroupNodes(t *testing.T) {
	// 8-node chain, uniform 2 ms delays: without hints 4 shards slice it
	// 2-2-2-2; hints pairing (0,1)(2,3)(4,5)(6,7) into two groups each must
	// contract to 2 shards with the cut at the group boundary.
	var edges []Edge
	for i := 0; i < 7; i++ {
		edges = append(edges,
			Edge{From: node(i), To: node(i + 1), Delay: 2e-3},
			Edge{From: node(i + 1), To: node(i), Delay: 2e-3})
	}
	hints := map[string]int{}
	for i := 0; i < 8; i++ {
		hints[node(i)] = i / 4
	}
	assign, shards, lookahead := PartitionNodesHinted(edges, 4, hints)
	if shards != 2 {
		t.Fatalf("shards = %d, want 2 (two hint groups)", shards)
	}
	for i := 0; i < 8; i++ {
		if want := i / 4; assign[node(i)] != want {
			t.Fatalf("node %d on shard %d, want %d", i, assign[node(i)], want)
		}
	}
	if lookahead != 2e-3 {
		t.Fatalf("lookahead = %v, want 2e-3", lookahead)
	}

	// A zero-delay fault pin across the hint boundary merges the groups:
	// hints and pins are both contractions and must compose.
	pinned := append(edges, Edge{From: node(3), To: node(4)})
	if assign, shards, _ := PartitionNodesHinted(pinned, 4, hints); assign != nil || shards != 1 {
		t.Fatalf("pin across hint boundary should collapse to one cluster, got %v %d", assign, shards)
	}

	// Unhinted nodes keep their own clusters: hinting only the first half
	// leaves the tail sliceable.
	half := map[string]int{}
	for i := 0; i < 4; i++ {
		half[node(i)] = 0
	}
	_, shards, _ = PartitionNodesHinted(edges, 4, half)
	if shards < 2 {
		t.Fatalf("partially hinted chain should still shard, got %d", shards)
	}
}

func node(i int) string { return fmt.Sprintf("n%d", i) }
