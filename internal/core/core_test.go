package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkMI(rateMbps, tputMbps, loss float64, sent int64) MIStats {
	return MIStats{
		Rate:       rateMbps * 1e6 / 8,
		Throughput: tputMbps * 1e6 / 8,
		LossRate:   loss,
		Sent:       sent,
		Acked:      sent - int64(loss*float64(sent)),
		Duration:   0.05,
		AvgRTT:     0.03,
		PrevAvgRTT: 0.03,
		MinRTT:     0.03,
	}
}

func TestSafeUtilityMonotoneInThroughput(t *testing.T) {
	u := NewSafeUtility()
	if u.Eval(mkMI(10, 10, 0, 1000)) <= u.Eval(mkMI(5, 5, 0, 1000)) {
		t.Fatal("utility must grow with loss-free throughput")
	}
}

func TestSafeUtilityLossKnee(t *testing.T) {
	u := NewSafeUtility()
	below := u.Eval(mkMI(100, 98, 0.02, 10000))
	above := u.Eval(mkMI(100, 90, 0.10, 10000))
	if below <= 0 {
		t.Fatalf("utility below the knee should be positive: %v", below)
	}
	if above >= 0 {
		t.Fatalf("utility far above the knee should be negative: %v", above)
	}
}

func TestSafeUtilityForgivesSingleLoss(t *testing.T) {
	u := NewSafeUtility()
	// One loss in a 10-packet MI reads as 10% but must not trip the cliff.
	s := mkMI(1, 0.9, 0.1, 10)
	if u.Eval(s) <= 0 {
		t.Fatalf("single loss in a small MI tripped the sigmoid cliff: %v", u.Eval(s))
	}
	// Two losses are real evidence.
	s2 := mkMI(1, 0.8, 0.2, 10)
	if u.Eval(s2) >= u.Eval(s) {
		t.Fatal("two losses must score worse than one")
	}
}

// Property: safe utility never rewards pure loss increase.
func TestSafeUtilityLossMonotoneProperty(t *testing.T) {
	u := NewSafeUtility()
	f := func(l1, l2 uint8) bool {
		a := float64(l1%50) / 100
		b := float64(l2%50) / 100
		if a > b {
			a, b = b, a
		}
		ua := u.Eval(mkMI(100, 100*(1-a), a, 100000))
		ub := u.Eval(mkMI(100, 100*(1-b), b, 100000))
		return ua >= ub || a == b
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLossResilientUtility(t *testing.T) {
	u := LossResilientUtility{}
	// At 50% loss, more throughput is still strictly better.
	if u.Eval(mkMI(100, 50, 0.5, 10000)) <= u.Eval(mkMI(50, 25, 0.5, 10000)) {
		t.Fatal("loss-resilient utility must keep rewarding throughput at 50% loss")
	}
}

func TestLatencyUtilityPenalizesRTT(t *testing.T) {
	u := NewLatencyUtility()
	low := mkMI(40, 40, 0, 1000)
	high := mkMI(40, 40, 0, 1000)
	high.AvgRTT = 0.2
	high.PrevAvgRTT = 0.2
	if u.Eval(high) >= u.Eval(low) {
		t.Fatal("latency utility must penalize higher RTT at equal throughput")
	}
	rising := mkMI(40, 40, 0, 1000)
	rising.RTTSlope = 0.05
	if u.Eval(rising) >= u.Eval(low) {
		t.Fatal("latency utility must penalize a rising RTT")
	}
}

func TestSigmoidShape(t *testing.T) {
	if s := sigmoid(-1, 100); s < 0.999 {
		t.Fatalf("sigmoid(-1) = %v, want ~1", s)
	}
	if s := sigmoid(1, 100); s > 0.001 {
		t.Fatalf("sigmoid(1) = %v, want ~0", s)
	}
	if s := sigmoid(0, 100); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("sigmoid(0) = %v, want 0.5", s)
	}
}

// --- controller tests ---

func newTestController(noRCT bool) *Controller {
	cfg := DefaultConfig(0.03)
	cfg.NoRCT = noRCT
	return NewController(cfg, rand.New(rand.NewSource(1)))
}

// feed assigns the next MI and immediately delivers a result with the given
// utility via a utility-value shim: we exploit that the controller only
// uses cfg.Utility.Eval, so tests inject a constant-utility function.
type constUtility struct{ u *float64 }

func (c constUtility) Name() string           { return "const" }
func (c constUtility) Eval(m MIStats) float64 { return *c.u }

func TestControllerStartingDoublesUntilUtilityDrop(t *testing.T) {
	u := 1.0
	cfg := DefaultConfig(0.03)
	cfg.Utility = constUtility{&u}
	c := NewController(cfg, rand.New(rand.NewSource(1)))
	r0 := c.NextMIRate(0)
	r1 := c.NextMIRate(1)
	if r1 != 2*r0 {
		t.Fatalf("starting state rate %v -> %v, want doubling", r0, r1)
	}
	c.DeliverResult(0, MIStats{})
	u = 2.0
	c.DeliverResult(1, MIStats{})
	r2 := c.NextMIRate(2)
	if r2 != 2*r1 {
		t.Fatalf("rate %v after growing utility, want %v", r2, 2*r1)
	}
	u = 1.0 // utility decreased: exit to half of r2's rate
	c.DeliverResult(2, MIStats{})
	if c.State() != StateDecision {
		t.Fatalf("state %v after utility drop, want decision", c.State())
	}
	if got := c.Rate(); got != r2/2 {
		t.Fatalf("rate %v after exit, want %v", got, r2/2)
	}
	if !c.TakeRealign() {
		t.Fatal("state change must request MI realignment")
	}
}

func TestControllerRCTConclusiveUp(t *testing.T) {
	u := 1.0
	cfg := DefaultConfig(0.03)
	cfg.Utility = constUtility{&u}
	c := NewController(cfg, rand.New(rand.NewSource(2)))
	// Drive into decision state.
	c.NextMIRate(0)
	c.DeliverResult(0, MIStats{})
	u = 0.5
	c.NextMIRate(1)
	c.DeliverResult(1, MIStats{})
	if c.State() != StateDecision {
		t.Fatalf("state = %v, want decision", c.State())
	}
	base := c.Rate()
	// Four trials; assign each a utility proportional to its rate so the
	// higher rate consistently wins.
	type trial struct {
		id   int64
		rate float64
	}
	var trials []trial
	for id := int64(2); id < 6; id++ {
		r := c.NextMIRate(id)
		trials = append(trials, trial{id, r})
	}
	for _, tr := range trials {
		u = tr.rate // higher rate → higher utility
		c.DeliverResult(tr.id, MIStats{})
	}
	if c.State() != StateAdjusting {
		t.Fatalf("state = %v after conclusive trials, want adjusting", c.State())
	}
	if c.Rate() <= base {
		t.Fatalf("rate %v after conclusive up, want > %v", c.Rate(), base)
	}
}

func TestControllerInconclusiveGrowsEpsilon(t *testing.T) {
	u := 1.0
	cfg := DefaultConfig(0.03)
	cfg.Utility = constUtility{&u}
	c := NewController(cfg, rand.New(rand.NewSource(3)))
	c.NextMIRate(0)
	c.DeliverResult(0, MIStats{})
	u = 0.5
	c.NextMIRate(1)
	c.DeliverResult(1, MIStats{})
	eps0 := c.Epsilon()
	// Deliver identical utilities: ties are inconclusive.
	var ids []int64
	for id := int64(2); id < 6; id++ {
		c.NextMIRate(id)
		ids = append(ids, id)
	}
	u = 1.0
	for _, id := range ids {
		c.DeliverResult(id, MIStats{})
	}
	if c.State() != StateDecision {
		t.Fatalf("state = %v after tie, want decision", c.State())
	}
	if c.Epsilon() <= eps0 {
		t.Fatalf("epsilon %v after inconclusive round, want > %v", c.Epsilon(), eps0)
	}
	if c.Inconclusive() != 1 {
		t.Fatalf("inconclusive count = %d", c.Inconclusive())
	}
}

func TestControllerEpsilonCapped(t *testing.T) {
	u := 1.0
	cfg := DefaultConfig(0.03)
	cfg.Utility = constUtility{&u}
	c := NewController(cfg, rand.New(rand.NewSource(4)))
	c.NextMIRate(0)
	c.DeliverResult(0, MIStats{})
	u = 0.5
	c.NextMIRate(1)
	c.DeliverResult(1, MIStats{})
	id := int64(2)
	for round := 0; round < 20; round++ {
		var ids []int64
		for k := 0; k < 4; k++ {
			c.NextMIRate(id)
			ids = append(ids, id)
			id++
		}
		for _, i := range ids {
			c.DeliverResult(i, MIStats{})
		}
	}
	if c.Epsilon() > cfg.EpsMax+1e-12 {
		t.Fatalf("epsilon %v exceeds EpsMax %v", c.Epsilon(), cfg.EpsMax)
	}
}

func TestControllerNoRCTUsesSinglePair(t *testing.T) {
	c := newTestController(true)
	if got := c.numTrials(); got != 2 {
		t.Fatalf("NoRCT trials = %d, want 2", got)
	}
	c = newTestController(false)
	if got := c.numTrials(); got != 4 {
		t.Fatalf("RCT trials = %d, want 4", got)
	}
}

// --- monitor tests ---

func TestMIDurationRespectsFloors(t *testing.T) {
	cfg := DefaultConfig(0.03)
	p := New(cfg, rand.New(rand.NewSource(1)))
	// At a tiny rate the 10-packet floor dominates.
	d := p.miDuration(2 * MSS) // 2 pkts/s
	if d < 10*MSS/(2.0*MSS)-1e-9 {
		t.Fatalf("MI %v shorter than the 10-packet floor", d)
	}
	// At a high rate the RTT term dominates: within [1.7, 2.2] RTT.
	for i := 0; i < 50; i++ {
		d = p.miDuration(1e9)
		lo, hi := 1.7*p.SRTT(), 2.2*p.SRTT()
		if d < lo-1e-9 || d > hi+1e-9 {
			t.Fatalf("MI %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestMonitorCountsLossAtFinalize(t *testing.T) {
	cfg := DefaultConfig(0.03)
	p := New(cfg, rand.New(rand.NewSource(1)))
	p.Start(0)
	now := 0.0
	seq := int64(0)
	// Send for 3 seconds (bounded by a packet budget), acking only 80%.
	for now < 3.0 && seq < 200000 {
		r := p.Rate(now)
		p.OnSend(seq, MSS, now)
		if seq%5 != 0 {
			p.OnAck(seq, 0.03, now+0.03)
		}
		seq++
		now += MSS / r
	}
	// Flush finalization.
	p.Rate(now + 5)
	if p.TotalLostAtFinalize == 0 {
		t.Fatal("monitor never counted the unacked packets as lost")
	}
	frac := float64(p.TotalLostAtFinalize) / float64(p.TotalSent)
	if frac < 0.1 || frac > 0.35 {
		t.Fatalf("measured loss fraction %.3f, want ~0.2", frac)
	}
}

func TestPCCStartingDoublesInPractice(t *testing.T) {
	cfg := DefaultConfig(0.03)
	p := New(cfg, rand.New(rand.NewSource(1)))
	p.Start(0)
	r0 := p.Rate(0)
	// Simulate perfect acks until the rate has grown 8x (bounded by a
	// packet budget: with nothing pushing back, the rate doubles forever).
	now := 0.0
	seq := int64(0)
	for seq < 200000 && p.Rate(now) < 8*r0 {
		r := p.Rate(now)
		p.OnSend(seq, MSS, now)
		p.OnAck(seq, 0.03, now+0.03)
		seq++
		now += MSS / r
	}
	if p.Rate(now) < 8*r0 {
		t.Fatalf("rate %v after %d clean acks, want >= 8x initial %v", p.Rate(now), seq, r0)
	}
}

func TestDefaultConfigValidation(t *testing.T) {
	// New must repair zero-valued configs.
	p := New(Config{}, nil)
	if p.cfg.Utility == nil || p.cfg.EpsMin <= 0 || p.cfg.MinPktsPerMI <= 0 {
		t.Fatalf("New did not normalize the zero config: %+v", p.cfg)
	}
}

func TestHeavyLossAndInteractiveConfigs(t *testing.T) {
	h := HeavyLossConfig(0.03)
	if h.MinPktsPerMI < 100 {
		t.Fatalf("heavy-loss MI floor = %d", h.MinPktsPerMI)
	}
	if h.Utility.Name() != "loss-resilient" {
		t.Fatalf("heavy-loss utility = %s", h.Utility.Name())
	}
	i := InteractiveConfig(0.03)
	if i.Utility.Name() != "latency" {
		t.Fatalf("interactive utility = %s", i.Utility.Name())
	}
	if i.MIRttHi >= 1.7 {
		t.Fatalf("interactive MI bound = %v, want tighter than default", i.MIRttHi)
	}
}
