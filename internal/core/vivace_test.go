package core

import "testing"

func TestVivaceMonotoneBelowCapacity(t *testing.T) {
	u := NewVivaceUtility()
	lo := mkMI(10, 10, 0, 1000)
	hi := mkMI(20, 20, 0, 1000)
	if u.Eval(hi) <= u.Eval(lo) {
		t.Fatal("loss-free, queue-free utility must grow with rate")
	}
}

func TestVivacePenalizesRTTGradient(t *testing.T) {
	u := NewVivaceUtility()
	flat := mkMI(50, 50, 0, 1000)
	rising := mkMI(50, 50, 0, 1000)
	rising.RTTSlope = 0.02
	if u.Eval(rising) >= u.Eval(flat) {
		t.Fatal("a rising RTT must reduce Vivace utility")
	}
	// The penalty must be able to overcome the throughput gain of a small
	// rate increase (that is what pins the rate at capacity).
	higher := mkMI(51, 51, 0, 1000)
	higher.RTTSlope = 0.02
	if u.Eval(higher) >= u.Eval(flat) {
		t.Fatal("rate+queue must lose against rate-at-capacity")
	}
}

func TestVivacePenalizesLoss(t *testing.T) {
	u := NewVivaceUtility()
	clean := mkMI(50, 50, 0, 100000)
	lossy := mkMI(50, 47.5, 0.05, 100000)
	if u.Eval(lossy) >= u.Eval(clean) {
		t.Fatal("loss must reduce Vivace utility")
	}
}

func TestVivaceConcaveThroughput(t *testing.T) {
	u := NewVivaceUtility()
	// Marginal utility of rate must shrink: u(20)-u(10) > u(110)-u(100).
	d1 := u.Eval(mkMI(20, 20, 0, 1000)) - u.Eval(mkMI(10, 10, 0, 1000))
	d2 := u.Eval(mkMI(110, 110, 0, 1000)) - u.Eval(mkMI(100, 100, 0, 1000))
	if d2 >= d1 {
		t.Fatalf("throughput term not concave: %v vs %v", d1, d2)
	}
}
