package core

import "math/rand"

// State is the controller's learning state (§3.2).
type State int

// Controller states.
const (
	// StateStarting doubles the rate each MI until utility decreases.
	StateStarting State = iota
	// StateDecision runs randomized controlled trials at r(1±ε).
	StateDecision
	// StateAdjusting moves in the chosen direction with growing steps.
	StateAdjusting
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateDecision:
		return "decision"
	case StateAdjusting:
		return "adjusting"
	}
	return "unknown"
}

// miRole records what experiment an MI was part of, so its utility result
// can be routed when it arrives (results lag MIs by about one RTT).
type miRole struct {
	kind  roleKind
	rate  float64
	sign  int // +1 / −1 for decision trials
	trial int // trial index 0..3 within the current RCT round
	round int // RCT round counter, to discard stale trial results
	step  int // adjusting step n
}

type roleKind int

const (
	roleStarting roleKind = iota
	roleTrial
	roleFiller // base-rate MI while waiting for trial results
	roleAdjust
)

// Controller is the §3.2 learning control algorithm as a pure state
// machine: the Monitor asks it for the next MI's rate and feeds back each
// MI's utility when known. It does no I/O and keeps no clock.
type Controller struct {
	cfg Config
	rng *rand.Rand

	state State
	rate  float64 // base rate r, bytes/s
	eps   float64

	// roles tracks outstanding MIs by value in an id-windowed ring (MI ids
	// are assigned in strictly increasing order, results lag ~1 RTT), so
	// recording and delivering a role allocates nothing and resetting the
	// controller is deterministic — no map, no free list (see roleRing).
	roles roleRing

	// Starting state bookkeeping.
	lastStartUtility float64
	haveStartUtility bool
	haveStartRole    bool // first starting MI runs at InitialRate, no doubling

	// Decision (RCT) bookkeeping.
	round        int
	trialSigns   [4]int
	trialUtility [4]float64
	trialHave    [4]bool
	trialsLeft   int // trial MIs not yet scheduled in this round

	// Adjusting bookkeeping.
	dir         int
	step        int
	lastAdjUtil float64
	haveAdjUtil bool
	prevAdjRate float64

	rateChanged bool // realign signal for the monitor

	// Telemetry.
	decisions    int64
	reversions   int64
	inconclusive int64
}

// NewController builds a controller starting in the Starting state at
// cfg.InitialRate.
func NewController(cfg Config, rng *rand.Rand) *Controller {
	c := &Controller{}
	c.init(cfg, rng)
	return c
}

// Reset returns the controller to the state NewController(cfg, rng) would
// build, in place, retaining the role ring's slot array. Undelivered roles
// from the previous run are simply cleared — roles live by value, so there
// is no free list whose order could vary (the map this replaces drained in
// random iteration order, perturbing warm-trial allocation placement from
// run to run). rng is the sender's stream, already rewound by the caller.
func (c *Controller) Reset(cfg Config, rng *rand.Rand) {
	c.roles.reset()
	c.init(cfg, rng)
}

// init is the shared (re)initialization behind NewController and Reset; it
// assumes c.roles is empty.
func (c *Controller) init(cfg Config, rng *rand.Rand) {
	roles := c.roles
	*c = Controller{
		cfg:   cfg,
		rng:   rng,
		state: StateStarting,
		rate:  cfg.InitialRate,
		eps:   cfg.EpsMin,
		roles: roles,
	}
	if c.rate <= 0 {
		c.rate = 2 * 1500 / 0.1 // 2 MSS per 100 ms if no hint given
	}
}

// State returns the current learning state.
func (c *Controller) State() State { return c.state }

// Rate returns the current base rate r, bytes/s.
func (c *Controller) Rate() float64 { return c.rate }

// Epsilon returns the current experiment granularity ε.
func (c *Controller) Epsilon() float64 { return c.eps }

// TakeRealign reports and clears the "rate changed, re-align the MI"
// signal (§3.1's optimization).
func (c *Controller) TakeRealign() bool {
	r := c.rateChanged
	c.rateChanged = false
	return r
}

// pairCount returns the number of (higher, lower) MI pairs per RCT round:
// 2 with RCTs (the paper's randomized controlled trials), 1 without.
func (c *Controller) pairCount() int {
	if c.cfg.NoRCT {
		return 1
	}
	return 2
}

// NextMIRate assigns a rate to the MI with the given id and records its
// role. Monitor calls this exactly once per MI, in order.
func (c *Controller) NextMIRate(mi int64) float64 {
	var role miRole
	switch c.state {
	case StateStarting:
		// First MI runs at the initial rate; each subsequent MI doubles it.
		if c.haveStartRole {
			c.rate *= 2
		}
		c.haveStartRole = true
		role = miRole{kind: roleStarting, rate: c.rate}

	case StateDecision:
		if c.trialsLeft > 0 {
			idx := c.numTrials() - c.trialsLeft // trial index within the round
			sign := c.trialSigns[idx]
			c.trialsLeft--
			r := c.rate * (1 + float64(sign)*c.eps)
			role = miRole{kind: roleTrial, rate: r, sign: sign, trial: idx, round: c.round}
			c.roles.put(mi, role)
			return r
		}
		// All trials scheduled: send at the base rate until results arrive.
		role = miRole{kind: roleFiller, rate: c.rate}

	case StateAdjusting:
		c.step++
		c.prevAdjRate = c.rate
		c.rate *= 1 + float64(c.step)*c.cfg.EpsMin*float64(c.dir)
		if c.rate < c.cfg.MinRate {
			c.rate = c.cfg.MinRate
		}
		role = miRole{kind: roleAdjust, rate: c.rate, step: c.step}

	default:
		role = miRole{kind: roleFiller, rate: c.rate}
	}
	c.roles.put(mi, role)
	return role.rate
}

func (c *Controller) numTrials() int { return 2 * c.pairCount() }

// enterDecision (re)initializes an RCT round at the current base rate.
func (c *Controller) enterDecision(resetEps bool) {
	c.state = StateDecision
	if resetEps {
		c.eps = c.cfg.EpsMin
	}
	c.round++
	n := c.numTrials()
	c.trialsLeft = n
	for i := range c.trialHave {
		c.trialHave[i] = false
	}
	// Random order within each pair: (+,−) or (−,+).
	for p := 0; p < c.pairCount(); p++ {
		hiFirst := c.rng.Intn(2) == 0
		a, b := 1, -1
		if !hiFirst {
			a, b = -1, 1
		}
		c.trialSigns[2*p] = a
		c.trialSigns[2*p+1] = b
	}
}

// DeliverResult feeds an MI's finalized stats back into the state machine.
func (c *Controller) DeliverResult(mi int64, stats MIStats) {
	role, ok := c.roles.take(mi)
	if !ok {
		return
	}
	u := c.cfg.Utility.Eval(stats)

	switch role.kind {
	case roleStarting:
		if c.state != StateStarting {
			return // stale: we already left slow start
		}
		if c.haveStartUtility && u < c.lastStartUtility {
			// Utility decreased: return to the previous (half) rate and
			// start making decisions (§3.2 Starting State).
			c.rate = role.rate / 2
			if c.rate < c.cfg.MinRate {
				c.rate = c.cfg.MinRate
			}
			c.enterDecision(true)
			c.rateChanged = true
			return
		}
		c.lastStartUtility = u
		c.haveStartUtility = true

	case roleTrial:
		if c.state != StateDecision || role.round != c.round {
			return // stale trial from an abandoned round
		}
		c.trialUtility[role.trial] = u
		c.trialHave[role.trial] = true
		n := c.numTrials()
		for i := 0; i < n; i++ {
			if !c.trialHave[i] {
				return // wait for the full round
			}
		}
		c.concludeRound()

	case roleAdjust:
		if c.state != StateAdjusting {
			return
		}
		if c.haveAdjUtil && u < c.lastAdjUtil {
			// Utility fell: revert to the previous rate and re-enter
			// decision making (§3.2 Rate Adjusting State).
			c.reversions++
			c.rate = role.rate / (1 + float64(role.step)*c.cfg.EpsMin*float64(c.dir))
			if c.rate < c.cfg.MinRate {
				c.rate = c.cfg.MinRate
			}
			c.enterDecision(true)
			c.rateChanged = true
			return
		}
		c.lastAdjUtil = u
		c.haveAdjUtil = true

	case roleFiller:
		// Filler MIs produce no decisions.
	}
}

// concludeRound applies the §3.2 decision rule once all trial utilities of
// the current round are known.
func (c *Controller) concludeRound() {
	pairs := c.pairCount()
	hiWins, loWins := 0, 0
	for p := 0; p < pairs; p++ {
		var uHi, uLo float64
		for i := 2 * p; i < 2*p+2; i++ {
			if c.trialSigns[i] > 0 {
				uHi = c.trialUtility[i]
			} else {
				uLo = c.trialUtility[i]
			}
		}
		if uHi > uLo {
			hiWins++
		} else if uLo > uHi {
			loWins++
		}
	}
	c.decisions++
	switch {
	case hiWins == pairs:
		c.dir = 1
	case loWins == pairs:
		c.dir = -1
	default:
		// Inconclusive: stay at r, increase granularity, run another round.
		c.inconclusive++
		c.eps += c.cfg.EpsMin
		if c.eps > c.cfg.EpsMax {
			c.eps = c.cfg.EpsMax
		}
		c.enterDecision(false)
		return
	}
	// Conclusive: move to r(1±ε) and enter Rate Adjusting.
	c.rate *= 1 + float64(c.dir)*c.eps
	if c.rate < c.cfg.MinRate {
		c.rate = c.cfg.MinRate
	}
	c.state = StateAdjusting
	c.step = 0
	c.haveAdjUtil = false
	c.eps = c.cfg.EpsMin
	c.rateChanged = true
}

// Decisions returns how many RCT rounds concluded (telemetry).
func (c *Controller) Decisions() int64 { return c.decisions }

// Reversions returns how many adjusting-state reversions occurred.
func (c *Controller) Reversions() int64 { return c.reversions }

// Inconclusive returns how many RCT rounds were inconclusive.
func (c *Controller) Inconclusive() int64 { return c.inconclusive }
