package core

import (
	"math/rand"
)

// MSS is the default data packet size assumed when Config.PacketSize is
// unset; it matches the simulator's default. Per-packet byte accounting
// never assumes it: OnSend records each packet's true size and OnAck
// credits exactly that size.
const MSS = 1500

// Config parameterizes a PCC sender. The zero value is not usable; call
// DefaultConfig and override.
type Config struct {
	// Utility scores each monitor interval (default: the §2.2 safe
	// utility).
	Utility Utility
	// EpsMin is the minimum experiment granularity ε (paper default 0.01).
	EpsMin float64
	// EpsMax caps ε growth under inconclusive RCTs (paper default 0.05).
	EpsMax float64
	// MIRttLo and MIRttHi bound the uniform-random MI length in RTTs
	// (paper default [1.7, 2.2]; Fig. 16 sweeps this down to [1.0, 1.0]).
	MIRttLo, MIRttHi float64
	// MinPktsPerMI floors the MI length at the time to send this many
	// packets (paper default 10).
	MinPktsPerMI int
	// InitialRate is the Starting-state entry rate, bytes/s (paper:
	// 2·MSS/RTT; callers seed it from their RTT hint).
	InitialRate float64
	// MinRate floors the controlled rate, bytes/s.
	MinRate float64
	// NoRCT disables randomized controlled trials (single comparison per
	// decision), reproducing the "PCC without RCT" line of Fig. 16.
	NoRCT bool
	// FinalizeRTTs is how many smoothed RTTs after an MI ends to wait for
	// its straggler ACKs before computing its stats (default 1.5).
	FinalizeRTTs float64
	// PacketSize is the data packet size in bytes the sender will use
	// (default MSS). The monitor uses it for the MinPktsPerMI duration
	// floor and to infer the caller's RTT hint back from InitialRate; the
	// per-packet byte accounting itself always uses the true size reported
	// at OnSend.
	PacketSize int
}

// defaultSafeUtility is the shared instance DefaultConfig and normalize
// hand out. Utility implementations are pure functions of their stats and
// nothing mutates a default-constructed SafeUtility, so one instance can
// serve every flow of every concurrently running trial — saving one
// allocation per flow per trial on the sweeps' setup path. Callers wanting
// different knobs build their own (&SafeUtility{...}).
var defaultSafeUtility = NewSafeUtility()

// DefaultConfig returns the paper's default parameters with the safe
// utility and an initial rate derived from rttHint (2·MSS/RTT).
func DefaultConfig(rttHint float64) Config {
	if rttHint <= 0 {
		rttHint = 0.1
	}
	return Config{
		Utility:      defaultSafeUtility,
		EpsMin:       0.01,
		EpsMax:       0.05,
		MIRttLo:      1.7,
		MIRttHi:      2.2,
		MinPktsPerMI: 10,
		InitialRate:  2 * MSS / rttHint,
		MinRate:      2 * MSS, // 2 packets/s absolute floor
		FinalizeRTTs: 1.5,
	}
}

// SizedConfig returns DefaultConfig with a non-default data packet size
// applied: the MinPktsPerMI duration floor, the initial rate and the rate
// floor all scale to the flow's packet size (2 packets per RTT / per
// second, as DefaultConfig's MSS-based values do for 1500-byte flows).
func SizedConfig(rttHint float64, packetSize int) Config {
	c := DefaultConfig(rttHint)
	if packetSize <= 0 || packetSize == MSS {
		return c
	}
	if rttHint <= 0 {
		rttHint = 0.1
	}
	c.PacketSize = packetSize
	c.InitialRate = 2 * float64(packetSize) / rttHint
	c.MinRate = 2 * float64(packetSize)
	return c
}

// HeavyLossConfig returns the configuration for flows expecting extreme
// random loss under per-flow fair queueing (§4.4.2): the loss-resilient
// utility u = T·(1−L) plus a 100-packet MI floor. At tens of percent loss,
// a 10-packet MI measures throughput with ~±15% binomial noise — far above
// the ±ε experiment signal — so the learner needs larger samples for its
// comparisons to mean anything.
func HeavyLossConfig(rttHint float64) Config {
	c := DefaultConfig(rttHint)
	c.Utility = LossResilientUtility{}
	c.MinPktsPerMI = 100
	return c
}

// InteractiveConfig returns the configuration used for latency-sensitive
// interactive flows (§4.4.1): the latency utility plus a tighter control
// loop — shorter MIs and a faster result deadline — so the learner reacts
// to queue build-up before the queue's own RTT inflation slows it down.
func InteractiveConfig(rttHint float64) Config {
	c := DefaultConfig(rttHint)
	c.Utility = NewLatencyUtility()
	c.MIRttLo, c.MIRttHi = 1.0, 1.3
	c.FinalizeRTTs = 1.1
	return c
}

// mi is one monitor interval's accounting record.
type mi struct {
	id         int64
	rate       float64 // target rate
	start      float64
	end        float64 // actual end (realign may shorten)
	closed     bool
	deadline   float64
	sent       int64
	sentBytes  int64
	acked      int64
	ackedBytes int64
	rttSum     float64
	rttCnt     int64
	// Least-squares accumulators for the within-MI RTT slope (t is the
	// ACK arrival time relative to the MI start, to keep the sums well
	// conditioned).
	sumT, sumT2, sumTR float64
	seqs               []int64
}

// PCC is a complete PCC sender algorithm: Monitor module + Performance-
// oriented control module (Fig. 2). It implements cc.RateAlgo, and the
// identical code runs under internal/transport over real UDP.
type PCC struct {
	cfg Config
	ctl *Controller
	rng *rand.Rand

	srtt   float64
	minRTT float64
	cur    *mi
	// pending[pendHead:] is the deadline-ordered list of closed MIs awaiting
	// their finalize deadline, consumed by index so the backing array's
	// capacity survives (front re-slicing would strand the consumed prefix
	// and cost one allocation per closed MI in steady state).
	pending    []*mi
	pendHead   int
	miFree     []*mi // finalized MIs recycled by openMI (seqs backing kept)
	bySeq      miRing
	nextMI     int64
	prevAvgRTT float64

	started bool
	now     float64

	// Telemetry for experiments.
	TotalSent           int64
	TotalAcked          int64
	TotalLostAtFinalize int64
	MICount             int64
}

// normalize applies New's defaulting rules, shared with Reset so a reused
// sender starts from exactly the configuration a fresh one would.
func (cfg Config) normalize() Config {
	if cfg.Utility == nil {
		cfg.Utility = defaultSafeUtility
	}
	if cfg.EpsMin <= 0 {
		cfg.EpsMin = 0.01
	}
	if cfg.EpsMax < cfg.EpsMin {
		cfg.EpsMax = 0.05
	}
	if cfg.MIRttLo <= 0 {
		cfg.MIRttLo = 1.7
	}
	if cfg.MIRttHi < cfg.MIRttLo {
		cfg.MIRttHi = cfg.MIRttLo
	}
	if cfg.MinPktsPerMI <= 0 {
		cfg.MinPktsPerMI = 10
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = MSS
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = 2 * float64(cfg.PacketSize) // 2 packets/s absolute floor
	}
	if cfg.FinalizeRTTs <= 0 {
		cfg.FinalizeRTTs = 1.5
	}
	return cfg
}

// initialSRTT is the monitor's smoothed-RTT seed: the caller's RTT hint
// inferred back from InitialRate = 2·pkt/RTT, or 100 ms absent a hint.
func (cfg Config) initialSRTT() float64 {
	if cfg.InitialRate > 0 {
		return 2 * float64(cfg.PacketSize) / cfg.InitialRate
	}
	return 0.1
}

// New builds a PCC sender. rng drives MI-length jitter and RCT ordering; it
// must not be shared with other components.
func New(cfg Config, rng *rand.Rand) *PCC {
	cfg = cfg.normalize()
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	p := &PCC{cfg: cfg, rng: rng}
	p.ctl = NewController(cfg, rng)
	p.srtt = cfg.initialSRTT()
	return p
}

// Reset returns the sender to the state New(cfg, rand.New(rand.NewSource(
// seed))) would build, in place: the RNG is rewound to seed, the controller
// re-enters its Starting state, and the monitor's bookkeeping clears — while
// the recycled MI records (with their seqs backing), the seq→MI ring's slot
// array, the controller's role map and role free list are all retained. A
// reset sender therefore produces bit-identical behaviour to a fresh one at
// a fraction of the setup allocations (seeding a math/rand generator alone
// fills a 607-word register).
func (p *PCC) Reset(cfg Config, seed int64) {
	cfg = cfg.normalize()
	p.cfg = cfg
	p.rng.Seed(seed)
	p.ctl.Reset(cfg, p.rng)
	p.srtt = cfg.initialSRTT()
	p.minRTT = 0
	if p.cur != nil {
		p.miFree = append(p.miFree, p.cur)
		p.cur = nil
	}
	p.miFree = append(p.miFree, p.pending[p.pendHead:]...)
	p.pending, p.pendHead = p.pending[:0], 0
	p.bySeq.reset()
	p.nextMI = 0
	p.prevAvgRTT = 0
	p.started = false
	p.now = 0
	p.TotalSent, p.TotalAcked, p.TotalLostAtFinalize, p.MICount = 0, 0, 0, 0
}

// Controller exposes the learning state machine (read-only use in tests
// and experiments).
func (p *PCC) Controller() *Controller { return p.ctl }

// SRTT returns the smoothed RTT the monitor tracks.
func (p *PCC) SRTT() float64 { return p.srtt }

// Name implements cc.RateAlgo.
func (p *PCC) Name() string { return "pcc" }

// Start implements cc.RateAlgo.
func (p *PCC) Start(now float64) {
	p.now = now
	p.started = true
	p.openMI(now)
}

// miDuration draws the §3.1 monitor-interval length:
// max(time for MinPktsPerMI packets, U[MIRttLo, MIRttHi]·RTT).
func (p *PCC) miDuration(rate float64) float64 {
	tPkts := float64(p.cfg.MinPktsPerMI) * float64(p.cfg.PacketSize) / rate
	lo, hi := p.cfg.MIRttLo, p.cfg.MIRttHi
	tRtt := (lo + (hi-lo)*p.rng.Float64()) * p.srtt
	if tPkts > tRtt {
		return tPkts
	}
	return tRtt
}

func (p *PCC) openMI(now float64) {
	id := p.nextMI
	p.nextMI++
	rate := p.ctl.NextMIRate(id)
	var m *mi
	if n := len(p.miFree); n > 0 {
		m = p.miFree[n-1]
		p.miFree = p.miFree[:n-1]
		seqs := m.seqs[:0]
		*m = mi{id: id, rate: rate, start: now, seqs: seqs}
	} else {
		m = &mi{id: id, rate: rate, start: now}
	}
	p.cur = m
	p.cur.end = now + p.miDuration(rate)
	p.MICount++
}

// closeMI moves the current MI to the pending list and opens the next one.
func (p *PCC) closeMI(now float64) {
	m := p.cur
	m.closed = true
	if now < m.end {
		m.end = now // realigned early
	}
	m.deadline = m.end + p.cfg.FinalizeRTTs*p.srtt
	// Insert in deadline order within the live region. MIs close in time
	// order but deadlines are end + FinalizeRTTs·srtt with a moving srtt,
	// so when srtt shrinks faster than MIs lengthen, a later MI's deadline
	// can precede an earlier one's — and the finalize loop in advance only
	// examines the head, so an unexpired head must never hide an expired
	// later entry.
	i := len(p.pending)
	for i > p.pendHead && p.pending[i-1].deadline > m.deadline {
		i--
	}
	p.pending = append(p.pending, nil)
	copy(p.pending[i+1:], p.pending[i:])
	p.pending[i] = m
	p.openMI(now)
}

// advance drives MI boundaries, realignment and finalization; called from
// every OnSend/OnAck/Rate hook with the current time.
func (p *PCC) advance(now float64) {
	p.now = now
	if p.cur == nil {
		return
	}
	if now >= p.cur.end {
		p.closeMI(now)
	}
	// Finalize pending MIs whose straggler deadline passed.
	for p.pendHead < len(p.pending) && now >= p.pending[p.pendHead].deadline {
		m := p.pending[p.pendHead]
		p.pendHead++
		if p.pendHead == len(p.pending) {
			p.pending, p.pendHead = p.pending[:0], 0
		}
		p.finalize(m)
		// finalize leaves no reference behind (bySeq entries are deleted,
		// the controller gets stats by value), so the record is reusable.
		p.miFree = append(p.miFree, m)
	}
	// §3.1 optimization: when a decision arrives mid-MI, change rate
	// immediately and re-align the MI to the rate change.
	if p.ctl.TakeRealign() {
		p.closeMI(now)
	}
}

// finalize computes an MI's stats and feeds the controller.
func (p *PCC) finalize(m *mi) {
	for _, seq := range m.seqs {
		if owner, _ := p.bySeq.get(seq); owner == m {
			p.bySeq.del(seq)
		}
	}
	dur := m.end - m.start
	if dur <= 0 || m.sent == 0 {
		return // degenerate MI (realigned immediately); no evidence
	}
	lost := m.sent - m.acked
	if lost < 0 {
		lost = 0
	}
	p.TotalLostAtFinalize += lost
	stats := MIStats{
		Rate:       float64(m.sentBytes) / dur,
		TargetRate: m.rate,
		Throughput: float64(m.ackedBytes) / dur,
		LossRate:   float64(lost) / float64(m.sent),
		Duration:   dur,
		Sent:       m.sent,
		Acked:      m.acked,
		PrevAvgRTT: p.prevAvgRTT,
		MinRTT:     p.minRTT,
	}
	if m.rttCnt > 0 {
		stats.AvgRTT = m.rttSum / float64(m.rttCnt)
		p.prevAvgRTT = stats.AvgRTT
	}
	if m.rttCnt >= 2 {
		// Least-squares slope of RTT against ACK time within the MI.
		n := float64(m.rttCnt)
		denom := n*m.sumT2 - m.sumT*m.sumT
		if denom > 1e-12 {
			stats.RTTSlope = (n*m.sumTR - m.sumT*m.rttSum) / denom
		}
	}
	p.ctl.DeliverResult(m.id, stats)
}

// Rate implements cc.RateAlgo; the harness polls it before each send.
func (p *PCC) Rate(now float64) float64 {
	p.advance(now)
	if p.cur == nil {
		return p.cfg.MinRate
	}
	return p.cur.rate
}

// OnSend implements cc.RateAlgo.
func (p *PCC) OnSend(seq int64, size int, now float64) {
	p.advance(now)
	m := p.cur
	m.sent++
	m.sentBytes += int64(size)
	m.seqs = append(m.seqs, seq)
	p.bySeq.put(seq, m, size)
	p.TotalSent++
}

// OnAck implements cc.RateAlgo.
func (p *PCC) OnAck(seq int64, rtt float64, now float64) {
	if rtt > 0 {
		if p.srtt == 0 {
			p.srtt = rtt
		} else {
			p.srtt = 0.875*p.srtt + 0.125*rtt
		}
		if p.minRTT == 0 || rtt < p.minRTT {
			p.minRTT = rtt
		}
	}
	p.advance(now)
	m, size := p.bySeq.get(seq)
	if m == nil {
		return // MI already finalized: the straggler counts as lost
	}
	m.acked++
	m.ackedBytes += int64(size)
	if rtt > 0 {
		tr := now - m.start
		m.sumT += tr
		m.sumT2 += tr * tr
		m.sumTR += tr * rtt
		m.rttSum += rtt
		m.rttCnt++
	}
	p.TotalAcked++
	p.bySeq.del(seq)
}

// OnLost implements cc.RateAlgo. PCC needs no explicit loss signal: the
// monitor counts a packet lost when its MI finalizes without an ACK.
func (p *PCC) OnLost(seq int64, now float64) {}
