package core

// roleSlot is one resident entry of the role ring: the MI's role record by
// value plus a liveness flag (a by-value slot has no pointer to test).
type roleSlot struct {
	role miRole
	live bool
}

// roleRing maps outstanding MI ids to their role records. It replaces a
// map[int64]*miRole plus a free list of recycled records: MI ids are
// assigned by the monitor in strictly increasing order from zero and results
// are delivered about one RTT later, so outstanding ids always lie in one
// small contiguous window [lo, hi). A role's slot is id mod capacity — one
// indexed load instead of a map probe — records live by value so there is
// nothing to allocate or recycle, and draining the ring on Reset is
// trivially deterministic (the map iteration it replaces recycled records
// in random order, which perturbed warm-trial allocation placement from run
// to run).
type roleRing struct {
	slots  []roleSlot // power-of-two capacity
	lo, hi int64      // resident window; empty iff lo == hi
	n      int        // resident count
}

// put records the role for an MI id, overwriting any previous record.
func (r *roleRing) put(id int64, role miRole) {
	if r.slots == nil {
		r.slots = make([]roleSlot, 16)
	}
	if r.n == 0 {
		r.lo, r.hi = id, id+1
	} else {
		lo, hi := r.lo, r.hi
		if id < lo {
			lo = id
		}
		if id >= hi {
			hi = id + 1
		}
		for hi-lo > int64(len(r.slots)) {
			r.grow()
		}
		r.lo, r.hi = lo, hi
	}
	i := id & int64(len(r.slots)-1)
	if !r.slots[i].live {
		r.n++
	}
	r.slots[i] = roleSlot{role: role, live: true}
}

// take removes and returns the role recorded for an MI id, reporting whether
// one was present.
func (r *roleRing) take(id int64) (miRole, bool) {
	if id < r.lo || id >= r.hi {
		return miRole{}, false
	}
	i := id & int64(len(r.slots)-1)
	s := r.slots[i]
	if !s.live {
		return miRole{}, false
	}
	r.slots[i] = roleSlot{}
	r.n--
	if r.n == 0 {
		r.lo, r.hi = 0, 0
		return s.role, true
	}
	// Advance the window edges past cleared slots so the span tracks the
	// resident set instead of growing monotonically.
	for r.lo < r.hi && !r.slots[r.lo&int64(len(r.slots)-1)].live {
		r.lo++
	}
	for r.hi > r.lo && !r.slots[(r.hi-1)&int64(len(r.slots)-1)].live {
		r.hi--
	}
	return s.role, true
}

// reset empties the ring in place, retaining its grown slot array. Unlike
// the map drain it replaces, this is order-free and therefore identical on
// every run.
func (r *roleRing) reset() {
	clear(r.slots)
	r.lo, r.hi = 0, 0
	r.n = 0
}

// grow doubles the capacity, re-placing resident entries under the new
// modulus.
func (r *roleRing) grow() {
	old := r.slots
	oldMask := int64(len(old) - 1)
	r.slots = make([]roleSlot, 2*len(old))
	mask := int64(len(r.slots) - 1)
	for id := r.lo; id < r.hi; id++ {
		if s := old[id&oldMask]; s.live {
			r.slots[id&mask] = s
		}
	}
}
