package core

import "math"

// VivaceUtility implements the gradient-based utility of PCC's successor,
// PCC Vivace (NSDI 2018) — included here as the "designing a better
// learning algorithm" extension the paper's §6 calls out:
//
//	u(x) = x^t − b·x·(dRTT/dt) − c·x·L
//
// with x the sending rate (Mbps), t<1 a concave throughput exponent, the
// RTT gradient measured within the MI, and L the loss rate. The concave
// throughput term plus linear penalties make the multi-sender game strictly
// socially concave, giving convergence without the sigmoid cut-off, and the
// RTT-gradient term reacts to queue build-up long before loss occurs.
type VivaceUtility struct {
	// Exponent is t (default 0.9).
	Exponent float64
	// LatencyCoeff is b (default 50; Vivace's published 900 assumes a
	// different rate normalization and pins the rate to zero here).
	LatencyCoeff float64
	// LossCoeff is c (default 11.35).
	LossCoeff float64
}

// NewVivaceUtility returns the default coefficients (see field docs).
func NewVivaceUtility() *VivaceUtility {
	return &VivaceUtility{Exponent: 0.9, LatencyCoeff: 50, LossCoeff: 11.35}
}

// Name implements Utility.
func (u *VivaceUtility) Name() string { return "vivace" }

// Eval implements Utility.
func (u *VivaceUtility) Eval(m MIStats) float64 {
	x := m.Rate * 8 / 1e6
	if x <= 0 {
		return 0
	}
	l := effectiveLoss(m)
	return math.Pow(x, u.Exponent) - u.LatencyCoeff*x*m.RTTSlope - u.LossCoeff*x*l
}
