package core

import (
	"math/rand"
	"testing"
)

// exerciseController drives a controller through a seeded random schedule of
// MI assignments and (partly out-of-order, partly dropped) result
// deliveries, recording every rate the controller hands out or settles on.
// Dropped MIs leave their roles behind in the role store until Reset —
// exactly the residue that must not leak into the next trial.
func exerciseController(c *Controller, u *float64) []float64 {
	rng := rand.New(rand.NewSource(7))
	var rates []float64
	var pending []int64
	mi := int64(0)
	for step := 0; step < 400; step++ {
		if rng.Intn(3) < 2 || len(pending) == 0 {
			rates = append(rates, c.NextMIRate(mi))
			pending = append(pending, mi)
			mi++
			continue
		}
		k := rng.Intn(len(pending))
		id := pending[k]
		pending = append(pending[:k], pending[k+1:]...)
		if rng.Intn(8) == 0 {
			continue // result lost: the MI's role is never consumed
		}
		*u = float64(1 + rng.Intn(5))
		c.DeliverResult(id, MIStats{})
		rates = append(rates, c.Rate())
	}
	return rates
}

// TestControllerResetDeterministic is the regression test for the role-store
// recycling bug: role bookkeeping used to recycle ids through a free list
// refilled by map iteration, so the post-Reset id sequence — and with it the
// replay behaviour — depended on Go's randomized map order. The store is now
// an id-windowed ring, and this test pins the guarantee: the same seeded
// exercise replays the identical rate sequence across repeated Resets and
// matches a fresh controller exactly.
func TestControllerResetDeterministic(t *testing.T) {
	u := 1.0
	cfg := DefaultConfig(0.03)
	cfg.Utility = constUtility{&u}

	fresh := NewController(cfg, rand.New(rand.NewSource(5)))
	want := exerciseController(fresh, &u)

	reused := NewController(cfg, rand.New(rand.NewSource(5)))
	exerciseController(reused, &u)
	for trial := 0; trial < 3; trial++ {
		reused.Reset(cfg, rand.New(rand.NewSource(5)))
		got := exerciseController(reused, &u)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d rates recorded, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rate[%d] = %v, want %v (reset leaked role state)",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestRoleRingGrowAndWindow exercises the ring's window mechanics directly:
// ids arrive strictly increasing, consumption is arbitrary-order, and the
// live window can span more than the initial capacity (forcing grow).
func TestRoleRingGrowAndWindow(t *testing.T) {
	var r roleRing
	const n = 200
	for i := int64(0); i < n; i++ {
		r.put(i, miRole{kind: roleFiller, rate: float64(i)})
	}
	// Consume evens first, then odds, always out of order vs. insertion.
	for i := int64(0); i < n; i += 2 {
		role, ok := r.take(i)
		if !ok || role.rate != float64(i) {
			t.Fatalf("take(%d) = %+v, %v", i, role, ok)
		}
	}
	if _, ok := r.take(4); ok {
		t.Fatal("double take must miss")
	}
	for i := int64(n - 1); i >= 1; i -= 2 {
		role, ok := r.take(i)
		if !ok || role.rate != float64(i) {
			t.Fatalf("take(%d) = %+v, %v", i, role, ok)
		}
	}
	if r.n != 0 {
		t.Fatalf("%d roles still live after full drain", r.n)
	}
	r.reset()
	// After reset the id space restarts at zero, as a new trial's MIs do.
	r.put(0, miRole{kind: roleStarting, rate: 1})
	if role, ok := r.take(0); !ok || role.kind != roleStarting {
		t.Fatalf("take(0) after reset = %+v, %v", role, ok)
	}
}
