// Package core implements the paper's primary contribution:
// Performance-oriented Congestion Control (PCC).
//
// A PCC sender slices time into monitor intervals (MIs), sends at one rate
// per MI, aggregates SACK feedback into per-MI performance metrics
// (throughput, loss rate, average RTT), scores each MI with a pluggable
// utility function, and runs the §3.2 learning control loop — Starting,
// Decision Making (with randomized controlled trials) and Rate Adjusting
// states — over the observed (rate, utility) pairs.
//
// The package is deliberately substrate-free: it depends on neither the
// simulator nor on sockets. internal/cc adapts it to the simulated network
// and internal/transport runs the very same controller over real UDP, which
// is the deployability story of §2.3.
package core

import "math"

// MIStats are the aggregated performance metrics of one monitor interval
// (§3.1): what the Monitor module hands to the utility function.
type MIStats struct {
	// Rate is the actual sending rate achieved during the MI, bytes/s.
	Rate float64
	// TargetRate is the rate the controller asked for, bytes/s.
	TargetRate float64
	// Throughput is the acknowledged-data rate over the MI, bytes/s.
	Throughput float64
	// LossRate is lost/sent for packets launched in the MI, in [0,1].
	LossRate float64
	// AvgRTT is the mean RTT of the MI's acknowledged packets, seconds
	// (0 when nothing was acknowledged).
	AvgRTT float64
	// PrevAvgRTT is the previous MI's AvgRTT, for utilities that penalize
	// latency growth (§4.4.1).
	PrevAvgRTT float64
	// MinRTT is the connection's minimum observed RTT (propagation
	// estimate), the anchor for queueing-delay penalties.
	MinRTT float64
	// RTTSlope is the within-MI RTT trend d(RTT)/dt (seconds per second):
	// positive when this MI's sending rate is building queue, negative
	// when the queue is draining. Unlike AvgRTT it is insensitive to how
	// much standing queue already exists, which makes it the reliable
	// discriminator between the two RCT trial rates for latency-sensitive
	// utilities.
	RTTSlope float64
	// Duration is the realized MI length, seconds.
	Duration float64
	// Sent and Acked count the MI's data packets.
	Sent, Acked int64
}

// Utility scores a monitor interval. Higher is better. Implementations must
// be pure functions of the stats so the controller's comparisons are
// meaningful.
type Utility interface {
	Name() string
	Eval(m MIStats) float64
}

// sigmoid is the paper's cut-off function: Sigmoid(y) = 1/(1+e^(αy)).
// For α ≫ 0 it is ≈1 for y < 0 and falls rapidly toward 0 for y > 0.
func sigmoid(y, alpha float64) float64 {
	// Clamp the exponent to avoid overflow; e^±50 already saturates.
	e := alpha * y
	if e > 50 {
		return 0
	}
	if e < -50 {
		return 1
	}
	return 1 / (1 + math.Exp(e))
}

// effectiveLoss de-noises the per-MI loss measurement for knee-based
// utilities: a single lost packet is forgiven. At realistic MI sizes
// (hundreds of packets) this shifts the measured rate by well under the 5%
// knee's width, but during startup — where an MI holds only ~10 packets and
// one random loss would read as 10% and trip the sigmoid cliff — it removes
// the quantization noise that would otherwise trap the learner at low rates
// on lossy links (§4.1.4's scenario).
func effectiveLoss(m MIStats) float64 {
	if m.Sent <= 0 {
		return m.LossRate
	}
	lost := m.LossRate * float64(m.Sent)
	adj := (lost - 1) / float64(m.Sent)
	if adj < 0 {
		return 0
	}
	return adj
}

// SafeUtility is the §2.2 "safe" general-purpose utility:
//
//	u(x) = T·Sigmoid(L−0.05) − x·L
//
// with T the throughput, L the loss rate and x the sending rate. The
// sigmoid caps the worst-case loss rate near 5% and Theorem 1 proves
// competing senders using it converge to a fair equilibrium.
type SafeUtility struct {
	// Alpha is the sigmoid steepness; Theorem 1 requires
	// α ≥ max{2.2(n−1), 100}. Default 100.
	Alpha float64
	// LossCap is the knee position (default 0.05).
	LossCap float64
	// NoForgiveness disables the single-loss de-noising (ablation only;
	// see effectiveLoss).
	NoForgiveness bool
}

// NewSafeUtility returns the default safe utility (α=100, cap 5%).
func NewSafeUtility() *SafeUtility { return &SafeUtility{Alpha: 100, LossCap: 0.05} }

// Name implements Utility.
func (u *SafeUtility) Name() string { return "safe" }

// Eval implements Utility. Rates are scored in Mbps so the two terms share
// the paper's scale.
func (u *SafeUtility) Eval(m MIStats) float64 {
	t := m.Throughput * 8 / 1e6
	x := m.Rate * 8 / 1e6
	l := effectiveLoss(m)
	if u.NoForgiveness {
		l = m.LossRate
	}
	return t*sigmoid(l-u.LossCap, u.Alpha) - x*l
}

// LossResilientUtility is the §4.4.2 utility u = Throughput·(1−L): with
// per-flow fair queueing isolating flows, a sender may endure arbitrary
// random loss (theoretically up to ~100%) and still keep sending at its
// fair share.
type LossResilientUtility struct{}

// Name implements Utility.
func (LossResilientUtility) Name() string { return "loss-resilient" }

// Eval implements Utility.
func (LossResilientUtility) Eval(m MIStats) float64 {
	return (m.Throughput * 8 / 1e6) * (1 - m.LossRate)
}

// LatencyUtility is the §4.4.1 interactive-flow utility
//
//	u = (T·Sigmoid(L−0.05)·(RTTmin/RTT_n)^k·e^(−g·dRTT/dt) − x·L) / RTT_n
//
// expressing "maximize power (throughput/delay) and avoid latency
// increase". With FQ in the network it keeps self-inflicted queueing near
// zero, making CoDel redundant (Fig. 17).
//
// Relative to the paper's formula (which uses RTT_{n−1}/RTT_n with k=1 and
// no slope term) this strengthens the latency signal in two ways, both
// needed for the learner to actually hold the queue near zero (see
// DESIGN.md §4):
//
//   - (RTTmin/RTT_n)^k anchors the penalty to the propagation delay, so the
//     ±ε trials are sharply distinguishable while the queue is small;
//   - the within-MI RTT-slope penalty e^(−g·dRTT/dt) stays informative as
//     the standing queue deepens, where the ratio terms flatten out — the
//     same insight that later drove PCC Vivace's gradient utility.
type LatencyUtility struct {
	Alpha   float64
	LossCap float64
	// Sensitivity is the exponent on the RTT-ratio term.
	Sensitivity float64
	// SlopeGain weights the within-MI RTT-slope penalty. The slope is the
	// only latency signal whose trial-to-trial difference does not vanish
	// as the standing queue deepens, so it is what actually pins the
	// learner just below its fair share (the same insight later drove PCC
	// Vivace's gradient-based utility).
	SlopeGain float64
}

// NewLatencyUtility returns the latency utility with the calibrated
// defaults (k=1, g=30; see the type comment and DESIGN.md §4).
func NewLatencyUtility() *LatencyUtility {
	return &LatencyUtility{Alpha: 100, LossCap: 0.05, Sensitivity: 1, SlopeGain: 30}
}

// Name implements Utility.
func (u *LatencyUtility) Name() string { return "latency" }

// Eval implements Utility.
func (u *LatencyUtility) Eval(m MIStats) float64 {
	rtt := m.AvgRTT
	if rtt <= 0 {
		rtt = m.PrevAvgRTT
	}
	if rtt <= 0 {
		rtt = 1e-3
	}
	anchor := m.MinRTT
	if anchor <= 0 || anchor > rtt {
		anchor = rtt
	}
	t := m.Throughput * 8 / 1e6
	x := m.Rate * 8 / 1e6
	l := effectiveLoss(m)
	k := u.Sensitivity
	if k <= 0 {
		k = 1
	}
	// The slope penalty is exponential so two trial MIs remain
	// distinguishable no matter how steep the build-up is (a linear
	// penalty clamped at a floor saturates, letting runaway up-moves look
	// identical to mild ones).
	slopeFactor := math.Exp(-u.SlopeGain * m.RTTSlope)
	if slopeFactor > 2 {
		slopeFactor = 2
	}
	return (t*sigmoid(l-u.LossCap, u.Alpha)*math.Pow(anchor/rtt, k)*slopeFactor - x*l) / rtt
}
