package core

import (
	"math"
	"math/rand"
	"testing"
)

// captureUtility records every finalized MI's stats so tests can audit the
// monitor's byte accounting directly.
type captureUtility struct{ stats []MIStats }

func (c *captureUtility) Name() string           { return "capture" }
func (c *captureUtility) Eval(m MIStats) float64 { c.stats = append(c.stats, m); return m.Throughput }

// TestSubMSSPacketCreditedTrueSize is the tentpole regression for
// size-accurate accounting: a flow of 700-byte packets must have every ACK
// credited exactly 700 bytes in its MI stats — not the 1500-byte MSS the
// monitor used to assume — so measured throughput equals measured sent
// bytes on a lossless path.
func TestSubMSSPacketCreditedTrueSize(t *testing.T) {
	capt := &captureUtility{}
	const size = 700
	cfg := SizedConfig(0.03, size)
	cfg.Utility = capt
	p := New(cfg, rand.New(rand.NewSource(1)))
	p.Start(0)
	now := 0.0
	seq := int64(0)
	for now < 1.0 {
		r := p.Rate(now)
		p.OnSend(seq, size, now)
		p.OnAck(seq, 0.03, now+0.03)
		seq++
		now += size / r
	}
	p.Rate(now + 5) // flush finalization
	if len(capt.stats) == 0 {
		t.Fatal("no MI finalized")
	}
	sawAck := false
	for _, s := range capt.stats {
		sentBytes := s.Rate * s.Duration
		ackedBytes := s.Throughput * s.Duration
		if math.Abs(sentBytes-float64(s.Sent*size)) > 1e-6 {
			t.Fatalf("MI sent bytes %.1f, want %d (%d packets x %d B)", sentBytes, s.Sent*size, s.Sent, size)
		}
		if math.Abs(ackedBytes-float64(s.Acked*size)) > 1e-6 {
			t.Fatalf("MI acked bytes %.1f, want %d (%d acks x %d B) — ACKs credited a foreign size",
				ackedBytes, s.Acked*size, s.Acked, size)
		}
		if s.Acked > 0 {
			sawAck = true
		}
	}
	if !sawAck {
		t.Fatal("no MI recorded any acknowledged packets")
	}
}

// TestMixedSizesWithinOneMI checks the per-packet ledger inside a single
// monitor interval: when a full-size packet and a short tail packet share
// an MI (the real transport's final chunk), each ACK credits its own size.
func TestMixedSizesWithinOneMI(t *testing.T) {
	capt := &captureUtility{}
	cfg := DefaultConfig(0.03)
	cfg.Utility = capt
	p := New(cfg, rand.New(rand.NewSource(1)))
	p.Start(0)
	p.OnSend(0, 1400, 0.01)
	p.OnSend(1, 137, 0.02) // short final chunk
	p.OnAck(0, 0.03, 0.04)
	p.OnAck(1, 0.03, 0.05)
	// Close and finalize the interval well past every deadline.
	p.Rate(60)
	if len(capt.stats) == 0 {
		t.Fatal("no MI finalized")
	}
	s := capt.stats[0]
	const want = 1400 + 137
	if got := s.Throughput * s.Duration; math.Abs(got-want) > 1e-6 {
		t.Fatalf("MI acked bytes %.1f, want %d", got, want)
	}
	if got := s.Rate * s.Duration; math.Abs(got-want) > 1e-6 {
		t.Fatalf("MI sent bytes %.1f, want %d", got, want)
	}
}

// TestPendingFinalizeOrderShrinkingSRTT reproduces the head-blocking bug:
// finalize deadlines are end + FinalizeRTTs·srtt with a moving srtt, so an
// MI closed while the RTT estimate was huge can carry a later deadline than
// an MI closed afterwards. The pending list must finalize by deadline, not
// close order.
func TestPendingFinalizeOrderShrinkingSRTT(t *testing.T) {
	p := New(DefaultConfig(0.1), rand.New(rand.NewSource(1)))
	p.Start(0)
	// MI 0 closes while srtt is enormous: deadline lands far in the future.
	p.OnSend(0, MSS, 0.1)
	p.srtt = 10
	p.closeMI(1.0)
	// MI 1 closes after the estimate collapsed: its deadline precedes MI 0's.
	p.OnSend(1, MSS, 1.1)
	p.srtt = 0.01
	p.closeMI(1.5)
	if len(p.pending) != 2 || p.pending[0].id != 1 || p.pending[1].id != 0 {
		ids := make([]int64, len(p.pending))
		for i, m := range p.pending {
			ids[i] = m.id
		}
		t.Fatalf("pending not deadline-sorted: ids %v (deadlines should order 1 before 0)", ids)
	}
	// Advance past MI 1's deadline but far before MI 0's: the expired MI
	// must finalize even though the older MI is still within its deadline.
	p.advance(2.0)
	for _, m := range p.pending[p.pendHead:] {
		if m.id == 1 {
			t.Fatal("expired MI 1 still pending behind MI 0's later deadline")
		}
	}
	if p.TotalLostAtFinalize != 1 {
		t.Fatalf("TotalLostAtFinalize = %d, want 1 (MI 1's unacked packet)", p.TotalLostAtFinalize)
	}
	found0 := false
	for _, m := range p.pending[p.pendHead:] {
		if m.id == 0 {
			found0 = true
		}
	}
	if !found0 {
		t.Fatal("MI 0 finalized before its deadline passed")
	}
}

// TestSizedConfigScalesToPacketSize pins the SizedConfig derivations: the
// initial rate and floor are 2 packets per RTT / per second at the flow's
// size, and New recovers the caller's RTT hint from them.
func TestSizedConfigScalesToPacketSize(t *testing.T) {
	cfg := SizedConfig(0.05, 512)
	if cfg.PacketSize != 512 {
		t.Fatalf("PacketSize = %d, want 512", cfg.PacketSize)
	}
	if want := 2 * 512 / 0.05; cfg.InitialRate != want {
		t.Fatalf("InitialRate = %v, want %v", cfg.InitialRate, want)
	}
	if cfg.MinRate != 2*512 {
		t.Fatalf("MinRate = %v, want %v", cfg.MinRate, 2*512.0)
	}
	p := New(cfg, rand.New(rand.NewSource(1)))
	if math.Abs(p.SRTT()-0.05) > 1e-12 {
		t.Fatalf("srtt inferred as %v, want the 0.05 hint", p.SRTT())
	}
	// The default size must behave exactly as DefaultConfig (byte-identical
	// reports depend on it).
	d, ref := SizedConfig(0.05, MSS), DefaultConfig(0.05)
	if d.PacketSize != ref.PacketSize || d.InitialRate != ref.InitialRate || d.MinRate != ref.MinRate {
		t.Fatalf("SizedConfig(rtt, MSS) diverged from DefaultConfig: %+v vs %+v", d, ref)
	}
}
