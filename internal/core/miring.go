package core

// miSlot is one resident entry of the ring: the monitor interval a sequence
// belongs to plus the wire size recorded for it at OnSend, so the ACK path
// can credit the packet's true size without a second lookup structure.
type miSlot struct {
	m    *mi
	size int32
}

// miRing maps in-flight sequence numbers to their monitor interval and
// recorded send size. It replaces a map[int64]*mi on the per-packet
// send/ack path: resident sequences always lie in one contiguous window
// [lo, hi) — new sends extend hi, retransmissions of old sequences extend lo
// back down — so a sequence's slot is seq mod capacity, one indexed load
// instead of a map probe, and the structure allocates only on the rare
// window doubling. Semantically it is exactly the map: get returns nil for
// absent keys, put overwrites, delete clears.
type miRing struct {
	slots  []miSlot // power-of-two capacity
	lo, hi int64    // resident window; empty iff lo == hi
	n      int      // resident count
}

func (r *miRing) get(seq int64) (*mi, int) {
	if seq < r.lo || seq >= r.hi {
		return nil, 0
	}
	s := r.slots[seq&int64(len(r.slots)-1)]
	return s.m, int(s.size)
}

func (r *miRing) put(seq int64, m *mi, size int) {
	if r.slots == nil {
		r.slots = make([]miSlot, 256)
	}
	if r.n == 0 {
		r.lo, r.hi = seq, seq+1
	} else {
		lo, hi := r.lo, r.hi
		if seq < lo {
			lo = seq
		}
		if seq >= hi {
			hi = seq + 1
		}
		for hi-lo > int64(len(r.slots)) {
			r.grow()
		}
		r.lo, r.hi = lo, hi
	}
	i := seq & int64(len(r.slots)-1)
	if r.slots[i].m == nil {
		r.n++
	}
	r.slots[i] = miSlot{m: m, size: int32(size)}
}

func (r *miRing) del(seq int64) {
	if seq < r.lo || seq >= r.hi {
		return
	}
	i := seq & int64(len(r.slots)-1)
	if r.slots[i].m == nil {
		return
	}
	r.slots[i] = miSlot{}
	r.n--
	if r.n == 0 {
		r.lo, r.hi = 0, 0
		return
	}
	// Advance the window edges past cleared slots so the span tracks the
	// resident set instead of growing monotonically.
	for r.slots[r.lo&int64(len(r.slots)-1)].m == nil && r.lo < r.hi {
		r.lo++
	}
	for r.slots[(r.hi-1)&int64(len(r.slots)-1)].m == nil && r.hi > r.lo {
		r.hi--
	}
}

// reset empties the ring, retaining its grown slot array (a
// larger-than-fresh capacity only changes when grow fires, never a lookup
// result, so reuse is semantically invisible).
func (r *miRing) reset() {
	clear(r.slots)
	r.lo, r.hi = 0, 0
	r.n = 0
}

// grow doubles the capacity, re-placing resident entries under the new
// modulus.
func (r *miRing) grow() {
	old := r.slots
	oldMask := int64(len(old) - 1)
	r.slots = make([]miSlot, 2*len(old))
	mask := int64(len(r.slots) - 1)
	for seq := r.lo; seq < r.hi; seq++ {
		if s := old[seq&oldMask]; s.m != nil {
			r.slots[seq&mask] = s
		}
	}
}
