// Package topogen generates internet-scale network topologies for the
// experiment harness: programmatic graph generators (fat-tree datacenter,
// transit-stub WAN, LEO-satellite chain), a delay-matrix ingest path that
// replays measured all-pairs RTT grids as propagation delays, and
// deterministic shortest-path route computation — FlowSpec hop chains
// cannot be hand-written for a 500-node graph.
//
// Everything here is deterministic by construction: generators draw their
// delay distributions from a seeded local RNG in a fixed construction
// order, node and link orders are append orders, and the Router breaks
// shortest-path ties by (total delay, hop count, link index), so the same
// spec always yields byte-identical graphs and routes. Per-node shard
// hints record each generator's locality structure (a fat-tree pod, a
// transit domain with its stub networks, a LEO segment) for the sharded
// conservative engine's partitioner.
package topogen

import "fmt"

// Link is one directed link of a generated graph. Fields mirror the
// harness's LinkSpec so conversion is a field copy.
type Link struct {
	// Name registers the link for route references; unique per graph.
	Name string
	// From/To are node names; both must be added before the link.
	From, To string
	// RateMbps is the link capacity in Mbps.
	RateMbps float64
	// Delay is the one-way propagation delay, seconds.
	Delay float64
	// Loss is the Bernoulli wire-loss probability.
	Loss float64
	// BufBytes is the link queue capacity in bytes.
	BufBytes int
}

// Graph is a generated topology: interned nodes (dense integer ids in
// add order), directed links, and per-node shard hints. Nodes and links
// are append-only; a Graph is immutable once handed to a Router.
type Graph struct {
	nodes   []string
	hints   []int
	nodeIdx map[string]int

	links   []Link
	linkIdx map[string]int
	// out[v] lists the indices of v's outgoing links in add order — the
	// adjacency the Router relaxes, so route tie-breaking follows link
	// registration order.
	out [][]int32
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodeIdx: map[string]int{}, linkIdx: map[string]int{}}
}

// AddNode interns a node with a shard hint and returns its dense id.
// Re-adding an existing node returns its id and must agree on the hint.
func (g *Graph) AddNode(name string, hint int) int {
	if i, ok := g.nodeIdx[name]; ok {
		if g.hints[i] != hint {
			panic(fmt.Sprintf("topogen: node %q re-added with hint %d (was %d)", name, hint, g.hints[i]))
		}
		return i
	}
	i := len(g.nodes)
	g.nodeIdx[name] = i
	g.nodes = append(g.nodes, name)
	g.hints = append(g.hints, hint)
	g.out = append(g.out, nil)
	return i
}

// AddLink appends a directed link. Both endpoints must already be interned
// and the name must be unique. Returns the link's dense index.
func (g *Graph) AddLink(l Link) int {
	if _, dup := g.linkIdx[l.Name]; dup {
		panic(fmt.Sprintf("topogen: duplicate link %q", l.Name))
	}
	from, ok := g.nodeIdx[l.From]
	if !ok {
		panic(fmt.Sprintf("topogen: link %q from unknown node %q", l.Name, l.From))
	}
	if _, ok := g.nodeIdx[l.To]; !ok {
		panic(fmt.Sprintf("topogen: link %q to unknown node %q", l.Name, l.To))
	}
	i := len(g.links)
	g.linkIdx[l.Name] = i
	g.links = append(g.links, l)
	g.out[from] = append(g.out[from], int32(i))
	return i
}

// AddDuplex adds a symmetric pair of directed links between a and b: a→b
// registered as name, b→a as name+"~" (the convention the generators use
// for reverse directions).
func (g *Graph) AddDuplex(name, a, b string, rateMbps, delay, loss float64, bufBytes int) {
	g.AddLink(Link{Name: name, From: a, To: b, RateMbps: rateMbps, Delay: delay, Loss: loss, BufBytes: bufBytes})
	g.AddLink(Link{Name: name + "~", From: b, To: a, RateMbps: rateMbps, Delay: delay, Loss: loss, BufBytes: bufBytes})
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the directed link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the name of node i (add order).
func (g *Graph) Node(i int) string { return g.nodes[i] }

// NodeIndex returns a node's dense id, or -1 when unknown.
func (g *Graph) NodeIndex(name string) int {
	if i, ok := g.nodeIdx[name]; ok {
		return i
	}
	return -1
}

// Hint returns node i's shard hint.
func (g *Graph) Hint(i int) int { return g.hints[i] }

// Links returns the link slice in add order. Callers must not mutate it.
func (g *Graph) Links() []Link { return g.links }

// Nodes returns the node names in add order. Callers must not mutate it.
func (g *Graph) Nodes() []string { return g.nodes }

// ShardHints materializes the node→hint map the harness's partitioner
// consumes: nodes sharing a hint value are kept on one shard.
func (g *Graph) ShardHints() map[string]int {
	m := make(map[string]int, len(g.nodes))
	for i, name := range g.nodes {
		m[name] = g.hints[i]
	}
	return m
}
