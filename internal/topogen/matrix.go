package topogen

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Delay-matrix ingest: replay a measured all-pairs RTT grid (the IDMS
// shape of data — an internet delay matrix service serves exactly this)
// as propagation delays, instead of inventing delays by hand.
//
// File format (see README "Topology generators"):
//
//	# comment and blank lines are ignored
//	nyc lon fra        ← first content line: n node names
//	0   70.1 81.0      ← then n rows of n RTT values, milliseconds
//	70.1 0   12.5
//	81.0 12.5 -        ← "-" (or any negative value) marks an unmeasured pair
//
// The diagonal is ignored. An asymmetric grid is taken at face value
// (RTT[i][j] feeds the i→j direction); a missing direction borrows the
// measured opposite one.

// maxMatrixNodes bounds parser allocations on hostile input (fuzzing) —
// far above any real delay matrix.
const maxMatrixNodes = 4096

// DelayMatrix is a parsed all-pairs RTT grid. RTT is in seconds, -1 for
// unmeasured pairs; RTT[i][i] is always 0.
type DelayMatrix struct {
	Names []string
	RTT   [][]float64
}

// ParseDelayMatrix parses the text format above.
func ParseDelayMatrix(data []byte) (*DelayMatrix, error) {
	var m DelayMatrix
	row := 0
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		s := strings.TrimSpace(string(line))
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if m.Names == nil {
			if len(fields) < 2 {
				return nil, fmt.Errorf("topogen: delay matrix line %d: need >= 2 node names, got %d", lineNo, len(fields))
			}
			if len(fields) > maxMatrixNodes {
				return nil, fmt.Errorf("topogen: delay matrix line %d: %d nodes exceeds the %d-node limit", lineNo, len(fields), maxMatrixNodes)
			}
			seen := make(map[string]bool, len(fields))
			for _, name := range fields {
				if seen[name] {
					return nil, fmt.Errorf("topogen: delay matrix line %d: duplicate node %q", lineNo, name)
				}
				seen[name] = true
			}
			m.Names = fields
			m.RTT = make([][]float64, len(fields))
			continue
		}
		if row >= len(m.Names) {
			return nil, fmt.Errorf("topogen: delay matrix line %d: more rows than the %d declared nodes", lineNo, len(m.Names))
		}
		if len(fields) != len(m.Names) {
			return nil, fmt.Errorf("topogen: delay matrix line %d: row %d has %d values, want %d", lineNo, row, len(fields), len(m.Names))
		}
		vals := make([]float64, len(fields))
		for j, f := range fields {
			if f == "-" {
				vals[j] = -1
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("topogen: delay matrix line %d: bad RTT %q: %v", lineNo, f, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("topogen: delay matrix line %d: non-finite RTT %q", lineNo, f)
			}
			if v < 0 {
				vals[j] = -1
				continue
			}
			vals[j] = v * 1e-3 // milliseconds on the wire format, seconds in memory
		}
		vals[row] = 0
		m.RTT[row] = vals
		row++
	}
	if m.Names == nil {
		return nil, fmt.Errorf("topogen: delay matrix has no content")
	}
	if row != len(m.Names) {
		return nil, fmt.Errorf("topogen: delay matrix has %d rows, want %d", row, len(m.Names))
	}
	return &m, nil
}

// MeshGraph converts the matrix into a full-mesh graph: one duplex link
// pair per measured node pair, each direction's propagation delay half
// that direction's RTT (borrowing the opposite direction when only one
// was measured). Links are named "m<i>-<j>" for the i→j direction. Every
// node gets its own shard hint — a mesh has no locality to exploit.
func (m *DelayMatrix) MeshGraph(rateMbps float64, bufBytes int) *Graph {
	g := New()
	for i, name := range m.Names {
		g.AddNode(name, i)
	}
	for i := range m.Names {
		for j := i + 1; j < len(m.Names); j++ {
			fwd, rev := m.RTT[i][j], m.RTT[j][i]
			if fwd < 0 {
				fwd = rev
			}
			if rev < 0 {
				rev = m.RTT[i][j]
			}
			if fwd < 0 || fwd == 0 || rev == 0 {
				continue // unmeasured (or degenerate zero-RTT) pair: no link
			}
			g.AddLink(Link{Name: fmt.Sprintf("m%d-%d", i, j), From: m.Names[i], To: m.Names[j],
				RateMbps: rateMbps, Delay: fwd / 2, BufBytes: bufBytes})
			g.AddLink(Link{Name: fmt.Sprintf("m%d-%d", j, i), From: m.Names[j], To: m.Names[i],
				RateMbps: rateMbps, Delay: rev / 2, BufBytes: bufBytes})
		}
	}
	return g
}
