package topogen

import (
	"fmt"
	"math"

	"pcc/internal/netem"
)

// Router computes deterministic shortest-path routes over a generated
// graph, caching one shortest-path tree per source node. Determinism
// rules: a path minimizes, in order, (1) total propagation delay, (2) hop
// count, (3) the index of the entering link at the first divergence —
// adjacency is relaxed in link add order, so equal-delay equal-length
// alternatives resolve to the earliest-registered links. The same graph
// therefore always yields the same hop chains, which is what keeps
// generated experiments byte-identical across runs, workers and shards.
//
// A Router is not safe for concurrent use: drivers compute all routes
// up front (before fanning trials out) and share the resulting hop
// chains read-only.
type Router struct {
	g     *Graph
	trees map[int][]int32
}

// NewRouter returns a route computer for g. The graph must not grow
// afterwards (trees are cached per source).
func NewRouter(g *Graph) *Router {
	return &Router{g: g, trees: map[int][]int32{}}
}

// pqItem is one candidate in the Dijkstra frontier. Ordering is the
// route-determinism rule: delay, then hops, then node id (the node id
// tie-break only fixes pop order between distinct nodes; equal-cost paths
// to one node are resolved at relaxation time by link index).
type pqItem struct {
	dist float64
	hops int32
	node int32
}

func pqLess(a, b pqItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.node < b.node
}

// tree returns (building if needed) the shortest-path tree rooted at src:
// per node, the index of the link entering it on the best path, -1 for
// the source and unreachable nodes.
func (r *Router) tree(src int) []int32 {
	if t, ok := r.trees[src]; ok {
		return t
	}
	g := r.g
	n := len(g.nodes)
	dist := make([]float64, n)
	hops := make([]int32, n)
	prev := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0

	// Hand-rolled binary heap: no container/heap interface boxing on a
	// path that runs once per distinct source.
	heap := []pqItem{{node: int32(src)}}
	push := func(it pqItem) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !pqLess(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() pqItem {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, rr := 2*i+1, 2*i+2
			m := i
			if l < last && pqLess(heap[l], heap[m]) {
				m = l
			}
			if rr < last && pqLess(heap[rr], heap[m]) {
				m = rr
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}

	for len(heap) > 0 {
		it := pop()
		u := int(it.node)
		if done[u] {
			continue
		}
		done[u] = true
		for _, li := range g.out[u] {
			l := &g.links[li]
			v := g.nodeIdx[l.To]
			d := dist[u] + l.Delay
			h := hops[u] + 1
			better := d < dist[v] ||
				(d == dist[v] && (h < hops[v] || (h == hops[v] && li < prev[v])))
			if !better || done[v] {
				continue
			}
			dist[v] = d
			hops[v] = h
			prev[v] = li
			push(pqItem{dist: d, hops: h, node: int32(v)})
		}
	}
	r.trees[src] = prev
	return prev
}

// Route returns the shortest-path hop chain from src to dst as link hops,
// ready for FlowSpec.FwdRoute/RevRoute (reverse paths are a separate
// Route(dst, src): generated graphs are symmetric, but the rule does not
// assume it). It panics on unknown nodes or an unreachable destination —
// generated graphs are connected, so either is a generator bug.
func (r *Router) Route(src, dst string) []netem.HopSpec {
	names := r.PathLinks(src, dst)
	hops := make([]netem.HopSpec, len(names))
	for i, name := range names {
		hops[i] = netem.LinkHop(name)
	}
	return hops
}

// PathLinks returns the link names along the shortest path from src to
// dst, in traversal order. Same determinism rules and panics as Route.
func (r *Router) PathLinks(src, dst string) []string {
	g := r.g
	s, ok := g.nodeIdx[src]
	if !ok {
		panic(fmt.Sprintf("topogen: route from unknown node %q", src))
	}
	d, ok := g.nodeIdx[dst]
	if !ok {
		panic(fmt.Sprintf("topogen: route to unknown node %q", dst))
	}
	if s == d {
		return nil
	}
	prev := r.tree(s)
	var rev []string
	for v := d; v != s; {
		li := prev[v]
		if li < 0 {
			panic(fmt.Sprintf("topogen: no route from %q to %q (disconnected graph)", src, dst))
		}
		l := &g.links[li]
		rev = append(rev, l.Name)
		v = g.nodeIdx[l.From]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathDelay returns the summed one-way propagation delay of the shortest
// path from src to dst (0 when src == dst).
func (r *Router) PathDelay(src, dst string) float64 {
	sum := 0.0
	for _, name := range r.PathLinks(src, dst) {
		sum += r.g.links[r.g.linkIdx[name]].Delay
	}
	return sum
}
