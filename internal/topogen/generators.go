package topogen

import (
	"fmt"
	"math/rand"
)

// The three generator families of ROADMAP item 1. Each draws its delay
// jitter from a local RNG seeded by the spec in a fixed construction
// order, so a spec maps to exactly one graph. Shard hints encode each
// family's natural locality: fat-tree pods, transit domains (with their
// stub networks), LEO segments.

// FatTreeSpec parameterizes a k-ary fat-tree datacenter fabric
// (Al-Fares et al.): (k/2)² core switches, k pods of k/2 aggregation and
// k/2 edge switches, k/2 hosts per edge switch — k³/4 hosts total.
type FatTreeSpec struct {
	// K is the pod count / switch radix; even, >= 2. 0 means 4.
	K int
	// HostRateMbps is the host↔edge link rate. 0 means 1000.
	HostRateMbps float64
	// FabricRateMbps is the switch↔switch link rate. 0 means 1000.
	FabricRateMbps float64
	// Delay is the per-link one-way propagation delay, seconds.
	// 0 means 100 µs.
	Delay float64
	// BufBytes is the per-link queue capacity. 0 means 256 KB.
	BufBytes int
}

// FatTree generates the fabric. Node names: cores "c<i>", per-pod
// aggregation "a<p>.<i>", edge "e<p>.<i>", hosts "h<p>.<e>.<j>". Links are
// duplex pairs named "ft:<a>|<b>" (reverse "~"-suffixed). Hints: cores
// share hint 0, pod p is hint p+1.
func FatTree(s FatTreeSpec) *Graph {
	if s.K == 0 {
		s.K = 4
	}
	if s.K < 2 || s.K%2 != 0 {
		panic(fmt.Sprintf("topogen: fat-tree K=%d must be even and >= 2", s.K))
	}
	if s.HostRateMbps == 0 {
		s.HostRateMbps = 1000
	}
	if s.FabricRateMbps == 0 {
		s.FabricRateMbps = 1000
	}
	if s.Delay == 0 {
		s.Delay = 100e-6
	}
	if s.BufBytes == 0 {
		s.BufBytes = 256 << 10
	}
	half := s.K / 2
	g := New()
	for i := 0; i < half*half; i++ {
		g.AddNode(fmt.Sprintf("c%d", i), 0)
	}
	for p := 0; p < s.K; p++ {
		for i := 0; i < half; i++ {
			g.AddNode(fmt.Sprintf("a%d.%d", p, i), p+1)
		}
		for i := 0; i < half; i++ {
			g.AddNode(fmt.Sprintf("e%d.%d", p, i), p+1)
		}
		for e := 0; e < half; e++ {
			for j := 0; j < half; j++ {
				g.AddNode(fmt.Sprintf("h%d.%d.%d", p, e, j), p+1)
			}
		}
	}
	duplex := func(a, b string, rate float64) {
		g.AddDuplex("ft:"+a+"|"+b, a, b, rate, s.Delay, 0, s.BufBytes)
	}
	for p := 0; p < s.K; p++ {
		for e := 0; e < half; e++ {
			edge := fmt.Sprintf("e%d.%d", p, e)
			for j := 0; j < half; j++ {
				duplex(fmt.Sprintf("h%d.%d.%d", p, e, j), edge, s.HostRateMbps)
			}
			for a := 0; a < half; a++ {
				duplex(edge, fmt.Sprintf("a%d.%d", p, a), s.FabricRateMbps)
			}
		}
		// Aggregation switch i of every pod uplinks to the i-th stripe of
		// cores, the standard fat-tree wiring.
		for a := 0; a < half; a++ {
			agg := fmt.Sprintf("a%d.%d", p, a)
			for c := a * half; c < (a+1)*half; c++ {
				duplex(agg, fmt.Sprintf("c%d", c), s.FabricRateMbps)
			}
		}
	}
	return g
}

// TransitStubSpec parameterizes a GT-ITM-style transit-stub WAN: transit
// domains of backbone routers joined in a ring, each transit router
// serving stub domains of access routers. Delays are drawn from wide-area
// ranges (inter-domain 10–40 ms, intra-domain 2–8 ms, stub access
// 1–5 ms, intra-stub 0.5–2 ms) by the seeded RNG.
type TransitStubSpec struct {
	// Transits is the transit (backbone) domain count. 0 means 3.
	Transits int
	// TransitRouters is the router count per transit domain. 0 means 3.
	TransitRouters int
	// StubsPerRouter is the stub domain count hanging off each transit
	// router. 0 means 2.
	StubsPerRouter int
	// StubRouters is the router count per stub domain. 0 means 3.
	StubRouters int
	// TransitRateMbps is the backbone link rate. 0 means 2000.
	TransitRateMbps float64
	// StubRateMbps is the stub access/internal link rate. 0 means 200.
	StubRateMbps float64
	// BufBytes is the per-link queue capacity. 0 means 512 KB.
	BufBytes int
	// Seed drives the delay draws. 0 means 1.
	Seed int64
}

// TransitStub generates the WAN. Node names: transit routers "t<d>.<i>",
// stub routers "s<d>.<i>.<k>.<j>" (domain d, transit router i, stub k,
// router j). Inter-domain backbone links are named "x<d>" (ring edge from
// domain d, reverse "x<d>~") plus a "xc" chord when Transits >= 4 — the
// stable names fault schedules target. Hints: transit domain d and all
// its stubs share hint d, so the partitioner cuts only the >= 10 ms
// inter-domain edges.
func TransitStub(s TransitStubSpec) *Graph {
	if s.Transits == 0 {
		s.Transits = 3
	}
	if s.TransitRouters == 0 {
		s.TransitRouters = 3
	}
	if s.StubsPerRouter == 0 {
		s.StubsPerRouter = 2
	}
	if s.StubRouters == 0 {
		s.StubRouters = 3
	}
	if s.Transits < 1 || s.TransitRouters < 1 || s.StubsPerRouter < 0 || s.StubRouters < 1 {
		panic(fmt.Sprintf("topogen: invalid transit-stub shape %+v", s))
	}
	if s.TransitRateMbps == 0 {
		s.TransitRateMbps = 2000
	}
	if s.StubRateMbps == 0 {
		s.StubRateMbps = 200
	}
	if s.BufBytes == 0 {
		s.BufBytes = 512 << 10
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := New()
	tr := func(d, i int) string { return fmt.Sprintf("t%d.%d", d, i) }
	for d := 0; d < s.Transits; d++ {
		for i := 0; i < s.TransitRouters; i++ {
			g.AddNode(tr(d, i), d)
		}
	}
	// Intra-domain ring (a single pair when only two routers).
	for d := 0; d < s.Transits; d++ {
		for i := 0; i < s.TransitRouters; i++ {
			j := (i + 1) % s.TransitRouters
			if j == i || (s.TransitRouters == 2 && i == 1) {
				continue
			}
			delay := 0.002 + 0.006*rng.Float64()
			g.AddDuplex(fmt.Sprintf("t%d:%d-%d", d, i, j), tr(d, i), tr(d, j),
				s.TransitRateMbps, delay, 0, s.BufBytes)
		}
	}
	// Inter-domain ring over each domain's router 0, plus a chord for path
	// diversity on rings wide enough to have one.
	for d := 0; d < s.Transits; d++ {
		e := (d + 1) % s.Transits
		if e == d || (s.Transits == 2 && d == 1) {
			continue
		}
		delay := 0.010 + 0.030*rng.Float64()
		g.AddDuplex(fmt.Sprintf("x%d", d), tr(d, 0), tr(e, 0),
			s.TransitRateMbps, delay, 0, s.BufBytes)
	}
	if s.Transits >= 4 && s.TransitRouters >= 2 {
		delay := 0.010 + 0.030*rng.Float64()
		g.AddDuplex("xc", tr(0, 1), tr(s.Transits/2, 1),
			s.TransitRateMbps, delay, 0, s.BufBytes)
	}
	// Stub domains: router 0 of each stub attaches to its transit router,
	// the rest chain behind it.
	for d := 0; d < s.Transits; d++ {
		for i := 0; i < s.TransitRouters; i++ {
			for k := 0; k < s.StubsPerRouter; k++ {
				sr := func(j int) string { return fmt.Sprintf("s%d.%d.%d.%d", d, i, k, j) }
				for j := 0; j < s.StubRouters; j++ {
					g.AddNode(sr(j), d)
				}
				access := 0.001 + 0.004*rng.Float64()
				g.AddDuplex(fmt.Sprintf("a%d.%d.%d", d, i, k), tr(d, i), sr(0),
					s.StubRateMbps, access, 0, s.BufBytes)
				for j := 1; j < s.StubRouters; j++ {
					delay := 0.0005 + 0.0015*rng.Float64()
					g.AddDuplex(fmt.Sprintf("s%d.%d.%d:%d", d, i, k, j), sr(j-1), sr(j),
						s.StubRateMbps, delay, 0, s.BufBytes)
				}
			}
		}
	}
	return g
}

// LEOChainSpec parameterizes a low-earth-orbit satellite relay chain: a
// ground uplink, a chain of inter-satellite links, a ground downlink.
type LEOChainSpec struct {
	// Sats is the satellite count. 0 means 8.
	Sats int
	// UpRateMbps is the ground↔satellite link rate. 0 means 200.
	UpRateMbps float64
	// ISLRateMbps is the inter-satellite link rate. 0 means 500.
	ISLRateMbps float64
	// BufBytes is the per-link queue capacity. 0 means 256 KB.
	BufBytes int
	// Seed drives the ISL delay draws. 0 means 1.
	Seed int64
}

// LEOChain generates the chain. Node names: "gs0", "sat<i>", "gs1"; links
// "up0", "isl<i>", "dn0" (duplex, reverse "~"-suffixed). Ground↔satellite
// delay is 3 ms, ISL delays draw 7–13 ms. Hints: the ground stations join
// their adjacent satellite's segment; satellites group in segments of 3.
func LEOChain(s LEOChainSpec) *Graph {
	if s.Sats == 0 {
		s.Sats = 8
	}
	if s.Sats < 1 {
		panic(fmt.Sprintf("topogen: LEO chain needs >= 1 satellite, got %d", s.Sats))
	}
	if s.UpRateMbps == 0 {
		s.UpRateMbps = 200
	}
	if s.ISLRateMbps == 0 {
		s.ISLRateMbps = 500
	}
	if s.BufBytes == 0 {
		s.BufBytes = 256 << 10
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := New()
	seg := func(i int) int { return i / 3 }
	g.AddNode("gs0", seg(0))
	for i := 0; i < s.Sats; i++ {
		g.AddNode(fmt.Sprintf("sat%d", i), seg(i))
	}
	g.AddNode("gs1", seg(s.Sats-1))
	g.AddDuplex("up0", "gs0", "sat0", s.UpRateMbps, 0.003, 0, s.BufBytes)
	for i := 0; i+1 < s.Sats; i++ {
		delay := 0.007 + 0.006*rng.Float64()
		g.AddDuplex(fmt.Sprintf("isl%d", i), fmt.Sprintf("sat%d", i), fmt.Sprintf("sat%d", i+1),
			s.ISLRateMbps, delay, 0, s.BufBytes)
	}
	g.AddDuplex("dn0", fmt.Sprintf("sat%d", s.Sats-1), "gs1", s.UpRateMbps, 0.003, 0, s.BufBytes)
	return g
}
