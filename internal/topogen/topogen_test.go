package topogen

import (
	"strings"
	"testing"
)

func TestFatTreeShape(t *testing.T) {
	g := FatTree(FatTreeSpec{K: 4})
	// k=4: 4 cores, 4 pods × (2 agg + 2 edge + 4 hosts) = 36 nodes.
	if got, want := g.NumNodes(), 36; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	// Duplex pairs: 16 host-edge + 16 edge-agg + 16 agg-core = 48 → 96 directed.
	if got, want := g.NumLinks(), 96; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	hints := g.ShardHints()
	if hints["c0"] != 0 || hints["c3"] != 0 {
		t.Fatalf("cores must share hint 0, got c0=%d c3=%d", hints["c0"], hints["c3"])
	}
	if hints["h2.1.0"] != 3 || hints["a2.0"] != 3 {
		t.Fatalf("pod 2 must share hint 3, got h2.1.0=%d a2.0=%d", hints["h2.1.0"], hints["a2.0"])
	}
}

func TestFatTreeRouting(t *testing.T) {
	g := FatTree(FatTreeSpec{K: 4})
	r := NewRouter(g)
	// Same edge switch: 2 hops (host→edge→host).
	if got := len(r.PathLinks("h0.0.0", "h0.0.1")); got != 2 {
		t.Fatalf("intra-edge path length = %d, want 2", got)
	}
	// Cross-pod: host→edge→agg→core→agg→edge→host = 6 hops.
	if got := len(r.PathLinks("h0.0.0", "h3.1.1")); got != 6 {
		t.Fatalf("cross-pod path length = %d, want 6", got)
	}
}

func TestTransitStubShape(t *testing.T) {
	s := TransitStubSpec{Transits: 4, TransitRouters: 3, StubsPerRouter: 2, StubRouters: 3, Seed: 7}
	g := TransitStub(s)
	wantNodes := 4*3 + 4*3*2*3 // 12 transit + 72 stub
	if got := g.NumNodes(); got != wantNodes {
		t.Fatalf("nodes = %d, want %d", got, wantNodes)
	}
	// Every node reachable from every other (spot-check from two roots).
	r := NewRouter(g)
	for _, src := range []string{"t0.0", "s3.2.1.2"} {
		for _, dst := range g.Nodes() {
			if dst == src {
				continue
			}
			if len(r.PathLinks(src, dst)) == 0 {
				t.Fatalf("no path %s → %s", src, dst)
			}
		}
	}
	// Hints group each transit domain with its stubs.
	hints := g.ShardHints()
	if hints["t1.0"] != 1 || hints["s1.2.0.1"] != 1 {
		t.Fatalf("domain 1 hints: t1.0=%d s1.2.0.1=%d, want 1", hints["t1.0"], hints["s1.2.0.1"])
	}
	// The flappable backbone ring links exist under their stable names.
	for _, name := range []string{"x0", "x3", "xc"} {
		found := false
		for _, l := range g.Links() {
			if l.Name == name {
				found = true
				if l.Delay < 0.010 {
					t.Fatalf("backbone link %s delay %v below the 10 ms floor", name, l.Delay)
				}
			}
		}
		if !found {
			t.Fatalf("backbone link %s missing", name)
		}
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	s := TransitStubSpec{Transits: 3, Seed: 42}
	a, b := TransitStub(s), TransitStub(s)
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}

func TestLEOChain(t *testing.T) {
	g := LEOChain(LEOChainSpec{Sats: 6, Seed: 3})
	if got, want := g.NumNodes(), 8; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	r := NewRouter(g)
	path := r.PathLinks("gs0", "gs1")
	if got, want := len(path), 7; got != want { // up + 5 ISLs + down
		t.Fatalf("gs0→gs1 path length = %d, want %d", got, want)
	}
	if path[0] != "up0" || path[len(path)-1] != "dn0" {
		t.Fatalf("path endpoints = %s … %s, want up0 … dn0", path[0], path[len(path)-1])
	}
	if d := r.PathDelay("gs0", "gs1"); d < 0.006+5*0.007 {
		t.Fatalf("end-to-end delay %v implausibly small", d)
	}
}

func TestRouterShortestAndTieBreak(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddNode(n, 0)
	}
	add := func(name, from, to string, delay float64) {
		g.AddLink(Link{Name: name, From: from, To: to, RateMbps: 100, Delay: delay, BufBytes: 1 << 16})
	}
	// Two equal-delay 2-hop paths a→d (via b and via c); the b path's links
	// were registered first, so the tie must resolve to it. A direct a→d
	// link is slower and must lose despite fewer hops.
	add("ab", "a", "b", 0.010)
	add("bd", "b", "d", 0.010)
	add("ac", "a", "c", 0.010)
	add("cd", "c", "d", 0.010)
	add("ad", "a", "d", 0.050)
	r := NewRouter(g)
	got := strings.Join(r.PathLinks("a", "d"), ",")
	if got != "ab,bd" {
		t.Fatalf("a→d path = %s, want ab,bd (delay first, then add-order tie-break)", got)
	}
	// Equal delay, fewer hops wins: make a 1-hop path of the same total delay.
	add("ad2", "a", "d", 0.020)
	r2 := NewRouter(g)
	if got := strings.Join(r2.PathLinks("a", "d"), ","); got != "ad2" {
		t.Fatalf("a→d path = %s, want ad2 (hop count breaks delay ties)", got)
	}
}

func TestRouteEmitsLinkHops(t *testing.T) {
	g := LEOChain(LEOChainSpec{Sats: 2})
	r := NewRouter(g)
	hops := r.Route("gs0", "gs1")
	if len(hops) != 3 {
		t.Fatalf("route length = %d, want 3", len(hops))
	}
	for _, h := range hops {
		if h.Link == "" || h.Delay != 0 || h.Loss != 0 {
			t.Fatalf("route hop %+v is not a pure link hop", h)
		}
	}
	// Reverse route uses the reverse links, in reverse order.
	rev := r.PathLinks("gs1", "gs0")
	if rev[0] != "dn0~" || rev[len(rev)-1] != "up0~" {
		t.Fatalf("reverse path = %v, want dn0~ … up0~", rev)
	}
}

func TestGraphPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	g := New()
	g.AddNode("a", 0)
	g.AddNode("b", 1)
	g.AddLink(Link{Name: "ab", From: "a", To: "b", Delay: 0.001})
	mustPanic("duplicate link", func() {
		g.AddLink(Link{Name: "ab", From: "a", To: "b", Delay: 0.001})
	})
	mustPanic("unknown endpoint", func() {
		g.AddLink(Link{Name: "ax", From: "a", To: "x", Delay: 0.001})
	})
	mustPanic("hint conflict", func() { g.AddNode("a", 2) })
	mustPanic("disconnected route", func() {
		g2 := New()
		g2.AddNode("p", 0)
		g2.AddNode("q", 0)
		NewRouter(g2).PathLinks("p", "q")
	})
}
