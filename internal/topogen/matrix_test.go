package topogen

import (
	"math"
	"strings"
	"testing"
)

const sampleMatrix = `# three-site sample, RTT in ms
nyc lon fra
0    70.2 81.0
70.2 0    12.6
81.0 -    0
`

func TestParseDelayMatrix(t *testing.T) {
	m, err := ParseDelayMatrix([]byte(sampleMatrix))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Names) != 3 || m.Names[1] != "lon" {
		t.Fatalf("names = %v", m.Names)
	}
	if got, want := m.RTT[0][1], 0.0702; math.Abs(got-want) > 1e-12 {
		t.Fatalf("RTT[0][1] = %v, want %v", got, want)
	}
	if m.RTT[2][1] != -1 {
		t.Fatalf("RTT[2][1] = %v, want -1 (unmeasured)", m.RTT[2][1])
	}
	if m.RTT[1][1] != 0 {
		t.Fatalf("diagonal must be 0, got %v", m.RTT[1][1])
	}
}

func TestParseDelayMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"one name":      "solo\n0\n",
		"dup name":      "a a\n0 1\n1 0\n",
		"short row":     "a b\n0\n1 0\n",
		"missing row":   "a b\n0 1\n",
		"extra row":     "a b\n0 1\n1 0\n2 2\n",
		"bad float":     "a b\n0 xyz\n1 0\n",
		"non-finite":    "a b\n0 Inf\n1 0\n",
		"comments only": "# nothing here\n\n",
	}
	for name, in := range cases {
		if _, err := ParseDelayMatrix([]byte(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMeshGraph(t *testing.T) {
	m, err := ParseDelayMatrix([]byte(sampleMatrix))
	if err != nil {
		t.Fatal(err)
	}
	g := m.MeshGraph(500, 1<<18)
	if got, want := g.NumNodes(), 3; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	// All three pairs measured in at least one direction → 3 duplex pairs.
	if got, want := g.NumLinks(), 6; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	// One-way delay is half the RTT; the unmeasured fra→lon direction
	// borrows lon→fra.
	var fwd, borrowed Link
	for _, l := range g.Links() {
		if l.From == "lon" && l.To == "fra" {
			fwd = l
		}
		if l.From == "fra" && l.To == "lon" {
			borrowed = l
		}
	}
	if math.Abs(fwd.Delay-0.0063) > 1e-12 {
		t.Fatalf("lon→fra delay = %v, want 0.0063", fwd.Delay)
	}
	if borrowed.Delay != fwd.Delay {
		t.Fatalf("fra→lon delay = %v, want borrowed %v", borrowed.Delay, fwd.Delay)
	}
	// Mesh routes prefer the direct link; relaying nyc→fra via lon would
	// be (70.2+12.6)/2 ms vs the direct 81/2 ms.
	r := NewRouter(g)
	if got := strings.Join(r.PathLinks("nyc", "fra"), ","); got != "m0-2" {
		t.Fatalf("nyc→fra path = %s, want direct m0-2", got)
	}
}

func FuzzParseDelayMatrix(f *testing.F) {
	f.Add([]byte(sampleMatrix))
	f.Add([]byte("a b\n0 1.5\n1.5 0\n"))
	f.Add([]byte("a b c\n0 - 2\n- 0 3\n2 3 0\n"))
	f.Add([]byte("# only comments\n"))
	f.Add([]byte("a b\n0 1e309\n1 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseDelayMatrix(data)
		if err != nil {
			return
		}
		// A successful parse must be internally consistent and safe to
		// convert: n names, n×n grid, zero diagonal, finite non-negative
		// or -1 entries, and MeshGraph must not panic.
		n := len(m.Names)
		if n < 2 || n > maxMatrixNodes || len(m.RTT) != n {
			t.Fatalf("inconsistent dims: %d names, %d rows", n, len(m.RTT))
		}
		for i, row := range m.RTT {
			if len(row) != n {
				t.Fatalf("row %d has %d entries, want %d", i, len(row), n)
			}
			if row[i] != 0 {
				t.Fatalf("diagonal [%d][%d] = %v", i, i, row[i])
			}
			for j, v := range row {
				if v != -1 && (v < 0 || math.IsNaN(v) || math.IsInf(v, 0)) {
					t.Fatalf("RTT[%d][%d] = %v", i, j, v)
				}
			}
		}
		g := m.MeshGraph(100, 1<<16)
		if g.NumNodes() != n {
			t.Fatalf("mesh has %d nodes, want %d", g.NumNodes(), n)
		}
	})
}
