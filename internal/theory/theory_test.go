package theory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLossFunction(t *testing.T) {
	g := NewGame(100, 2)
	if g.Loss(50) != 0 || g.Loss(100) != 0 {
		t.Fatal("no loss at or below capacity")
	}
	if l := g.Loss(200); l != 0.5 {
		t.Fatalf("Loss(2C) = %v, want 0.5", l)
	}
}

func TestAlphaSatisfiesTheorem1(t *testing.T) {
	if g := NewGame(100, 2); g.Alpha != 100 {
		t.Fatalf("alpha for n=2 is %v, want 100", g.Alpha)
	}
	if g := NewGame(100, 100); g.Alpha != 2.2*99 {
		t.Fatalf("alpha for n=100 is %v, want %v", g.Alpha, 2.2*99)
	}
}

// Theorem 1: the symmetric equilibrium exists with C < Σx̂ < 20C/19, for a
// range of n.
func TestTheorem1EquilibriumBand(t *testing.T) {
	const C = 100.0
	for _, n := range []int{2, 3, 5, 10, 20, 50} {
		g := NewGame(C, n)
		xh := g.Equilibrium(n, 0.01)
		sum := xh * float64(n)
		if sum <= C || sum >= 20*C/19 {
			t.Errorf("n=%d: Σx̂ = %v outside (C, 20C/19)", n, sum)
		}
	}
}

// Theorem 2: from arbitrary unfair starts, concurrent (1±ε) dynamics land
// every sender inside (x̂(1−ε)², x̂(1+ε)²).
func TestTheorem2Convergence(t *testing.T) {
	const C = 100.0
	const eps = 0.01
	for _, n := range []int{2, 4, 8} {
		g := NewGame(C, n)
		xh := g.Equilibrium(n, eps)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = C / float64(n) / 20
		}
		x0[0] = C
		final := g.Dynamics(x0, eps, 80000)
		lo, hi := xh*(1-eps)*(1-eps), xh*(1+eps)*(1+eps)
		for j, v := range final {
			if v < lo || v > hi {
				t.Errorf("n=%d sender %d at %v outside (%v, %v)", n, j, v, lo, hi)
			}
		}
	}
}

// Property: from random positive starts the dynamics stay positive and
// bounded (no sender diverges or dies).
func TestDynamicsBoundedProperty(t *testing.T) {
	g := NewGame(100, 4)
	f := func(a, b, c, d uint16) bool {
		x0 := []float64{
			1 + float64(a%1000)/10,
			1 + float64(b%1000)/10,
			1 + float64(c%1000)/10,
			1 + float64(d%1000)/10,
		}
		final := g.Dynamics(x0, 0.01, 2000)
		for _, v := range final {
			if v <= 0 || v > 200 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityShape(t *testing.T) {
	g := NewGame(100, 2)
	// Below capacity utility is essentially the rate.
	if g.Utility(40, 40) <= g.Utility(30, 40) {
		t.Fatal("below capacity, higher rate must score higher")
	}
	// Far above capacity utility is negative.
	if g.Utility(150, 150) >= 0 {
		t.Fatal("deep congestion must score negative")
	}
}

func TestDynamicsTraceMonotoneFairness(t *testing.T) {
	g := NewGame(100, 4)
	x0 := []float64{90, 1, 1, 1}
	trace := g.DynamicsTrace(x0, 0.01, 20000)
	first := trace[0]
	last := trace[len(trace)-1]
	if last.Max/last.Min >= first.Max/first.Min {
		t.Fatalf("unfairness did not shrink: %v -> %v", first.Max/first.Min, last.Max/last.Min)
	}
}
