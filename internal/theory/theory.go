// Package theory implements the §2.2 game-theoretic model of competing PCC
// senders: n senders share a bottleneck of capacity C, each choosing a rate
// to maximize the safe utility
//
//	u_i(x) = T_i(x)·Sigmoid(L(x)−0.05) − x_i·L(x)
//
// with L(x) = max{0, 1−C/Σx} the per-packet loss probability and
// T_i = x_i·(1−L). The package provides the utility itself, a numeric
// equilibrium solver, and the concurrent (1±ε) update dynamics, so that
// Theorem 1 (a unique, fair stable state exists when α ≥ max{2.2(n−1),100})
// and Theorem 2 (the dynamics converge into (x̂(1−ε)², x̂(1+ε)²)) can be
// validated numerically by tests and benchmarks.
package theory

import "math"

// Game is the n-sender bottleneck game.
type Game struct {
	// C is the bottleneck capacity (arbitrary rate units).
	C float64
	// Alpha is the sigmoid steepness; Theorem 1 needs
	// α ≥ max{2.2(n−1), 100}.
	Alpha float64
	// LossCap is the sigmoid knee (paper: 0.05).
	LossCap float64
}

// NewGame returns a game with capacity c and a Theorem-1-compliant α for n
// senders.
func NewGame(c float64, n int) *Game {
	alpha := 2.2 * float64(n-1)
	if alpha < 100 {
		alpha = 100
	}
	return &Game{C: c, Alpha: alpha, LossCap: 0.05}
}

// Loss returns L(x) = max{0, 1 − C/Σx}.
func (g *Game) Loss(sum float64) float64 {
	if sum <= g.C {
		return 0
	}
	return 1 - g.C/sum
}

// Utility returns u_i for sender i sending xi while the rest of the senders
// sum to rest.
func (g *Game) Utility(xi, rest float64) float64 {
	l := g.Loss(xi + rest)
	t := xi * (1 - l)
	return t*sigmoid(l-g.LossCap, g.Alpha) - xi*l
}

func sigmoid(y, alpha float64) float64 {
	e := alpha * y
	if e > 50 {
		return 0
	}
	if e < -50 {
		return 1
	}
	return 1 / (1 + math.Exp(e))
}

// prefersUp reports whether sender i at xi (others at rest) gains more
// utility from x_i(1+ε) than from x_i(1−ε).
func (g *Game) prefersUp(xi, rest, eps float64) bool {
	return g.Utility(xi*(1+eps), rest) > g.Utility(xi*(1-eps), rest)
}

// Equilibrium numerically locates the symmetric stable state x̂ for n
// senders: the per-sender rate at which the (1±ε) preference flips from up
// to down, found by bisection. Theorem 1 guarantees it is unique and that
// Σx̂ lies in (C, 20C/19).
func (g *Game) Equilibrium(n int, eps float64) float64 {
	lo := g.C / float64(n) * 0.5 // below fair share: everyone prefers up
	hi := g.C / float64(n) * 2   // far above: everyone prefers down
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if g.prefersUp(mid, mid*float64(n-1), eps) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Dynamics runs the §2.2 control algorithm: at every step each sender j
// concurrently moves to x_j(1+ε) if that direction has higher utility
// against the current profile, else to x_j(1−ε). It returns the final
// profile after steps iterations.
func (g *Game) Dynamics(x0 []float64, eps float64, steps int) []float64 {
	x := append([]float64(nil), x0...)
	next := make([]float64, len(x))
	var sum float64
	for _, v := range x {
		sum += v
	}
	for s := 0; s < steps; s++ {
		for j := range x {
			rest := sum - x[j]
			if g.prefersUp(x[j], rest, eps) {
				next[j] = x[j] * (1 + eps)
			} else {
				next[j] = x[j] * (1 - eps)
			}
		}
		sum = 0
		for j := range x {
			x[j] = next[j]
			sum += x[j]
		}
	}
	return x
}

// Trajectory is like Dynamics but records Σx and the min/max sender rate at
// each step, for convergence plots and assertions.
type TrajPoint struct {
	Step     int
	Sum      float64
	Min, Max float64
}

// DynamicsTrace runs the dynamics and returns the per-step trajectory.
func (g *Game) DynamicsTrace(x0 []float64, eps float64, steps int) []TrajPoint {
	x := append([]float64(nil), x0...)
	next := make([]float64, len(x))
	out := make([]TrajPoint, 0, steps)
	for s := 0; s < steps; s++ {
		var sum float64
		for _, v := range x {
			sum += v
		}
		for j := range x {
			rest := sum - x[j]
			if g.prefersUp(x[j], rest, eps) {
				next[j] = x[j] * (1 + eps)
			} else {
				next[j] = x[j] * (1 - eps)
			}
		}
		mn, mx := x[0], x[0]
		for _, v := range x {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		out = append(out, TrajPoint{Step: s, Sum: sum, Min: mn, Max: mx})
		copy(x, next)
	}
	return out
}
