package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// ResultLine is one NDJSON line of a sweep stream: the unit it describes and
// either its report text or a quarantined error. Lines are emitted in unit
// order, so successful bodies are byte-identical across runs — there are no
// timestamps or cache markers here by design (cache behaviour is observable
// on /v1/stats instead).
type ResultLine struct {
	Experiment string     `json:"experiment"`
	Variant    string     `json:"variant"`
	Seed       int64      `json:"seed"`
	Scale      float64    `json:"scale"`
	Report     string     `json:"report,omitempty"`
	Error      *LineError `json:"error,omitempty"`
}

// LineError is the in-band form of a quarantined unit failure. The full
// stack stays in the ledger; the stream carries only kind and message.
type LineError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// SummaryLine terminates every stream — complete, failed, or cancelled — so
// a client can distinguish a finished sweep from a torn connection.
type SummaryLine struct {
	Done      bool `json:"done"`
	Cancelled bool `json:"cancelled,omitempty"`
	Units     int  `json:"units"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed,omitempty"`
}

// marshalResult renders a unit's result to the exact bytes that are both
// streamed and cached (no trailing newline). Marshalling is deterministic —
// fixed field order, fixed float formatting — which is what makes "served
// from cache" and "recomputed" byte-identical.
func marshalResult(k Key, report string) []byte {
	b, err := json.Marshal(ResultLine{
		Experiment: k.Experiment, Variant: k.Variant,
		Seed: k.Seed, Scale: k.Scale, Report: report,
	})
	if err != nil {
		// A Report is strings all the way down; this cannot fail.
		panic(err)
	}
	return b
}

// lineWriter serializes NDJSON writes to one response and flushes after each
// line so clients see progress trial-by-trial rather than at sweep end.
type lineWriter struct {
	mu sync.Mutex
	w  io.Writer
	f  http.Flusher
}

func newLineWriter(w http.ResponseWriter) *lineWriter {
	lw := &lineWriter{w: w}
	lw.f, _ = w.(http.Flusher)
	return lw
}

// writeRaw emits pre-marshalled line bytes plus the newline.
func (lw *lineWriter) writeRaw(line []byte) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if _, err := lw.w.Write(line); err != nil {
		return err
	}
	if _, err := lw.w.Write([]byte{'\n'}); err != nil {
		return err
	}
	if lw.f != nil {
		lw.f.Flush()
	}
	return nil
}

// writeJSON marshals v and emits it as one line.
func (lw *lineWriter) writeJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return lw.writeRaw(b)
}
