package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pcc/internal/exp"
)

// Config tunes a Server. Zero values get sane defaults from NewServer.
type Config struct {
	// CacheDir roots the result cache. Empty disables caching.
	CacheDir string
	// Workers is how many sweep units run concurrently (each unit runs its
	// own trial pool internally, so this stays small).
	Workers int
	// Queue bounds admitted units (queued + running) across all requests;
	// beyond it new sweeps get 429 + Retry-After.
	Queue int
	// MaxUnits is the per-request unit budget; larger sweeps get 400.
	MaxUnits int
	// SweepTimeout is the server-side deadline per sweep request. Zero
	// means no server-imposed deadline.
	SweepTimeout time.Duration
	// LedgerSize bounds the error ledger ring.
	LedgerSize int
	// CodeVersion overrides the cache key's code-version component
	// (tests pin it; production uses the VCS stamp).
	CodeVersion string
}

// Server wires the cache, scheduler, and ledger behind an http.Handler.
type Server struct {
	cfg      Config
	cache    *Cache // nil when caching is disabled
	sched    *Scheduler
	ledger   *Ledger
	mux      *http.ServeMux
	draining atomic.Bool
	inflight sync.WaitGroup

	sweeps, sweepsDone, sweepsCancelled, sweepsFailed atomic.Int64
}

// NewServer builds a Server. The error is only from opening the cache dir.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.MaxUnits <= 0 {
		cfg.MaxUnits = 256
	}
	if cfg.LedgerSize <= 0 {
		cfg.LedgerSize = 64
	}
	if cfg.CodeVersion == "" {
		cfg.CodeVersion = BuildVersion()
	}
	s := &Server{
		cfg:    cfg,
		sched:  NewScheduler(cfg.Workers, cfg.Queue),
		ledger: NewLedger(cfg.LedgerSize),
		mux:    http.NewServeMux(),
	}
	if cfg.CacheDir != "" {
		c, err := NewCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("/v1/errors", s.handleErrors)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain implements SIGTERM semantics: stop admitting sweeps (readyz flips to
// 503, new sweeps get 503), let in-flight requests finish and flush their
// streams, then stop the workers. After Drain returns the process can exit 0.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.inflight.Wait()
	s.sched.Close()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// SweepRequest is the POST /v1/sweep body. Units is the cross product of
// Experiments × Scales × Seeds, in that nesting order (seeds innermost), so
// the stream order is fully determined by the request.
type SweepRequest struct {
	Experiments []string  `json:"experiments"`
	Scales      []float64 `json:"scales"`
	Seeds       []int64   `json:"seeds"`
	// Variant is carried into every cache key and result line; empty means
	// "all variants" (drivers sweep their protocol variants internally).
	Variant string `json:"variant"`
	// Timeout optionally tightens the server's per-sweep deadline; it can
	// never loosen it. Go duration syntax.
	Timeout string `json:"timeout"`
}

// units expands the request into an ordered unit list.
func (s *Server) units(req *SweepRequest) ([]Key, error) {
	if len(req.Experiments) == 0 {
		return nil, errors.New("no experiments given")
	}
	if len(req.Scales) == 0 {
		req.Scales = []float64{1}
	}
	if len(req.Seeds) == 0 {
		req.Seeds = []int64{1}
	}
	known := make(map[string]bool)
	for _, id := range exp.IDs() {
		known[id] = true
	}
	var keys []Key
	for _, e := range req.Experiments {
		if !known[e] {
			return nil, fmt.Errorf("unknown experiment %q", e)
		}
		for _, sc := range req.Scales {
			for _, sd := range req.Seeds {
				keys = append(keys, Key{
					Experiment: e, Variant: req.Variant,
					Seed: sd, Scale: sc, Code: s.cfg.CodeVersion,
				})
			}
		}
	}
	return keys, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	// Re-check under the in-flight count: Drain sets the flag then waits on
	// the group, so a request that got past this point is always waited for.
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}

	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	keys, err := s.units(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(keys) > s.cfg.MaxUnits {
		http.Error(w, fmt.Sprintf("sweep of %d units exceeds per-request budget of %d",
			len(keys), s.cfg.MaxUnits), http.StatusBadRequest)
		return
	}

	// Admission: all units reserved atomically, or a clean 429 with a
	// retry hint scaled to the backlog.
	if !s.sched.Reserve(len(keys)) {
		st := s.sched.Stats()
		retry := 1 + int(st.Reserved)/s.cfg.Workers
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, "sweep queue full", http.StatusTooManyRequests)
		return
	}
	s.sweeps.Add(1)

	// Deadline: server cap, tightened (never loosened) by the request.
	ctx := r.Context()
	timeout := s.cfg.SweepTimeout
	if req.Timeout != "" {
		if d, err := time.ParseDuration(req.Timeout); err == nil && d > 0 {
			if timeout == 0 || d < timeout {
				timeout = d
			}
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.streamSweep(ctx, newLineWriter(w), keys)
}

// streamSweep resolves every unit — cache hit, or scheduled compute — and
// writes result lines strictly in unit order. All misses are submitted up
// front so the workers overlap them; the in-order await is the ordered
// emitter that keeps bodies byte-identical run over run.
func (s *Server) streamSweep(ctx context.Context, lw *lineWriter, keys []Key) {
	type slot struct {
		cached []byte
		res    <-chan unitResult
	}
	slots := make([]slot, len(keys))
	for i, k := range keys {
		if s.cache != nil {
			if b, ok := s.cache.Get(k); ok {
				slots[i].cached = b
				s.sched.Release(1) // reserved but never submitted
				continue
			}
		}
		slots[i].res = s.sched.Submit(ctx, k)
	}

	completed, failed := 0, 0
	finish := func(cancelled bool) {
		if cancelled {
			s.sweepsCancelled.Add(1)
		} else if failed > 0 {
			s.sweepsFailed.Add(1)
		} else {
			s.sweepsDone.Add(1)
		}
		lw.writeJSON(SummaryLine{
			Done: !cancelled, Cancelled: cancelled,
			Units: len(keys), Completed: completed, Failed: failed,
		})
	}

	for i, sl := range slots {
		if sl.cached != nil {
			if err := lw.writeRaw(sl.cached); err != nil {
				finish(true)
				return
			}
			completed++
			continue
		}
		var ur unitResult
		select {
		case ur = <-sl.res:
		case <-ctx.Done():
			// The remaining submitted jobs see the same dead ctx and are
			// skipped by the workers; their buffered result channels let the
			// workers move on without us.
			finish(true)
			return
		}
		switch {
		case ur.err == nil:
			line := marshalResult(keys[i], ur.rep.String())
			if s.cache != nil {
				s.cache.Put(keys[i], line)
			}
			if err := lw.writeRaw(line); err != nil {
				finish(true)
				return
			}
			completed++
		case isCancellation(ur.err):
			finish(true)
			return
		default:
			// Quarantined failure: only this request is affected. Ledger
			// keeps the stack, the cache entry is poisoned, the stream
			// carries an in-band error line, and the sweep continues.
			s.ledger.Record(keys[i], ur.err)
			if s.cache != nil {
				s.cache.Poison(keys[i])
			}
			failed++
			errLine := ResultLine{
				Experiment: keys[i].Experiment, Variant: keys[i].Variant,
				Seed: keys[i].Seed, Scale: keys[i].Scale,
				Error: &LineError{Kind: errKind(ur.err), Message: ur.err.Error()},
			}
			if err := lw.writeJSON(errLine); err != nil {
				finish(true)
				return
			}
		}
	}
	finish(false)
}

// isCancellation reports whether err means "the sweep's context died" rather
// than "this unit failed".
func isCancellation(err error) bool {
	var sc *exp.SweepCancelledError
	return errors.As(err, &sc) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// errKind names a quarantined failure for the in-band error line.
func errKind(err error) string {
	var tpe *exp.TrialPanicError
	var tte *exp.TrialTimeoutError
	switch {
	case errors.As(err, &tpe):
		return "panic"
	case errors.As(err, &tte):
		return "timeout"
	default:
		return "error"
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up, even while draining.
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"experiments": exp.IDs()})
}

func (s *Server) handleErrors(w http.ResponseWriter, r *http.Request) {
	recs, total := s.ledger.Snapshot()
	writeJSON(w, map[string]any{"errors": recs, "total": total})
}

// StatsReply is the /v1/stats body.
type StatsReply struct {
	Cache    CacheStats `json:"cache"`
	Sched    SchedStats `json:"sched"`
	Sweeps   int64      `json:"sweeps"`
	Done     int64      `json:"done"`
	Cancel   int64      `json:"cancelled"`
	Failed   int64      `json:"failed"`
	Draining bool       `json:"draining"`
	Code     string     `json:"code_version"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := StatsReply{
		Sched:    s.sched.Stats(),
		Sweeps:   s.sweeps.Load(),
		Done:     s.sweepsDone.Load(),
		Cancel:   s.sweepsCancelled.Load(),
		Failed:   s.sweepsFailed.Load(),
		Draining: s.draining.Load(),
		Code:     s.cfg.CodeVersion,
	}
	if s.cache != nil {
		reply.Cache = s.cache.Stats()
	}
	writeJSON(w, reply)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
