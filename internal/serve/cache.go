// Package serve implements pccserve's serving layer: a crash-safe
// content-addressed result cache, a bounded-admission sweep scheduler, an
// error ledger, and the HTTP server that streams per-unit reports as NDJSON.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// Key identifies one sweep unit's result. Every field participates in the
// content address: a change to the code version (or any run parameter)
// misses the cache rather than serving stale bytes.
type Key struct {
	Experiment string  `json:"experiment"`
	Variant    string  `json:"variant"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Code       string  `json:"code"`
}

// canonical renders the key as a stable string for hashing. Scale uses the
// shortest round-trip float encoding so 0.05 and 0.050000001 hash apart.
func (k Key) canonical() string {
	return k.Experiment + "|" + k.Variant + "|" +
		strconv.FormatInt(k.Seed, 10) + "|" +
		strconv.FormatFloat(k.Scale, 'g', -1, 64) + "|" + k.Code
}

// cacheMeta is the first line of every cache file: the key it was computed
// for plus the payload checksum. A reader that cannot reproduce the checksum
// (truncation, bit rot, torn write) treats the entry as absent.
type cacheMeta struct {
	V      int    `json:"v"`
	Key    Key    `json:"key"`
	SHA256 string `json:"sha256"`
	Size   int    `json:"size"`
}

// CacheStats are monotonic counters exposed on /v1/stats.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Writes   int64 `json:"writes"`
	Corrupt  int64 `json:"corrupt"`
	Poisoned int64 `json:"poisoned"`
}

// Cache is a crash-safe content-addressed store of sweep-unit result lines.
// Entries are written temp-file + fsync + atomic rename (then directory
// fsync), so a crash mid-write leaves either the old entry or none — never a
// half-written one. Get verifies an embedded checksum and deletes anything
// it cannot verify, so corrupt entries are recomputed instead of served.
type Cache struct {
	dir string

	hits, misses, writes, corrupt, poisoned atomic.Int64
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// path shards entries into 256 subdirectories by hash prefix.
func (c *Cache) path(k Key) string {
	sum := sha256.Sum256([]byte(k.canonical()))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, h[:2], h+".rep")
}

// Get returns the cached payload for k, or (nil, false) on a miss. Entries
// that fail any integrity check — unparseable meta, key mismatch, short
// payload, checksum mismatch — are removed and reported as misses so the
// caller recomputes them.
func (c *Cache) Get(k Key) ([]byte, bool) {
	p := c.path(k)
	raw, err := os.ReadFile(p)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	payload, ok := verifyEntry(raw, k)
	if !ok {
		c.corrupt.Add(1)
		c.misses.Add(1)
		os.Remove(p)
		return nil, false
	}
	c.hits.Add(1)
	return payload, true
}

// verifyEntry splits a cache file into meta + payload and checks every
// integrity property. Split out (and unexported) so tests can target the
// verification logic with hand-corrupted inputs.
func verifyEntry(raw []byte, k Key) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	var meta cacheMeta
	if err := json.Unmarshal(raw[:nl], &meta); err != nil {
		return nil, false
	}
	if meta.V != 1 || meta.Key != k {
		return nil, false
	}
	payload := raw[nl+1:]
	if len(payload) != meta.Size {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != meta.SHA256 {
		return nil, false
	}
	return payload, true
}

// Put stores payload under k. The write is crash-safe: a temp file in the
// final directory is written, fsynced, closed, and atomically renamed into
// place, then the directory itself is fsynced so the rename survives a
// crash. Errors are returned but safe to ignore — a failed Put is just a
// future miss.
func (c *Cache) Put(k Key, payload []byte) error {
	p := c.path(k)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	meta, err := json.Marshal(cacheMeta{
		V: 1, Key: k, SHA256: hex.EncodeToString(sum[:]), Size: len(payload),
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(append(append(meta, '\n'), payload...)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return err
	}
	syncDir(dir)
	c.writes.Add(1)
	return nil
}

// Poison removes any cached entry for k. Called when a trial under k
// panicked or timed out: whatever bytes may have been cached for that key
// are no longer trusted.
func (c *Cache) Poison(k Key) {
	if err := os.Remove(c.path(k)); err == nil {
		c.poisoned.Add(1)
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Writes:   c.writes.Load(),
		Corrupt:  c.corrupt.Load(),
		Poisoned: c.poisoned.Load(),
	}
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best-effort: some filesystems reject directory fsync and the rename is
// still atomic on them.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
