package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pcc/internal/exp"
)

// Test drivers: cheap, deterministic experiments registered once for this
// test binary. They live beside the real drivers in exp's registry, which is
// exactly how an extension would add experiments to a running daemon.
func init() {
	exp.Register("srvtest", func(scale float64, seed int64) *exp.Report {
		return &exp.Report{
			ID: "srvtest", Title: "serve test driver",
			Header: []string{"scale", "seed"},
			Rows:   [][]string{{fmt.Sprintf("%.3f", scale), fmt.Sprintf("%d", seed)}},
		}
	})
	exp.Register("srvpanic", func(scale float64, seed int64) *exp.Report {
		exp.RunTrialsScratchWith(1, 1, func(i int, ts *exp.TrialScratch) {
			ts.Stamp("srvpanic", "inj", seed)
			srvPanicTrial()
		})
		return nil
	})
	exp.RegisterCtx("srvhang", func(ctx context.Context, scale float64, seed int64) (*exp.Report, error) {
		err := exp.RunTrialsScratchCtxWith(ctx, 1, 1, func(i int, ts *exp.TrialScratch) {
			ts.Stamp("srvhang", "wedge", seed)
			<-srvHangRelease
		})
		if err != nil {
			return nil, err
		}
		return &exp.Report{ID: "srvhang", Header: []string{"ok"}, Rows: [][]string{{"ok"}}}, nil
	})
	exp.RegisterCtx("srvgate", func(ctx context.Context, scale float64, seed int64) (*exp.Report, error) {
		select {
		case <-currentGate():
		case <-ctx.Done():
			return nil, &exp.SweepCancelledError{Completed: 0, Total: 1, Err: context.Cause(ctx)}
		}
		return &exp.Report{ID: "srvgate", Header: []string{"seed"},
			Rows: [][]string{{fmt.Sprintf("%d", seed)}}}, nil
	})
	exp.RegisterCtx("srvslow", func(ctx context.Context, scale float64, seed int64) (*exp.Report, error) {
		for i := 0; i < 50; i++ {
			select {
			case <-ctx.Done():
				return nil, &exp.SweepCancelledError{Completed: i, Total: 50, Err: context.Cause(ctx)}
			case <-time.After(10 * time.Millisecond):
			}
		}
		return &exp.Report{ID: "srvslow", Header: []string{"seed"},
			Rows: [][]string{{fmt.Sprintf("%d", seed)}}}, nil
	})
}

// srvPanicTrial panics from a named frame so ledger stack assertions have an
// unambiguous symbol to look for.
func srvPanicTrial() { panic("injected serve-test panic") }

var srvHangRelease = make(chan struct{})

var (
	gateMu sync.Mutex
	gate   = make(chan struct{})
)

func currentGate() chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	return gate
}

// resetGate installs a fresh gate and returns a release function.
func resetGate() func() {
	gateMu.Lock()
	defer gateMu.Unlock()
	gate = make(chan struct{})
	g := gate
	return func() { close(g) }
}

// newTestServer builds a Server with a pinned code version (stable cache
// keys under `go test`, where no VCS stamp exists) plus an httptest front.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.CodeVersion = "test-pin"
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSweep(t *testing.T, url string, body string) (*http.Response, error) {
	t.Helper()
	return http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ndjsonLines splits a body and checks every line is valid JSON.
func ndjsonLines(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

// TestSweepByteIdenticalAndCached is the heart of the serving contract: the
// same sweep served twice returns byte-identical bodies, the second time
// from the cache, and the streamed report matches a direct exp.Run.
func TestSweepByteIdenticalAndCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	req := `{"experiments":["theory"],"scales":[0.2],"seeds":[7]}`

	r1, err := postSweep(t, ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r1.StatusCode)
	}
	if ct := r1.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	body1 := readAll(t, r1)
	if srv.cache.Stats().Hits != 0 {
		t.Fatal("first sweep hit the cache")
	}

	r2, err := postSweep(t, ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, r2)
	if !bytes.Equal(body1, body2) {
		t.Fatalf("bodies differ:\n%s\nvs\n%s", body1, body2)
	}
	if hits := srv.cache.Stats().Hits; hits != 1 {
		t.Errorf("cache hits after second sweep = %d, want 1", hits)
	}

	// The streamed report is exactly what a direct run produces.
	lines := ndjsonLines(t, body1)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want result + summary", len(lines))
	}
	rep, err := exp.Run("theory", 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := lines[0]["report"]; got != rep.String() {
		t.Errorf("streamed report differs from direct exp.Run output")
	}
	if lines[1]["done"] != true {
		t.Errorf("summary = %v, want done", lines[1])
	}
}

// TestSweepRecomputesCorruptCache: a truncated or bit-flipped cache entry is
// detected, recomputed, and the re-served body is byte-identical.
func TestSweepRecomputesCorruptCache(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{CacheDir: dir, Workers: 1})
	req := `{"experiments":["srvtest"],"scales":[0.5],"seeds":[3]}`

	r1, err := postSweep(t, ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	body1 := readAll(t, r1)

	corruptEntry(t, dir, func(raw []byte) []byte { return raw[:len(raw)/2] })
	r2, _ := postSweep(t, ts.URL, req)
	body2 := readAll(t, r2)
	if !bytes.Equal(body1, body2) {
		t.Fatalf("recomputed body differs from original:\n%s\nvs\n%s", body1, body2)
	}
	st := srv.cache.Stats()
	if st.Corrupt != 1 || st.Hits != 0 || st.Writes != 2 {
		t.Errorf("stats = %+v, want 1 corrupt, 0 hits, 2 writes", st)
	}

	corruptEntry(t, dir, func(raw []byte) []byte {
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)-2] ^= 1
		return flipped
	})
	r3, _ := postSweep(t, ts.URL, req)
	if body3 := readAll(t, r3); !bytes.Equal(body1, body3) {
		t.Fatal("bit-flip recompute not byte-identical")
	}
	if st := srv.cache.Stats(); st.Corrupt != 2 {
		t.Errorf("Corrupt = %d, want 2", st.Corrupt)
	}

	// And after recompute, the next serve is a clean hit.
	r4, _ := postSweep(t, ts.URL, req)
	if body4 := readAll(t, r4); !bytes.Equal(body1, body4) {
		t.Fatal("cache-hit body not byte-identical")
	}
	if st := srv.cache.Stats(); st.Hits != 1 {
		t.Errorf("Hits = %d, want 1", st.Hits)
	}
}

// TestClientDisconnectCancelsSweep is the chaos test: a client that walks
// away mid-stream cancels the sweep at the next unit boundary, every line it
// did receive is valid NDJSON, and no goroutines leak.
func TestClientDisconnectCancelsSweep(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: 16})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"experiments":["srvslow"],"scales":[1],"seeds":[1,2,3,4,5,6]}`
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/sweep", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}

	// Read one complete result line, then vanish.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var first map[string]any
	if err := json.Unmarshal(line, &first); err != nil {
		t.Fatalf("partial stream line is not valid JSON: %q", line)
	}
	if first["experiment"] != "srvslow" {
		t.Fatalf("first line = %v", first)
	}
	cancel()
	resp.Body.Close()

	// The scheduler must observe the cancellation: all reserved slots come
	// back and no unit keeps running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.sched.Stats()
		if st.Reserved == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reservations never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.sweepsCancelled.Load(); n != 1 {
		t.Errorf("sweepsCancelled = %d, want 1", n)
	}

	// Counted goroutine check: once the server's conn handler and workers go
	// idle we must be back at the pre-request count.
	http.DefaultClient.CloseIdleConnections()
	ts.CloseClientConnections()
	waitServeGoroutinesSettle(t, base)
}

func waitServeGoroutinesSettle(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDeadlineCancels: the server-side sweep deadline cuts a sweep off
// with a valid cancelled summary line.
func TestServerDeadlineCancels(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SweepTimeout: 80 * time.Millisecond})
	resp, err := postSweep(t, ts.URL, `{"experiments":["srvslow"],"scales":[1],"seeds":[1,2,3]}`)
	if err != nil {
		t.Fatal(err)
	}
	lines := ndjsonLines(t, readAll(t, resp))
	if len(lines) == 0 {
		t.Fatal("no lines at all")
	}
	last := lines[len(lines)-1]
	if last["cancelled"] != true || last["done"] != false {
		t.Fatalf("summary = %v, want cancelled", last)
	}
}

// TestAdmissionControl429: once the queue is full of gated units, the next
// sweep is shed with 429 + Retry-After rather than queued or hung.
func TestAdmissionControl429(t *testing.T) {
	release := resetGate()
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 2})

	done := make(chan []byte, 1)
	go func() {
		resp, err := postSweep(t, ts.URL, `{"experiments":["srvgate"],"scales":[1],"seeds":[1,2]}`)
		if err != nil {
			done <- nil
			return
		}
		done <- readAll(t, resp)
	}()

	// Wait for both units to hold the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st StatsReply
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.Sched.Reserved == 2 {
			break
		}
		if time.Now().After(deadline) {
			release()
			t.Fatalf("queue never filled: %+v", st.Sched)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := postSweep(t, ts.URL, `{"experiments":["srvtest"],"scales":[1],"seeds":[9]}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	release()
	body := <-done
	if body == nil {
		t.Fatal("gated sweep failed")
	}
	lines := ndjsonLines(t, body)
	if len(lines) != 3 || lines[2]["done"] != true {
		t.Fatalf("gated sweep stream = %v", lines)
	}

	// With capacity back, the same shed request now succeeds.
	resp, err = postSweep(t, ts.URL, `{"experiments":["srvtest"],"scales":[1],"seeds":[9]}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp.StatusCode)
	}
	readAll(t, resp)
}

// TestUnitBudget400: sweeps over the per-request budget are rejected before
// any work is admitted.
func TestUnitBudget400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxUnits: 2})
	resp, err := postSweep(t, ts.URL, `{"experiments":["srvtest"],"scales":[1],"seeds":[1,2,3]}`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestPanicQuarantine: a panicking experiment fails only its own unit — the
// stream carries an in-band error line plus the other unit's result, the
// ledger records the panic with its stack, and nothing poisons the daemon.
func TestPanicQuarantine(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheDir: t.TempDir(), Workers: 1})
	resp, err := postSweep(t, ts.URL,
		`{"experiments":["srvpanic","srvtest"],"scales":[1],"seeds":[5]}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := ndjsonLines(t, readAll(t, resp))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want error + result + summary:\n%v", len(lines), lines)
	}
	errLine := lines[0]["error"].(map[string]any)
	if errLine["kind"] != "panic" {
		t.Errorf("error kind = %v, want panic", errLine["kind"])
	}
	if lines[1]["experiment"] != "srvtest" || lines[1]["report"] == nil {
		t.Errorf("healthy unit did not complete: %v", lines[1])
	}
	if lines[2]["done"] != true || lines[2]["failed"] != float64(1) {
		t.Errorf("summary = %v, want done with 1 failed", lines[2])
	}

	recs, total := srv.ledger.Snapshot()
	if total != 1 || len(recs) != 1 {
		t.Fatalf("ledger has %d records / %d total, want 1", len(recs), total)
	}
	if recs[0].Kind != "panic" || recs[0].Experiment != "srvpanic" {
		t.Errorf("ledger record = %+v", recs[0])
	}
	if !strings.Contains(recs[0].Stack, "srvPanicTrial") {
		t.Errorf("ledger stack does not name the panicking frame:\n%s", recs[0].Stack)
	}

	// The ledger endpoint serves the same record.
	lr, err := http.Get(ts.URL + "/v1/errors")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Errors []ErrorRecord `json:"errors"`
		Total  int64         `json:"total"`
	}
	json.NewDecoder(lr.Body).Decode(&dump)
	lr.Body.Close()
	if dump.Total != 1 || len(dump.Errors) != 1 || dump.Errors[0].Kind != "panic" {
		t.Errorf("/v1/errors = %+v", dump)
	}

	// The daemon survives: the same server immediately serves a clean sweep.
	resp, err = postSweep(t, ts.URL, `{"experiments":["srvtest"],"scales":[1],"seeds":[6]}`)
	if err != nil {
		t.Fatal(err)
	}
	if lines := ndjsonLines(t, readAll(t, resp)); lines[len(lines)-1]["done"] != true {
		t.Error("daemon unhealthy after quarantined panic")
	}
}

// TestWatchdogTimeoutQuarantine: a wedged trial is converted by the watchdog
// into an in-band timeout error; the daemon and its worker pool survive.
func TestWatchdogTimeoutQuarantine(t *testing.T) {
	exp.SetTrialTimeout(100 * time.Millisecond)
	t.Cleanup(func() {
		exp.SetTrialTimeout(0)
		close(srvHangRelease) // unwedge the abandoned trial goroutine
	})

	srv, ts := newTestServer(t, Config{Workers: 1})
	resp, err := postSweep(t, ts.URL, `{"experiments":["srvhang","srvtest"],"scales":[1],"seeds":[8]}`)
	if err != nil {
		t.Fatal(err)
	}
	lines := ndjsonLines(t, readAll(t, resp))
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	errLine, _ := lines[0]["error"].(map[string]any)
	if errLine == nil || errLine["kind"] != "timeout" {
		t.Fatalf("first line = %v, want in-band timeout error", lines[0])
	}
	if lines[1]["experiment"] != "srvtest" {
		t.Errorf("healthy unit missing: %v", lines[1])
	}
	recs, _ := srv.ledger.Snapshot()
	if len(recs) != 1 || recs[0].Kind != "timeout" || recs[0].Variant != "wedge" {
		t.Errorf("ledger = %+v, want one timeout for variant wedge", recs)
	}
}

// TestDrainSemantics: Drain lets the in-flight sweep finish and flush, flips
// readyz to 503 while healthz stays 200, and rejects new sweeps with 503.
func TestDrainSemantics(t *testing.T) {
	release := resetGate()
	srv, ts := newTestServer(t, Config{Workers: 1})

	done := make(chan []byte, 1)
	go func() {
		resp, err := postSweep(t, ts.URL, `{"experiments":["srvgate"],"scales":[1],"seeds":[1]}`)
		if err != nil {
			done <- nil
			return
		}
		done <- readAll(t, resp)
	}()

	// Wait until the unit is actually running.
	deadline := time.Now().Add(5 * time.Second)
	for srv.sched.Stats().Started == 0 {
		if time.Now().After(deadline) {
			release()
			t.Fatal("gated unit never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %v", resp.Status)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %v", resp.Status)
	} else {
		resp.Body.Close()
	}
	if resp, err := postSweep(t, ts.URL, `{"experiments":["srvtest"],"scales":[1],"seeds":[1]}`); err != nil ||
		resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new sweep while draining: %v", resp.Status)
	} else {
		resp.Body.Close()
	}

	// The in-flight sweep must still complete and flush.
	release()
	body := <-done
	if body == nil {
		t.Fatal("in-flight sweep died during drain")
	}
	lines := ndjsonLines(t, body)
	if lines[len(lines)-1]["done"] != true {
		t.Fatalf("in-flight sweep did not finish cleanly: %v", lines)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned")
	}
}

// TestIntrospectionEndpoints covers the read-only endpoints' shapes.
func TestIntrospectionEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var exps struct {
		Experiments []string `json:"experiments"`
	}
	json.NewDecoder(resp.Body).Decode(&exps)
	resp.Body.Close()
	found := false
	for _, id := range exps.Experiments {
		if id == "parklot" {
			found = true
		}
	}
	if !found {
		t.Errorf("/v1/experiments missing parklot: %v", exps.Experiments)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Code != "test-pin" || st.Sched.Capacity == 0 {
		t.Errorf("stats = %+v", st)
	}

	// Unknown experiment → 400, not a panic or a hang.
	resp, err = postSweep(t, ts.URL, `{"experiments":["nope"]}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment status = %d, want 400", resp.StatusCode)
	}
}
