package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(code string) Key {
	return Key{Experiment: "parklot", Variant: "pcc", Seed: 42, Scale: 0.05, Code: code}
}

func TestCacheRoundtrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("v1")
	payload := []byte(`{"experiment":"parklot","report":"== parklot ==\n"}`)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = (%q, %v), want stored payload", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
}

func TestCacheKeyIsolation(t *testing.T) {
	c, _ := NewCache(t.TempDir())
	k := testKey("v1")
	c.Put(k, []byte("result-v1"))
	// Any field change — including only the code version — must miss.
	for name, other := range map[string]Key{
		"code":  {Experiment: k.Experiment, Variant: k.Variant, Seed: k.Seed, Scale: k.Scale, Code: "v2"},
		"seed":  {Experiment: k.Experiment, Variant: k.Variant, Seed: 43, Scale: k.Scale, Code: k.Code},
		"scale": {Experiment: k.Experiment, Variant: k.Variant, Seed: k.Seed, Scale: 0.06, Code: k.Code},
		"exp":   {Experiment: "theory", Variant: k.Variant, Seed: k.Seed, Scale: k.Scale, Code: k.Code},
	} {
		if _, ok := c.Get(other); ok {
			t.Errorf("%s-differing key hit the cache", name)
		}
	}
}

// corruptEntry mutates the single cache file under dir with fn.
func corruptEntry(t *testing.T, dir string, fn func([]byte) []byte) {
	t.Helper()
	var path string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".rep") {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatal("no cache entry on disk")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCacheTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(dir)
	k := testKey("v1")
	payload := []byte("a perfectly good result line with some length to it")
	c.Put(k, payload)
	corruptEntry(t, dir, func(raw []byte) []byte { return raw[:len(raw)-7] })

	if _, ok := c.Get(k); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
	// The corrupt file must be gone so the recompute path can repopulate.
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt entry still present after detection")
	}
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("recomputed entry does not round-trip")
	}
}

func TestCacheBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(dir)
	k := testKey("v1")
	c.Put(k, []byte("bytes whose integrity matters"))
	corruptEntry(t, dir, func(raw []byte) []byte {
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)-3] ^= 0x40 // flip one payload bit
		return flipped
	})
	if _, ok := c.Get(k); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
}

func TestCacheGarbageMetaDetected(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(dir)
	k := testKey("v1")
	c.Put(k, []byte("payload"))
	corruptEntry(t, dir, func(raw []byte) []byte { return append([]byte("not json"), raw...) })
	if _, ok := c.Get(k); ok {
		t.Fatal("garbage-meta entry served as a hit")
	}
}

func TestCachePoison(t *testing.T) {
	c, _ := NewCache(t.TempDir())
	k := testKey("v1")
	c.Put(k, []byte("soon to be distrusted"))
	c.Poison(k)
	if _, ok := c.Get(k); ok {
		t.Fatal("poisoned entry served as a hit")
	}
	if st := c.Stats(); st.Poisoned != 1 {
		t.Errorf("Poisoned = %d, want 1", st.Poisoned)
	}
	// Poisoning an absent key is a no-op, not a counter bump.
	c.Poison(testKey("v2"))
	if st := c.Stats(); st.Poisoned != 1 {
		t.Errorf("Poisoned = %d after no-op poison, want 1", st.Poisoned)
	}
}

func TestLedgerRingWraps(t *testing.T) {
	l := NewLedger(3)
	for i := 0; i < 5; i++ {
		l.Record(Key{Experiment: "e", Seed: int64(i)}, errSeed(i))
	}
	recs, total := l.Snapshot()
	if total != 5 || len(recs) != 3 {
		t.Fatalf("snapshot = %d records / %d total, want 3 / 5", len(recs), total)
	}
	for i, r := range recs {
		if want := int64(i + 2); r.Seed != want { // oldest retained is #2
			t.Errorf("recs[%d].Seed = %d, want %d", i, r.Seed, want)
		}
	}
}

type seedErr int

func (e seedErr) Error() string { return "failure" }
func errSeed(i int) error       { return seedErr(i) }
