package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"pcc/internal/exp"
)

// job is one sweep unit handed to the scheduler. The result channel is
// buffered so a worker can always deliver and move on, even if the request
// that submitted the job has already disconnected — that is what keeps a
// cancelled stream from leaking worker goroutines.
type job struct {
	ctx  context.Context
	key  Key
	res  chan unitResult
	done func() // releases the admission reservation
}

// unitResult is what a worker hands back for one unit.
type unitResult struct {
	rep *exp.Report
	err error
}

// Scheduler runs sweep units on a fixed pool of persistent workers behind a
// bounded admission counter. Admission is reserved per request (all units at
// once, atomically) before any unit is enqueued, so a burst of requests gets
// a clean 429 instead of a half-admitted sweep.
type Scheduler struct {
	jobs     chan job
	limit    int64
	reserved atomic.Int64
	started  atomic.Int64
	finished atomic.Int64
	wg       sync.WaitGroup
	stop     sync.Once
}

// NewScheduler starts workers goroutines and admits at most queue units at a
// time (queued plus running, across all requests).
func NewScheduler(workers, queue int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queue < workers {
		queue = workers
	}
	s := &Scheduler{
		// Reservation precedes every send, so the channel never needs to
		// hold more than the admission limit: sends cannot block.
		jobs:  make(chan job, queue),
		limit: int64(queue),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Reserve atomically claims n admission slots. It never blocks: a full
// scheduler returns false and the server answers 429.
func (s *Scheduler) Reserve(n int) bool {
	if int64(n) > s.limit {
		return false
	}
	for {
		cur := s.reserved.Load()
		if cur+int64(n) > s.limit {
			return false
		}
		if s.reserved.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// Release returns n admission slots. Requests release slots for units they
// never submitted (cache hits, early abort); workers release the rest as
// units finish.
func (s *Scheduler) Release(n int) { s.reserved.Add(int64(-n)) }

// Submit enqueues one reserved unit and returns its result channel.
func (s *Scheduler) Submit(ctx context.Context, k Key) <-chan unitResult {
	res := make(chan unitResult, 1)
	s.jobs <- job{ctx: ctx, key: k, res: res, done: func() { s.Release(1) }}
	return res
}

// worker runs jobs until Close. A job whose request has already gone away is
// skipped without running the experiment.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if err := j.ctx.Err(); err != nil {
			cause := context.Cause(j.ctx)
			if cause == nil {
				cause = err
			}
			j.res <- unitResult{err: &exp.SweepCancelledError{Completed: 0, Total: 1, Err: cause}}
			j.done()
			continue
		}
		s.started.Add(1)
		rep, err := exp.RunCtx(j.ctx, j.key.Experiment, j.key.Scale, j.key.Seed)
		s.finished.Add(1)
		j.res <- unitResult{rep: rep, err: err}
		j.done()
	}
}

// Close stops the workers after the queue drains. Callers must stop
// submitting first (the server's drain flag guarantees that).
func (s *Scheduler) Close() {
	s.stop.Do(func() { close(s.jobs) })
	s.wg.Wait()
}

// SchedStats is the scheduler section of /v1/stats.
type SchedStats struct {
	Capacity int64 `json:"capacity"`
	Reserved int64 `json:"reserved"`
	Started  int64 `json:"started"`
	Finished int64 `json:"finished"`
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() SchedStats {
	return SchedStats{
		Capacity: s.limit,
		Reserved: s.reserved.Load(),
		Started:  s.started.Load(),
		Finished: s.finished.Load(),
	}
}
