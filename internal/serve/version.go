package serve

import (
	"runtime/debug"
	"sync"
)

var (
	versionOnce sync.Once
	versionStr  string
)

// BuildVersion identifies the code that computed a cached result: the VCS
// revision baked into the binary (suffixed "+dirty" for modified trees), or
// "dev" for builds without VCS stamping (go test, go run). It participates
// in every cache key so results computed by different code never alias.
func BuildVersion() string {
	versionOnce.Do(func() {
		versionStr = "dev"
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, dirty string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			versionStr = rev + dirty
		}
	})
	return versionStr
}
