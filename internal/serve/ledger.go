package serve

import (
	"errors"
	"sync"
	"time"

	"pcc/internal/exp"
)

// ErrorRecord is one quarantined failure: a trial panic or watchdog timeout
// that failed a single request without taking the daemon down. The stack (if
// any) is the panicking goroutine's, captured at recover() time — the only
// record of it once the goroutine is gone.
type ErrorRecord struct {
	Time       time.Time `json:"time"`
	Kind       string    `json:"kind"` // "panic" | "timeout" | "error"
	Experiment string    `json:"experiment"`
	Variant    string    `json:"variant"`
	Seed       int64     `json:"seed"`
	Scale      float64   `json:"scale"`
	Message    string    `json:"message"`
	Stack      string    `json:"stack,omitempty"`
}

// Ledger is a fixed-capacity ring of the most recent quarantined failures,
// served on /v1/errors. Oldest entries are evicted first.
type Ledger struct {
	mu    sync.Mutex
	ring  []ErrorRecord
	next  int
	total int64
}

// NewLedger makes a ledger keeping the last n records (minimum 1).
func NewLedger(n int) *Ledger {
	if n < 1 {
		n = 1
	}
	return &Ledger{ring: make([]ErrorRecord, 0, n)}
}

// Record classifies err against the exp error taxonomy and appends a record.
// The unit key supplies provenance for errors that don't carry their own.
func (l *Ledger) Record(k Key, err error) {
	rec := ErrorRecord{
		Time:       time.Now(),
		Kind:       "error",
		Experiment: k.Experiment,
		Variant:    k.Variant,
		Seed:       k.Seed,
		Scale:      k.Scale,
		Message:    err.Error(),
	}
	var tpe *exp.TrialPanicError
	var tte *exp.TrialTimeoutError
	switch {
	case errors.As(err, &tpe):
		rec.Kind = "panic"
		rec.Variant = tpe.Variant
		rec.Stack = string(tpe.Stack)
	case errors.As(err, &tte):
		rec.Kind = "timeout"
		rec.Variant = tte.Variant
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[l.next] = rec
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.total++
	l.mu.Unlock()
}

// Snapshot returns the retained records, oldest first, plus the total ever
// recorded (which may exceed len of the returned slice once the ring wraps).
func (l *Ledger) Snapshot() ([]ErrorRecord, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ErrorRecord, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out, l.total
}
