package exp

import (
	"fmt"
	"strings"
)

// Report is the uniform output of every experiment driver: a table whose
// rows mirror what the paper's figure or table reports, plus free-text
// notes about the comparison.
type Report struct {
	// ID is the experiment identifier ("fig7", "table1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes carries summary observations (factors, medians, crossovers).
	Notes []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// clampScale normalizes the user-supplied scale into (0, 1].
func clampScale(scale float64) float64 {
	if scale <= 0 {
		return 0.1
	}
	if scale > 1 {
		return 1
	}
	return scale
}

// scaledDur returns full*scale floored at min seconds.
func scaledDur(full, min, scale float64) float64 {
	d := full * scale
	if d < min {
		d = min
	}
	return d
}
