package exp

import (
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/workload"
)

// RunFig5 reproduces Figs. 4/5 (§4.1.1): a Monte-Carlo stand-in for the 510
// PlanetLab/GENI sender-receiver pairs. For each sampled path it measures
// PCC, CUBIC, SABUL and PCP throughput and reports the distribution of
// PCC's improvement ratio (paper: 5.52x median vs CUBIC, >=10x on 41% of
// pairs; 1.41x median vs SABUL; 4.58x median vs PCP).
func RunFig5(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	n := int(40 * scale)
	if n < 8 {
		n = 8
	}
	dur := scaledDur(60, 20, scale)
	paths := workload.SampleInternetPaths(n, seed)

	rivals := []string{"cubic", "sabul", "pcp"}
	perPath := RunPointsScratch(len(paths), func(i int, ts *TrialScratch) []float64 {
		p := paths[i]
		path := PathSpec{RateMbps: p.RateMbps, RTT: p.RTT, Loss: p.Loss, BufBytes: p.BufBytes, Seed: seed + int64(i)*7}
		pccT := runSingle(ts, path, "pcc", dur, nil)
		out := make([]float64, len(rivals))
		for k, rival := range rivals {
			rT := runSingle(ts, path, rival, dur, nil)
			if rT <= 0 {
				rT = 0.01
			}
			out[k] = pccT / rT
		}
		return out
	})
	ratios := map[string][]float64{}
	for _, rs := range perPath {
		for k, rival := range rivals {
			ratios[rival] = append(ratios[rival], rs[k])
		}
	}

	rep := &Report{
		ID:     "fig5",
		Title:  fmt.Sprintf("Internet ensemble (%d sampled paths): PCC throughput improvement ratio", n),
		Header: []string{"vs", "p10", "median", "p90", "frac>=2x", "frac>=10x"},
	}
	var sorted []float64 // one sort per rival serves all three quantiles
	for _, rival := range rivals {
		rs := ratios[rival]
		sorted = metrics.SortInto(sorted, rs)
		rep.Rows = append(rep.Rows, []string{
			rival,
			f2(metrics.PercentileSorted(sorted, 10)),
			f2(metrics.PercentileSorted(sorted, 50)),
			f2(metrics.PercentileSorted(sorted, 90)),
			f2(metrics.FracAtLeast(rs, 2)),
			f2(metrics.FracAtLeast(rs, 10)),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: median 5.52x vs CUBIC (>=10x on 41% of pairs), 1.41x vs SABUL, 4.58x vs PCP")
	return rep
}
