package exp

import (
	"fmt"

	"pcc/internal/core"
	"pcc/internal/netem"
)

// RunFig17 reproduces Fig. 17 (§4.4.1): the power (throughput/delay) of two
// interactive flows on a 40 Mbps / 20 ms link under the four combinations
// of end-host protocol {TCP CUBIC, PCC with the latency utility} and
// per-flow-fair-queueing AQM {CoDel, bufferbloat-deep FIFO}. The paper's
// point: TCP needs CoDel to get good power (10.5x difference between
// AQMs), while PCC keeps its own queue tiny so both AQMs give the same —
// and higher — power.
func RunFig17(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(120, 40, scale)

	type cell struct {
		label string
		proto string
		queue string
	}
	cells := []cell{
		{"TCP+CoDel+FQ", "cubic", "fqcodel"},
		{"TCP+Bufferbloat+FQ", "cubic", "fq"},
		{"PCC+CoDel+FQ", "pcc", "fqcodel"},
		{"PCC+Bufferbloat+FQ", "pcc", "fq"},
	}

	rep := &Report{
		ID:     "fig17",
		Title:  "power (Mbps per second of delay) under AQM x protocol, 40 Mbps / 20 ms, FQ, 2 flows",
		Header: []string{"combination", "tput_Mbps", "mean_RTT_ms", "power"},
	}
	type cellResult struct{ tput, rtt float64 }
	cellOut := RunPointsScratch(len(cells), func(i int, ts *TrialScratch) cellResult {
		c := cells[i]
		// Bufferbloat = very deep per-flow FIFO (2 MB); CoDel children get
		// the same physical cap but drain the standing queue.
		r := ts.Runner(c.label, PathSpec{RateMbps: 40, RTT: 0.020, BufBytes: 2000 * netem.KB, QueueKind: c.queue, Seed: seed})
		f1s := r.AddFlow(flowForPower(c.proto))
		f2s := r.AddFlow(flowForPower(c.proto))
		r.Run(dur)

		var res cellResult
		for _, f := range []*Flow{f1s, f2s} {
			res.tput += f.GoodputMbps(dur)
			res.rtt += meanRTT(f)
		}
		res.rtt /= 2
		return res
	})
	powers := map[string]float64{}
	for i, c := range cells {
		tput, rtt := cellOut[i].tput, cellOut[i].rtt
		power := 0.0
		if rtt > 0 {
			power = tput / rtt
		}
		powers[c.label] = power
		rep.Rows = append(rep.Rows, []string{c.label, f2(tput), f1(rtt * 1e3), fmt.Sprintf("%.0f", power)})
	}
	if powers["PCC+CoDel+FQ"] > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"TCP power ratio CoDel/Bufferbloat = %.1fx (paper: 10.5x); PCC ratio = %.2fx (paper: ~1.0x); PCC+Bufferbloat / TCP+CoDel = %.2fx (paper: 1.55x)",
			safeDiv(powers["TCP+CoDel+FQ"], powers["TCP+Bufferbloat+FQ"]),
			safeDiv(powers["PCC+CoDel+FQ"], powers["PCC+Bufferbloat+FQ"]),
			safeDiv(powers["PCC+Bufferbloat+FQ"], powers["TCP+CoDel+FQ"])))
	}
	return rep
}

// flowForPower builds the flow spec for one interactive flow of the Fig. 17
// cell: PCC uses the §4.4.1 latency utility.
func flowForPower(proto string) FlowSpec {
	spec := FlowSpec{Proto: proto, Bucket: 1}
	if proto == "pcc" {
		cfg := core.InteractiveConfig(0.020)
		spec.PCCConfig = &cfg
	}
	return spec
}

func meanRTT(f *Flow) float64 {
	if f.RS != nil {
		return f.RS.MeanRTT()
	}
	return f.WS.MeanRTT()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
