package exp

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutinesSettle polls until the process goroutine count drops back to
// at most want, failing the test if it never does. It is the counted
// goleak-style check: pool workers and watchdog goroutines must all be gone
// once a sweep returns (modulo runtime/test goroutines that existed before).
func waitGoroutinesSettle(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler's books
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d still running, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunTrialsCtxCancelledMidSweep checks the core cancellation contract:
// cancelling the context stops scheduling at the next trial boundary,
// in-flight trials complete, the pool returns a typed *SweepCancelledError
// whose Completed count matches the trials that actually ran, and the
// completed slots hold valid partial results.
func TestRunTrialsCtxCancelledMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 1000
		release := make(chan struct{})
		cancelAfter := 5
		out, err := RunPointsScratchCtxWith(ctx, workers, n, func(i int, ts *TrialScratch) int {
			if i == cancelAfter {
				cancel()
				close(release)
			} else if i > cancelAfter {
				// Trials scheduled concurrently with the cancelling trial may
				// still run; block them briefly so at least one boundary check
				// happens after cancel() on every worker.
				select {
				case <-release:
				case <-time.After(time.Second):
				}
			}
			return i + 1
		})
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: sweep of %d trials survived cancellation", workers, n)
		}
		var sc *SweepCancelledError
		if !errors.As(err, &sc) {
			t.Fatalf("workers=%d: err = %T (%v), want *SweepCancelledError", workers, err, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: errors.Is(err, context.Canceled) = false", workers)
		}
		if sc.Total != n || sc.Completed <= 0 || sc.Completed >= n {
			t.Errorf("workers=%d: completed %d/%d, want a strict partial sweep", workers, sc.Completed, sc.Total)
		}
		filled := 0
		for i, v := range out {
			if v != 0 {
				if v != i+1 {
					t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i+1)
				}
				filled++
			}
		}
		if filled < sc.Completed {
			t.Errorf("workers=%d: %d filled slots < %d reported completed", workers, filled, sc.Completed)
		}
	}
}

// TestRunTrialsCtxCompletesDespiteLateCancel: a context cancelled only after
// every trial has been claimed must not turn a fully completed sweep into an
// error.
func TestRunTrialsCtxCompletesDespiteLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, err := RunPointsCtx(ctx, 8, func(i int) int { return i * i })
	if err != nil {
		t.Fatalf("uncancelled sweep returned %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunTrialsCtxPreCancelled: an already-dead context runs zero trials.
func TestRunTrialsCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := RunTrialsCtx(ctx, 10, func(int) { ran = true })
	var sc *SweepCancelledError
	if !errors.As(err, &sc) || sc.Completed != 0 {
		t.Fatalf("err = %v, want *SweepCancelledError with 0 completed", err)
	}
	if ran {
		t.Error("a trial ran under a pre-cancelled context")
	}
}

// TestRunTrialsCtxNoGoroutineLeak: a cancelled parallel sweep must wind all
// its worker goroutines down before returning.
func TestRunTrialsCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = RunTrialsCtxWith(ctx, 8, 64, func(i int) {
			if i == 3 {
				cancel()
			}
		})
		cancel()
	}
	waitGoroutinesSettle(t, before)
}

// TestTrialWatchdogTimeout checks the per-trial watchdog on both the
// sequential and pooled paths: a hung trial converts into a typed
// *TrialTimeoutError carrying the provenance the trial stamped, the sweep
// aborts, and the worker pool itself survives (a later sweep on the same
// process completes normally).
func TestTrialWatchdogTimeout(t *testing.T) {
	defer SetTrialTimeout(0)
	for _, workers := range []int{1, 4} {
		release := make(chan struct{})
		SetTrialTimeout(50 * time.Millisecond)
		err := RunTrialsScratchCtxWith(context.Background(), workers, 8,
			func(i int, ts *TrialScratch) {
				ts.Stamp("hangexp", "pcc", TrialSeed(99, i))
				if i == 2 {
					<-release // a hang the trial will never escape on its own
				}
			})
		SetTrialTimeout(0)
		var tt *TrialTimeoutError
		if err == nil || !errors.As(err, &tt) {
			close(release)
			t.Fatalf("workers=%d: err = %v, want *TrialTimeoutError", workers, err)
		}
		if tt.Experiment != "hangexp" || tt.Variant != "pcc" || tt.Trial != 2 {
			t.Errorf("workers=%d: provenance = %+v, want hangexp/pcc trial 2", workers, tt)
		}
		if tt.Seed != TrialSeed(99, 2) {
			t.Errorf("workers=%d: Seed = %d, want %d", workers, tt.Seed, TrialSeed(99, 2))
		}
		if tt.Timeout != 50*time.Millisecond {
			t.Errorf("workers=%d: Timeout = %v, want 50ms", workers, tt.Timeout)
		}
		// Unwedge the abandoned goroutine so the test process stays clean.
		close(release)

		// The pool must still be fully usable after a timeout abort.
		out := RunPointsWith(workers, 4, func(i int) int { return i })
		for i, v := range out {
			if v != i {
				t.Fatalf("workers=%d: pool broken after timeout: out[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestTrialTimeoutKnobResolution pins the watchdog knob's resolution order:
// SetTrialTimeout wins, then PCC_TRIAL_TIMEOUT (duration or bare seconds),
// then disabled.
func TestTrialTimeoutKnobResolution(t *testing.T) {
	defer SetTrialTimeout(0)
	SetTrialTimeout(3 * time.Second)
	if got := TrialTimeout(); got != 3*time.Second {
		t.Errorf("after SetTrialTimeout(3s), TrialTimeout() = %v", got)
	}
	SetTrialTimeout(0)
	t.Setenv("PCC_TRIAL_TIMEOUT", "250ms")
	if got := TrialTimeout(); got != 250*time.Millisecond {
		t.Errorf("PCC_TRIAL_TIMEOUT=250ms, TrialTimeout() = %v", got)
	}
	t.Setenv("PCC_TRIAL_TIMEOUT", "45")
	if got := TrialTimeout(); got != 45*time.Second {
		t.Errorf("PCC_TRIAL_TIMEOUT=45, TrialTimeout() = %v (bare ints are seconds)", got)
	}
	t.Setenv("PCC_TRIAL_TIMEOUT", "nonsense")
	if got := TrialTimeout(); got != 0 {
		t.Errorf("PCC_TRIAL_TIMEOUT=nonsense, TrialTimeout() = %v, want 0", got)
	}
}

// TestTrialPanicCapturesStack: the panic wrapper must carry the panicking
// goroutine's stack — including the frame that panicked — on both the
// sequential and pooled paths, so a quarantined panic is debuggable from a
// server's error ledger long after the goroutine is gone.
func TestTrialPanicCapturesStack(t *testing.T) {
	for _, workers := range []int{1, 4} {
		tpe := recoverTrialPanic(t, func() {
			RunTrialsScratchWith(workers, 4, func(i int, ts *TrialScratch) {
				ts.Stamp("stackexp", "x", TrialSeed(1, i))
				if i%2 == 1 {
					explodeForStackTest()
				}
			})
		})
		if len(tpe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		if !bytes.Contains(tpe.Stack, []byte("explodeForStackTest")) {
			t.Errorf("workers=%d: stack does not name the panicking frame:\n%s", workers, tpe.Stack)
		}
	}
}

// explodeForStackTest panics from a named function so the stack assertion
// has an unambiguous frame to look for.
func explodeForStackTest() {
	panic("boom for stack capture")
}

// TestRunCtxTheoryCancels exercises a ctx-native driver end to end: RunCtx
// on "theory" with an expired deadline must come back with a typed
// cancellation, while a live context produces the full report.
func TestRunCtxTheoryCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCtx(ctx, "theory", 0.2, 42)
	var sc *SweepCancelledError
	if rep != nil || !errors.As(err, &sc) {
		t.Fatalf("cancelled RunCtx = (%v, %v), want (nil, *SweepCancelledError)", rep, err)
	}
	rep, err = RunCtx(context.Background(), "theory", 0.2, 42)
	if err != nil || rep == nil || len(rep.Rows) == 0 {
		t.Fatalf("live RunCtx(theory) = (%v, %v), want a populated report", rep, err)
	}
	if !strings.Contains(rep.String(), "Theorem") {
		t.Error("theory report lost its title")
	}
}
