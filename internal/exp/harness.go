// Package exp contains one driver per table/figure of the paper's
// evaluation (§4), plus the shared harness that assembles simulated
// dumbbells, flows and protocols. Each driver returns structured rows that
// cmd/pccbench and bench_test.go print; EXPERIMENTS.md records
// paper-vs-measured for each.
package exp

import (
	"fmt"
	"maps"
	"math/rand"
	"sort"
	"strings"

	"pcc/internal/baseline"
	"pcc/internal/cc"
	"pcc/internal/core"
	"pcc/internal/netem"
	"pcc/internal/sim"
	"pcc/internal/tcp"
	"pcc/internal/topogen"
)

// LinkSpec describes one directed link of a TopologySpec.
type LinkSpec struct {
	// Name registers the link for route references.
	Name string
	// From/To are the node names the link joins.
	From, To string
	// RateMbps is the link capacity in Mbps.
	RateMbps float64
	// Delay is the link's one-way propagation delay, seconds.
	Delay float64
	// Loss is the link's Bernoulli wire-loss probability.
	Loss float64
	// BufBytes is the link queue capacity in bytes.
	BufBytes int
	// QueueKind selects the AQM, as in PathSpec ("" = droptail).
	QueueKind string
}

// TopologySpec describes a general multi-link network for experiments the
// dumbbell cannot express: multiple bottlenecks in series, congested ACK
// paths, cross-traffic on interior links. Flows on a topology runner carry
// explicit routes in their FlowSpec (FwdRoute/RevRoute).
//
// Specs need not be hand-written: GraphSpec converts a topogen-generated
// graph (fat-tree, transit-stub WAN, LEO chain, delay-matrix mesh) into a
// TopologySpec carrying the generator's links and shard hints, and
// topogen.Router computes the matching deterministic FwdRoute/RevRoute hop
// chains — the construction path of the internet-scale experiments.
type TopologySpec struct {
	// Links are created in order; each draws one RNG stream from the root
	// seed for its wire-loss process, so adding a link never perturbs the
	// draws earlier links see.
	Links []LinkSpec
	// Seed roots all randomness for the run.
	Seed int64
	// Shards > 1 asks the runner to partition the topology's nodes across
	// that many engines running in conservative lockstep (see
	// sim.ShardGroup) so one trial uses several cores. It is a ceiling: the
	// partitioner merges zero-delay neighborhoods and may use fewer shards,
	// or decline entirely (falling back to the classic single engine).
	// Results are byte-identical at every shard count; the experiment suite
	// asserts it. Sharded runners require all flows to be added before Run
	// and every flow's delay hops to live on one shard (see
	// netem.Topology.Shard).
	Shards int
	// Faults, when non-nil and non-empty, injects timed hard faults (link
	// down/up flaps, step degrades, partitions, node crashes) into the trial:
	// the schedule is materialized at build time — flap jitter drawn from one
	// runner RNG stream — and scheduled as plain engine events on each target
	// link's home shard, so faults compose with arenas and sharding without
	// perturbing determinism. Every link a fault references (and every link
	// incident to a crashed node) is pinned to a single shard with its
	// opposite endpoint, so a fault never has to reach across engines
	// mid-run; cross-shard lookahead stays the static topology minimum.
	Faults *netem.FaultSchedule
	// ShardHints, when non-nil, biases the shard partitioning: nodes
	// sharing a hint value are contracted onto one shard like zero-delay
	// neighborhoods (see netem.PartitionNodesHinted). Generators emit
	// their locality structure here — a fat-tree pod, a transit domain
	// with its stubs, a LEO segment — so cut edges fall only on the
	// wide-delay inter-group links. Hints compose with fault pins and are
	// placement-only: results stay byte-identical with or without them.
	ShardHints map[string]int
}

// PathSpec describes the shared bottleneck of a dumbbell.
type PathSpec struct {
	// RateMbps is the bottleneck capacity in Mbps.
	RateMbps float64
	// RTT is the default two-way propagation delay for flows, seconds.
	RTT float64
	// Loss is the forward-path Bernoulli loss probability.
	Loss float64
	// BufBytes is the bottleneck queue capacity in bytes (ignored for FQ
	// kinds, which use it per flow).
	BufBytes int
	// QueueKind selects the AQM: "droptail" (default), "codel", "fq",
	// "fqcodel".
	QueueKind string
	// Seed roots all randomness for the run.
	Seed int64
}

// FlowSpec describes one flow in a run.
type FlowSpec struct {
	// Proto is "pcc", "sabul", "pcp", "pacing" (paced New Reno), or any
	// internal/tcp variant name.
	Proto string
	// RTT overrides the path RTT for this flow (0 = path default).
	RTT float64
	// RevLoss is ACK-path Bernoulli loss (dumbbell runners only; a
	// topology route expresses ACK loss with netem.LossyDelayHop).
	RevLoss float64
	// StartAt is the flow's start time, seconds.
	StartAt float64
	// FlowKB limits the flow to this many kilobytes (0 = unbounded).
	FlowKB int
	// PacketSize is the flow's data packet wire size in bytes (0 = cc.MSS,
	// 1500). Flows on one topology may mix sizes freely — interactive mice
	// at 512 B sharing a bottleneck with 9000-byte jumbo bulk — and every
	// layer (pacing clock, link serialization, queue occupancy, monitor
	// byte accounting) uses the true per-packet size.
	PacketSize int
	// Bucket enables per-bucket goodput series of this width, seconds.
	Bucket float64
	// PCCConfig overrides the default PCC configuration (pcc only).
	PCCConfig *core.Config
	// Utility overrides the PCC utility function (pcc only).
	Utility core.Utility
	// CapacityHint feeds SABUL's packet-pair capacity estimate, bytes/s
	// (0 = path capacity).
	CapacityHint float64
	// TraceRate records the rate-based sender's target-rate trace.
	TraceRate bool
	// FwdRoute/RevRoute are the flow's explicit routes on a topology
	// runner (hop chains over named links and delay segments). Both must be
	// set together; leave empty on a dumbbell runner. When RTT is 0 it is
	// inferred from the routes' propagation delays.
	FwdRoute []netem.HopSpec
	RevRoute []netem.HopSpec
}

// Flow is a running flow's handle.
type Flow struct {
	ID     int
	Spec   FlowSpec
	Recv   *cc.Receiver
	WS     *cc.WindowSender
	RS     *cc.RateSender
	PCC    *core.PCC
	DoneAt float64 // completion time for finite flows; -1 while running

	// Closures cached at first construction so arena-reused flows schedule
	// and deliver through the same function values trial after trial instead
	// of allocating fresh method values per AddFlow.
	dataSink func(*netem.Packet)
	ackSink  func(*netem.Packet)
	startFn  func()
	onDone   func(now float64)

	// srcNode/dstNode are the nodes the flow's sender and receiver live at
	// (the forward route's first link tail and last link head), recorded so
	// node-crash faults can freeze exactly the endpoints hosted at the
	// crashed node. Empty on dumbbell flows and link-less routes.
	srcNode, dstNode string
}

// Runner assembles and runs one simulation — a dumbbell (NewRunner) or a
// general multi-link topology (NewTopologyRunner). A Runner (like its
// Engine) is single-threaded; parallel experiments give every trial its own
// Runner (see pool.go), which also keeps the packet free list goroutine-local.
//
// Runners built through a TrialScratch arena are additionally *reused*
// across trials: respec methods rewind the engine, links, queues and flows
// in place so steady-state trials pay almost no setup allocations, with
// results bit-identical to a fresh build (the respec paths draw the seed
// chain at exactly the positions the constructors do).
type Runner struct {
	Eng   *sim.Engine
	Seeds *sim.Seeds
	// Net is the dumbbell view; nil on a topology runner.
	Net *netem.Dumbbell
	// Topo is the underlying network graph, set on every runner (a
	// dumbbell is a two-node topology).
	Topo  *netem.Topology
	Path  PathSpec
	Flows []*Flow
	// PktPool recycles packets across all flows of this runner.
	PktPool *netem.PacketPool

	// Group is the conservative shard group driving a sharded topology
	// runner; nil when the trial runs on one engine. Engines/Pools always
	// hold one entry per shard (a single entry — Eng/PktPool — when
	// unsharded), so flow placement code indexes them uniformly.
	Group   *sim.ShardGroup
	Engines []*sim.Engine
	Pools   []*netem.PacketPool

	// flowPool holds every Flow ever created on this runner, by id, so a
	// re-specced trial reuses flow k's receiver, sender window storage and
	// PCC state instead of rebuilding them.
	flowPool []*Flow
	// sendData/sendAck are the topology injection method values, bound once.
	sendData func(*netem.Packet)
	sendAck  func(*netem.Packet)
	// reclaim recycles in-flight packets back into PktPool when the engine
	// is reset between trials; reclaims holds the per-shard variants used
	// by ShardGroup.Reset (reclaims[0] == reclaim).
	reclaim  func(arg any)
	reclaims []func(arg any)
	// linkShape remembers the TopologySpec link structure this runner was
	// built from (topology runners only), for respec shape verification.
	linkShape []LinkSpec
	// reqShards is the TopologySpec.Shards this runner was built under;
	// a different request forces a rebuild (engines are pinned at build).
	reqShards int
	// shardHints is the TopologySpec.ShardHints the runner was built
	// under; a different hint map implies a different partition, hence a
	// rebuild (compared with maps.Equal — drivers reuse one hint map
	// across trials, so the common respec compares an identical map).
	shardHints map[string]int
	// rands recycles driver-requested RNG streams (NextRand) across trials.
	rands   []*rand.Rand
	randIdx int
	// arenas supply pktState chunks to every sender this runner ever
	// builds — one arena per shard, so refills never cross shard
	// goroutines. The slice is sized at construction and never reallocated
	// (senders hold interior pointers). See cc.PktArena.
	arenas []cc.PktArena

	// Fault-injection state (topology runners with TopologySpec.Faults).
	// faultSpec is the schedule as specced; faultEvs its materialized,
	// time-sorted event list (flap jitter applied); faultActs the resolved
	// per-shard actions scheduled on the engines; faultLinks the flat link
	// table the acts index by range (so act resolution never allocates per
	// act after the first trial); faultSig the pin-relevant structure
	// signature respec compares (a schedule referencing different links or
	// nodes implies a different shard pinning, hence a rebuild); faultFn the
	// shared dispatch trampoline.
	faultSpec  *netem.FaultSchedule
	faultEvs   []netem.FaultEvent
	faultActs  []faultAct
	faultLinks []*netem.Link
	faultSig   string
	faultFn    func(any)
}

// faultAct is one resolved fault action: a kind applied to the links
// faultLinks[lo:hi] (plus a node for crash/restart), scheduled at time at on
// the engine of shard. Partition/Heal events are resolved into per-link
// down/up acts so each act touches exactly one shard's links.
type faultAct struct {
	kind              netem.FaultKind
	at                float64
	lo, hi            int
	node              string
	shard             int
	rate, delay, loss float64
}

// makeQueue builds the AQM a Path/LinkSpec asks for.
func makeQueue(kind string, bufBytes int) netem.Queue {
	switch kind {
	case "", "droptail":
		return netem.NewDropTail(bufBytes)
	case "codel":
		return netem.NewCoDel(bufBytes)
	case "fq":
		return netem.NewFQ(bufBytes)
	case "fqcodel":
		return netem.NewFQCoDel(bufBytes)
	default:
		panic(fmt.Sprintf("exp: unknown queue kind %q", kind))
	}
}

// resetQueue re-specs a queue built by makeQueue(kind, ...) in place for a
// new trial, draining queued packets into pool. It reports false when q was
// not built by that kind (the runner must then be rebuilt).
func resetQueue(q netem.Queue, kind string, bufBytes int, pool *netem.PacketPool) bool {
	switch kind {
	case "", "droptail":
		dt, ok := q.(*netem.DropTail)
		if !ok {
			return false
		}
		dt.Reset(bufBytes, pool)
	case "codel":
		cd, ok := q.(*netem.CoDel)
		if !ok {
			return false
		}
		cd.Reset(bufBytes)
	case "fq":
		fq, ok := q.(*netem.FQ)
		if !ok || fq.NewChild != nil {
			return false
		}
		fq.Reset(bufBytes)
	case "fqcodel":
		fq, ok := q.(*netem.FQ)
		if !ok || fq.NewChild == nil {
			return false
		}
		// The child constructor captured the build-time capacity; refresh it
		// only when the capacity actually changed, so same-capacity warm
		// trials stay closure-allocation-free.
		refresh := fq.PerFlowBytes != bufBytes
		fq.Reset(bufBytes)
		if refresh {
			fq.NewChild = func() netem.Queue { return netem.NewCoDel(bufBytes) }
		}
	default:
		return false
	}
	return true
}

// NewRunner builds the dumbbell for the given path.
func NewRunner(p PathSpec) *Runner {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(p.Seed)
	net := netem.NewDumbbell(eng, makeQueue(p.QueueKind, p.BufBytes), netem.Mbps(p.RateMbps), p.Loss, seeds)
	pool := &netem.PacketPool{}
	net.UsePool(pool)
	r := &Runner{Eng: eng, Seeds: seeds, Net: net, Topo: net.Topo, Path: p, PktPool: pool}
	r.Engines = []*sim.Engine{eng}
	r.Pools = []*netem.PacketPool{pool}
	r.arenas = make([]cc.PktArena, 1)
	r.bindSinks()
	return r
}

// NewTopologyRunner builds a runner over a general network graph. Flows
// added to it must carry explicit FwdRoute/RevRoute hop chains. When
// ts.Shards > 1 and the node graph partitions into positive-delay-separated
// clusters, the trial runs sharded across a sim.ShardGroup; otherwise it
// falls back to the classic single engine. Either way, seeds are drawn in
// the same order, so results never depend on the shard count.
func NewTopologyRunner(ts TopologySpec) *Runner {
	seeds := sim.NewSeeds(ts.Seed)
	r := &Runner{Seeds: seeds, Path: PathSpec{Seed: ts.Seed}, reqShards: ts.Shards, shardHints: ts.ShardHints}
	if ts.Shards > 1 {
		edges := make([]netem.Edge, len(ts.Links))
		for i, ls := range ts.Links {
			edges[i] = netem.Edge{From: ls.From, To: ls.To, Delay: ls.Delay}
		}
		edges = appendFaultPins(edges, ts)
		if assign, n, lookahead := netem.PartitionNodesHinted(edges, ts.Shards, ts.ShardHints); n > 1 {
			group := sim.NewShardGroup(n, lookahead)
			pools := make([]*netem.PacketPool, n)
			engines := make([]*sim.Engine, n)
			for i := range pools {
				pools[i] = &netem.PacketPool{}
				engines[i] = group.Engine(i)
			}
			topo := netem.NewTopology(group.Engine(0))
			topo.Shard(group, assign, pools)
			r.Group, r.Engines, r.Pools, r.Topo = group, engines, pools, topo
		}
	}
	if r.Topo == nil {
		eng := sim.NewEngine()
		topo := netem.NewTopology(eng)
		pool := &netem.PacketPool{}
		topo.UsePool(pool)
		r.Engines = []*sim.Engine{eng}
		r.Pools = []*netem.PacketPool{pool}
		r.Topo = topo
	}
	r.Eng = r.Engines[0]
	r.PktPool = r.Pools[0]
	r.arenas = make([]cc.PktArena, len(r.Engines))
	for _, ls := range ts.Links {
		r.Topo.AddLink(ls.Name, ls.From, ls.To, makeQueue(ls.QueueKind, ls.BufBytes),
			netem.Mbps(ls.RateMbps), ls.Delay, ls.Loss, seeds.NextRand())
	}
	r.linkShape = append(r.linkShape, ts.Links...)
	r.bindSinks()
	r.faultSig = faultSig(ts.Faults)
	r.installFaults(ts.Faults)
	return r
}

// GraphSpec converts a topogen-generated graph into a TopologySpec: links
// copied in add order (droptail queues) with the generator's shard hints
// carried through. Drivers build it once per experiment variant and stamp
// Seed/Shards/Faults per trial — the link slice and hint map may be shared
// read-only across trials and workers, which keeps warm arena trials
// allocation-free.
func GraphSpec(g *topogen.Graph, seed int64, shards int) TopologySpec {
	links := make([]LinkSpec, g.NumLinks())
	for i, l := range g.Links() {
		links[i] = LinkSpec{Name: l.Name, From: l.From, To: l.To,
			RateMbps: l.RateMbps, Delay: l.Delay, Loss: l.Loss, BufBytes: l.BufBytes}
	}
	return TopologySpec{Links: links, Seed: seed, Shards: shards, ShardHints: g.ShardHints()}
}

// appendFaultPins adds zero-delay pin edges for every link a fault schedule
// touches — directly by name, or by incidence to a crashed node — so the
// partitioner contracts each such link's endpoints onto one shard and the
// fault act can run entirely on that link's home engine. Pinning is
// per-link: a partition cutting links in distant parts of the graph pins
// each link locally without collapsing the shards between them.
func appendFaultPins(edges []netem.Edge, ts TopologySpec) []netem.Edge {
	if ts.Faults.Empty() {
		return edges
	}
	byName := make(map[string]LinkSpec, len(ts.Links))
	for _, ls := range ts.Links {
		byName[ls.Name] = ls
	}
	pinLink := func(name string) {
		ls, ok := byName[name]
		if !ok {
			panic(fmt.Sprintf("exp: fault schedule references unknown link %q", name))
		}
		edges = append(edges, netem.Edge{From: ls.From, To: ls.To})
	}
	pinNode := func(node string) {
		for _, ls := range ts.Links {
			if ls.From == node || ls.To == node {
				edges = append(edges, netem.Edge{From: ls.From, To: ls.To})
			}
		}
	}
	for _, ev := range ts.Faults.Events {
		switch ev.Kind {
		case netem.FaultLinkDown, netem.FaultLinkUp, netem.FaultDegrade:
			pinLink(ev.Link)
		case netem.FaultPartition, netem.FaultHeal:
			for _, name := range ev.Links {
				pinLink(name)
			}
		case netem.FaultNodeCrash, netem.FaultNodeRestart:
			pinNode(ev.Node)
		}
	}
	for _, f := range ts.Faults.Flaps {
		pinLink(f.Link)
	}
	return edges
}

// faultSig summarizes the pin-relevant structure of a schedule: the sorted
// set of link and node names it touches. Two schedules with the same
// signature pin the same edges, so an arena-cached runner may be re-specced
// between them even though event times and parameters differ per trial.
func faultSig(s *netem.FaultSchedule) string {
	if s.Empty() {
		return ""
	}
	var names []string
	for _, ev := range s.Events {
		if ev.Link != "" {
			names = append(names, "l:"+ev.Link)
		}
		for _, n := range ev.Links {
			names = append(names, "l:"+n)
		}
		if ev.Node != "" {
			names = append(names, "n:"+ev.Node)
		}
	}
	for _, f := range s.Flaps {
		names = append(names, "l:"+f.Link)
	}
	sort.Strings(names)
	var b strings.Builder
	prev := ""
	for _, n := range names {
		if n == prev {
			continue
		}
		b.WriteString(n)
		b.WriteByte('\x00')
		prev = n
	}
	return b.String()
}

// bindSinks caches the per-runner function values every flow shares.
func (r *Runner) bindSinks() {
	r.sendData = r.Topo.SendData
	r.sendAck = r.Topo.SendAck
	r.reclaims = make([]func(any), len(r.Pools))
	for i, pool := range r.Pools {
		pool := pool
		r.reclaims[i] = func(arg any) {
			if p, ok := arg.(*netem.Packet); ok {
				pool.Put(p)
			}
		}
	}
	r.reclaim = r.reclaims[0]
}

// respecDumbbell rewinds a cached dumbbell runner for a new trial: engine
// reset (in-flight packets recycled), seed chain rewound to the new root,
// bottleneck queue and link re-specced in place. It reports false when the
// queue kind changed, in which case the caller builds a fresh runner.
// Previously added flows stay parked in flowPool for AddFlow to reuse.
func (r *Runner) respecDumbbell(p PathSpec) bool {
	if r.Net == nil {
		return false
	}
	q := r.Net.Bottleneck.Queue
	r.Eng.Reset(r.reclaim)
	r.Seeds.Reset(p.Seed)
	if !resetQueue(q, p.QueueKind, p.BufBytes, r.PktPool) {
		return false
	}
	// The same chain position NewDumbbell's AddLink drew its loss rng from.
	r.Net.Bottleneck.Reset(netem.Mbps(p.RateMbps), 0, p.Loss, r.Seeds.Next())
	r.Path = p
	r.Flows = r.Flows[:0]
	r.randIdx = 0
	return true
}

// respecTopology rewinds a cached topology runner for a new trial. It
// reports false when the link structure (names, endpoints, queue kinds)
// differs from the cached build.
func (r *Runner) respecTopology(ts TopologySpec) bool {
	if r.Net != nil || len(r.linkShape) != len(ts.Links) || r.reqShards != ts.Shards {
		return false
	}
	if !maps.Equal(r.shardHints, ts.ShardHints) {
		// Different hints imply a different node partition: rebuild.
		return false
	}
	if r.faultSig != faultSig(ts.Faults) {
		// A different fault target set implies different shard pins (and a
		// fresh runner draws or skips the jitter stream accordingly): rebuild.
		return false
	}
	for i, ls := range ts.Links {
		prev := r.linkShape[i]
		if prev.Name != ls.Name || prev.From != ls.From || prev.To != ls.To || prev.QueueKind != ls.QueueKind {
			return false
		}
	}
	if r.Group != nil {
		r.Group.Reset(r.reclaims)
		// Packets migrate between shards during a run (recycled where they
		// die, not where they were allocated), so redistribute the parked
		// spares to keep warm trials allocation-free.
		netem.RebalancePools(r.Pools)
	} else {
		r.Eng.Reset(r.reclaim)
	}
	r.Seeds.Reset(ts.Seed)
	for i, ls := range ts.Links {
		// Shape was verified name-by-name above, so the rewind indexes links
		// by registration order — no per-link map probe on a path that runs
		// once per trial over potentially thousands of links.
		l := r.Topo.LinkAt(i)
		if !resetQueue(l.Queue, ls.QueueKind, ls.BufBytes, r.PktPool) {
			return false
		}
		// Per-link seed draws in AddLink order, as the constructor made them.
		l.Reset(netem.Mbps(ls.RateMbps), ls.Delay, ls.Loss, r.Seeds.Next())
	}
	r.Path = PathSpec{Seed: ts.Seed}
	r.Flows = r.Flows[:0]
	r.randIdx = 0
	r.installFaults(ts.Faults)
	return true
}

// installFaults materializes and schedules a fault plan on a freshly built
// or just-respecced runner (engines at time zero). It draws exactly one
// runner RNG stream — flap jitter — and only when the spec carries a
// schedule, so unfaulted experiments' seed chains are untouched and faulted
// ones draw at the same position fresh and respecced. Acts are resolved
// per shard: a partition cutting links on several shards becomes one
// down-act per link, each scheduled on its link's home engine.
func (r *Runner) installFaults(s *netem.FaultSchedule) {
	r.faultSpec = s
	if s.Empty() {
		return
	}
	jrng := r.NextRand()
	r.faultEvs = s.Materialize(r.faultEvs[:0], jrng)
	r.faultActs = r.faultActs[:0]
	r.faultLinks = r.faultLinks[:0]
	for i := range r.faultEvs {
		ev := &r.faultEvs[i]
		switch ev.Kind {
		case netem.FaultLinkDown, netem.FaultLinkUp:
			r.pushFaultAct(ev.Kind, ev.At, []string{ev.Link}, "", ev)
		case netem.FaultDegrade:
			r.pushFaultAct(netem.FaultDegrade, ev.At, []string{ev.Link}, "", ev)
		case netem.FaultPartition:
			for _, name := range ev.Links {
				r.pushFaultAct(netem.FaultLinkDown, ev.At, []string{name}, "", ev)
			}
		case netem.FaultHeal:
			for _, name := range ev.Links {
				r.pushFaultAct(netem.FaultLinkUp, ev.At, []string{name}, "", ev)
			}
		case netem.FaultNodeCrash, netem.FaultNodeRestart:
			r.pushFaultAct(ev.Kind, ev.At, nil, ev.Node, ev)
		}
	}
	if r.faultFn == nil {
		r.faultFn = func(a any) { r.runFault(a.(*faultAct)) }
	}
	// Schedule in a second pass: faultActs is final now, so interior
	// pointers into it stay valid for the whole trial.
	for i := range r.faultActs {
		a := &r.faultActs[i]
		r.Engines[a.shard].PostArg(a.at, r.faultFn, a)
	}
}

// pushFaultAct resolves one fault event into an act over named links (or a
// node's incident links) and appends it. All of an act's links must live on
// one shard; the fault pins added at build time guarantee that for exactly
// the links a schedule references, so a violation means the respec path was
// handed a schedule touching links the build never pinned.
func (r *Runner) pushFaultAct(kind netem.FaultKind, at float64, links []string, node string, ev *netem.FaultEvent) {
	a := faultAct{kind: kind, at: at, node: node, lo: len(r.faultLinks), shard: -1,
		rate: ev.RateBps, delay: ev.Delay, loss: ev.Loss}
	push := func(name string) {
		l := r.Topo.LinkByName(name)
		if l == nil {
			panic(fmt.Sprintf("exp: fault schedule references unknown link %q", name))
		}
		from, _ := r.Topo.LinkEnds(name)
		shard := r.Topo.NodeShard(from)
		if a.shard < 0 {
			a.shard = shard
		} else if a.shard != shard {
			panic(fmt.Sprintf("exp: fault act spans shards %d and %d (link %q not pinned at build — did the schedule's target set change without a rebuild?)", a.shard, shard, name))
		}
		r.faultLinks = append(r.faultLinks, l)
	}
	if node != "" {
		a.shard = r.Topo.NodeShard(node)
		for _, ls := range r.linkShape {
			if ls.From == node || ls.To == node {
				push(ls.Name)
			}
		}
	} else {
		for _, name := range links {
			push(name)
		}
	}
	if a.shard < 0 {
		a.shard = 0
	}
	a.hi = len(r.faultLinks)
	r.faultActs = append(r.faultActs, a)
}

// runFault applies one act at its scheduled instant, on the engine of the
// shard every target link lives on.
func (r *Runner) runFault(a *faultAct) {
	switch a.kind {
	case netem.FaultLinkDown:
		for _, l := range r.faultLinks[a.lo:a.hi] {
			l.SetDown(true)
		}
	case netem.FaultLinkUp:
		for _, l := range r.faultLinks[a.lo:a.hi] {
			l.SetDown(false)
		}
	case netem.FaultDegrade:
		for _, l := range r.faultLinks[a.lo:a.hi] {
			if a.rate > 0 {
				l.Rate = a.rate
			}
			if a.delay >= 0 {
				l.Delay = a.delay
			}
			if a.loss >= 0 {
				l.LossRate = a.loss
			}
		}
	case netem.FaultNodeCrash:
		for _, l := range r.faultLinks[a.lo:a.hi] {
			l.SetDown(true)
		}
		r.freezeNode(a.node, true)
	case netem.FaultNodeRestart:
		for _, l := range r.faultLinks[a.lo:a.hi] {
			l.SetDown(false)
		}
		r.freezeNode(a.node, false)
	}
}

// freezeNode freezes or resumes every sender and receiver hosted at the
// node. The endpoints of a flow live on the shards its routes start and end
// on — the same shards the crashed node's links were pinned to — so this
// runs engine-locally.
func (r *Runner) freezeNode(node string, frozen bool) {
	for _, f := range r.Flows {
		if f.srcNode == node {
			switch {
			case f.RS != nil && frozen:
				f.RS.Freeze()
			case f.RS != nil:
				f.RS.Unfreeze()
			case f.WS != nil && frozen:
				f.WS.Freeze()
			case f.WS != nil:
				f.WS.Unfreeze()
			}
		}
		if f.dstNode == node {
			if frozen {
				f.Recv.Freeze()
			} else {
				f.Recv.Unfreeze()
			}
		}
	}
}

// FaultEvents returns the materialized, time-sorted fault event list of the
// current trial (flap jitter applied), so drivers can compute fault-relative
// metrics like recovery time after the last heal. Nil when the runner has no
// fault schedule.
func (r *Runner) FaultEvents() []netem.FaultEvent {
	if r.faultSpec.Empty() {
		return nil
	}
	return r.faultEvs
}

// NextRand returns a generator seeded from the runner's derivation chain —
// the exact stream r.Seeds.NextRand() yields — while recycling generator
// storage across trials on an arena-cached runner: the k-th call of each
// trial re-seeds the k-th cached generator in place (a math/rand seed fill
// is 607 words, by far the dominant cost of a fresh generator).
func (r *Runner) NextRand() *rand.Rand {
	seed := r.Seeds.Next()
	if r.randIdx < len(r.rands) {
		rr := r.rands[r.randIdx]
		r.randIdx++
		rr.Seed(seed)
		return rr
	}
	// CachedSource memoizes post-seed states, so the re-seed path above is a
	// state copy whenever a seed recurs (every trial of a sweep re-derives
	// the same per-slot seeds from its root seed).
	rr := rand.New(sim.NewCachedSource(seed))
	r.rands = append(r.rands, rr)
	r.randIdx = len(r.rands)
	return rr
}

// Capacity returns the dumbbell bottleneck capacity in bytes/s. On a
// topology runner there is no single bottleneck and Capacity returns 0;
// use RouteCapacity with a flow's route instead.
func (r *Runner) Capacity() float64 { return netem.Mbps(r.Path.RateMbps) }

// RouteCapacity returns the narrowest link rate along a route, bytes/s
// (falling back to the dumbbell capacity for a link-less route; 0 means
// the route is unconstrained — pure delay hops on a topology runner).
func (r *Runner) RouteCapacity(route []netem.HopSpec) float64 {
	c := 0.0
	for _, h := range route {
		if h.Link == "" {
			continue
		}
		l := r.Topo.LinkByName(h.Link)
		if l == nil {
			panic(fmt.Sprintf("exp: route references unknown link %q", h.Link))
		}
		if c == 0 || l.Rate < c {
			c = l.Rate
		}
	}
	if c == 0 {
		c = r.Capacity()
	}
	return c
}

// routeRTT sums the propagation delays of both routes (serialization
// excluded) — the minimum RTT a packet on these routes can see.
func (r *Runner) routeRTT(fwd, rev []netem.HopSpec) float64 {
	sum := 0.0
	for _, route := range [][]netem.HopSpec{fwd, rev} {
		for _, h := range route {
			if h.Link != "" {
				l := r.Topo.LinkByName(h.Link)
				if l == nil {
					panic(fmt.Sprintf("exp: route references unknown link %q", h.Link))
				}
				sum += l.Delay
			} else {
				sum += h.Delay
			}
		}
	}
	return sum
}

// AddFlow registers a flow; it will start at spec.StartAt. On a topology
// runner the spec must carry FwdRoute/RevRoute; on a dumbbell runner the
// flow's path is the shared bottleneck with RTT/RevLoss access segments.
// AddFlow may be called while the simulation is running (cross-traffic
// generators) provided StartAt is not in the past.
//
// On an arena-reused runner, AddFlow recycles the flow previously holding
// this id: the receiver and (when the sender category matches) the sender
// are reset in place, the network routes are re-specced, and PCC state —
// including its RNG register, MI records and seq→MI ring — is rewound
// rather than rebuilt. Every path draws the runner's seed chain at the same
// positions a fresh build would, so results are bit-identical.
func (r *Runner) AddFlow(spec FlowSpec) *Flow {
	id := len(r.Flows)
	topoFlow := len(spec.FwdRoute) > 0
	if r.Net == nil && !topoFlow {
		panic("exp: flows on a topology runner need FwdRoute/RevRoute")
	}
	if topoFlow != (len(spec.RevRoute) > 0) {
		panic("exp: FwdRoute and RevRoute must be set together")
	}
	if topoFlow && spec.RevLoss != 0 {
		panic("exp: RevLoss is ignored on explicit routes; use netem.LossyDelayHop in RevRoute")
	}
	rtt := spec.RTT
	if rtt <= 0 {
		if topoFlow {
			rtt = r.routeRTT(spec.FwdRoute, spec.RevRoute)
		} else {
			rtt = r.Path.RTT
		}
	}
	capacity := r.Capacity()
	if topoFlow {
		capacity = r.RouteCapacity(spec.FwdRoute)
	}
	pktSize := spec.PacketSize
	if pktSize <= 0 {
		pktSize = cc.MSS
	}
	// Place the flow's endpoints: the sender lives where its data packets
	// are injected (the forward route's entry shard), the receiver where
	// they are delivered. Unsharded runners have a single shard 0.
	sShard, rShard := 0, 0
	if r.Group != nil && topoFlow {
		sShard, rShard = r.Topo.RouteEnds(spec.FwdRoute)
	}
	// Resolve the endpoint nodes for node-crash freezing: the tail of the
	// first link and the head of the last link on the forward route.
	srcNode, dstNode := "", ""
	if topoFlow && !r.faultSpec.Empty() {
		first, last := "", ""
		for _, hs := range spec.FwdRoute {
			if hs.Link == "" {
				continue
			}
			if first == "" {
				first = hs.Link
			}
			last = hs.Link
		}
		if first != "" {
			srcNode, _ = r.Topo.LinkEnds(first)
			_, dstNode = r.Topo.LinkEnds(last)
		}
	}
	sEng, rEng := r.Engines[sShard], r.Engines[rShard]
	sPool, rPool := r.Pools[sShard], r.Pools[rShard]

	// Acquire the flow handle: recycled from a previous trial on this
	// runner, or fresh. The receiver is protocol-agnostic and always reused.
	var f *Flow
	if id < len(r.flowPool) {
		f = r.flowPool[id]
		f.Spec = spec
		f.DoneAt = -1
		f.Recv.Reset()
		f.Recv.Eng = rEng
		f.Recv.Pool = rPool
	} else {
		f = &Flow{ID: id, Spec: spec, DoneAt: -1}
		f.Recv = cc.NewReceiver(rEng, id)
		f.Recv.Pool = rPool
		f.Recv.SendAck = r.sendAck
		f.dataSink = f.Recv.OnData
		f.onDone = func(now float64) { f.DoneAt = now }
		f.startFn = func() {
			if f.RS != nil {
				f.RS.Start()
			} else {
				f.WS.Start()
			}
		}
		r.flowPool = append(r.flowPool, f)
	}
	r.Flows = append(r.Flows, f)
	f.srcNode, f.dstNode = srcNode, dstNode
	f.Recv.Bucket = spec.Bucket
	var flowPkts int64
	if spec.FlowKB > 0 {
		flowPkts = int64((spec.FlowKB*1000 + pktSize - 1) / pktSize)
	}
	f.Recv.FlowPackets = flowPkts

	switch spec.Proto {
	case "pcc":
		pcfg := core.SizedConfig(rtt, pktSize)
		if spec.PCCConfig != nil {
			pcfg = *spec.PCCConfig
		}
		if spec.Utility != nil {
			pcfg.Utility = spec.Utility
		}
		if pcfg.PacketSize == 0 {
			// A caller-supplied config that does not pin a size inherits the
			// flow's wire size, so the monitor's MI floor matches the sender.
			pcfg.PacketSize = pktSize
			if spec.PCCConfig != nil && pktSize != cc.MSS {
				// Rescale the rate seeds exactly as SizedConfig would:
				// caller configs derive InitialRate as 2·MSS/rtt, and
				// core.New back-solves the srtt seed from InitialRate and
				// PacketSize — inheriting the size without rescaling the
				// rate would corrupt that inference. A caller who wants a
				// custom InitialRate with a custom size pins PacketSize in
				// the config itself, which skips this block entirely.
				pcfg.InitialRate = 2 * float64(pktSize) / rtt
				pcfg.MinRate = 2 * float64(pktSize)
			}
		}
		// One seed draw, at the position the fresh path's NextRand makes it.
		algoSeed := r.Seeds.Next()
		if f.PCC != nil && f.RS != nil {
			f.PCC.Reset(pcfg, algoSeed)
			f.RS.Reset(f.PCC)
		} else {
			// CachedSource memoizes the post-seed state, so the Reset branch
			// above rewinds this generator with a copy instead of a reseed.
			f.PCC = core.New(pcfg, rand.New(sim.NewCachedSource(algoSeed)))
			r.setRateSender(f, f.PCC, sEng)
		}
	case "sabul":
		hint := spec.CapacityHint
		if hint <= 0 {
			hint = capacity
		}
		if hint <= 0 {
			panic("exp: sabul on a link-less route needs CapacityHint")
		}
		f.PCC = nil
		r.setRateSender(f, baseline.NewSabul(hint), sEng)
	case "pcp":
		f.PCC = nil
		r.setRateSender(f, baseline.NewPCP(0), sEng)
	case "pacing":
		r.setWindowSender(f, tcp.NewReno(), sEng)
		f.WS.Paced = true
		f.WS.RTTHint = rtt
	default:
		algo, err := tcp.New(spec.Proto)
		if err != nil {
			panic(err)
		}
		r.setWindowSender(f, algo, sEng)
		f.WS.RTTHint = rtt
	}
	// Pin the sender to its shard: the engine its pacing/window timers run
	// on and the arena its pktState refills draw from (recycled senders may
	// move shards when a new trial routes the flow differently).
	if f.RS != nil {
		f.RS.Eng = sEng
		f.RS.SetArena(&r.arenas[sShard])
	} else {
		f.WS.Eng = sEng
		f.WS.SetArena(&r.arenas[sShard])
	}
	if f.WS != nil && capacity > 0 {
		// Socket-buffer-like clamp: 8x the path BDP, floored generously so
		// small-BDP paths still allow bursts. An unconstrained (link-less)
		// route keeps the sender's default window bound.
		bdpPkts := capacity * rtt / float64(pktSize)
		f.WS.MaxCwnd = 8*bdpPkts + 1000
	}

	cfg := netem.FlowConfig{FwdDelay: rtt / 2, RevDelay: rtt / 2, RevLoss: spec.RevLoss}
	if f.RS != nil {
		f.RS.Pool = sPool
		f.RS.PktSize = pktSize
		// Keep the sender-side floor at 2 packets/s in the flow's own
		// size, matching the algorithms' scaled MinRate (for the default
		// 1500 B this is exactly the constructor's 2*MSS).
		f.RS.MinRate = 2 * float64(pktSize)
		f.RS.FlowPackets = flowPkts
		f.RS.RTTHint = rtt
		f.RS.TraceRate = spec.TraceRate
		f.RS.OnDone = f.onDone
	} else {
		f.WS.Pool = sPool
		f.WS.PktSize = pktSize
		f.WS.FlowPackets = flowPkts
		f.WS.OnDone = f.onDone
	}
	// Register the flow's route(s) with the network; one RNG stream is
	// drawn from r.Seeds either way, fresh build or respec.
	if topoFlow {
		r.Topo.RespecFlow(id, spec.FwdRoute, spec.RevRoute, r.Seeds, f.dataSink, f.ackSink)
	} else {
		r.Net.RespecFlow(id, cfg, r.Seeds, f.dataSink, f.ackSink)
	}
	sEng.At(spec.StartAt, f.startFn)
	return f
}

// setRateSender installs a rate-based sender for the flow: the previous
// RateSender is reset in place when one exists, else a fresh one replaces
// whatever sender category the flow had before. The caller pins Eng and the
// arena afterwards (both may change with the flow's shard placement).
func (r *Runner) setRateSender(f *Flow, algo cc.RateAlgo, eng *sim.Engine) {
	if f.RS != nil {
		f.RS.Reset(algo)
		return
	}
	f.WS = nil
	f.RS = cc.NewRateSender(eng, f.ID, algo, r.sendData)
	f.ackSink = f.RS.OnAck
}

// setWindowSender is setRateSender's window-based counterpart.
func (r *Runner) setWindowSender(f *Flow, algo cc.WindowAlgo, eng *sim.Engine) {
	f.PCC = nil
	if f.WS != nil {
		f.WS.Reset(algo)
		return
	}
	f.RS = nil
	f.WS = cc.NewWindowSender(eng, f.ID, algo, r.sendData)
	f.ackSink = f.WS.OnAck
}

// maxPerLinkNotes is the report threshold between per-link notes and the
// aggregate conservation summary: topologies up to this many links list
// every link; generated topologies above it (a transit-stub WAN has
// hundreds) get totals plus the loss-heaviest links, because a per-link
// dump would drown the report.
const maxPerLinkNotes = 20

// topOffenderNotes is how many loss-heaviest links the aggregate summary
// names individually.
const topOffenderNotes = 5

// LinkStatsNotes renders the runner's per-link accounting as report notes
// (AddLink order, so output is deterministic).
func (r *Runner) LinkStatsNotes() []string {
	return r.LinkStatsNotesInto(nil)
}

// LinkStatsNotesInto is LinkStatsNotes appending into dst[:0], reusing its
// backing array (the note strings themselves still allocate). Topologies
// with more than maxPerLinkNotes links delegate to the aggregate summary.
func (r *Runner) LinkStatsNotesInto(dst []string) []string {
	if r.Topo.NumLinks() > maxPerLinkNotes {
		return r.ConservationNotesInto(dst, topOffenderNotes)
	}
	dst = dst[:0]
	for _, s := range r.Topo.Stats() {
		dst = append(dst, fmt.Sprintf("link %s: delivered=%d wire_lost=%d queue_dropped=%d",
			s.Name, s.Delivered, s.WireLost, s.QueueDropped))
	}
	return dst
}

// FaultStatsNotesInto renders per-link accounting including the fault ledger
// and the conservation verdict, appending into dst[:0]. Chaos drivers use it
// instead of LinkStatsNotesInto so every down/up and partition/heal
// transition is auditable in the report (and a conservation violation is
// visible as conserved=false rather than silently wrong goodput). Topologies
// with more than maxPerLinkNotes links delegate to the aggregate summary,
// which still names every non-conserved link.
func (r *Runner) FaultStatsNotesInto(dst []string) []string {
	if r.Topo.NumLinks() > maxPerLinkNotes {
		return r.ConservationNotesInto(dst, topOffenderNotes)
	}
	dst = dst[:0]
	for _, s := range r.Topo.Stats() {
		dst = append(dst, fmt.Sprintf("link %s: delivered=%d wire_lost=%d queue_dropped=%d fault_dropped=%d conserved=%v",
			s.Name, s.Delivered, s.WireLost, s.QueueDropped, s.FaultDropped, s.Conserved()))
	}
	return dst
}

// ConservationNotesInto renders the byte-conservation audit for large
// topologies, appending into dst[:0]: one aggregate line (link count,
// conserved/violated split, byte totals per ledger term), the topK
// loss-heaviest links (by wire-lost + queue-dropped + fault-dropped bytes,
// AddLink order on ties — deterministic), and one line per non-conserved
// link with its full ledger, so a violation is never hidden by the
// summarization. Topologies at or under maxPerLinkNotes links fall back to
// the per-link fault notes.
func (r *Runner) ConservationNotesInto(dst []string, topK int) []string {
	stats := r.Topo.Stats()
	if len(stats) <= maxPerLinkNotes {
		return r.FaultStatsNotesInto(dst)
	}
	dst = dst[:0]
	var delivered, wireLost, queueDropped, faultDropped int64
	violated := 0
	for i := range stats {
		s := &stats[i]
		delivered += s.DeliveredBytes
		wireLost += s.WireLostBytes
		queueDropped += s.QueueDroppedBytes
		faultDropped += s.FaultDroppedBytes
		if !s.Conserved() {
			violated++
		}
	}
	dst = append(dst, fmt.Sprintf(
		"links: %d total, %d conserved, %d violated; bytes delivered=%d wire_lost=%d queue_dropped=%d fault_dropped=%d",
		len(stats), len(stats)-violated, violated, delivered, wireLost, queueDropped, faultDropped))

	lossBytes := func(s *netem.LinkStats) int64 {
		return s.WireLostBytes + s.QueueDroppedBytes + s.FaultDroppedBytes
	}
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return lossBytes(&stats[order[a]]) > lossBytes(&stats[order[b]])
	})
	for k := 0; k < topK && k < len(order); k++ {
		s := &stats[order[k]]
		if lossBytes(s) == 0 {
			break
		}
		dst = append(dst, fmt.Sprintf(
			"top_loss %d: link %s: wire_lost_B=%d queue_dropped_B=%d fault_dropped_B=%d delivered_B=%d conserved=%v",
			k+1, s.Name, s.WireLostBytes, s.QueueDroppedBytes, s.FaultDroppedBytes, s.DeliveredBytes, s.Conserved()))
	}
	for i := range stats {
		s := &stats[i]
		if s.Conserved() {
			continue
		}
		dst = append(dst, fmt.Sprintf(
			"VIOLATED link %s: offered_B=%d delivered_B=%d wire_lost_B=%d queue_dropped_B=%d fault_dropped_B=%d queued_B=%d tx_B=%d",
			s.Name, s.OfferedBytes, s.DeliveredBytes, s.WireLostBytes, s.QueueDroppedBytes, s.FaultDroppedBytes, s.QueuedBytes, s.TxBytes))
	}
	return dst
}

// Run advances the simulation to the given time (seconds) — all shards in
// conservative lockstep on a sharded runner, the single engine otherwise.
func (r *Runner) Run(until float64) {
	if r.Group != nil {
		r.Group.RunUntil(until)
		return
	}
	r.Eng.RunUntil(until)
}

// GoodputMbps returns a flow's whole-run goodput in Mbps measured from its
// start time to `until`.
func (f *Flow) GoodputMbps(until float64) float64 {
	dur := until - f.Spec.StartAt
	if dur <= 0 {
		return 0
	}
	return netem.ToMbps(float64(f.Recv.UniqueBytes()) / dur)
}

// SeriesMbps returns the flow's per-bucket goodput in Mbps (requires
// Spec.Bucket > 0).
func (f *Flow) SeriesMbps() []float64 {
	return f.SeriesMbpsInto(nil)
}

// SeriesMbpsInto is SeriesMbps appending into dst[:0], reusing its backing
// array: 0 allocations once dst has the series' capacity.
func (f *Flow) SeriesMbpsInto(dst []float64) []float64 {
	dst = f.Recv.BucketSeriesInto(dst)
	for i, v := range dst {
		dst[i] = netem.ToMbps(v)
	}
	return dst
}

// WindowMbps returns goodput in Mbps over [from, to] using the bucket
// series.
func (f *Flow) WindowMbps(from, to float64) float64 {
	return netem.ToMbps(f.Recv.GoodputBetween(from, to))
}
