// Package exp contains one driver per table/figure of the paper's
// evaluation (§4), plus the shared harness that assembles simulated
// dumbbells, flows and protocols. Each driver returns structured rows that
// cmd/pccbench and bench_test.go print; EXPERIMENTS.md records
// paper-vs-measured for each.
package exp

import (
	"fmt"

	"pcc/internal/baseline"
	"pcc/internal/cc"
	"pcc/internal/core"
	"pcc/internal/netem"
	"pcc/internal/sim"
	"pcc/internal/tcp"
)

// PathSpec describes the shared bottleneck of a dumbbell.
type PathSpec struct {
	// RateMbps is the bottleneck capacity in Mbps.
	RateMbps float64
	// RTT is the default two-way propagation delay for flows, seconds.
	RTT float64
	// Loss is the forward-path Bernoulli loss probability.
	Loss float64
	// BufBytes is the bottleneck queue capacity in bytes (ignored for FQ
	// kinds, which use it per flow).
	BufBytes int
	// QueueKind selects the AQM: "droptail" (default), "codel", "fq",
	// "fqcodel".
	QueueKind string
	// Seed roots all randomness for the run.
	Seed int64
}

// FlowSpec describes one flow in a run.
type FlowSpec struct {
	// Proto is "pcc", "sabul", "pcp", "pacing" (paced New Reno), or any
	// internal/tcp variant name.
	Proto string
	// RTT overrides the path RTT for this flow (0 = path default).
	RTT float64
	// RevLoss is ACK-path Bernoulli loss.
	RevLoss float64
	// StartAt is the flow's start time, seconds.
	StartAt float64
	// FlowKB limits the flow to this many kilobytes (0 = unbounded).
	FlowKB int
	// Bucket enables per-bucket goodput series of this width, seconds.
	Bucket float64
	// PCCConfig overrides the default PCC configuration (pcc only).
	PCCConfig *core.Config
	// Utility overrides the PCC utility function (pcc only).
	Utility core.Utility
	// CapacityHint feeds SABUL's packet-pair capacity estimate, bytes/s
	// (0 = path capacity).
	CapacityHint float64
	// TraceRate records the rate-based sender's target-rate trace.
	TraceRate bool
}

// Flow is a running flow's handle.
type Flow struct {
	ID     int
	Spec   FlowSpec
	Recv   *cc.Receiver
	WS     *cc.WindowSender
	RS     *cc.RateSender
	PCC    *core.PCC
	DoneAt float64 // completion time for finite flows; -1 while running
}

// Runner assembles and runs one dumbbell simulation. A Runner (like its
// Engine) is single-threaded; parallel experiments give every trial its own
// Runner (see pool.go), which also keeps the packet free list goroutine-local.
type Runner struct {
	Eng   *sim.Engine
	Seeds *sim.Seeds
	Net   *netem.Dumbbell
	Path  PathSpec
	Flows []*Flow
	// PktPool recycles packets across all flows of this runner.
	PktPool *netem.PacketPool
}

// NewRunner builds the dumbbell for the given path.
func NewRunner(p PathSpec) *Runner {
	eng := sim.NewEngine()
	seeds := sim.NewSeeds(p.Seed)
	var q netem.Queue
	switch p.QueueKind {
	case "", "droptail":
		q = netem.NewDropTail(p.BufBytes)
	case "codel":
		q = netem.NewCoDel(p.BufBytes)
	case "fq":
		q = netem.NewFQ(p.BufBytes)
	case "fqcodel":
		q = netem.NewFQCoDel(p.BufBytes)
	default:
		panic(fmt.Sprintf("exp: unknown queue kind %q", p.QueueKind))
	}
	net := netem.NewDumbbell(eng, q, netem.Mbps(p.RateMbps), p.Loss, seeds)
	pool := &netem.PacketPool{}
	net.UsePool(pool)
	return &Runner{Eng: eng, Seeds: seeds, Net: net, Path: p, PktPool: pool}
}

// Capacity returns the bottleneck capacity in bytes/s.
func (r *Runner) Capacity() float64 { return netem.Mbps(r.Path.RateMbps) }

// AddFlow registers a flow; it will start at spec.StartAt.
func (r *Runner) AddFlow(spec FlowSpec) *Flow {
	id := len(r.Flows)
	rtt := spec.RTT
	if rtt <= 0 {
		rtt = r.Path.RTT
	}
	f := &Flow{ID: id, Spec: spec, DoneAt: -1}
	r.Flows = append(r.Flows, f)
	f.Recv = cc.NewReceiver(r.Eng, id)
	f.Recv.Pool = r.PktPool
	f.Recv.SendAck = r.Net.SendAck
	f.Recv.Bucket = spec.Bucket
	var flowPkts int64
	if spec.FlowKB > 0 {
		flowPkts = int64((spec.FlowKB*1000 + cc.MSS - 1) / cc.MSS)
		f.Recv.FlowPackets = flowPkts
	}

	cfg := netem.FlowConfig{FwdDelay: rtt / 2, RevDelay: rtt / 2, RevLoss: spec.RevLoss}

	switch spec.Proto {
	case "pcc":
		pcfg := core.DefaultConfig(rtt)
		if spec.PCCConfig != nil {
			pcfg = *spec.PCCConfig
		}
		if spec.Utility != nil {
			pcfg.Utility = spec.Utility
		}
		algo := core.New(pcfg, r.Seeds.NextRand())
		f.PCC = algo
		f.RS = cc.NewRateSender(r.Eng, id, algo, r.Net.SendData)
	case "sabul":
		hint := spec.CapacityHint
		if hint <= 0 {
			hint = r.Capacity()
		}
		f.RS = cc.NewRateSender(r.Eng, id, baseline.NewSabul(hint), r.Net.SendData)
	case "pcp":
		f.RS = cc.NewRateSender(r.Eng, id, baseline.NewPCP(0), r.Net.SendData)
	case "pacing":
		f.WS = cc.NewWindowSender(r.Eng, id, tcp.NewReno(), r.Net.SendData)
		f.WS.Paced = true
		f.WS.RTTHint = rtt
	default:
		algo, err := tcp.New(spec.Proto)
		if err != nil {
			panic(err)
		}
		f.WS = cc.NewWindowSender(r.Eng, id, algo, r.Net.SendData)
		f.WS.RTTHint = rtt
	}
	if f.WS != nil {
		// Socket-buffer-like clamp: 8x the path BDP, floored generously so
		// small-BDP paths still allow bursts.
		bdpPkts := r.Capacity() * rtt / cc.MSS
		f.WS.MaxCwnd = 8*bdpPkts + 1000
	}

	if f.RS != nil {
		f.RS.Pool = r.PktPool
		f.RS.FlowPackets = flowPkts
		f.RS.RTTHint = rtt
		f.RS.TraceRate = spec.TraceRate
		f.RS.OnDone = func(now float64) { f.DoneAt = now }
		r.Net.AddFlow(id, cfg, r.Seeds, f.Recv.OnData, f.RS.OnAck)
		r.Eng.At(spec.StartAt, f.RS.Start)
	} else {
		f.WS.Pool = r.PktPool
		f.WS.FlowPackets = flowPkts
		f.WS.OnDone = func(now float64) { f.DoneAt = now }
		r.Net.AddFlow(id, cfg, r.Seeds, f.Recv.OnData, f.WS.OnAck)
		r.Eng.At(spec.StartAt, f.WS.Start)
	}
	return f
}

// Run advances the simulation to the given time (seconds).
func (r *Runner) Run(until float64) { r.Eng.RunUntil(until) }

// GoodputMbps returns a flow's whole-run goodput in Mbps measured from its
// start time to `until`.
func (f *Flow) GoodputMbps(until float64) float64 {
	dur := until - f.Spec.StartAt
	if dur <= 0 {
		return 0
	}
	return netem.ToMbps(float64(f.Recv.UniqueBytes()) / dur)
}

// SeriesMbps returns the flow's per-bucket goodput in Mbps (requires
// Spec.Bucket > 0).
func (f *Flow) SeriesMbps() []float64 {
	s := f.Recv.BucketSeries()
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = netem.ToMbps(v)
	}
	return out
}

// WindowMbps returns goodput in Mbps over [from, to] using the bucket
// series.
func (f *Flow) WindowMbps(from, to float64) float64 {
	return netem.ToMbps(f.Recv.GoodputBetween(from, to))
}
