package exp

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the parallel experiment engine. Every trial of every driver
// in this package is a self-contained deterministic simulation — it builds
// its own sim.Engine and derives every RNG stream from the PathSpec seed —
// so trials are embarrassingly parallel. RunTrials/RunPoints fan a trial
// function out across a bounded worker pool while keeping results indexed
// by trial number, which makes the assembled report byte-identical to a
// sequential run regardless of goroutine scheduling (asserted by
// determinism_test.go).
//
// Worker-count resolution, most specific wins:
//
//  1. the explicit count passed to RunTrialsWith/RunPointsWith,
//  2. SetWorkers (cmd/pccbench's -par flag),
//  3. the PCC_PAR environment variable,
//  4. GOMAXPROCS divided by the shard count.
//
// Workers and shards are the two parallelism axes — across trials and
// inside one trial (sim.ShardGroup) — and a sweep uses workers × shards
// cores. The automatic default budgets the machine across both
// (GOMAXPROCS/Shards() workers); an explicit SetWorkers/PCC_PAR is taken
// literally, so deliberate oversubscription stays expressible.

// workerOverride holds the SetWorkers value; 0 means "not set".
var workerOverride atomic.Int64

// shardOverride holds the SetShards value; 0 means "not set".
var shardOverride atomic.Int64

// SetWorkers overrides the default worker count for RunTrials/RunPoints.
// n <= 0 restores automatic resolution (PCC_PAR, then GOMAXPROCS/Shards).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// Workers returns the worker count RunTrials will use.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("PCC_PAR"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if w := runtime.GOMAXPROCS(0) / Shards(); w > 1 {
		return w
	}
	return 1
}

// SetShards overrides the intra-trial shard count experiments request for
// their topologies (cmd/pccbench's -shards flag). n <= 0 restores automatic
// resolution (PCC_SHARDS, then 1). The value is a ceiling: the topology
// partitioner may use fewer shards when the graph cannot support that many,
// and experiments whose topologies do not benefit ignore it entirely.
func SetShards(n int) {
	if n < 0 {
		n = 0
	}
	shardOverride.Store(int64(n))
}

// Shards returns the shard ceiling sharding-aware experiments will request.
func Shards() int {
	if n := int(shardOverride.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("PCC_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// nodeOverride holds the SetNodes value; 0 means "not set".
var nodeOverride atomic.Int64

// flowOverride holds the SetFlows value; 0 means "not set".
var flowOverride atomic.Int64

// SetNodes overrides the node count generated-topology experiments target
// (cmd/pccbench's -nodes flag). n <= 0 restores automatic resolution
// (PCC_NODES, then the experiment's scale-derived default). Generators
// round the target to the nearest structurally valid size, so the built
// topology may differ slightly from the request.
func SetNodes(n int) {
	if n < 0 {
		n = 0
	}
	nodeOverride.Store(int64(n))
}

// Nodes returns the node-count override for generated-topology experiments;
// 0 means "no override, derive from scale".
func Nodes() int {
	if n := int(nodeOverride.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("PCC_NODES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// SetFlows overrides the concurrent flow count generated-topology
// experiments target (cmd/pccbench's -flows flag). n <= 0 restores
// automatic resolution (PCC_FLOWS, then the experiment's scale-derived
// default).
func SetFlows(n int) {
	if n < 0 {
		n = 0
	}
	flowOverride.Store(int64(n))
}

// Flows returns the flow-count override for generated-topology experiments;
// 0 means "no override, derive from scale".
func Flows() int {
	if n := int(flowOverride.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("PCC_FLOWS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// gcRelax widens the garbage collector's heap-growth target while trials
// run. Every trial builds and discards a complete simulation (engine,
// windows, RNG states, packet pools), so an experiment sweep allocates tens
// of megabytes over a live set of a few; at the default GOGC that triggers
// a collection every few trials, and on small machines the mark phase's
// write barriers tax the simulator's hottest loops. Trading bounded heap
// headroom for throughput is the standard batch-job setting. The previous
// target is restored when the outermost sweep finishes; results are
// unaffected (GC timing is invisible to a deterministic simulation). Set
// PCC_GOGC to override the sweep-time target (0 disables the adjustment).
var gcRelax struct {
	mu     sync.Mutex
	depth  int
	prev   int
	active bool
}

func gcRelaxTarget() int {
	if s := os.Getenv("PCC_GOGC"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return n
		}
	}
	return 400
}

func enterGCRelax() {
	gcRelax.mu.Lock()
	gcRelax.depth++
	if gcRelax.depth == 1 {
		if t := gcRelaxTarget(); t > 0 {
			gcRelax.prev = debug.SetGCPercent(t)
			gcRelax.active = true
		} else {
			gcRelax.active = false
		}
	}
	gcRelax.mu.Unlock()
}

func exitGCRelax() {
	gcRelax.mu.Lock()
	gcRelax.depth--
	if gcRelax.depth == 0 && gcRelax.active {
		debug.SetGCPercent(gcRelax.prev)
		gcRelax.active = false
	}
	gcRelax.mu.Unlock()
}

// trialTimeoutOverride holds the SetTrialTimeout value in nanoseconds;
// 0 means "not set".
var trialTimeoutOverride atomic.Int64

// SetTrialTimeout overrides the per-trial watchdog deadline (cmd/pccbench's
// -trialtimeout flag, pccserve's -trialtimeout). d <= 0 restores automatic
// resolution (PCC_TRIAL_TIMEOUT, then disabled). When a deadline is active,
// every trial runs under a watchdog that converts a hang into a typed
// *TrialTimeoutError instead of wedging the sweep forever (see runTrial).
func SetTrialTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	trialTimeoutOverride.Store(int64(d))
}

// TrialTimeout returns the active per-trial watchdog deadline; 0 means the
// watchdog is disabled. PCC_TRIAL_TIMEOUT accepts a Go duration ("30s",
// "2m") or a bare integer number of seconds.
func TrialTimeout() time.Duration {
	if n := trialTimeoutOverride.Load(); n > 0 {
		return time.Duration(n)
	}
	if s := os.Getenv("PCC_TRIAL_TIMEOUT"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			return d
		}
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// TrialPanicError wraps a panic that escaped a trial function, carrying
// enough provenance to replay the failing trial in isolation: the experiment
// and variant the driver stamped on its TrialScratch, the per-trial seed,
// the trial index, and which worker ran it (0 on the sequential path).
// Value is the original panic payload; Unwrap exposes it when it is an
// error, so errors.Is/As see through the wrapper.
type TrialPanicError struct {
	Experiment string
	Variant    string
	Seed       int64
	Trial      int
	Worker     int
	Value      any
	// Stack is the panicking goroutine's stack, captured by debug.Stack at
	// recover() time, so a panic quarantined far from any terminal (e.g. in
	// pccserve's error ledger) stays debuggable after the goroutine is gone.
	Stack []byte
}

func (e *TrialPanicError) Error() string {
	exp := e.Experiment
	if exp == "" {
		exp = "?"
	}
	variant := e.Variant
	if variant == "" {
		variant = "?"
	}
	return fmt.Sprintf("exp: trial %d panicked (experiment %s, variant %s, seed %d, worker %d): %v",
		e.Trial, exp, variant, e.Seed, e.Worker, e.Value)
}

// Unwrap returns the panic payload when it was an error, nil otherwise.
func (e *TrialPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// TrialTimeoutError reports a trial that exceeded the per-trial watchdog
// deadline (SetTrialTimeout / PCC_TRIAL_TIMEOUT / pccbench -trialtimeout).
// It carries the same provenance fields as TrialPanicError, so a hang is as
// replayable as a crash. Go cannot kill the hung goroutine: it is abandoned
// together with its trial arena and the sweep aborts, which fails the sweep
// without corrupting the worker pool or any later sweep's state.
type TrialTimeoutError struct {
	Experiment string
	Variant    string
	Seed       int64
	Trial      int
	Worker     int
	Timeout    time.Duration
}

func (e *TrialTimeoutError) Error() string {
	exp := e.Experiment
	if exp == "" {
		exp = "?"
	}
	variant := e.Variant
	if variant == "" {
		variant = "?"
	}
	return fmt.Sprintf("exp: trial %d timed out after %v (experiment %s, variant %s, seed %d, worker %d)",
		e.Trial, e.Timeout, exp, variant, e.Seed, e.Worker)
}

// SweepCancelledError reports a sweep that stopped scheduling at a trial
// boundary because its context was cancelled (client disconnect, server
// deadline, SIGTERM drain). In-flight trials finish before the sweep
// returns, so the Completed slots of the caller's result slice hold valid
// partial results; the remaining slots were never started. Err is the
// context's cause and is exposed through Unwrap, so
// errors.Is(err, context.Canceled) works.
type SweepCancelledError struct {
	Completed int
	Total     int
	Err       error
}

func (e *SweepCancelledError) Error() string {
	return fmt.Sprintf("exp: sweep cancelled after %d/%d trials: %v", e.Completed, e.Total, e.Err)
}

func (e *SweepCancelledError) Unwrap() error { return e.Err }

// runTrialGuarded runs one trial and converts any escaping panic into a
// *TrialPanicError stamped with the scratch's provenance fields, re-raised
// as a panic so both the sequential path and the worker-pool recovery see
// the same typed value. An already-typed panic passes through untouched
// (nested pools must not double-wrap).
func runTrialGuarded(fn func(trial int, ts *TrialScratch), trial, worker int, ts *TrialScratch) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch r.(type) {
		case *TrialPanicError, *TrialTimeoutError:
			panic(r)
		}
		prov := ts.Provenance()
		panic(&TrialPanicError{
			Experiment: prov.Exp,
			Variant:    prov.Variant,
			Seed:       prov.Seed,
			Trial:      trial,
			Worker:     worker,
			Value:      r,
			Stack:      debug.Stack(),
		})
	}()
	fn(trial, ts)
}

// catchTrialPanic runs one guarded trial and converts the typed panic the
// guard raises into a returned error, so the pool can abort a sweep with an
// error instead of unwinding worker goroutines.
func catchTrialPanic(fn func(trial int, ts *TrialScratch), trial, worker int, ts *TrialScratch) (err error) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case *TrialPanicError:
			err = r
		case *TrialTimeoutError:
			err = r
		default:
			panic(r) // unreachable: runTrialGuarded types every panic
		}
	}()
	runTrialGuarded(fn, trial, worker, ts)
	return nil
}

// runTrial executes one guarded trial and returns its failure as a typed
// error: *TrialPanicError if the trial panicked, *TrialTimeoutError if the
// watchdog deadline (timeout > 0) elapsed first, nil on success. When the
// watchdog is armed the trial runs on its own goroutine so the deadline can
// fire while it is stuck; scratchLost reports that this goroutine was
// abandoned still owning ts (the timeout path), in which case the caller
// must neither reuse nor recycle that arena.
func runTrial(fn func(trial int, ts *TrialScratch), trial, worker int, ts *TrialScratch, timeout time.Duration) (trialErr error, scratchLost bool) {
	if timeout <= 0 {
		return catchTrialPanic(fn, trial, worker, ts), false
	}
	done := make(chan error, 1) // buffered: a post-deadline finish must not leak the goroutine
	go func() { done <- catchTrialPanic(fn, trial, worker, ts) }()
	watchdog := time.NewTimer(timeout)
	defer watchdog.Stop()
	select {
	case err := <-done:
		return err, false
	case <-watchdog.C:
		prov := ts.Provenance()
		return &TrialTimeoutError{
			Experiment: prov.Exp,
			Variant:    prov.Variant,
			Seed:       prov.Seed,
			Trial:      trial,
			Worker:     worker,
			Timeout:    timeout,
		}, true
	}
}

// scratchPool recycles TrialScratch arenas across sweeps, process-wide.
// A long-lived process that runs sweep after sweep (pccserve, pccbench
// -exp all) re-acquires warm arenas whose cached runners were built by
// earlier sweeps, so repeated requests skip the first-trial build cost.
// Reuse is placement-policy only — arena hits verify structure and re-spec
// every parameter (see arena.go) — and a scratch is recycled only after a
// fully clean sweep slice: a panicked trial may leave a cached runner
// mid-build and a timed-out trial's goroutine still owns its arena, so
// those scratches are dropped for the GC instead.
var scratchPool = sync.Pool{New: func() any { return new(TrialScratch) }}

func acquireScratch() *TrialScratch   { return scratchPool.Get().(*TrialScratch) }
func releaseScratch(ts *TrialScratch) { scratchPool.Put(ts) }

// RunTrials runs fn(trial) for every trial in [0, n) across the default
// number of workers. fn must be self-contained: it builds its own Runner
// (and therefore its own engine, RNGs and packet pool) from a seed derived
// from the trial index, and writes any result into a slot owned by that
// index. Calls may execute on different goroutines in any order; RunTrials
// returns after all complete. A panic in any trial is wrapped in a
// *TrialPanicError and re-raised on the caller's goroutine, matching
// sequential behaviour; a watchdog timeout is re-raised as a
// *TrialTimeoutError the same way.
func RunTrials(n int, fn func(trial int)) { RunTrialsWith(Workers(), n, fn) }

// RunTrialsWith is RunTrials with an explicit worker count (1 = sequential,
// in trial order, on the calling goroutine).
func RunTrialsWith(workers, n int, fn func(trial int)) {
	RunTrialsScratchWith(workers, n, func(i int, _ *TrialScratch) { fn(i) })
}

// RunTrialsCtx is RunTrials with cancellation: the sweep stops scheduling
// at the next trial boundary once ctx is cancelled (in-flight trials
// finish) and returns a *SweepCancelledError recording how many trials
// completed. Trial panics and watchdog timeouts are returned as typed
// errors instead of re-raised.
func RunTrialsCtx(ctx context.Context, n int, fn func(trial int)) error {
	return RunTrialsCtxWith(ctx, Workers(), n, fn)
}

// RunTrialsCtxWith is RunTrialsCtx with an explicit worker count.
func RunTrialsCtxWith(ctx context.Context, workers, n int, fn func(trial int)) error {
	return RunTrialsScratchCtxWith(ctx, workers, n, func(i int, _ *TrialScratch) { fn(i) })
}

// RunTrialsScratch is RunTrials for trial functions that build their
// runners through a TrialScratch arena: each worker goroutine owns one
// scratch for its whole slice of the sweep, so consecutive trials on a
// worker reuse fully built simulation state (see arena.go). The scratch
// reaches only one trial at a time; results remain byte-identical at any
// worker count because arena reuse is placement-policy only.
func RunTrialsScratch(n int, fn func(trial int, ts *TrialScratch)) {
	RunTrialsScratchWith(Workers(), n, fn)
}

// RunTrialsScratchWith is RunTrialsScratch with an explicit worker count
// (1 = sequential, in trial order, on the calling goroutine, with a single
// scratch serving every trial).
func RunTrialsScratchWith(workers, n int, fn func(trial int, ts *TrialScratch)) {
	if err := RunTrialsScratchCtxWith(context.Background(), workers, n, fn); err != nil {
		// Background never cancels, so err is a typed trial failure; re-raise
		// it to preserve the legacy panic contract of the non-ctx API.
		panic(err)
	}
}

// RunTrialsScratchCtx is RunTrialsScratch with cancellation (see
// RunTrialsCtx).
func RunTrialsScratchCtx(ctx context.Context, n int, fn func(trial int, ts *TrialScratch)) error {
	return RunTrialsScratchCtxWith(ctx, Workers(), n, fn)
}

// RunTrialsScratchCtxWith is the engine beneath every RunTrials/RunPoints
// variant. The context is consulted only at trial boundaries — a trial that
// has started always runs to completion (or to its watchdog deadline) — so
// cancellation can never tear a simulation down mid-event. It returns nil
// when all n trials completed, a *SweepCancelledError when ctx stopped the
// sweep first, or the typed *TrialPanicError/*TrialTimeoutError of the
// first failing trial (which also aborts the sweep).
func RunTrialsScratchCtxWith(ctx context.Context, workers, n int, fn func(trial int, ts *TrialScratch)) error {
	if n <= 0 {
		return nil
	}
	done := ctx.Done()
	cancelled := func(completed int) error {
		err := context.Cause(ctx)
		if err == nil {
			err = ctx.Err()
		}
		return &SweepCancelledError{Completed: completed, Total: n, Err: err}
	}
	if done != nil && ctx.Err() != nil {
		return cancelled(0)
	}
	enterGCRelax()
	defer exitGCRelax()
	timeout := TrialTimeout()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ts := acquireScratch()
		for i := 0; i < n; i++ {
			if done != nil && ctx.Err() != nil {
				releaseScratch(ts)
				return cancelled(i)
			}
			if err, _ := runTrial(fn, i, 0, ts, timeout); err != nil {
				// Drop the arena: panicked trials may leave cached runners
				// mid-build, timed-out trials still own theirs.
				return err
			}
		}
		releaseScratch(ts)
		return nil
	}
	var (
		next      atomic.Int64
		stop      atomic.Bool
		completed atomic.Int64
		wg        sync.WaitGroup
		errMu     sync.Mutex
		firstErr  error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			ts := acquireScratch()
			clean := true
			defer func() {
				if clean {
					releaseScratch(ts)
				}
			}()
			for !stop.Load() {
				if done != nil {
					select {
					case <-done:
						// Stop claiming trials; peers notice via stop without
						// each paying a context poll.
						stop.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err, _ := runTrial(fn, i, w, ts, timeout); err != nil {
					// Abort the sweep: workers stop claiming trials, so the
					// failure surfaces without first burning through the rest
					// of the grid. The arena is dropped, not recycled.
					clean = false
					stop.Store(true)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if c := int(completed.Load()); c < n {
		return cancelled(c)
	}
	return nil
}

// RunPoints runs fn over [0, n) in parallel and returns the results in
// index order: out[i] == fn(i) no matter which worker computed it. This is
// the workhorse of the drivers: a figure's sweep grid is flattened into
// n points, computed concurrently, and reassembled into rows sequentially
// so row order and floating-point aggregation order never change.
func RunPoints[T any](n int, fn func(point int) T) []T {
	return RunPointsWith[T](Workers(), n, fn)
}

// RunPointsWith is RunPoints with an explicit worker count.
func RunPointsWith[T any](workers, n int, fn func(point int) T) []T {
	out := make([]T, n)
	RunTrialsWith(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// RunPointsCtx is RunPoints with cancellation. On a non-nil error the
// returned slice still holds every completed point (the partial results a
// serving layer can stream); unstarted slots are zero values.
func RunPointsCtx[T any](ctx context.Context, n int, fn func(point int) T) ([]T, error) {
	return RunPointsCtxWith[T](ctx, Workers(), n, fn)
}

// RunPointsCtxWith is RunPointsCtx with an explicit worker count.
func RunPointsCtxWith[T any](ctx context.Context, workers, n int, fn func(point int) T) ([]T, error) {
	out := make([]T, n)
	err := RunTrialsCtxWith(ctx, workers, n, func(i int) { out[i] = fn(i) })
	return out, err
}

// RunPointsScratch is RunPoints for point functions that build their
// runners through a per-worker TrialScratch arena (see RunTrialsScratch).
func RunPointsScratch[T any](n int, fn func(point int, ts *TrialScratch) T) []T {
	return RunPointsScratchWith[T](Workers(), n, fn)
}

// RunPointsScratchWith is RunPointsScratch with an explicit worker count.
func RunPointsScratchWith[T any](workers, n int, fn func(point int, ts *TrialScratch) T) []T {
	out := make([]T, n)
	RunTrialsScratchWith(workers, n, func(i int, ts *TrialScratch) { out[i] = fn(i, ts) })
	return out
}

// RunPointsScratchCtx is RunPointsScratch with cancellation (see
// RunPointsCtx for the partial-result contract).
func RunPointsScratchCtx[T any](ctx context.Context, n int, fn func(point int, ts *TrialScratch) T) ([]T, error) {
	return RunPointsScratchCtxWith[T](ctx, Workers(), n, fn)
}

// RunPointsScratchCtxWith is RunPointsScratchCtx with an explicit worker
// count.
func RunPointsScratchCtxWith[T any](ctx context.Context, workers, n int, fn func(point int, ts *TrialScratch) T) ([]T, error) {
	out := make([]T, n)
	err := RunTrialsScratchCtxWith(ctx, workers, n, func(i int, ts *TrialScratch) { out[i] = fn(i, ts) })
	return out, err
}

// RunTrialsScratchOrdered is RunTrialsScratch with an explicit execution
// order: workers claim positions of order front to back and run
// fn(order[k]). order must be a permutation of [0, len(order)). Because
// every trial is self-contained and results are written to slots owned by
// the trial index, execution order is placement policy only — reports stay
// byte-identical under any permutation. Drivers use it to run a sweep's
// largest shapes first, so each worker's arena grows to its high-water mark
// on its first trials and every later, smaller shape rebuilds warm (a
// smallest-first grid instead re-grows windows and flow pools at each step
// up).
func RunTrialsScratchOrdered(order []int, fn func(trial int, ts *TrialScratch)) {
	RunTrialsScratchWith(Workers(), len(order), func(k int, ts *TrialScratch) { fn(order[k], ts) })
}

// RunTrialsScratchOrderedCtx is RunTrialsScratchOrdered with cancellation.
func RunTrialsScratchOrderedCtx(ctx context.Context, order []int, fn func(trial int, ts *TrialScratch)) error {
	return RunTrialsScratchCtxWith(ctx, Workers(), len(order), func(k int, ts *TrialScratch) { fn(order[k], ts) })
}

// RunPointsScratchOrdered is RunPointsScratch with an explicit execution
// order (see RunTrialsScratchOrdered); out[i] still holds fn(i).
func RunPointsScratchOrdered[T any](order []int, fn func(point int, ts *TrialScratch) T) []T {
	out := make([]T, len(order))
	RunTrialsScratchOrdered(order, func(i int, ts *TrialScratch) { out[i] = fn(i, ts) })
	return out
}

// RunPointsScratchOrderedCtx is RunPointsScratchOrdered with cancellation.
func RunPointsScratchOrderedCtx[T any](ctx context.Context, order []int, fn func(point int, ts *TrialScratch) T) ([]T, error) {
	out := make([]T, len(order))
	err := RunTrialsScratchOrderedCtx(ctx, order, func(i int, ts *TrialScratch) { out[i] = fn(i, ts) })
	return out, err
}

// descendingBy returns a permutation of [0, n) that is stable-sorted by
// descending size(i) — the canonical largest-shape-first order.
func descendingBy(n int, size func(i int) int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return size(order[a]) > size(order[b]) })
	return order
}

// TrialSeed derives a per-trial root seed from (rootSeed, trial) with a
// SplitMix64 finalizer, so trials are decorrelated even for adjacent
// indices and the mapping is stable across releases. Drivers that predate
// the pool use ad-hoc affine derivations (seed + k*trial); both are fine —
// what matters is that the derivation depends only on (rootSeed, trial).
func TrialSeed(rootSeed int64, trial int) int64 {
	z := uint64(rootSeed) + 0x9e3779b97f4a7c15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
