package exp

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the parallel experiment engine. Every trial of every driver
// in this package is a self-contained deterministic simulation — it builds
// its own sim.Engine and derives every RNG stream from the PathSpec seed —
// so trials are embarrassingly parallel. RunTrials/RunPoints fan a trial
// function out across a bounded worker pool while keeping results indexed
// by trial number, which makes the assembled report byte-identical to a
// sequential run regardless of goroutine scheduling (asserted by
// determinism_test.go).
//
// Worker-count resolution, most specific wins:
//
//  1. the explicit count passed to RunTrialsWith/RunPointsWith,
//  2. SetWorkers (cmd/pccbench's -par flag),
//  3. the PCC_PAR environment variable,
//  4. GOMAXPROCS.

// workerOverride holds the SetWorkers value; 0 means "not set".
var workerOverride atomic.Int64

// SetWorkers overrides the default worker count for RunTrials/RunPoints.
// n <= 0 restores automatic resolution (PCC_PAR, then GOMAXPROCS).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// Workers returns the worker count RunTrials will use.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	if s := os.Getenv("PCC_PAR"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// RunTrials runs fn(trial) for every trial in [0, n) across the default
// number of workers. fn must be self-contained: it builds its own Runner
// (and therefore its own engine, RNGs and packet pool) from a seed derived
// from the trial index, and writes any result into a slot owned by that
// index. Calls may execute on different goroutines in any order; RunTrials
// returns after all complete. A panic in any trial is re-raised on the
// caller's goroutine, matching sequential behaviour.
func RunTrials(n int, fn func(trial int)) { RunTrialsWith(Workers(), n, fn) }

// RunTrialsWith is RunTrials with an explicit worker count (1 = sequential,
// in trial order, on the calling goroutine).
func RunTrialsWith(workers, n int, fn func(trial int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Abort the sweep: workers stop claiming trials, so the
					// panic surfaces without first burning through the rest
					// of the grid.
					stop.Store(true)
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// RunPoints runs fn over [0, n) in parallel and returns the results in
// index order: out[i] == fn(i) no matter which worker computed it. This is
// the workhorse of the drivers: a figure's sweep grid is flattened into
// n points, computed concurrently, and reassembled into rows sequentially
// so row order and floating-point aggregation order never change.
func RunPoints[T any](n int, fn func(point int) T) []T {
	return RunPointsWith[T](Workers(), n, fn)
}

// RunPointsWith is RunPoints with an explicit worker count.
func RunPointsWith[T any](workers, n int, fn func(point int) T) []T {
	out := make([]T, n)
	RunTrialsWith(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// TrialSeed derives a per-trial root seed from (rootSeed, trial) with a
// SplitMix64 finalizer, so trials are decorrelated even for adjacent
// indices and the mapping is stable across releases. Drivers that predate
// the pool use ad-hoc affine derivations (seed + k*trial); both are fine —
// what matters is that the derivation depends only on (rootSeed, trial).
func TrialSeed(rootSeed int64, trial int) int64 {
	z := uint64(rootSeed) + 0x9e3779b97f4a7c15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
