package exp

import (
	"fmt"
	"testing"

	"pcc/internal/netem"
)

// TestChaosDeterminism extends the byte-identical-report guarantee to the
// fault-injection experiments: flap jitter draws ride the runner's seed
// derivation chain and every fault act runs on its target link's home
// engine, so linkflap and partition reports must not depend on the worker
// count or the shard ceiling. This is the chaos slice of the CI determinism
// matrix: workers {1,2,8} × shards {1,4}.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		// The -short race job covers this axis with
		// TestChaosDeterminismRacePair; the CI determinism job runs the full
		// matrix un-shortened.
		t.Skip("full chaos worker × shard matrix")
	}
	defer SetWorkers(0)
	defer SetShards(0)
	cases := []struct {
		id   string
		seed int64
	}{
		{"linkflap", 42},
		{"linkflap", 7},
		{"partition", 42},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%d", tc.id, tc.seed), func(t *testing.T) {
			render := func(shards, workers int) string {
				SetShards(shards)
				SetWorkers(workers)
				rep, err := Run(tc.id, 0.01, tc.seed)
				if err != nil {
					t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
				}
				return rep.String()
			}
			base := render(1, 1)
			for _, workers := range []int{2, 8} {
				if got := render(1, workers); got != base {
					t.Errorf("report differs between workers=1 and workers=%d:\n--- base ---\n%s--- workers=%d ---\n%s",
						workers, base, workers, got)
				}
			}
			for _, workers := range []int{1, 2, 8} {
				if got := render(4, workers); got != base {
					t.Errorf("report differs between shards=1 and shards=4 workers=%d:\n--- base ---\n%s--- shards=4 ---\n%s",
						workers, base, got)
				}
			}
		})
	}
}

// TestChaosDeterminismRacePair is the CI -race slice of the chaos axis: one
// faulted sharded-vs-single pair per experiment under the race detector,
// with concurrent shard workers and concurrent trial workers.
func TestChaosDeterminismRacePair(t *testing.T) {
	defer SetWorkers(0)
	defer SetShards(0)
	for _, id := range []string{"linkflap", "partition"} {
		render := func(shards, workers int) string {
			SetShards(shards)
			SetWorkers(workers)
			rep, err := Run(id, 0.01, 42)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", id, shards, err)
			}
			return rep.String()
		}
		base := render(1, 1)
		if got := render(2, 2); got != base {
			t.Errorf("%s report differs between shards=1 and shards=2 workers=2:\n--- shards=1 ---\n%s--- shards=2 ---\n%s", id, base, got)
		}
	}
}

// chaosCrashTrial runs one node-crash trial: a 2-hop chain n0→n1→n2 whose
// source host n0 crashes at t=2 and restarts at t=3 during a 5-second
// transfer. Returns the runner and the flow.
func chaosCrashTrial(ts *TrialScratch, seed int64) (*Runner, *Flow) {
	spec := TopologySpec{
		Seed: seed,
		Faults: &netem.FaultSchedule{Events: []netem.FaultEvent{
			{At: 2, Kind: netem.FaultNodeCrash, Node: "n0"},
			{At: 3, Kind: netem.FaultNodeRestart, Node: "n0"},
		}},
	}
	for i := 0; i < 2; i++ {
		spec.Links = append(spec.Links,
			LinkSpec{
				Name: fwdName(i), From: nodeName(i), To: nodeName(i + 1),
				RateMbps: 50, Delay: 0.005, BufBytes: 100 * netem.KB,
			},
			LinkSpec{
				Name: revName(i), From: nodeName(i + 1), To: nodeName(i),
				RateMbps: 500, Delay: 0.005, BufBytes: 100 * netem.KB,
			})
	}
	r := ts.TopologyRunner("crash", spec)
	f := r.AddFlow(FlowSpec{
		Proto:    "pcc",
		FwdRoute: []netem.HopSpec{netem.LinkHop(fwdName(0)), netem.LinkHop(fwdName(1))},
		RevRoute: []netem.HopSpec{netem.LinkHop(revName(1)), netem.LinkHop(revName(0))},
		Bucket:   0.1,
	})
	r.Run(5)
	return r, f
}

// TestNodeCrashFreezesAndResumes drives the node-fault path end to end: a
// crash must take the host's incident links down (destroying the in-flight
// train into the fault ledger), silence the flow for the outage, and a
// restart must bring the transfer back — with byte conservation holding on
// every link through all of it.
func TestNodeCrashFreezesAndResumes(t *testing.T) {
	t.Parallel()
	ts := new(TrialScratch)
	r, f := chaosCrashTrial(ts, 21)

	series := f.SeriesMbps()
	window := func(from, to float64) float64 {
		var sum float64
		for i := int(from / 0.1); i < int(to/0.1) && i < len(series); i++ {
			sum += series[i]
		}
		return sum
	}
	if pre := window(0.5, 2.0); pre <= 0 {
		t.Fatalf("no goodput before the crash (%.2f)", pre)
	}
	// The crash kills the source at t=2; anything still in flight arrives
	// within one path delay (~10 ms + queues), so [2.2, 3.0) must be silent.
	if mid := window(2.2, 3.0); mid != 0 {
		t.Errorf("goodput %.2f Mbps while the source host is down", mid)
	}
	if post := window(3.2, 5.0); post <= 0 {
		t.Errorf("transfer did not resume after the restart (%.2f)", post)
	}
	dropped := int64(0)
	for _, s := range r.Topo.Stats() {
		if !s.Conserved() {
			t.Errorf("link %s conservation broken across the crash: %+v", s.Name, s)
		}
		dropped += s.FaultDropped
	}
	if dropped == 0 {
		t.Error("crash destroyed no in-flight packets; the fault likely did not fire")
	}
	if len(r.FaultEvents()) != 2 {
		t.Errorf("FaultEvents() = %v, want the crash/restart pair", r.FaultEvents())
	}
}

// TestChaosArenaMatchesFresh pins fault injection on the trial-arena respec
// path: re-running a faulted trial on a warm arena (same topology signature,
// same fault targets) must be bit-identical to a fresh build, including the
// flap-jitter RNG draw that rides the seed derivation chain.
func TestChaosArenaMatchesFresh(t *testing.T) {
	t.Parallel()
	trial := func(ts *TrialScratch, i int) float64 {
		_, f := chaosCrashTrial(ts, TrialSeed(33, i))
		return f.WindowMbps(0.5, 5)
	}
	flapTrial := func(ts *TrialScratch, i int) float64 {
		proto := []string{"pcc", "cubic"}[i%2]
		_, long := linkFlapTrial(ts, proto, 10, TrialSeed(44, i), 2)
		return long.WindowMbps(1, 10)
	}
	warm := new(TrialScratch)
	for i := 0; i < 4; i++ {
		if fresh, got := trial(new(TrialScratch), i), trial(warm, i); got != fresh {
			t.Fatalf("crash trial %d: warm arena %v != fresh %v", i, got, fresh)
		}
	}
	for i := 0; i < 4; i++ {
		if fresh, got := flapTrial(new(TrialScratch), i), flapTrial(warm, i); got != fresh {
			t.Fatalf("flap trial %d: warm arena %v != fresh %v", i, got, fresh)
		}
	}
}

// TestChaosArenaRespecDifferentTargets alternates the faulted link under one
// arena key: the fault signature differs, so the warm path must rebuild
// rather than respec, and results must stay fresh-identical.
func TestChaosArenaRespecDifferentTargets(t *testing.T) {
	t.Parallel()
	trial := func(ts *TrialScratch, i int) float64 {
		target := fwdName(i % 2)
		spec := TopologySpec{
			Seed: TrialSeed(55, i),
			Faults: &netem.FaultSchedule{Events: []netem.FaultEvent{
				{At: 1, Kind: netem.FaultLinkDown, Link: target},
				{At: 1.5, Kind: netem.FaultLinkUp, Link: target},
			}},
		}
		for k := 0; k < 2; k++ {
			spec.Links = append(spec.Links,
				LinkSpec{
					Name: fwdName(k), From: nodeName(k), To: nodeName(k + 1),
					RateMbps: 50, Delay: 0.005, BufBytes: 100 * netem.KB,
				},
				LinkSpec{
					Name: revName(k), From: nodeName(k + 1), To: nodeName(k),
					RateMbps: 500, Delay: 0.005, BufBytes: 100 * netem.KB,
				})
		}
		r := ts.TopologyRunner("alt-target", spec)
		f := r.AddFlow(FlowSpec{
			Proto:    "pcc",
			FwdRoute: []netem.HopSpec{netem.LinkHop(fwdName(0)), netem.LinkHop(fwdName(1))},
			RevRoute: []netem.HopSpec{netem.LinkHop(revName(1)), netem.LinkHop(revName(0))},
			Bucket:   0.5,
		})
		r.Run(3)
		return f.WindowMbps(0.5, 3)
	}
	warm := new(TrialScratch)
	for i := 0; i < 4; i++ {
		if fresh, got := trial(new(TrialScratch), i), trial(warm, i); got != fresh {
			t.Fatalf("trial %d: warm arena %v != fresh %v", i, got, fresh)
		}
	}
}

// TestChaosArenaSteadyStateAllocs holds faulted trials to the same warm-trial
// allocation budget as unfaulted ones: the materialized event list, the act
// table and the per-act engine posts all reuse arena storage.
func TestChaosArenaSteadyStateAllocs(t *testing.T) {
	ts := new(TrialScratch)
	trial := func() {
		_, f := chaosCrashTrial(ts, 21)
		if f.WindowMbps(0.5, 5) <= 0 {
			t.Fatal("trial produced no goodput")
		}
	}
	trial() // cold build
	trial() // grow retained storage to steady state
	avg := testing.AllocsPerRun(5, trial)
	t.Logf("warm faulted trial: %.0f allocs", avg)
	if avg > steadyAllocBudget {
		t.Errorf("warm faulted trial allocates %.0f objects, budget %d", avg, steadyAllocBudget)
	}
}
