package exp

import (
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/netem"
	"pcc/internal/workload"
)

// RunMixMTU ("mixmtu") exercises the size-accurate byte accounting end to
// end: flows with 512-, 1400- and 9000-byte packets share a two-hop path.
// A jumbo-frame bulk flow (9000 B), a standard-MTU flow (1400 B, the real
// UDP transport's payload budget) and two small-packet interactive flows
// (512 B) all cross both links, while Poisson 512-byte mice churn the
// bottleneck. Every layer — pacing clock, link serialization, queue
// occupancy, and the PCC monitor's per-MI byte ledger — sees each packet's
// true wire size; the report closes the loop with per-link byte
// conservation (offered = delivered + wire-lost + queue-dropped + queued +
// serializing, in bytes) at every hop, which packet counts alone could not
// certify once sizes mix.
func RunMixMTU(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(90, 20, scale)
	protos := []string{"pcc", "cubic", "newreno"}

	rep := &Report{
		ID:     "mixmtu",
		Title:  "mixed packet sizes (9000/1400/512 B flows on a two-hop 100→50 Mbps path)",
		Header: []string{"proto", "jumbo_Mbps", "std_Mbps", "small1_Mbps", "small2_Mbps", "jain", "conserved"},
	}
	type mmResult struct {
		row   []string
		notes []string
	}
	results := RunPointsScratch(len(protos), func(i int, ts *TrialScratch) mmResult {
		proto := protos[i]
		r, flows := mixMTUTrial(ts, proto, dur, TrialSeed(seed, i))
		tput := make([]float64, len(flows))
		for j, f := range flows {
			tput[j] = f.WindowMbps(0.2*dur, dur)
		}
		conserved := true
		for _, s := range r.Topo.Stats() {
			if !s.Conserved() {
				conserved = false
			}
		}
		res := mmResult{row: []string{
			proto,
			f1(tput[0]), f1(tput[1]), f1(tput[2]), f1(tput[3]),
			f3(metrics.JainIndex(tput)),
			fmt.Sprintf("%v", conserved),
		}}
		if proto == "pcc" {
			res.notes = byteConservationNotes(r)
		}
		return res
	})
	for _, res := range results {
		rep.Rows = append(rep.Rows, res.row)
		rep.Notes = append(rep.Notes, res.notes...)
	}
	rep.Notes = append(rep.Notes,
		"flows: one 9000 B jumbo bulk, one 1400 B standard, two 512 B interactive, plus Poisson 512 B mice on both hops",
		"conserved: per-link byte ledger balances at every hop (offered = delivered + wire_lost + queue_dropped + queued + serializing)")
	return rep
}

// mixMTUTrial builds and runs one mixed-MTU simulation over a two-hop path
// (100 Mbps feeder into a 50 Mbps bottleneck) and returns the runner plus
// the four long-lived flows [jumbo, standard, small1, small2].
func mixMTUTrial(ts *TrialScratch, proto string, dur float64, seed int64) (*Runner, []*Flow) {
	const (
		linkDel = 0.005 // per-hop propagation, seconds
		accessD = 0.002 // per-flow access delay, seconds
	)
	r := ts.TopologyRunner(proto, TopologySpec{
		Seed: seed,
		Links: []LinkSpec{
			{Name: "feed", From: "A", To: "M", RateMbps: 100, Delay: linkDel, BufBytes: 250 * netem.KB},
			{Name: "bn", From: "M", To: "B", RateMbps: 50, Delay: linkDel, BufBytes: 125 * netem.KB},
		},
	})

	fwd := []netem.HopSpec{netem.DelayHop(accessD), netem.LinkHop("feed"), netem.LinkHop("bn")}
	rev := []netem.HopSpec{netem.DelayHop(accessD + 2*linkDel)}
	flows := make([]*Flow, 0, 4)
	for _, size := range []int{9000, 1400, 512, 512} {
		flows = append(flows, r.AddFlow(FlowSpec{
			Proto:      proto,
			PacketSize: size,
			FwdRoute:   fwd, RevRoute: rev,
			Bucket: 1,
		}))
	}

	// Poisson 512-byte mice across both hops: short interactive transfers
	// (bounded-Pareto sizes) riding the same path, so the queues see a
	// constant churn of sub-MSS packets between the long flows' frames.
	arrRNG := r.NextRand()
	sizeRNG := r.NextRand()
	workload.PoissonArrivals(r.Eng, arrRNG, 4, dur, func(int) {
		r.AddFlow(FlowSpec{
			Proto:      "newreno",
			PacketSize: 512,
			FwdRoute:   fwd, RevRoute: rev,
			FlowKB:  workload.ParetoFlowKB(sizeRNG, 1.2, 10, 500),
			StartAt: r.Eng.Now(),
		})
	})

	r.Run(dur)
	return r, flows
}

// byteConservationNotes renders the per-link byte ledger as report notes
// (AddLink order, deterministic).
func byteConservationNotes(r *Runner) []string {
	var out []string
	for _, s := range r.Topo.Stats() {
		out = append(out, fmt.Sprintf(
			"link %s bytes: offered=%d delivered=%d wire_lost=%d queue_dropped=%d queued=%d serializing=%d conserved=%v",
			s.Name, s.OfferedBytes, s.DeliveredBytes, s.WireLostBytes,
			s.QueueDroppedBytes, s.QueuedBytes, s.TxBytes, s.Conserved()))
	}
	return out
}
