package exp

import (
	"testing"

	"pcc/internal/netem"
)

// TestPCCSmokeTracksCapacity is the foundational integration check: a single
// PCC flow on a clean 100 Mbps / 30 ms / BDP-buffer path should converge to
// a large fraction of capacity.
func TestPCCSmokeTracksCapacity(t *testing.T) {
	t.Parallel()
	r := NewRunner(PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 375 * netem.KB, Seed: 1})
	f := r.AddFlow(FlowSpec{Proto: "pcc"})
	r.Run(30)
	got := f.GoodputMbps(30)
	if got < 70 {
		t.Fatalf("PCC goodput = %.1f Mbps on a clean 100 Mbps path; want > 70", got)
	}
	t.Logf("PCC goodput = %.1f Mbps", got)
}

// TestTCPSmokeTracksCapacity: New Reno and CUBIC should also fill a clean
// path with a BDP buffer.
func TestTCPSmokeTracksCapacity(t *testing.T) {
	t.Parallel()
	for _, proto := range []string{"newreno", "cubic", "illinois"} {
		r := NewRunner(PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 375 * netem.KB, Seed: 1})
		f := r.AddFlow(FlowSpec{Proto: proto})
		r.Run(30)
		got := f.GoodputMbps(30)
		if got < 70 {
			t.Errorf("%s goodput = %.1f Mbps on a clean 100 Mbps path; want > 70", proto, got)
		} else {
			t.Logf("%s goodput = %.1f Mbps", proto, got)
		}
	}
}
