package exp

import (
	"strings"
	"testing"

	"pcc/internal/netem"
)

// Shape tests for the routed-topology experiments: the claims EXPERIMENTS.md
// records, at reduced scale.

func TestShapeReversePathCongestion(t *testing.T) {
	t.Parallel()
	// revpath core claim: on the asymmetric pair, the thin-link flow is
	// measurably depressed by the opposing flow's ACK stream, and PCC holds
	// the fat link far better than loss-based TCP under ACK congestion.
	dur := 30.0
	ts := new(TrialScratch)
	run := func(proto string, duplex bool) (fwdT, revT float64) {
		r := revPathRunner(ts, proto, 42)
		fwd := r.AddFlow(FlowSpec{
			Proto:    proto,
			FwdRoute: []netem.HopSpec{netem.LinkHop("fat")},
			RevRoute: []netem.HopSpec{netem.LinkHop("thin")},
			Bucket:   1,
		})
		var rev *Flow
		if duplex {
			rev = r.AddFlow(FlowSpec{
				Proto:    proto,
				FwdRoute: []netem.HopSpec{netem.LinkHop("thin")},
				RevRoute: []netem.HopSpec{netem.LinkHop("fat")},
				Bucket:   1,
			})
		}
		r.Run(dur)
		fwdT = fwd.WindowMbps(0.2*dur, dur)
		if rev != nil {
			revT = rev.WindowMbps(0.2*dur, dur)
		}
		return fwdT, revT
	}

	pccSolo, _ := run("pcc", false)
	pccFwd, pccRev := run("pcc", true)
	if pccSolo < 80 {
		t.Errorf("PCC solo on the fat link = %.1f Mbps, want > 80", pccSolo)
	}
	// The PCC ACK stream at ~100 Mbps forward rate occupies ~2.7 Mbps of
	// the 10 Mbps reverse link; the opposing flow must lose at least 1.5.
	if pccRev > 8.5 {
		t.Errorf("thin-link flow = %.1f Mbps against opposing ACKs, want measurable depression (< 8.5)", pccRev)
	}
	if pccRev < 2 {
		t.Errorf("thin-link flow = %.1f Mbps, collapsed beyond plausibility", pccRev)
	}

	cubicFwd, _ := run("cubic", true)
	if pccFwd < cubicFwd {
		t.Errorf("under ACK congestion PCC fwd %.1f < CUBIC fwd %.1f; paper-shape expects PCC to tolerate a congested reverse path better", pccFwd, cubicFwd)
	}
}

func TestShapeParkingLotSqueeze(t *testing.T) {
	t.Parallel()
	// parklot core claim: a flow crossing every bottleneck gets squeezed far
	// below its single-hop competitors (compounded per-hop loss), while the
	// network itself stays near-fully utilized at every hop.
	dur := 30.0
	r, long, cross := parkingLotTrial(new(TrialScratch), 3, "pcc", dur, 42)
	longT := long.WindowMbps(0.2*dur, dur)
	var crossSum float64
	for _, c := range cross {
		crossSum += c.WindowMbps(0.2*dur, dur)
	}
	if crossSum < 3*70 {
		t.Errorf("cross flows total %.1f Mbps over 3 hops, want > 210 (links near-full)", crossSum)
	}
	if longT > crossSum/3 {
		t.Errorf("long flow %.1f Mbps vs mean cross %.1f: multi-bottleneck squeeze not visible", longT, crossSum/3)
	}
	// Per-link accounting must hold after the run (drained queues excepted —
	// conservation here is delivered+lost+dropped+still-queued ≤ offered, so
	// just assert the counters moved and aggregate into the report notes).
	notes := r.LinkStatsNotes()
	if len(notes) != 3 {
		t.Fatalf("LinkStatsNotes = %d entries, want 3", len(notes))
	}
	for _, n := range notes {
		if !strings.Contains(n, "delivered=") {
			t.Errorf("malformed link stats note %q", n)
		}
	}
}

func TestTopologyRunnerRouteInference(t *testing.T) {
	t.Parallel()
	// RTT and capacity inference from routes: narrowest link bounds the
	// capacity; propagation sums into the RTT hint.
	r := NewTopologyRunner(TopologySpec{
		Seed: 1,
		Links: []LinkSpec{
			{Name: "a", From: "A", To: "B", RateMbps: 100, Delay: 0.004, BufBytes: 250 * netem.KB},
			{Name: "b", From: "B", To: "C", RateMbps: 20, Delay: 0.006, BufBytes: 250 * netem.KB},
		},
	})
	fwd := []netem.HopSpec{netem.DelayHop(0.002), netem.LinkHop("a"), netem.LinkHop("b")}
	rev := []netem.HopSpec{netem.DelayHop(0.008)}
	if got, want := r.RouteCapacity(fwd), netem.Mbps(20); got != want {
		t.Errorf("RouteCapacity = %v, want %v", got, want)
	}
	if got, want := r.routeRTT(fwd, rev), 0.020; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("routeRTT = %v, want %v", got, want)
	}
	f := r.AddFlow(FlowSpec{Proto: "pcc", FwdRoute: fwd, RevRoute: rev})
	r.Run(20)
	if got := f.GoodputMbps(20); got < 14 {
		t.Errorf("PCC on a 20 Mbps 2-hop route = %.1f Mbps, want > 14", got)
	}
}

func TestTopologyRunnerRequiresRoutes(t *testing.T) {
	t.Parallel()
	r := NewTopologyRunner(TopologySpec{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddFlow without routes on a topology runner must panic")
		}
	}()
	r.AddFlow(FlowSpec{Proto: "pcc"})
}
