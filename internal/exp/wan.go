package exp

import (
	"fmt"
	"math/rand"

	"pcc/internal/metrics"
	"pcc/internal/netem"
	"pcc/internal/topogen"
)

// RunWAN ("wan") is the internet-scale scenario of ROADMAP item 1: instead
// of a hand-written hop chain, the topology is a generated GT-ITM-style
// transit-stub WAN (internal/topogen) — four backbone domains in a ring,
// stub networks hanging off every transit router — with hundreds of flows
// routed over deterministic shortest paths and a flap schedule on the x0
// backbone link active mid-run. It asks the paper's §2.2–§2.3 question at
// scale: does utility-driven control keep aggregate goodput and fairness
// when thousands of flows share a real WAN graph and the backbone fails
// under them? Per-link byte conservation is audited over every generated
// link, and the generator's domain hints feed the shard partitioner, so
// one trial spreads across cores while reports stay byte-identical at any
// worker/shard count (determinism_test.go asserts this). The node and flow
// targets scale with -scale and can be pinned with -nodes/-flows
// (PCC_NODES/PCC_FLOWS).
func RunWAN(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(25, 5, scale)
	shards := Shards()
	nodeTarget := Nodes()
	if nodeTarget == 0 {
		nodeTarget = int(500*scale + 0.5)
	}
	flowTarget := Flows()
	if flowTarget == 0 {
		flowTarget = int(5000*scale + 0.5)
		if flowTarget < 40 {
			flowTarget = 40
		}
	}
	sh := NewWANShape(nodeTarget, flowTarget, shards, dur, seed)
	protos := []string{"pcc", "cubic"}

	rep := &Report{
		ID: "wan",
		Title: fmt.Sprintf("generated transit-stub WAN (%d nodes, %d links, %d flows, backbone flaps on x0)",
			sh.graph.NumNodes(), sh.graph.NumLinks(), len(sh.flows)),
		Header: []string{"proto", "agg_Mbps", "mean_Mbps", "p10_Mbps", "jain", "conserved"},
	}
	type wanResult struct {
		row   []string
		notes []string
	}
	results := RunPointsScratch(len(protos), func(i int, ts *TrialScratch) wanResult {
		proto := protos[i]
		r, goodput := wanTrial(ts, sh, proto, dur, TrialSeed(seed, i))
		sum := 0.0
		for _, g := range goodput {
			sum += g
		}
		sorted := metrics.SortInto(ts.f64, goodput)
		p10 := metrics.PercentileSorted(sorted, 10)
		ts.f64 = sorted
		stats := r.Topo.Stats()
		conserved := 0
		for i := range stats {
			if stats[i].Conserved() {
				conserved++
			}
		}
		res := wanResult{row: []string{
			proto,
			f1(sum), f2(metrics.Mean(goodput)), f2(p10),
			f3(metrics.JainIndex(goodput)),
			fmt.Sprintf("%d/%d", conserved, len(stats)),
		}}
		if proto == "pcc" {
			res.notes = r.ConservationNotesInto(nil, topOffenderNotes)
			down, up := 0, 0
			for _, ev := range r.FaultEvents() {
				switch ev.Kind {
				case netem.FaultLinkDown:
					down++
				case netem.FaultLinkUp:
					up++
				}
			}
			res.notes = append(res.notes,
				fmt.Sprintf("backbone x0 flapped: %d down / %d up transitions", down, up))
		}
		return res
	})
	for _, res := range results {
		rep.Rows = append(rep.Rows, res.row)
		rep.Notes = append(rep.Notes, res.notes...)
	}
	rep.Notes = append(rep.Notes,
		"flows pair random stub routers over shortest paths; agg/mean/p10 are whole-run goodputs from each flow's staggered start",
		"conserved: links whose byte ledger balances (offered = delivered + lost + dropped + queued + in-flight), audited per generated link")
	return rep
}

// wanFlow is one precomputed flow of a WANShape: routed hop chains plus a
// staggered start.
type wanFlow struct {
	fwd, rev []netem.HopSpec
	startAt  float64
}

// WANShape is the precomputed, trial-invariant part of a wan run: the
// generated graph, the TopologySpec built from it (links, shard hints and
// the x0 flap schedule, shared read-only), and every flow's routed hop
// chains. Building it once per RunWAN keeps the topogen Router's
// single-threaded route cache out of the trial fan-out and lets warm arena
// trials respec against identical link and hint slices.
type WANShape struct {
	graph *topogen.Graph
	base  TopologySpec
	flows []wanFlow
}

// NewWANShape generates the transit-stub WAN for the given node target,
// routes flowTarget stub-to-stub flows over it, and attaches the backbone
// flap schedule sized to dur. The generator rounds nodeTarget up to the
// nearest structurally valid size (12 transit routers + 36 stub routers per
// stubs-per-router step). Pair selection and per-flow access delays draw
// from seed only, so every proto variant runs the identical workload.
func NewWANShape(nodeTarget, flowTarget, shards int, dur float64, seed int64) *WANShape {
	spr := 1
	if nodeTarget > 48 {
		spr = (nodeTarget - 12 + 35) / 36
	}
	// Rates are deliberately modest (a 400 Mbps backbone over 40 Mbps stub
	// access): the scenario's subject is many flows sharing a real graph,
	// not raw bandwidth, and event count scales with bytes moved.
	g := topogen.TransitStub(topogen.TransitStubSpec{
		Transits:        4,
		TransitRouters:  3,
		StubsPerRouter:  spr,
		StubRouters:     3,
		TransitRateMbps: 400,
		StubRateMbps:    40,
		Seed:            1,
	})
	var stubs []string
	for _, name := range g.Nodes() {
		if name[0] == 's' {
			stubs = append(stubs, name)
		}
	}
	router := topogen.NewRouter(g)
	rng := rand.New(rand.NewSource(seed))
	flows := make([]wanFlow, flowTarget)
	for k := range flows {
		src := stubs[rng.Intn(len(stubs))]
		dst := stubs[rng.Intn(len(stubs))]
		for dst == src {
			dst = stubs[rng.Intn(len(stubs))]
		}
		// Last-mile delay outside the shared graph; the hop rides the flow's
		// source shard (fwd head, rev tail), the same placement widechain
		// uses, so routed links stay free to cross shards.
		access := 0.0005 + 0.002*rng.Float64()
		fwdLinks := router.PathLinks(src, dst)
		revLinks := router.PathLinks(dst, src)
		fwd := make([]netem.HopSpec, 0, len(fwdLinks)+1)
		fwd = append(fwd, netem.DelayHop(access))
		for _, ln := range fwdLinks {
			fwd = append(fwd, netem.LinkHop(ln))
		}
		rev := make([]netem.HopSpec, 0, len(revLinks)+1)
		for _, ln := range revLinks {
			rev = append(rev, netem.LinkHop(ln))
		}
		rev = append(rev, netem.DelayHop(access))
		flows[k] = wanFlow{
			fwd: fwd, rev: rev,
			startAt: 0.2 * dur * float64(k) / float64(flowTarget),
		}
	}
	base := GraphSpec(g, 0, shards)
	base.Faults = &netem.FaultSchedule{Flaps: []netem.FlapSpec{{
		Link:        "x0",
		FirstDownAt: 0.3 * dur,
		DownDur:     0.25,
		UpDur:       1.0,
		Jitter:      0.3,
		Until:       0.7 * dur,
	}}}
	return &WANShape{graph: g, base: base, flows: flows}
}

// NumNodes returns the generated node count (after rounding the target).
func (sh *WANShape) NumNodes() int { return sh.graph.NumNodes() }

// wanTrial runs one wan simulation on a precomputed shape: respec the
// topology (links, hints and flap schedule are shared slices, so a warm
// arena runner rewinds in place), add every routed flow with its staggered
// start, run to dur, and return the per-flow whole-run goodputs in flow
// order.
func wanTrial(ts *TrialScratch, sh *WANShape, proto string, dur float64, seed int64) (*Runner, []float64) {
	ts.Stamp("wan", proto, seed)
	spec := sh.base
	spec.Seed = seed
	key := fmt.Sprintf("wan/%d/%d/%s/%d", sh.graph.NumNodes(), len(sh.flows), proto, spec.Shards)
	r := ts.TopologyRunner(key, spec)
	flows := make([]*Flow, len(sh.flows))
	for k := range sh.flows {
		wf := &sh.flows[k]
		flows[k] = r.AddFlow(FlowSpec{
			Proto: proto, FwdRoute: wf.fwd, RevRoute: wf.rev, StartAt: wf.startAt,
		})
	}
	r.Run(dur)
	goodput := make([]float64, len(flows))
	for k, f := range flows {
		goodput[k] = f.GoodputMbps(dur)
	}
	return r, goodput
}

// RunWANTrial runs one benchmark-shaped wan trial on a prebuilt shape and
// returns the aggregate goodput in Mbps. BenchmarkWAN calls it so the
// graph generation and routing measured by BenchmarkWANBuild stay out of
// the simulation loop; the returned figure must not depend on the shape's
// shard ceiling.
func RunWANTrial(ts *TrialScratch, sh *WANShape, dur float64, seed int64) float64 {
	_, goodput := wanTrial(ts, sh, "pcc", dur, seed)
	sum := 0.0
	for _, g := range goodput {
		sum += g
	}
	return sum
}
