package exp

import (
	"fmt"
	"testing"

	"pcc/internal/netem"
)

// arenaTrial is one short mixed-shape trial, parameterized enough to drag
// the arena through every reuse transition: protocol category flips
// (rate↔window senders on one flow id), PCC config changes, queue-kind
// changes (cache key change), loss on/off (lazy RNG materialization), and
// flow-count growth and shrinkage.
func arenaTrial(ts *TrialScratch, i int) float64 {
	protos := []string{"pcc", "cubic", "newreno", "sabul", "pcc", "pacing"}
	queues := []string{"droptail", "fq", "codel", "fqcodel"}
	proto := protos[i%len(protos)]
	q := queues[i%len(queues)]
	p := PathSpec{
		RateMbps:  20,
		RTT:       0.020,
		Loss:      0.002 * float64(i%3),
		BufBytes:  (30 + 10*(i%3)) * netem.KB,
		QueueKind: q,
		Seed:      TrialSeed(1234, i),
	}
	r := ts.Runner(proto+"/"+q, p)
	f := r.AddFlow(FlowSpec{Proto: proto, FlowKB: 64, RevLoss: p.Loss})
	// A varying tail of extra flows exercises flow-pool growth/shrinkage.
	for k := 0; k < i%3; k++ {
		r.AddFlow(FlowSpec{Proto: protos[(i+k+1)%len(protos)], Bucket: 1})
	}
	r.Run(2)
	sum := f.GoodputMbps(2)
	for _, g := range r.Flows[1:] {
		sum += 1e3 * g.GoodputMbps(2)
	}
	return sum
}

// TestArenaMatchesFresh is the arena's core guarantee: a trial computed on
// a warm, repeatedly reused arena is bit-identical to the same trial
// computed on a freshly built runner. The trial mix deliberately thrashes
// every reuse path (sender category flips, queue-kind changes, flow counts
// going up and down, loss streams toggling on and off).
func TestArenaMatchesFresh(t *testing.T) {
	t.Parallel()
	const trials = 36
	fresh := make([]float64, trials)
	for i := range fresh {
		// A throwaway scratch per trial: every build is a cache miss.
		fresh[i] = arenaTrial(new(TrialScratch), i)
	}
	warm := new(TrialScratch)
	for pass := 0; pass < 2; pass++ { // second pass runs fully warm
		for i := 0; i < trials; i++ {
			if got := arenaTrial(warm, i); got != fresh[i] {
				t.Fatalf("pass %d trial %d: warm arena %v != fresh %v", pass, i, got, fresh[i])
			}
		}
	}
}

// TestArenaTopologyMatchesFresh covers the routed-topology respec paths
// (multi-hop link chains, per-link RNG reseeding, route teardown when the
// route shape changes under one key, mid-run Poisson flow spawning).
func TestArenaTopologyMatchesFresh(t *testing.T) {
	t.Parallel()
	trial := func(ts *TrialScratch, i int) float64 {
		protos := []string{"pcc", "newreno", "cubic"}
		_, long, cross := parkingLotTrial(ts, 2+i%2, protos[i%len(protos)], 6, TrialSeed(77, i))
		sum := long.WindowMbps(1, 6)
		for _, c := range cross {
			sum += c.WindowMbps(1, 6)
		}
		return sum
	}
	const trials = 12
	fresh := make([]float64, trials)
	for i := range fresh {
		fresh[i] = trial(new(TrialScratch), i)
	}
	warm := new(TrialScratch)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < trials; i++ {
			if got := trial(warm, i); got != fresh[i] {
				t.Fatalf("pass %d trial %d: warm arena %v != fresh %v", pass, i, got, fresh[i])
			}
		}
	}
}

// TestArenaRouteShapeChangeUnderOneKey pins the per-flow rebuild fallback:
// the same cache key alternates between two different route shapes for the
// same flow id, so every warm build must tear down and rebuild the routes —
// with results identical to fresh builds.
func TestArenaRouteShapeChangeUnderOneKey(t *testing.T) {
	t.Parallel()
	trial := func(ts *TrialScratch, i int) float64 {
		r := revPathRunner(ts, "shared", TrialSeed(5, i))
		var fwd, rev []netem.HopSpec
		if i%2 == 0 {
			fwd = []netem.HopSpec{netem.LinkHop("fat")}
			rev = []netem.HopSpec{netem.LinkHop("thin")}
		} else {
			fwd = []netem.HopSpec{netem.DelayHop(0.004), netem.LinkHop("thin")}
			rev = []netem.HopSpec{netem.LinkHop("fat")}
		}
		f := r.AddFlow(FlowSpec{Proto: "pcc", FwdRoute: fwd, RevRoute: rev})
		r.Run(4)
		return f.GoodputMbps(4)
	}
	warm := new(TrialScratch)
	for i := 0; i < 6; i++ {
		fresh := trial(new(TrialScratch), i)
		if got := trial(warm, i); got != fresh {
			t.Fatalf("trial %d: warm arena %v != fresh %v", i, got, fresh)
		}
	}
}

// steadyAllocBudget is the allowed per-trial allocation count on a warm
// arena. A cold build of the same trials allocates thousands of objects
// (engine, topology, routes, windows, 607-word RNG registers); steady-state
// reuse must stay below this small fixed budget (per-trial closures for
// driver callbacks, the arena key string, and algorithm stubs).
const steadyAllocBudget = 100

// TestArenaSteadyStateAllocsDumbbell pins the tentpole's "second-and-later
// trials near zero setup allocations" claim for a dumbbell runner.
func TestArenaSteadyStateAllocsDumbbell(t *testing.T) {
	ts := new(TrialScratch)
	trial := func() {
		r := ts.Runner("pcc", PathSpec{RateMbps: 20, RTT: 0.020, Loss: 0.001, BufBytes: 50 * netem.KB, Seed: 9})
		f := r.AddFlow(FlowSpec{Proto: "pcc", FlowKB: 64})
		r.Run(2)
		if f.GoodputMbps(2) <= 0 {
			t.Fatal("trial produced no goodput")
		}
	}
	trial() // cold build
	trial() // grow retained storage to steady state
	avg := testing.AllocsPerRun(5, trial)
	t.Logf("warm dumbbell trial: %.0f allocs", avg)
	if avg > steadyAllocBudget {
		t.Errorf("warm dumbbell trial allocates %.0f objects, budget %d", avg, steadyAllocBudget)
	}
}

// TestArenaSteadyStateAllocsTopology pins the same bound for a 3-hop
// routed-topology runner with a multi-hop route and an ACK delay hop.
func TestArenaSteadyStateAllocsTopology(t *testing.T) {
	ts := new(TrialScratch)
	spec := func() TopologySpec {
		s := TopologySpec{Seed: 11}
		for i := 0; i < 3; i++ {
			s.Links = append(s.Links, LinkSpec{
				Name: hopName(i), From: fmt.Sprintf("n%d", i), To: fmt.Sprintf("n%d", i+1),
				RateMbps: 50, Delay: 0.002, BufBytes: 100 * netem.KB,
			})
		}
		return s
	}
	fwd := []netem.HopSpec{netem.DelayHop(0.001), netem.LinkHop(hopName(0)), netem.LinkHop(hopName(1)), netem.LinkHop(hopName(2))}
	rev := []netem.HopSpec{netem.DelayHop(0.007)}
	trial := func() {
		r := ts.TopologyRunner("3hop", spec())
		f := r.AddFlow(FlowSpec{Proto: "pcc", FlowKB: 64, FwdRoute: fwd, RevRoute: rev})
		r.Run(2)
		if f.GoodputMbps(2) <= 0 {
			t.Fatal("trial produced no goodput")
		}
	}
	trial()
	trial()
	avg := testing.AllocsPerRun(5, trial)
	t.Logf("warm 3-hop trial: %.0f allocs", avg)
	if avg > steadyAllocBudget {
		t.Errorf("warm 3-hop trial allocates %.0f objects, budget %d", avg, steadyAllocBudget)
	}
}

// TestArenaSteadyStateAllocsSharded pins the warm-trial budget on the shard
// axis: a sharded widechain trial reuses its shard group, per-shard engines,
// pools and arenas, and the mailbox merge scratch across trials, so
// steady-state trials stay within the same budget as single-engine runners
// (the per-trial cost is the spec/route assembly, not the sharding).
func TestArenaSteadyStateAllocsSharded(t *testing.T) {
	ts := new(TrialScratch)
	trial := func() {
		if g := RunWideChainTrial2(ts); g <= 0 {
			t.Fatal("trial produced no goodput")
		}
	}
	trial() // cold build (engines, workers, topology, flows)
	trial() // grow retained storage to steady state
	avg := testing.AllocsPerRun(5, trial)
	t.Logf("warm sharded widechain trial: %.0f allocs", avg)
	if avg > steadyAllocBudget {
		t.Errorf("warm sharded trial allocates %.0f objects, budget %d", avg, steadyAllocBudget)
	}
	if r := ts.runners["t\x004/1/pcc/2"]; r == nil || r.Group == nil {
		t.Fatal("trial did not run sharded; the budget above measured the wrong path")
	}
}

// RunWideChainTrial2 is the alloc test's small sharded trial: 4 hops, one
// cross flow per hop, 2 shards, 2 simulated seconds.
func RunWideChainTrial2(ts *TrialScratch) float64 {
	_, long, _ := wideChainTrial(ts, 4, 1, "pcc", 2.0, 13, 2)
	return long.WindowMbps(0.4, 2.0)
}

// TestSeriesMbpsIntoReuses pins the scratch-reusing series path: 0
// allocations once the destination has capacity, identical values to the
// allocating path.
func TestSeriesMbpsIntoReuses(t *testing.T) {
	t.Parallel()
	r := NewRunner(PathSpec{RateMbps: 20, RTT: 0.020, BufBytes: 50 * netem.KB, Seed: 3})
	f := r.AddFlow(FlowSpec{Proto: "pcc", Bucket: 0.5})
	r.Run(5)
	want := f.SeriesMbps()
	if len(want) == 0 {
		t.Fatal("no series")
	}
	buf := make([]float64, 0, len(want)+8)
	if avg := testing.AllocsPerRun(10, func() {
		buf = f.SeriesMbpsInto(buf)
	}); avg != 0 {
		t.Errorf("SeriesMbpsInto with warm scratch allocates %.1f objects, want 0", avg)
	}
	got := f.SeriesMbpsInto(buf)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("series[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
