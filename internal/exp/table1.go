package exp

import (
	"fmt"

	"pcc/internal/netem"
)

// interDCPair is one GENI site pair from Table 1 with its measured RTT.
type interDCPair struct {
	Name string
	RTT  float64 // seconds
}

// table1Pairs are the paper's nine transmission pairs.
var table1Pairs = []interDCPair{
	{"GPO->NYSERNet", 0.0121},
	{"GPO->Missouri", 0.0465},
	{"GPO->Illinois", 0.0354},
	{"NYSERNet->Missouri", 0.0474},
	{"Wisconsin->Illinois", 0.00901},
	{"GPO->Wisc", 0.0380},
	{"NYSERNet->Wisc", 0.0383},
	{"Missouri->Wisc", 0.0209},
	{"NYSERNet->Illinois", 0.0361},
}

// RunTable1 reproduces Table 1 (§4.1.2): inter-data-center transfers over
// 800 Mbps reserved-bandwidth paths. The reservation's rate limiter has a
// small buffer (here 75 KB — a fraction of each path's BDP), which is the
// paper's explanation for TCP's collapse; PCC and SABUL track the limit.
func RunTable1(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(100, 10, scale)
	protos := []string{"pcc", "sabul", "cubic", "illinois"}

	rep := &Report{
		ID:     "table1",
		Title:  "inter-data-center, 800 Mbps reserved paths with small-buffer rate limiter",
		Header: append([]string{"pair", "RTT_ms"}, protos...),
	}
	tputs := RunPointsScratch(len(table1Pairs)*len(protos), func(i int, ts *TrialScratch) float64 {
		pair := table1Pairs[i/len(protos)]
		path := PathSpec{RateMbps: 800, RTT: pair.RTT, BufBytes: 75 * netem.KB, Seed: seed + int64(i/len(protos))}
		return runSingle(ts, path, protos[i%len(protos)], dur, nil)
	})
	var sumPCC, sumIll float64
	var maxRatio float64
	for i, pair := range table1Pairs {
		row := []string{pair.Name, f1(pair.RTT * 1e3)}
		var pccT, illT float64
		for pi, proto := range protos {
			tput := tputs[i*len(protos)+pi]
			row = append(row, fmt.Sprintf("%.0f", tput))
			switch proto {
			case "pcc":
				pccT = tput
			case "illinois":
				illT = tput
			}
		}
		sumPCC += pccT
		sumIll += illT
		if illT > 0 && pccT/illT > maxRatio {
			maxRatio = pccT / illT
		}
		rep.Rows = append(rep.Rows, row)
	}
	if sumIll > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("PCC vs Illinois: %.1fx on average, up to %.1fx (paper: 5.2x avg, up to 7.5x)",
			sumPCC/sumIll, maxRatio))
	}
	return rep
}
