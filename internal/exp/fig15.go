package exp

import (
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/netem"
	"pcc/internal/workload"
)

// RunFig15 reproduces Fig. 15 (§4.3.2): flow completion time for short
// flows. 100 KB flows arrive as a Poisson process on a 15 Mbps / 60 ms
// path, with the arrival rate chosen to hit a target utilization; the
// figure reports median/mean/95th-percentile FCT for PCC vs TCP. PCC's
// TCP-like startup keeps its short-flow FCT comparable.
func RunFig15(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(240, 60, scale)
	loads := []float64{0.05, 0.15, 0.25, 0.35, 0.50, 0.65, 0.75}
	protos := []string{"pcc", "newreno"}
	const flowKB = 100

	rep := &Report{
		ID:     "fig15",
		Title:  "short-flow FCT (100 KB flows, 15 Mbps, 60 ms): Poisson arrivals at varying load",
		Header: []string{"load", "proto", "flows", "median_ms", "mean_ms", "p95_ms"},
	}
	allFCTs := RunPointsScratch(len(loads)*len(protos), func(i int, ts *TrialScratch) []float64 {
		return shortFlowFCTs(ts, protos[i%len(protos)], loads[i/len(protos)], flowKB, dur, seed)
	})
	var sorted []float64 // one sort per cell serves median and p95
	for li, load := range loads {
		for pi, proto := range protos {
			fcts := allFCTs[li*len(protos)+pi]
			if len(fcts) == 0 {
				rep.Rows = append(rep.Rows, []string{f2(load), proto, "0", "-", "-", "-"})
				continue
			}
			sorted = metrics.SortInto(sorted, fcts)
			rep.Rows = append(rep.Rows, []string{
				f2(load), proto, fmt.Sprintf("%d", len(fcts)),
				f1(metrics.PercentileSorted(sorted, 50) * 1e3),
				f1(metrics.Mean(fcts) * 1e3),
				f1(metrics.PercentileSorted(sorted, 95) * 1e3),
			})
		}
	}
	rep.Notes = append(rep.Notes, "paper: PCC matches TCP's median and 95th-percentile FCT (95th at 75% load ~20% longer)")
	return rep
}

// shortFlowFCTs runs the Poisson short-flow workload and returns the
// completion times (seconds) of all flows that finished.
func shortFlowFCTs(ts *TrialScratch, proto string, load float64, flowKB int, dur float64, seed int64) []float64 {
	capacity := netem.Mbps(15)
	arrivalRate := load * capacity / float64(flowKB*1000) // flows per second
	r := ts.Runner(proto, PathSpec{RateMbps: 15, RTT: 0.060, BufBytes: 120 * netem.KB, Seed: seed})
	rng := r.NextRand()

	var fcts []float64
	workload.PoissonArrivals(r.Eng, rng, arrivalRate, dur, func(i int) {
		start := r.Eng.Now()
		flow := r.AddFlow(FlowSpec{Proto: proto, FlowKB: flowKB, StartAt: start})
		if flow.RS != nil {
			flow.RS.OnDone = func(now float64) {
				flow.DoneAt = now
				fcts = append(fcts, now-start)
			}
		} else {
			flow.WS.OnDone = func(now float64) {
				flow.DoneAt = now
				fcts = append(fcts, now-start)
			}
		}
	})
	// Drain stragglers after the arrival window.
	r.Run(dur + 30)
	return fcts
}
