package exp

import (
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/netem"
)

// RunPartition ("partition") cuts and heals a bottleneck inside a 4-hop
// parking lot: at 35% of the run both directions of hop 1 (f1/b1) go down —
// a routing partition isolating the long flow's path while the other hops
// keep their cross traffic — and at 55% the partition heals. The long flow
// and the cut hop's cross flow both see a total outage (data and ACK paths
// severed at once), while the remaining hops stay loaded. Re-convergence is
// measured on the cut hop's cross flow — the direct victim running near link
// rate before the cut, so "time to regain 80% of the pre-partition rate" is
// a sharp signal — and Jain fairness across the per-hop cross flows over the
// final window checks that a hard partition does not leave the
// utility-driven allocation (§2.2) stuck in an unfair state.
func RunPartition(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(40, 10, scale)
	protos := []string{"pcc", "cubic"}
	shards := Shards()
	cutAt, healAt := 0.35*dur, 0.55*dur

	rep := &Report{
		ID: "partition",
		Title: fmt.Sprintf("partition and heal hop 1 of a 4-hop parking lot (cut %.1fs, heal %.1fs)",
			cutAt, healAt),
		Header: []string{"proto", "victim_Mbps", "ref_Mbps", "reconverge_s", "jain_final"},
	}
	type ptResult struct {
		row   []string
		notes []string
	}
	results := RunPointsScratch(len(protos), func(i int, ts *TrialScratch) ptResult {
		proto := protos[i]
		r, _, cross := partitionTrial(ts, proto, dur, cutAt, healAt, TrialSeed(seed, i), shards)
		victim := cross[1] // the cross flow whose hop gets cut

		const bucket = 0.1
		ref := victim.WindowMbps(0.1*dur, cutAt)
		series := ts.f64[:0]
		series = victim.SeriesMbpsInto(series)
		rec := recoveryAfter(series, bucket, healAt, 0.8*ref)

		final := series[:0]
		for _, c := range cross {
			final = append(final, c.WindowMbps(0.8*dur, dur))
		}
		jain := metrics.JainIndex(final)
		ts.f64 = final

		res := ptResult{row: []string{
			proto,
			f1(victim.WindowMbps(0.1*dur, dur)), f1(ref), fmtRecovery(rec), f3(jain),
		}}
		if proto == "pcc" {
			res.notes = r.FaultStatsNotesInto(nil)
		}
		return res
	})
	for _, res := range results {
		rep.Rows = append(rep.Rows, res.row)
		rep.Notes = append(rep.Notes, res.notes...)
	}
	rep.Notes = append(rep.Notes,
		"ref_Mbps: cut-hop cross-flow goodput before the cut; reconverge_s: time after the heal to reach 80% of ref; jain_final: fairness across the per-hop cross flows over the last 20% of the run",
		"the partition severs hop 1 in both directions, so the long flow loses data and ACK paths at once; hops 0/2/3 keep serving their cross flows throughout")
	return rep
}

// partitionTrial builds and runs one partition trial: a 4-hop parking lot
// (100 Mbps forward bottlenecks, 1 Gbps reverse links, heterogeneous 4.0–5.2
// ms hop delays) with one long flow over the chain and one cross flow per
// hop, plus a Partition/Heal event pair cutting f1 and b1. Only n1–n2 is
// pinned together by the fault, so the topology still splits into four
// shards.
func partitionTrial(ts *TrialScratch, proto string, dur, cutAt, healAt float64, seed int64, shards int) (*Runner, *Flow, []*Flow) {
	ts.Stamp("partition", proto, seed)
	const (
		nHops    = 4
		rateMbps = 100
		revMbps  = 1000
		accessD  = 0.002
	)
	hopDelay := func(i int) float64 { return 0.004 + 0.0003*float64(i%5) }
	cutLinks := []string{fwdName(1), revName(1)}
	spec := TopologySpec{
		Seed:   seed,
		Shards: shards,
		Faults: &netem.FaultSchedule{Events: []netem.FaultEvent{
			{At: cutAt, Kind: netem.FaultPartition, Links: cutLinks},
			{At: healAt, Kind: netem.FaultHeal, Links: cutLinks},
		}},
	}
	for i := 0; i < nHops; i++ {
		spec.Links = append(spec.Links,
			LinkSpec{
				Name: fwdName(i), From: nodeName(i), To: nodeName(i + 1),
				RateMbps: rateMbps, Delay: hopDelay(i), BufBytes: 250 * netem.KB,
			},
			LinkSpec{
				Name: revName(i), From: nodeName(i + 1), To: nodeName(i),
				RateMbps: revMbps, Delay: hopDelay(i), BufBytes: 250 * netem.KB,
			})
	}
	r := ts.TopologyRunner(fmt.Sprintf("part/%s/%d", proto, shards), spec)

	longFwd := []netem.HopSpec{netem.DelayHop(accessD)}
	for i := 0; i < nHops; i++ {
		longFwd = append(longFwd, netem.LinkHop(fwdName(i)))
	}
	longRev := make([]netem.HopSpec, 0, nHops+1)
	for i := nHops - 1; i >= 0; i-- {
		longRev = append(longRev, netem.LinkHop(revName(i)))
	}
	longRev = append(longRev, netem.DelayHop(accessD))
	long := r.AddFlow(FlowSpec{Proto: proto, FwdRoute: longFwd, RevRoute: longRev, Bucket: 0.1})

	cross := make([]*Flow, 0, nHops)
	for i := 0; i < nHops; i++ {
		cross = append(cross, r.AddFlow(FlowSpec{
			Proto:    proto,
			FwdRoute: []netem.HopSpec{netem.DelayHop(accessD), netem.LinkHop(fwdName(i))},
			RevRoute: []netem.HopSpec{netem.LinkHop(revName(i)), netem.DelayHop(accessD)},
			StartAt:  0.05 + 0.013*float64(i),
			Bucket:   0.1,
		}))
	}

	r.Run(dur)
	return r, long, cross
}
