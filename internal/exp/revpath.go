package exp

import (
	"fmt"

	"pcc/internal/netem"
)

// RunRevPath ("revpath") exercises what the hardwired dumbbell could never
// express: a congested acknowledgment path. Two opposing flows share an
// asymmetric link pair (100 Mbps forward, 10 Mbps back — the classic
// ADSL-style shape): flow A→B sends data on the fat link and its ACKs
// return over the thin one, while flow B→A's data saturates that same thin
// link and its ACKs ride the fat one. Each flow's data therefore queues
// behind the other flow's ACK stream in the same drop-tail buffer. The
// driver measures every flow solo and then duplex: the thin-link flow loses
// the capacity the opposing ACK stream consumes (~3 Mbps at full forward
// rate), and the fat-link flow is depressed by ACK queueing delay and ACK
// drops on the saturated reverse bottleneck.
func RunRevPath(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(90, 30, scale)
	protos := []string{"pcc", "cubic", "newreno"}

	rep := &Report{
		ID:     "revpath",
		Title:  "congested reverse path (100 Mbps / 10 Mbps asymmetric pair, data vs opposing ACKs)",
		Header: []string{"proto", "fwd_solo", "fwd_duplex", "rev_solo", "rev_duplex", "fwd_ratio", "rev_ratio"},
	}
	type rpResult struct {
		fwd, rev float64
		notes    []string
	}
	// Three runs per protocol: forward flow alone, reverse flow alone, both.
	results := RunPointsScratch(len(protos)*3, func(i int, ts *TrialScratch) rpResult {
		proto := protos[i/3]
		mode := i % 3 // 0: fwd solo, 1: rev solo, 2: duplex
		// Keyed by (proto, mode): each mode has a different flow/route
		// structure on the same link pair.
		r := revPathRunner(ts, fmt.Sprintf("%s/%d", proto, mode), TrialSeed(seed, i))
		var fwd, rev *Flow
		if mode != 1 {
			fwd = r.AddFlow(FlowSpec{
				Proto:    proto,
				FwdRoute: []netem.HopSpec{netem.LinkHop("fat")},
				RevRoute: []netem.HopSpec{netem.LinkHop("thin")},
				Bucket:   1,
			})
		}
		if mode != 0 {
			rev = r.AddFlow(FlowSpec{
				Proto:    proto,
				FwdRoute: []netem.HopSpec{netem.LinkHop("thin")},
				RevRoute: []netem.HopSpec{netem.LinkHop("fat")},
				Bucket:   1,
			})
		}
		r.Run(dur)
		var res rpResult
		if fwd != nil {
			res.fwd = fwd.WindowMbps(0.2*dur, dur)
		}
		if rev != nil {
			res.rev = rev.WindowMbps(0.2*dur, dur)
		}
		if proto == "pcc" && mode == 2 {
			res.notes = r.LinkStatsNotes()
		}
		return res
	})
	for pi, proto := range protos {
		fwdSolo := results[pi*3].fwd
		revSolo := results[pi*3+1].rev
		fwdDup := results[pi*3+2].fwd
		revDup := results[pi*3+2].rev
		rep.Rows = append(rep.Rows, []string{
			proto, f1(fwdSolo), f1(fwdDup), f1(revSolo), f1(revDup),
			ratioStr(fwdDup, fwdSolo), ratioStr(revDup, revSolo),
		})
		rep.Notes = append(rep.Notes, results[pi*3+2].notes...)
	}
	rep.Notes = append(rep.Notes,
		"solo: the flow runs alone (its ACK link is idle); duplex: both directions active, data shares a queue with opposing ACKs",
		"rev_ratio < 1: the thin-link flow cedes the bandwidth the opposing ACK stream occupies; fwd_ratio < 1: ACK queueing/drops on the saturated thin link throttle the fat-link flow")
	return rep
}

// revPathRunner builds the asymmetric two-node topology: a 100 Mbps "fat"
// link A→B and a 10 Mbps "thin" link B→A, 10 ms propagation each way.
func revPathRunner(ts *TrialScratch, key string, seed int64) *Runner {
	return ts.TopologyRunner(key, TopologySpec{
		Seed: seed,
		Links: []LinkSpec{
			{Name: "fat", From: "A", To: "B", RateMbps: 100, Delay: 0.010, BufBytes: 250 * netem.KB},
			{Name: "thin", From: "B", To: "A", RateMbps: 10, Delay: 0.010, BufBytes: 32 * netem.KB},
		},
	})
}

// ratioStr renders a/b ("-" when undefined).
func ratioStr(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return f2(a / b)
}
