package exp

import (
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/netem"
)

// RunFig8 reproduces Fig. 8 (§4.1.5): RTT fairness. A short-RTT (10 ms)
// flow competes with a long-RTT flow (20–100 ms) on a shared 100 Mbps
// bottleneck whose buffer equals the short flow's BDP. The long flow starts
// 5 s early; the metric is longTput/shortTput (1.0 = perfectly fair). PCC's
// convergence depends on utility, not on control-cycle length, so it should
// stay near 1.
func RunFig8(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(500, 60, scale)
	longRTTs := []float64{0.020, 0.040, 0.060, 0.080, 0.100}
	protos := []string{"pcc", "cubic", "newreno"}

	rep := &Report{
		ID:     "fig8",
		Title:  "RTT fairness (100 Mbps shared, short flow 10 ms): long/short throughput ratio",
		Header: append([]string{"long_RTT_ms"}, protos...),
	}
	shortBDP := int(netem.Mbps(100) * 0.010)
	ratios := RunPointsScratch(len(longRTTs)*len(protos), func(i int, ts *TrialScratch) float64 {
		r := ts.Runner(protos[i%len(protos)], PathSpec{RateMbps: 100, RTT: 0.010, BufBytes: shortBDP, Seed: seed})
		long := r.AddFlow(FlowSpec{Proto: protos[i%len(protos)], RTT: longRTTs[i/len(protos)], StartAt: 0, Bucket: 1})
		short := r.AddFlow(FlowSpec{Proto: protos[i%len(protos)], RTT: 0.010, StartAt: 5, Bucket: 1})
		r.Run(5 + dur)
		lt := long.WindowMbps(5, 5+dur)
		st := short.WindowMbps(5, 5+dur)
		if st <= 0 {
			return 0
		}
		return lt / st
	})
	for li, lr := range longRTTs {
		row := []string{f1(lr * 1e3)}
		for pi := range protos {
			row = append(row, f2(ratios[li*len(protos)+pi]))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "1.00 = RTT-fair; paper: PCC near 1 across the sweep, New Reno far below")
	return rep
}

// RunFig12 reproduces Fig. 12 (§4.2.1): four flows starting 500 s apart on
// a 100 Mbps / 30 ms dumbbell with a BDP buffer. It reports each phase's
// per-flow mean rate and the mean per-flow standard deviation — PCC
// converges to the equal share with far lower variance than CUBIC.
func RunFig12(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	stagger := scaledDur(500, 30, scale)
	protos := []string{"pcc", "cubic"}

	rep := &Report{
		ID:     "fig12",
		Title:  "convergence of 4 staggered flows (100 Mbps, 30 ms, BDP buffer)",
		Header: []string{"proto", "phase(n_flows)", "mean_rates_Mbps", "mean_stddev_Mbps", "jain"},
	}
	protoRows := RunPointsScratch(len(protos), func(pi int, ts *TrialScratch) [][]string {
		proto := protos[pi]
		r := ts.Runner(proto, PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 375 * netem.KB, Seed: seed})
		flows := make([]*Flow, 4)
		for i := range flows {
			flows[i] = r.AddFlow(FlowSpec{Proto: proto, StartAt: float64(i) * stagger, Bucket: 1})
		}
		total := 4 * stagger
		r.Run(total)
		// Phase k (k = 1..4) is [k-1, k)*stagger with k active flows; skip
		// the first 20% of each phase as transient.
		var rows [][]string
		for k := 1; k <= 4; k++ {
			from := float64(k-1)*stagger + 0.2*stagger
			to := float64(k) * stagger
			var means, stds []float64
			for i := 0; i < k; i++ {
				series := sliceSeries(flows[i].SeriesMbps(), from, to, 1)
				means = append(means, metrics.Mean(series))
				stds = append(stds, metrics.StdDev(series))
			}
			rows = append(rows, []string{
				proto,
				fmt.Sprintf("%d", k),
				joinF1(means),
				f2(metrics.Mean(stds)),
				f3(metrics.JainIndex(means)),
			})
		}
		return rows
	})
	for _, rows := range protoRows {
		rep.Rows = append(rep.Rows, rows...)
	}
	rep.Notes = append(rep.Notes, "paper: PCC flows hold steady equal shares; CUBIC shows high variance and short-term unfairness")
	return rep
}

// RunFig13 reproduces Fig. 13 (§4.2.1): Jain's fairness index at varying
// time scales for 2/3/4 concurrent flows, PCC vs CUBIC vs New Reno.
func RunFig13(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(500, 120, scale)
	protos := []string{"pcc", "cubic", "newreno"}
	timescales := []int{1, 5, 15, 30, 60, 90, 120, 180, 210}

	rep := &Report{
		ID:     "fig13",
		Title:  "Jain's fairness index vs time scale (100 Mbps, 30 ms)",
		Header: append([]string{"proto", "flows"}, intHeaders(timescales, "s")...),
	}
	flowCounts := []int{2, 3, 4}
	rows := RunPointsScratch(len(protos)*len(flowCounts), func(i int, ts *TrialScratch) []string {
		proto := protos[i/len(flowCounts)]
		nf := flowCounts[i%len(flowCounts)]
		r := ts.Runner(proto, PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 375 * netem.KB, Seed: seed})
		flows := make([]*Flow, nf)
		for i := range flows {
			flows[i] = r.AddFlow(FlowSpec{Proto: proto, StartAt: 0, Bucket: 1})
		}
		r.Run(dur)
		// Skip the first 30 s (or 20%) as convergence transient.
		warm := 0.2 * dur
		series := make([][]float64, nf)
		for i, f := range flows {
			series[i] = sliceSeries(f.SeriesMbps(), warm, dur, 1)
		}
		row := []string{proto, fmt.Sprintf("%d", nf)}
		for _, ts := range timescales {
			if ts > int(dur-warm) {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(metrics.WindowedJain(series, ts)))
		}
		return row
	})
	rep.Rows = append(rep.Rows, rows...)
	rep.Notes = append(rep.Notes, "paper: PCC above 0.99 at every time scale; CUBIC/New Reno notably lower at short scales")
	return rep
}

// sliceSeries cuts a 1 Hz series to [from, to) seconds.
func sliceSeries(series []float64, from, to, bucket float64) []float64 {
	lo := int(from / bucket)
	hi := int(to / bucket)
	if lo < 0 {
		lo = 0
	}
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return nil
	}
	return series[lo:hi]
}

func joinF1(xs []float64) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "/"
		}
		s += f1(x)
	}
	return s
}

func intHeaders(xs []int, suffix string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d%s", x, suffix)
	}
	return out
}
