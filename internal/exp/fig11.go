package exp

import (
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/netem"
	"pcc/internal/sim"
)

// Fig11Series carries the rate-tracking data behind the Fig. 11 plot:
// optimal (available bandwidth) and achieved per-second goodput.
type Fig11Series struct {
	Optimal  []float64 // Mbps per second
	Achieved map[string][]float64
}

// RunFig11 reproduces Fig. 11 (§4.1.7): a rapidly changing network whose
// bandwidth (10–100 Mbps), RTT (10–100 ms) and loss (0–1%) are all redrawn
// every 5 s. The paper reports PCC at 83% of optimal over 500 s, 14x CUBIC
// and 5.6x Illinois.
func RunFig11(scale float64, seed int64) (*Report, *Fig11Series) {
	scale = clampScale(scale)
	dur := scaledDur(500, 100, scale)
	protos := []string{"pcc", "cubic", "illinois"}
	spec := netem.VaryingSpec{
		Period:  5,
		RateMin: netem.Mbps(10), RateMax: netem.Mbps(100),
		RTTMin: 0.010, RTTMax: 0.100,
		LossMin: 0, LossMax: 0.01,
	}

	type fig11Trial struct {
		goodput  float64
		achieved []float64
		trace    []netem.Sample
	}
	trialOut := RunPointsScratch(len(protos), func(pi int, ts *TrialScratch) fig11Trial {
		proto := protos[pi]
		// Same seed → identical sequence of drawn network conditions for
		// every protocol.
		r := ts.Runner(proto, PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 150 * netem.KB, Seed: seed})
		f := r.AddFlow(FlowSpec{Proto: proto, Bucket: 1, TraceRate: proto == "pcc"})
		// Derive the variation stream from the experiment seed alone so
		// every protocol faces the identical sequence of conditions.
		varyRng := sim.NewSeeds(seed ^ 0x5eed).NextRand()
		trace := netem.StartVarying(r.Eng, r.Net, f.ID, spec, varyRng, dur)
		r.Run(dur)
		return fig11Trial{goodput: f.GoodputMbps(dur), achieved: f.SeriesMbps(), trace: *trace}
	})

	series := &Fig11Series{Achieved: map[string][]float64{}}
	results := map[string]float64{}
	var optMean float64
	for pi, proto := range protos {
		results[proto] = trialOut[pi].goodput
		series.Achieved[proto] = trialOut[pi].achieved
		if series.Optimal == nil {
			// Expand the piecewise-constant trace to 1 Hz.
			trace := trialOut[pi].trace
			opt := make([]float64, int(dur))
			ti := 0
			for s := range opt {
				for ti+1 < len(trace) && trace[ti+1].At <= float64(s) {
					ti++
				}
				opt[s] = netem.ToMbps(trace[ti].Rate) * (1 - trace[ti].Loss)
			}
			series.Optimal = opt
			optMean = metrics.Mean(opt)
		}
	}

	rep := &Report{
		ID:     "fig11",
		Title:  fmt.Sprintf("rapidly changing network over %.0f s (bw 10-100 Mbps, RTT 10-100 ms, loss 0-1%%, redrawn every 5 s)", dur),
		Header: []string{"proto", "throughput_Mbps", "frac_of_optimal", "pcc_ratio"},
	}
	pccT := results["pcc"]
	for _, proto := range protos {
		t := results[proto]
		ratio := "-"
		if proto != "pcc" && t > 0 {
			ratio = f1(pccT / t)
		}
		rep.Rows = append(rep.Rows, []string{proto, f2(t), f2(t / optMean), ratio})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("mean available bandwidth %.1f Mbps; paper: PCC 83%% of optimal, 14x CUBIC, 5.6x Illinois", optMean))
	return rep, series
}
