package exp

import (
	"fmt"

	"pcc/internal/core"
	"pcc/internal/metrics"
	"pcc/internal/netem"
)

// TradeoffPoint is one point in the Fig. 16 stability-reactiveness space.
type TradeoffPoint struct {
	Label       string
	ConvergeSec float64 // forward-looking convergence time of the new flow
	StdDevMbps  float64 // throughput std-dev for 60 s after convergence
}

// RunFig16 reproduces Fig. 16 (§4.2.2): the convergence-time /
// rate-variance trade-off. Flow A occupies a 100 Mbps / 30 ms path; flow B
// joins at t=20 s. Convergence time is the first t after which B stays
// within ±25% of its 50 Mbps fair share for 5 s; stability is B's
// throughput std-dev over the following 60 s. PCC traces a curve through
// the space by sweeping T_m and ε_min, with and without RCTs; the TCP
// variants are fixed points.
func RunFig16(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	trials := int(5 * scale)
	if trials < 1 {
		trials = 1
	}

	type cfg struct {
		label string
		proto string
		pcc   *core.Config
	}
	var cfgs []cfg
	// PCC sweep: fix ε=0.01, vary T_m; then fix T_m=1.0·RTT, vary ε.
	for _, tm := range []float64{4.8, 3.0, 2.0, 1.0} {
		c := pccTradeoffConfig(tm, 0.01, false)
		cfgs = append(cfgs, cfg{fmt.Sprintf("pcc Tm=%.1fRTT eps=0.01", tm), "pcc", &c})
	}
	for _, eps := range []float64{0.02, 0.03, 0.05} {
		c := pccTradeoffConfig(1.0, eps, false)
		cfgs = append(cfgs, cfg{fmt.Sprintf("pcc Tm=1.0RTT eps=%.2f", eps), "pcc", &c})
	}
	// The no-RCT ablation at the "sweet spot" settings.
	for _, eps := range []float64{0.01, 0.02} {
		c := pccTradeoffConfig(1.0, eps, true)
		cfgs = append(cfgs, cfg{fmt.Sprintf("pcc-noRCT Tm=1.0RTT eps=%.2f", eps), "pcc", &c})
	}
	for _, proto := range []string{"cubic", "newreno", "vegas", "bic", "hybla", "westwood"} {
		cfgs = append(cfgs, cfg{proto, proto, nil})
	}

	rep := &Report{
		ID:     "fig16",
		Title:  "stability vs reactiveness (100 Mbps, 30 ms; flow B joins at 20 s)",
		Header: []string{"config", "convergence_s", "stddev_Mbps"},
	}
	type trialResult struct{ conv, std float64 }
	results := RunPointsScratch(len(cfgs)*trials, func(i int, ts *TrialScratch) trialResult {
		c := cfgs[i/trials]
		conv, std := tradeoffTrial(ts, c.proto, c.pcc, seed+int64(i%trials)*977)
		return trialResult{conv: conv, std: std}
	})
	for ci, c := range cfgs {
		var convs, stds []float64
		for trial := 0; trial < trials; trial++ {
			res := results[ci*trials+trial]
			if res.conv >= 0 {
				convs = append(convs, res.conv)
				stds = append(stds, res.std)
			}
		}
		if len(convs) == 0 {
			rep.Rows = append(rep.Rows, []string{c.label, "no-convergence", "-"})
			continue
		}
		rep.Rows = append(rep.Rows, []string{c.label, f1(metrics.Mean(convs)), f2(metrics.Mean(stds))})
	}
	rep.Notes = append(rep.Notes,
		"paper: PCC's curve dominates the TCP points; RCT trades ~3% convergence time for ~35% variance reduction at Tm=1.0RTT eps=0.01")
	return rep
}

// pccTradeoffConfig builds a PCC config with a fixed MI length (in RTTs)
// and ε_min, optionally without RCTs.
func pccTradeoffConfig(tmRTT, eps float64, noRCT bool) core.Config {
	c := core.DefaultConfig(0.030)
	c.MIRttLo, c.MIRttHi = tmRTT, tmRTT
	c.EpsMin = eps
	c.EpsMax = 5 * eps
	c.NoRCT = noRCT
	return c
}

// tradeoffTrial runs one A/B contention trial, returning flow B's
// convergence time (seconds since its start; -1 if it never converges) and
// post-convergence std-dev (Mbps).
func tradeoffTrial(ts *TrialScratch, proto string, pcfg *core.Config, seed int64) (float64, float64) {
	const joinAt = 20.0
	r := ts.Runner(proto, PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 375 * netem.KB, Seed: seed})
	r.AddFlow(FlowSpec{Proto: proto, PCCConfig: pcfg, StartAt: 0, Bucket: 1})
	b := r.AddFlow(FlowSpec{Proto: proto, PCCConfig: pcfg, StartAt: joinAt, Bucket: 1})
	r.Run(joinAt + 160)

	ts.f64 = b.SeriesMbpsInto(ts.f64)
	series := ts.f64
	// Re-index so second 0 is flow B's start.
	off := int(joinAt)
	if off >= len(series) {
		return -1, 0
	}
	bSeries := series[off:]
	conv := metrics.ConvergenceTime(bSeries, 50, 5, 0.25)
	if conv < 0 {
		return -1, 0
	}
	from := int(conv)
	to := from + 60
	if to > len(bSeries) {
		to = len(bSeries)
	}
	if to-from < 10 {
		return -1, 0
	}
	return conv, metrics.StdDev(bSeries[from:to])
}
