package exp

import (
	"pcc/internal/core"
	"pcc/internal/netem"
)

// RunAblation quantifies the design choices DESIGN.md §4/§4b calls out, on
// the Fig. 7 lossy-link scenario (100 Mbps, 30 ms, 1% loss both ways) and
// the clean-link case:
//
//   - RCTs on/off (§2.1 "multiple randomized controlled trials"),
//   - the single-loss forgiveness in the safe utility,
//   - the Vivace gradient utility extension,
//   - ε granularity.
func RunAblation(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(100, 40, scale)

	type variant struct {
		label string
		loss  float64
		cfg   func() core.Config
	}
	base := func() core.Config { return core.DefaultConfig(0.030) }
	noForgive := func() core.Config {
		c := base()
		c.Utility = &core.SafeUtility{Alpha: 100, LossCap: 0.05, NoForgiveness: true}
		return c
	}
	noRCT := func() core.Config {
		c := base()
		c.NoRCT = true
		return c
	}
	bigEps := func() core.Config {
		c := base()
		c.EpsMin, c.EpsMax = 0.05, 0.05
		return c
	}
	vivace := func() core.Config {
		c := base()
		c.Utility = core.NewVivaceUtility()
		return c
	}

	variants := []variant{
		{"default (clean)", 0, base},
		{"default (1% loss)", 0.01, base},
		{"no-RCT (1% loss)", 0.01, noRCT},
		{"no-forgiveness (1% loss)", 0.01, noForgive},
		{"eps=0.05 (1% loss)", 0.01, bigEps},
		{"vivace utility (clean)", 0, vivace},
		{"vivace utility (1% loss)", 0.01, vivace},
	}

	rep := &Report{
		ID:     "ablation",
		Title:  "design-choice ablations on the Fig. 7 path (100 Mbps, 30 ms)",
		Header: []string{"variant", "goodput_Mbps", "reversions", "inconclusive"},
	}
	rep.Rows = RunPointsScratch(len(variants), func(i int, ts *TrialScratch) []string {
		v := variants[i]
		cfg := v.cfg()
		r := ts.Runner("pcc", PathSpec{RateMbps: 100, RTT: 0.030, Loss: v.loss, BufBytes: 375 * netem.KB, Seed: seed})
		f := r.AddFlow(FlowSpec{Proto: "pcc", PCCConfig: &cfg, RevLoss: v.loss})
		r.Run(dur)
		return []string{
			v.label,
			f2(f.GoodputMbps(dur)),
			f2(float64(f.PCC.Controller().Reversions())),
			f2(float64(f.PCC.Controller().Inconclusive())),
		}
	})
	rep.Notes = append(rep.Notes,
		"no-forgiveness shows the startup trap the loss de-noising fixes; no-RCT trades stability for speed (Fig. 16)")
	return rep
}
