package exp

import (
	"fmt"

	"pcc/internal/core"
	"pcc/internal/netem"
)

// runSingle runs one flow of the given protocol over the path for dur
// seconds and returns its goodput in Mbps. The runner comes from the
// worker's trial arena, keyed by protocol, so a sweep's repeated
// single-flow trials reuse one warm simulation per protocol.
func runSingle(ts *TrialScratch, path PathSpec, proto string, dur float64, util core.Utility) float64 {
	r := ts.Runner(proto, path)
	f := r.AddFlow(FlowSpec{Proto: proto, Utility: util})
	r.Run(dur)
	return f.GoodputMbps(dur)
}

// RunFig6 reproduces Fig. 6 (§4.1.3): an emulated satellite link — 42 Mbps,
// 800 ms RTT, 0.74% random loss — sweeping the bottleneck buffer from
// 1.5 KB to 1 MB. PCC should sit near capacity even with tiny buffers while
// Hybla/Illinois/CUBIC/New Reno collapse.
func RunFig6(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(100, 60, scale)
	buffers := []int{1500, 7500, 15 * netem.KB, 30 * netem.KB, 75 * netem.KB, 150 * netem.KB, 375 * netem.KB, 1000 * netem.KB}
	protos := []string{"pcc", "hybla", "illinois", "cubic", "newreno"}

	rep := &Report{
		ID:     "fig6",
		Title:  "satellite link (42 Mbps, 800 ms RTT, 0.74% loss): throughput vs buffer size",
		Header: append([]string{"buffer_KB"}, protos...),
	}
	tputs := RunPointsScratch(len(buffers)*len(protos), func(i int, ts *TrialScratch) float64 {
		path := PathSpec{RateMbps: 42, RTT: 0.8, Loss: 0.0074, BufBytes: buffers[i/len(protos)], Seed: seed}
		return runSingle(ts, path, protos[i%len(protos)], dur, nil)
	})
	var pccAt1MB, hyblaAt1MB float64
	for bi, buf := range buffers {
		row := []string{fmt.Sprintf("%.1f", float64(buf)/netem.KB)}
		for pi, proto := range protos {
			tput := tputs[bi*len(protos)+pi]
			row = append(row, f2(tput))
			if buf == 1000*netem.KB {
				switch proto {
				case "pcc":
					pccAt1MB = tput
				case "hybla":
					hyblaAt1MB = tput
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	if hyblaAt1MB > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("at 1 MB buffer: PCC %.1f Mbps vs Hybla %.1f Mbps (%.1fx; paper: 17x)",
			pccAt1MB, hyblaAt1MB, pccAt1MB/hyblaAt1MB))
	}
	return rep
}

// RunFig7 reproduces Fig. 7 (§4.1.4): random-loss resilience on a 100 Mbps,
// 30 ms link, sweeping loss 0–6% on both directions. PCC should hold >90%
// of achievable capacity to 1% loss; CUBIC collapses by 0.1%.
func RunFig7(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(100, 30, scale)
	losses := []float64{0, 0.001, 0.0025, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03, 0.04, 0.05, 0.06}
	protos := []string{"pcc", "illinois", "cubic"}

	rep := &Report{
		ID:     "fig7",
		Title:  "random loss (100 Mbps, 30 ms): throughput vs loss rate",
		Header: append(append([]string{"loss"}, protos...), "achievable"),
	}
	tputs := RunPointsScratch(len(losses)*len(protos), func(i int, ts *TrialScratch) float64 {
		loss := losses[i/len(protos)]
		path := PathSpec{RateMbps: 100, RTT: 0.030, Loss: loss, BufBytes: 375 * netem.KB, Seed: seed}
		// Loss applies on forward path; paper also injects reverse loss.
		r := ts.Runner(protos[i%len(protos)], path)
		f := r.AddFlow(FlowSpec{Proto: protos[i%len(protos)], RevLoss: loss})
		r.Run(dur)
		return f.GoodputMbps(dur)
	})
	var pccAt2, cubicAt2 float64
	for li, loss := range losses {
		row := []string{f3(loss)}
		for pi, proto := range protos {
			tput := tputs[li*len(protos)+pi]
			row = append(row, f2(tput))
			if loss == 0.02 {
				switch proto {
				case "pcc":
					pccAt2 = tput
				case "cubic":
					cubicAt2 = tput
				}
			}
		}
		row = append(row, f2(100*(1-loss)))
		rep.Rows = append(rep.Rows, row)
	}
	if cubicAt2 > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("at 2%% loss: PCC/CUBIC = %.1fx (paper: 37x)", pccAt2/cubicAt2))
	}
	return rep
}

// RunFig9 reproduces Fig. 9 (§4.1.6): shallow buffers on a 100 Mbps, 30 ms
// link, buffer swept from one packet to 1×BDP (375 KB). PCC needs ~6 MSS
// for 90% utilization; CUBIC and even paced New Reno need far more.
func RunFig9(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(100, 30, scale)
	buffers := []int{1500, 3000, 4500, 9000, 15 * netem.KB, 30 * netem.KB, 75 * netem.KB, 150 * netem.KB, 225 * netem.KB, 300 * netem.KB, 375 * netem.KB}
	protos := []string{"pcc", "pacing", "cubic"}

	rep := &Report{
		ID:     "fig9",
		Title:  "shallow buffers (100 Mbps, 30 ms): throughput vs buffer size",
		Header: append([]string{"buffer_KB"}, protos...),
	}
	tputs := RunPointsScratch(len(buffers)*len(protos), func(i int, ts *TrialScratch) float64 {
		path := PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: buffers[i/len(protos)], Seed: seed}
		return runSingle(ts, path, protos[i%len(protos)], dur, nil)
	})
	buf90 := map[string]float64{}
	for bi, buf := range buffers {
		row := []string{fmt.Sprintf("%.1f", float64(buf)/netem.KB)}
		for pi, proto := range protos {
			tput := tputs[bi*len(protos)+pi]
			row = append(row, f2(tput))
			if tput >= 90 {
				if _, ok := buf90[proto]; !ok {
					buf90[proto] = float64(buf) / netem.KB
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, proto := range protos {
		if b, ok := buf90[proto]; ok {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s reaches 90%% capacity with %.1f KB buffer", proto, b))
		} else {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s never reaches 90%% capacity in sweep", proto))
		}
	}
	return rep
}

// RunLossResilient reproduces §4.4.2: with fair queueing isolating flows, a
// PCC sender using u = T·(1−L) keeps near its achievable share under 10–50%
// random loss, while CUBIC gets essentially nothing.
func RunLossResilient(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(100, 30, scale)
	losses := []float64{0.10, 0.20, 0.30, 0.40, 0.50}

	rep := &Report{
		ID:     "loss50",
		Title:  "loss-resilient utility under FQ (100 Mbps, 30 ms): throughput vs heavy loss",
		Header: []string{"loss", "pcc_resilient", "cubic", "achievable", "pcc_frac_of_achievable"},
	}
	var ratioAt10 float64
	hlCfg := core.HeavyLossConfig(0.030)
	tputs := RunPointsScratch(len(losses)*2, func(i int, ts *TrialScratch) float64 {
		loss := losses[i/2]
		path := PathSpec{RateMbps: 100, RTT: 0.030, Loss: loss, BufBytes: 375 * netem.KB, QueueKind: "fq", Seed: seed}
		if i%2 == 0 {
			r := ts.Runner("pcc", path)
			pf := r.AddFlow(FlowSpec{Proto: "pcc", PCCConfig: &hlCfg})
			r.Run(dur)
			return pf.GoodputMbps(dur)
		}
		return runSingle(ts, path, "cubic", dur, nil)
	})
	for li, loss := range losses {
		pccT, cubicT := tputs[li*2], tputs[li*2+1]
		ach := 100 * (1 - loss)
		rep.Rows = append(rep.Rows, []string{
			f2(loss), f2(pccT), f2(cubicT), f2(ach), f3(pccT / ach),
		})
		if loss == 0.10 && cubicT > 0 {
			ratioAt10 = pccT / cubicT
		}
	}
	if ratioAt10 > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("at 10%% loss: PCC/CUBIC = %.0fx (paper: 151x)", ratioAt10))
	}
	return rep
}
