package exp

import (
	"sync"
	"testing"

	"pcc/internal/netem"
)

func TestRunPointsOrder(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 7, 32} {
		out := RunPointsWith(workers, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if got := RunPointsWith(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0 returned %d results", len(got))
	}
}

func TestRunTrialsPanicPropagates(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("panic in a trial must reach the caller, as in sequential execution")
		}
	}()
	RunTrialsWith(4, 16, func(i int) {
		if i == 11 {
			panic("boom")
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	// Not parallel: mutates the global override and the environment.
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("SetWorkers(3) → Workers() = %d", got)
	}
	SetWorkers(0)
	t.Setenv("PCC_PAR", "5")
	if got := Workers(); got != 5 {
		t.Fatalf("PCC_PAR=5 → Workers() = %d", got)
	}
	t.Setenv("PCC_PAR", "not-a-number")
	if got := Workers(); got < 1 {
		t.Fatalf("garbage PCC_PAR must fall back to GOMAXPROCS, got %d", got)
	}
	SetWorkers(2)
	if got := Workers(); got != 2 {
		t.Fatalf("explicit SetWorkers must beat PCC_PAR, got %d", got)
	}
}

// stressTrial runs one tiny self-contained simulation. Mixing protocols
// exercises rate-based and window-based senders, both queue families, and
// the per-runner packet pool.
func stressTrial(i int) float64 {
	protos := []string{"pcc", "cubic", "newreno", "sabul"}
	queues := []string{"droptail", "fq"}
	r := NewRunner(PathSpec{
		RateMbps:  20,
		RTT:       0.020,
		Loss:      0.001 * float64(i%3),
		BufBytes:  50 * netem.KB,
		QueueKind: queues[i%len(queues)],
		Seed:      TrialSeed(99, i),
	})
	f := r.AddFlow(FlowSpec{Proto: protos[i%len(protos)], FlowKB: 64})
	r.Run(2)
	return f.GoodputMbps(2)
}

// TestPoolStressTinyTrials pushes many tiny trials through a wide pool and
// checks the results bit-match a sequential run. Under -race (the CI race
// job runs this package in short mode) it doubles as the shared-state
// detector for the engine, netem, and the packet free lists.
func TestPoolStressTinyTrials(t *testing.T) {
	t.Parallel()
	trials := 96
	if testing.Short() {
		trials = 32
	}
	want := RunPointsWith(1, trials, stressTrial)
	for _, workers := range []int{4, 16} {
		got := RunPointsWith(workers, trials, stressTrial)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d trial %d: got %v, want %v (parallel run diverged)", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPoolConcurrentUse runs several pools at once — the situation of
// parallel t.Parallel tests each fanning out trials — to verify the pool
// itself keeps no shared state beyond the worker-count knob.
func TestPoolConcurrentUse(t *testing.T) {
	t.Parallel()
	const users = 4
	var wg sync.WaitGroup
	errs := make(chan string, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := RunPointsWith(4, 12, stressTrial)
			for i, v := range out {
				if v != stressTrial(i) {
					errs <- "concurrent pool user got divergent result"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
