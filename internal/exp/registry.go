package exp

import (
	"fmt"
	"sort"

	"pcc/internal/theory"
)

// Driver runs one experiment at the given scale and seed.
type Driver func(scale float64, seed int64) *Report

// drivers maps experiment IDs to their drivers.
var drivers = map[string]Driver{
	"fig5":      RunFig5,
	"fig6":      RunFig6,
	"fig7":      RunFig7,
	"fig8":      RunFig8,
	"fig9":      RunFig9,
	"fig10":     RunFig10,
	"fig11":     func(scale float64, seed int64) *Report { r, _ := RunFig11(scale, seed); return r },
	"fig12":     RunFig12,
	"fig13":     RunFig13,
	"fig14":     RunFig14,
	"fig15":     RunFig15,
	"fig16":     RunFig16,
	"fig17":     RunFig17,
	"table1":    RunTable1,
	"loss50":    RunLossResilient,
	"theory":    RunTheory,
	"ablation":  RunAblation,
	"linkflap":  RunLinkFlap,
	"parklot":   RunParkingLot,
	"partition": RunPartition,
	"revpath":   RunRevPath,
	"wan":       RunWAN,
	"mixmtu":    RunMixMTU,
	"widechain": RunWideChain,
}

// Run dispatches an experiment by ID.
func Run(id string, scale float64, seed int64) (*Report, error) {
	d, ok := drivers[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	return d(scale, seed), nil
}

// IDs lists all experiment identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(drivers))
	for id := range drivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunTheory validates Theorems 1 and 2 numerically (§2.2): for several n it
// locates the symmetric equilibrium, checks C < Σx̂ < 20C/19, runs the
// concurrent dynamics from a wildly unfair start, and verifies every sender
// lands inside (x̂(1−ε)², x̂(1+ε)²).
func RunTheory(scale float64, seed int64) *Report {
	rep := &Report{
		ID:     "theory",
		Title:  "Theorems 1 & 2: equilibrium existence, fairness bound, dynamics convergence",
		Header: []string{"n", "x_hat", "sum/C", "band_ok", "final_min", "final_max", "converged"},
	}
	const C = 100.0
	const eps = 0.01
	senderCounts := []int{2, 3, 4, 8, 16}
	rep.Rows = RunPoints(len(senderCounts), func(i int) []string {
		n := senderCounts[i]
		g := theory.NewGame(C, n)
		xh := g.Equilibrium(n, eps)
		sumRatio := xh * float64(n) / C
		bandOK := sumRatio > 1 && sumRatio < 20.0/19.0
		// Unfair start: sender 0 hogs, the rest trickle.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = C / float64(n) / 10
		}
		x0[0] = C * 0.9
		// Convergence is slowest for small n: most steps move all senders
		// in lockstep (sum oscillating around C) and differentiation only
		// happens inside the loss band, so give the dynamics ample steps.
		final := g.Dynamics(x0, eps, 60000)
		mn, mx := final[0], final[0]
		for _, v := range final {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		lo, hi := xh*(1-eps)*(1-eps), xh*(1+eps)*(1+eps)
		converged := mn >= lo && mx <= hi
		return []string{
			fmt.Sprintf("%d", n), f3(xh), f3(sumRatio),
			fmt.Sprintf("%v", bandOK), f3(mn), f3(mx), fmt.Sprintf("%v", converged),
		}
	})
	rep.Notes = append(rep.Notes, "band_ok: C < Σx̂ < 20C/19 (Theorem 1); converged: all senders in (x̂(1−ε)², x̂(1+ε)²) (Theorem 2)")
	return rep
}
