package exp

import (
	"context"
	"fmt"
	"sort"

	"pcc/internal/theory"
)

// Driver runs one experiment at the given scale and seed. This is the
// legacy driver shape: it has no cancellation point of its own and reports
// failures by panicking (which the pool types into *TrialPanicError /
// *TrialTimeoutError).
type Driver func(scale float64, seed int64) *Report

// DriverCtx is the context-aware driver shape: the driver threads ctx into
// the pool's Ctx variants so a cancelled context stops its sweep at the
// next trial boundary, returning a *SweepCancelledError (or the typed error
// of a failing trial) instead of panicking. Drivers migrate to this shape
// incrementally; legacy drivers are adapted via liftDriver.
type DriverCtx func(ctx context.Context, scale float64, seed int64) (*Report, error)

// liftDriver adapts a legacy Driver to the ctx-aware shape. The driver runs
// to completion once started — cancellation applies only at the call
// boundary — and typed trial failures escaping it as panics
// (*TrialPanicError, *TrialTimeoutError) are converted into returned
// errors; any other panic is a bug and propagates.
func liftDriver(d Driver) DriverCtx {
	return func(ctx context.Context, scale float64, seed int64) (rep *Report, err error) {
		if ctx.Err() != nil {
			cause := context.Cause(ctx)
			if cause == nil {
				cause = ctx.Err()
			}
			return nil, &SweepCancelledError{Completed: 0, Total: 1, Err: cause}
		}
		defer func() {
			switch r := recover().(type) {
			case nil:
			case *TrialPanicError:
				rep, err = nil, r
			case *TrialTimeoutError:
				rep, err = nil, r
			default:
				panic(r)
			}
		}()
		return d(scale, seed), nil
	}
}

// drivers maps experiment IDs to their drivers. Registration happens at
// init time (or, for tests and extensions, via Register before any
// concurrent Run/RunCtx calls); the map is read-only afterwards, so the
// serving layer may dispatch from many goroutines without locking.
var drivers = map[string]DriverCtx{
	"fig5":      liftDriver(RunFig5),
	"fig6":      liftDriver(RunFig6),
	"fig7":      liftDriver(RunFig7),
	"fig8":      liftDriver(RunFig8),
	"fig9":      liftDriver(RunFig9),
	"fig10":     liftDriver(RunFig10),
	"fig11":     liftDriver(func(scale float64, seed int64) *Report { r, _ := RunFig11(scale, seed); return r }),
	"fig12":     liftDriver(RunFig12),
	"fig13":     liftDriver(RunFig13),
	"fig14":     liftDriver(RunFig14),
	"fig15":     liftDriver(RunFig15),
	"fig16":     liftDriver(RunFig16),
	"fig17":     liftDriver(RunFig17),
	"table1":    liftDriver(RunTable1),
	"loss50":    liftDriver(RunLossResilient),
	"theory":    RunTheory,
	"ablation":  liftDriver(RunAblation),
	"linkflap":  liftDriver(RunLinkFlap),
	"parklot":   RunParkingLot,
	"partition": liftDriver(RunPartition),
	"revpath":   liftDriver(RunRevPath),
	"wan":       liftDriver(RunWAN),
	"mixmtu":    liftDriver(RunMixMTU),
	"widechain": liftDriver(RunWideChain),
}

// Register adds a legacy driver under a new ID. It is intended for tests
// and extensions, panics on a duplicate ID, and must complete before any
// concurrent Run/RunCtx calls (the registry is lock-free read-only at
// serving time).
func Register(id string, d Driver) { RegisterCtx(id, liftDriver(d)) }

// RegisterCtx is Register for context-aware drivers.
func RegisterCtx(id string, d DriverCtx) {
	if _, dup := drivers[id]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment id %q", id))
	}
	drivers[id] = d
}

// Run dispatches an experiment by ID. Trial panics and watchdog timeouts
// inside the driver's sweeps come back as typed errors (*TrialPanicError,
// *TrialTimeoutError) rather than panics.
func Run(id string, scale float64, seed int64) (*Report, error) {
	return RunCtx(context.Background(), id, scale, seed)
}

// RunCtx is Run with cancellation: ctx-aware drivers stop their sweep at
// the next trial boundary and return a *SweepCancelledError; legacy drivers
// honour ctx at the call boundary only.
func RunCtx(ctx context.Context, id string, scale float64, seed int64) (*Report, error) {
	d, ok := drivers[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	return d(ctx, scale, seed)
}

// IDs lists all experiment identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(drivers))
	for id := range drivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunTheory validates Theorems 1 and 2 numerically (§2.2): for several n it
// locates the symmetric equilibrium, checks C < Σx̂ < 20C/19, runs the
// concurrent dynamics from a wildly unfair start, and verifies every sender
// lands inside (x̂(1−ε)², x̂(1+ε)²). Context-aware: a cancelled ctx stops
// the sweep at the next sender-count point.
func RunTheory(ctx context.Context, scale float64, seed int64) (*Report, error) {
	rep := &Report{
		ID:     "theory",
		Title:  "Theorems 1 & 2: equilibrium existence, fairness bound, dynamics convergence",
		Header: []string{"n", "x_hat", "sum/C", "band_ok", "final_min", "final_max", "converged"},
	}
	const C = 100.0
	const eps = 0.01
	senderCounts := []int{2, 3, 4, 8, 16}
	rows, err := RunPointsCtx(ctx, len(senderCounts), func(i int) []string {
		n := senderCounts[i]
		g := theory.NewGame(C, n)
		xh := g.Equilibrium(n, eps)
		sumRatio := xh * float64(n) / C
		bandOK := sumRatio > 1 && sumRatio < 20.0/19.0
		// Unfair start: sender 0 hogs, the rest trickle.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = C / float64(n) / 10
		}
		x0[0] = C * 0.9
		// Convergence is slowest for small n: most steps move all senders
		// in lockstep (sum oscillating around C) and differentiation only
		// happens inside the loss band, so give the dynamics ample steps.
		final := g.Dynamics(x0, eps, 60000)
		mn, mx := final[0], final[0]
		for _, v := range final {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		lo, hi := xh*(1-eps)*(1-eps), xh*(1+eps)*(1+eps)
		converged := mn >= lo && mx <= hi
		return []string{
			fmt.Sprintf("%d", n), f3(xh), f3(sumRatio),
			fmt.Sprintf("%v", bandOK), f3(mn), f3(mx), fmt.Sprintf("%v", converged),
		}
	})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	rep.Notes = append(rep.Notes, "band_ok: C < Σx̂ < 20C/19 (Theorem 1); converged: all senders in (x̂(1−ε)², x̂(1+ε)²) (Theorem 2)")
	return rep, nil
}
