package exp

import (
	"fmt"

	"pcc/internal/netem"
)

// RunFig10 reproduces Fig. 10 (§4.1.8): TCP incast. N senders
// simultaneously send one flow of {64,128,256} KB each to a single receiver
// across a 1 Gbps / 1 ms fan-in with a shallow (64 KB) switch buffer;
// goodput is total unique bytes over the time until the last flow
// completes. Synchronized window bursts drive TCP into RTO-bound collapse
// (min RTO 200 ms); PCC's paced, rate-targeted transmission keeps goodput
// at a large fraction of capacity.
func RunFig10(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	trials := int(5 * scale)
	if trials < 1 {
		trials = 1
	}
	senderCounts := []int{2, 5, 10, 15, 20, 25, 30, 33}
	sizesKB := []int{64, 128, 256}
	protos := []string{"pcc", "newreno"}

	rep := &Report{
		ID:     "fig10",
		Title:  "incast (1 Gbps, 1 ms RTT, 64 KB switch buffer): goodput vs senders",
		Header: []string{"senders", "data_KB", "pcc_Mbps", "tcp_Mbps", "pcc/tcp"},
	}
	// Flatten (size, senders, proto, trial) into one job list; every incast
	// trial is an independent simulation.
	type incastJob struct {
		sizeKB, n, trial int
		proto            string
	}
	var jobs []incastJob
	for _, sizeKB := range sizesKB {
		for _, n := range senderCounts {
			for _, proto := range protos {
				for trial := 0; trial < trials; trial++ {
					jobs = append(jobs, incastJob{sizeKB: sizeKB, n: n, trial: trial, proto: proto})
				}
			}
		}
	}
	// Largest shape first: the 33-sender incast builds each worker's arena
	// (flow pool, windows, packet chunks) to the sweep's high-water mark, so
	// every smaller point reuses it warm instead of growing step by step.
	order := descendingBy(len(jobs), func(i int) int { return jobs[i].n })
	goodputs := RunPointsScratchOrdered(order, func(i int, ts *TrialScratch) float64 {
		j := jobs[i]
		return incastGoodput(ts, j.proto, j.n, j.sizeKB, seed+int64(j.trial)*131)
	})
	var ratios []string
	ji := 0
	for _, sizeKB := range sizesKB {
		for _, n := range senderCounts {
			results := map[string]float64{}
			for _, proto := range protos {
				var sum float64
				for trial := 0; trial < trials; trial++ {
					sum += goodputs[ji]
					ji++
				}
				results[proto] = sum / float64(trials)
			}
			ratio := 0.0
			if results["newreno"] > 0 {
				ratio = results["pcc"] / results["newreno"]
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", sizeKB),
				f1(results["pcc"]), f1(results["newreno"]), f2(ratio),
			})
			if n >= 10 && sizeKB == 256 {
				ratios = append(ratios, f1(ratio))
			}
		}
	}
	rep.Notes = append(rep.Notes, "paper: with >=10 senders PCC sustains 60-80% of max goodput, 7-8x TCP")
	_ = ratios
	return rep
}

// incastGoodput runs one incast trial and returns aggregate goodput in
// Mbps (total unique bytes / time to last completion).
func incastGoodput(ts *TrialScratch, proto string, senders, sizeKB int, seed int64) float64 {
	r := ts.Runner(proto, PathSpec{RateMbps: 1000, RTT: 0.001, BufBytes: 64 * netem.KB, Seed: seed})
	flows := make([]*Flow, senders)
	for i := range flows {
		flows[i] = r.AddFlow(FlowSpec{Proto: proto, FlowKB: sizeKB, StartAt: 0})
	}
	// Generous deadline: collapse scenarios can take many RTOs.
	r.Run(60)
	var last float64
	var bytes int64
	for _, f := range flows {
		bytes += f.Recv.UniqueBytes()
		if f.DoneAt > last {
			last = f.DoneAt
		}
	}
	if last <= 0 {
		last = 60 // some flow never finished
	}
	return netem.ToMbps(float64(bytes) / last)
}
