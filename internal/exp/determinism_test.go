package exp

import (
	"testing"
)

// TestParallelMatchesSequential is the tentpole guarantee of the parallel
// experiment engine: for a fixed root seed, a driver's report is
// byte-identical no matter how many workers compute its trials, because
// every trial owns its engine and RNG streams and results are reassembled
// in trial-index order. Three experiments (trial-heavy incast, the AQM×
// protocol power matrix, and the pure-math theory check) each run
// sequentially and at two parallel widths; TestPoolStressTinyTrials covers
// the FQ/heavy-loss/mixed-protocol combinations at the harness level.
//
// This test deliberately does not call t.Parallel(): it toggles the
// process-wide worker override, and Go never overlaps a serial test with
// other tests in the same binary.
func TestParallelMatchesSequential(t *testing.T) {
	defer SetWorkers(0)
	cases := []struct {
		id    string
		scale float64
		seed  int64
	}{
		{"theory", 0.01, 42},
		{"fig10", 0.01, 42},
		{"fig17", 0.01, 1},
		// Routed multi-link topologies: parking-lot (mid-run Poisson flow
		// spawning over multi-hop routes) and the congested-reverse-path
		// pair must also be byte-identical at any worker count.
		{"parklot", 0.01, 42},
		{"revpath", 0.01, 42},
		// Mixed packet sizes (512/1400/9000 B on one path): the per-flow
		// size knob and the byte-granular link ledger must stay
		// byte-identical at any worker count too.
		{"mixmtu", 0.01, 42},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			render := func(workers int) string {
				SetWorkers(workers)
				rep, err := Run(tc.id, tc.scale, tc.seed)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return rep.String()
			}
			sequential := render(1)
			for _, workers := range []int{2, 8} {
				if got := render(workers); got != sequential {
					t.Errorf("report differs between 1 and %d workers:\n--- sequential ---\n%s--- %d workers ---\n%s",
						workers, sequential, workers, got)
				}
			}
		})
	}
}

// TestTrialSeedStable pins the (rootSeed, trial) → seed mapping: recorded
// experiment outputs stay comparable across releases only if this never
// changes.
func TestTrialSeedStable(t *testing.T) {
	t.Parallel()
	// Golden values: changing the SplitMix64 derivation invalidates every
	// recorded experiment output, so the mapping is pinned, not just checked
	// for self-consistency.
	if got := TrialSeed(42, 0); got != -4767286540954276203 {
		t.Fatalf("TrialSeed(42, 0) = %d, want -4767286540954276203 (derivation changed!)", got)
	}
	if got := TrialSeed(1, 7); got != -8797857673641491083 {
		t.Fatalf("TrialSeed(1, 7) = %d, want -8797857673641491083 (derivation changed!)", got)
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 4; root++ {
		for trial := 0; trial < 64; trial++ {
			s := TrialSeed(root, trial)
			if seen[s] {
				t.Fatalf("TrialSeed collision at root=%d trial=%d", root, trial)
			}
			seen[s] = true
		}
	}
}
