package exp

import (
	"fmt"
	"testing"
)

// TestParallelMatchesSequential is the tentpole guarantee of the parallel
// experiment engine: for a fixed root seed, a driver's report is
// byte-identical no matter how many workers compute its trials, because
// every trial owns its engine and RNG streams and results are reassembled
// in trial-index order. Three experiments (trial-heavy incast, the AQM×
// protocol power matrix, and the pure-math theory check) each run
// sequentially and at two parallel widths; TestPoolStressTinyTrials covers
// the FQ/heavy-loss/mixed-protocol combinations at the harness level.
//
// This test deliberately does not call t.Parallel(): it toggles the
// process-wide worker override, and Go never overlaps a serial test with
// other tests in the same binary.
func TestParallelMatchesSequential(t *testing.T) {
	defer SetWorkers(0)
	cases := []struct {
		id    string
		scale float64
		seed  int64
	}{
		{"theory", 0.01, 42},
		{"fig10", 0.01, 42},
		{"fig17", 0.01, 1},
		// Routed multi-link topologies: parking-lot (mid-run Poisson flow
		// spawning over multi-hop routes) and the congested-reverse-path
		// pair must also be byte-identical at any worker count.
		{"parklot", 0.01, 42},
		{"revpath", 0.01, 42},
		// Mixed packet sizes (512/1400/9000 B on one path): the per-flow
		// size knob and the byte-granular link ledger must stay
		// byte-identical at any worker count too.
		{"mixmtu", 0.01, 42},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			render := func(workers int) string {
				SetWorkers(workers)
				rep, err := Run(tc.id, tc.scale, tc.seed)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return rep.String()
			}
			sequential := render(1)
			for _, workers := range []int{2, 8} {
				if got := render(workers); got != sequential {
					t.Errorf("report differs between 1 and %d workers:\n--- sequential ---\n%s--- %d workers ---\n%s",
						workers, sequential, workers, got)
				}
			}
		})
	}
}

// TestShardedMatchesSingleEngine extends the determinism guarantee to the
// intra-trial parallelism axis: for a fixed (scale, seed), a report is
// byte-identical whether a trial runs on one engine or sharded across a
// conservative sim.ShardGroup, at every workers × shards combination. The
// widechain experiment actually shards (its heterogeneous-delay chain
// partitions cleanly); parklot and mixmtu exercise the opposite contract —
// experiments that do not request sharding must be untouched by the global
// shard ceiling.
func TestShardedMatchesSingleEngine(t *testing.T) {
	if testing.Short() {
		// 7 full runs per case; the -short race job covers the shard axis
		// with TestShardDeterminismRacePair, and the CI determinism job
		// runs this matrix un-shortened.
		t.Skip("full shard × worker matrix")
	}
	defer SetWorkers(0)
	defer SetShards(0)
	cases := []struct {
		id    string
		scale float64
		seed  int64
	}{
		{"widechain", 0.01, 42},
		{"widechain", 0.05, 42},
		{"widechain", 0.01, 7},
		{"widechain", 0.05, 7},
		{"parklot", 0.01, 42},
		{"mixmtu", 0.01, 42},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%g/%d", tc.id, tc.scale, tc.seed), func(t *testing.T) {
			render := func(shards, workers int) string {
				SetShards(shards)
				SetWorkers(workers)
				rep, err := Run(tc.id, tc.scale, tc.seed)
				if err != nil {
					t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
				}
				return rep.String()
			}
			base := render(1, 1)
			for _, shards := range []int{2, 4} {
				for _, workers := range []int{1, 2, 8} {
					if got := render(shards, workers); got != base {
						t.Errorf("report differs between shards=1 and shards=%d workers=%d:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
							shards, workers, base, shards, got)
					}
				}
			}
		})
	}
}

// TestShardedRunnerActuallyShards guards the test above against silently
// passing because sharding quietly fell back to one engine: a
// benchmark-shaped widechain topology at a ceiling of 4 must really build a
// multi-engine shard group, and the single-trial goodput must match the
// unsharded run exactly.
func TestShardedRunnerActuallyShards(t *testing.T) {
	if testing.Short() {
		t.Skip("two 12-hop 12-second trials")
	}
	var ts1, ts4 TrialScratch
	g1 := RunWideChainTrial(&ts1, 1, 42)
	g4 := RunWideChainTrial(&ts4, 4, 42)
	if g1 != g4 {
		t.Fatalf("widechain trial goodput differs: shards=1 → %v, shards=4 → %v", g1, g4)
	}
	r := ts4.runners["t\x00"+"12/2/pcc/4"]
	if r == nil {
		t.Fatal("sharded trial runner not cached under its arena key")
	}
	if r.Group == nil || r.Group.Len() < 2 {
		t.Fatalf("shards=4 widechain runner did not shard (group=%v)", r.Group)
	}
}

// TestShardDeterminismRacePair is the CI -race slice of the shard axis: one
// sharded-vs-single pair under the race detector, exercising the full
// harness (per-shard pools, arenas, mailbox merge) with concurrent shard
// workers AND concurrent trial workers.
func TestShardDeterminismRacePair(t *testing.T) {
	defer SetWorkers(0)
	defer SetShards(0)
	render := func(shards, workers int) string {
		SetShards(shards)
		SetWorkers(workers)
		rep, err := Run("widechain", 0.01, 42)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return rep.String()
	}
	base := render(1, 1)
	if got := render(2, 2); got != base {
		t.Errorf("report differs between shards=1 and shards=2 workers=2:\n--- shards=1 ---\n%s--- shards=2 ---\n%s", base, got)
	}
}

// TestTrialSeedStable pins the (rootSeed, trial) → seed mapping: recorded
// experiment outputs stay comparable across releases only if this never
// changes.
func TestTrialSeedStable(t *testing.T) {
	t.Parallel()
	// Golden values: changing the SplitMix64 derivation invalidates every
	// recorded experiment output, so the mapping is pinned, not just checked
	// for self-consistency.
	if got := TrialSeed(42, 0); got != -4767286540954276203 {
		t.Fatalf("TrialSeed(42, 0) = %d, want -4767286540954276203 (derivation changed!)", got)
	}
	if got := TrialSeed(1, 7); got != -8797857673641491083 {
		t.Fatalf("TrialSeed(1, 7) = %d, want -8797857673641491083 (derivation changed!)", got)
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 4; root++ {
		for trial := 0; trial < 64; trial++ {
			s := TrialSeed(root, trial)
			if seen[s] {
				t.Fatalf("TrialSeed collision at root=%d trial=%d", root, trial)
			}
			seen[s] = true
		}
	}
}
