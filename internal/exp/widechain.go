package exp

import (
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/netem"
)

// RunWideChain ("widechain") is the programmatic N-hop × M-flow parking-lot
// generator: one long flow crossing every hop of a chain of 100 Mbps
// bottlenecks while each hop carries its own cross flows, with real reverse
// links (1 Gbps, uncongested) so ACKs traverse the chain too. It serves two
// purposes. Scientifically it extends the parklot robustness probe
// (§2.2–§2.3: utility-driven control with no network knowledge) to much
// deeper chains — the first slice of the 100–1000-node WAN scenarios on the
// roadmap. Mechanically it is the showcase workload for the sharded
// conservative engine: per-hop delays are heterogeneous (4.0–5.2 ms), so the
// node graph partitions into positive-delay-separated shards with ≥4 ms
// lookahead, cross-shard traffic dominates, and one trial can use several
// cores (TopologySpec.Shards, wired to PCC_SHARDS / pccbench -shards).
// Reports are byte-identical at every shard count — the shard axis is
// deliberately absent from the rows — which determinism_test.go asserts.
func RunWideChain(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(40, 10, scale)
	nHops := 4 + int(8*scale+0.5)
	const perHop = 2
	protos := []string{"pcc", "cubic"}
	shards := Shards()

	rep := &Report{
		ID: "widechain",
		Title: fmt.Sprintf("wide chain (%d × 100 Mbps hops in series, %d cross flows per hop, ACKs on real reverse links)",
			nHops, perHop),
		Header: []string{"proto", "long_Mbps", "cross_mean_Mbps", "long/cross", "jain"},
	}
	type wcResult struct {
		row   []string
		notes []string
	}
	results := RunPointsScratch(len(protos), func(i int, ts *TrialScratch) wcResult {
		proto := protos[i]
		r, long, cross := wideChainTrial(ts, nHops, perHop, proto, dur, TrialSeed(seed, i), shards)
		longT := long.WindowMbps(0.2*dur, dur)
		crossT := ts.f64[:0]
		for _, c := range cross {
			crossT = append(crossT, c.WindowMbps(0.2*dur, dur))
		}
		ratio := 0.0
		if m := metrics.Mean(crossT); m > 0 {
			ratio = longT / m
		}
		res := wcResult{row: []string{
			proto,
			f1(longT), f1(metrics.Mean(crossT)), f2(ratio),
			f3(metrics.JainIndex(append([]float64{longT}, crossT...))),
		}}
		ts.f64 = crossT
		if proto == "pcc" {
			res.notes = r.LinkStatsNotes()
		}
		return res
	})
	for _, res := range results {
		rep.Rows = append(rep.Rows, res.row)
		rep.Notes = append(rep.Notes, res.notes...)
	}
	rep.Notes = append(rep.Notes,
		"long flow crosses every hop against 2 per-hop cross flows; its share shrinks with depth (it pays the sum of per-hop congestion), the parklot limitation at WAN scale",
		"reverse links are 10x the forward rate, so ACK paths add propagation but no queueing")
	return rep
}

// RunWideChainTrial runs one benchmark-shaped widechain trial (12 hops, PCC,
// 12 s) at the given shard ceiling and returns the long flow's steady-window
// goodput in Mbps. BenchmarkWideChain calls it at shards 1 vs NumCPU to
// measure intra-trial speedup; the returned figure must not depend on
// shards.
func RunWideChainTrial(ts *TrialScratch, shards int, seed int64) float64 {
	const dur = 12.0
	_, long, _ := wideChainTrial(ts, 12, 2, "pcc", dur, seed, shards)
	return long.WindowMbps(0.2*dur, dur)
}

// wideChainTrial builds and runs one wide-chain simulation: nHops forward
// bottlenecks n<i>→n<i+1> with matching uncongested reverse links, one long
// flow over the whole chain, perHop cross flows per hop with staggered
// starts. Per-hop propagation delays cycle through 4.0–5.2 ms so no two
// causally independent cross-shard events share a timestamp (the float-tie
// caveat of the deterministic shard merge) and the shard lookahead is 4 ms.
func wideChainTrial(ts *TrialScratch, nHops, perHop int, proto string, dur float64, seed int64, shards int) (*Runner, *Flow, []*Flow) {
	const (
		rateMbps = 100
		revMbps  = 1000
		accessD  = 0.002 // per-flow access delay, seconds
	)
	hopDelay := func(i int) float64 { return 0.004 + 0.0003*float64(i%5) }
	spec := TopologySpec{Seed: seed, Shards: shards}
	for i := 0; i < nHops; i++ {
		spec.Links = append(spec.Links,
			LinkSpec{
				Name: fwdName(i), From: nodeName(i), To: nodeName(i + 1),
				RateMbps: rateMbps, Delay: hopDelay(i), BufBytes: 250 * netem.KB,
			},
			LinkSpec{
				Name: revName(i), From: nodeName(i + 1), To: nodeName(i),
				RateMbps: revMbps, Delay: hopDelay(i), BufBytes: 250 * netem.KB,
			})
	}
	r := ts.TopologyRunner(fmt.Sprintf("%d/%d/%s/%d", nHops, perHop, proto, shards), spec)

	longFwd := []netem.HopSpec{netem.DelayHop(accessD)}
	for i := 0; i < nHops; i++ {
		longFwd = append(longFwd, netem.LinkHop(fwdName(i)))
	}
	longRev := make([]netem.HopSpec, 0, nHops+1)
	for i := nHops - 1; i >= 0; i-- {
		longRev = append(longRev, netem.LinkHop(revName(i)))
	}
	longRev = append(longRev, netem.DelayHop(accessD))
	long := r.AddFlow(FlowSpec{Proto: proto, FwdRoute: longFwd, RevRoute: longRev, Bucket: 1})

	cross := make([]*Flow, 0, nHops*perHop)
	for i := 0; i < nHops; i++ {
		for j := 0; j < perHop; j++ {
			k := i*perHop + j
			cross = append(cross, r.AddFlow(FlowSpec{
				Proto:    proto,
				FwdRoute: []netem.HopSpec{netem.DelayHop(accessD), netem.LinkHop(fwdName(i))},
				RevRoute: []netem.HopSpec{netem.LinkHop(revName(i)), netem.DelayHop(accessD)},
				// Staggered, hop-unique starts: shards come up out of phase
				// and no two flows' timers align exactly.
				StartAt: 0.05 + 0.013*float64(k),
				Bucket:  1,
			}))
		}
	}

	r.Run(dur)
	return r, long, cross
}

func nodeName(i int) string { return fmt.Sprintf("n%d", i) }
func fwdName(i int) string  { return fmt.Sprintf("f%d", i) }
func revName(i int) string  { return fmt.Sprintf("b%d", i) }
