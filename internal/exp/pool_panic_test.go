package exp

import (
	"errors"
	"testing"
)

// recoverTrialPanic runs f and returns the *TrialPanicError it panics with,
// failing the test if f panics with anything else or not at all.
func recoverTrialPanic(t *testing.T, f func()) *TrialPanicError {
	t.Helper()
	var tpe *TrialPanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("trial panic was swallowed")
			}
			var ok bool
			if tpe, ok = r.(*TrialPanicError); !ok {
				t.Fatalf("re-raised panic is %T (%v), want *TrialPanicError", r, r)
			}
		}()
		f()
	}()
	return tpe
}

// TestTrialPanicWrappedSequential checks the workers<=1 path: a panicking
// trial surfaces as a *TrialPanicError carrying the provenance the trial
// stamped on its scratch plus the trial index, and earlier trials complete.
func TestTrialPanicWrappedSequential(t *testing.T) {
	ran := 0
	boom := errors.New("queue invariant violated")
	tpe := recoverTrialPanic(t, func() {
		RunTrialsScratchWith(1, 5, func(i int, ts *TrialScratch) {
			ts.Stamp("linkflap", "pcc", TrialSeed(42, i))
			ran++
			if i == 2 {
				panic(boom)
			}
		})
	})
	if ran != 3 {
		t.Errorf("ran %d trials before the panic, want 3", ran)
	}
	if tpe.Experiment != "linkflap" || tpe.Variant != "pcc" || tpe.Trial != 2 || tpe.Worker != 0 {
		t.Errorf("provenance = %+v, want experiment linkflap, variant pcc, trial 2, worker 0", tpe)
	}
	if tpe.Seed != TrialSeed(42, 2) {
		t.Errorf("Seed = %d, want the failing trial's seed %d", tpe.Seed, TrialSeed(42, 2))
	}
	if !errors.Is(tpe, boom) {
		t.Error("errors.Is does not see through the wrapper to the panic value")
	}
}

// TestTrialPanicWrappedParallel checks the worker-pool path: the panic
// aborts the sweep and the first one re-raised is typed, without
// double-wrapping on its way through the worker recovery.
func TestTrialPanicWrappedParallel(t *testing.T) {
	tpe := recoverTrialPanic(t, func() {
		RunTrialsScratchWith(4, 64, func(i int, ts *TrialScratch) {
			ts.Stamp("partition", "cubic", TrialSeed(7, i))
			if i%3 == 1 {
				panic("non-error payload")
			}
		})
	})
	if tpe.Experiment != "partition" || tpe.Variant != "cubic" {
		t.Errorf("provenance = %+v, want experiment partition, variant cubic", tpe)
	}
	if tpe.Trial%3 != 1 {
		t.Errorf("Trial = %d, not one of the panicking indices", tpe.Trial)
	}
	if tpe.Seed != TrialSeed(7, tpe.Trial) {
		t.Errorf("Seed = %d does not match trial %d", tpe.Seed, tpe.Trial)
	}
	if tpe.Worker < 0 || tpe.Worker >= 4 {
		t.Errorf("Worker = %d, want [0,4)", tpe.Worker)
	}
	if _, isTPE := tpe.Value.(*TrialPanicError); isTPE {
		t.Error("panic value was double-wrapped")
	}
	if tpe.Unwrap() != nil {
		t.Errorf("Unwrap() = %v for a non-error payload, want nil", tpe.Unwrap())
	}
	if got := tpe.Error(); got == "" {
		t.Error("empty Error() message")
	}
}
