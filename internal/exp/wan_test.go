package exp

import (
	"strings"
	"testing"

	"pcc/internal/netem"
)

// TestWANDeterminism extends the byte-identical-report guarantee to the
// generated-topology experiment: graph generation, shortest-path routing,
// hint-driven shard placement and the backbone flap schedule are all
// deterministic, so the wan report must not depend on the worker count or
// the shard ceiling. Workers {1,2,8} × shards {1,4}, the CI determinism
// matrix, at small scale.
func TestWANDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full wan worker × shard matrix")
	}
	defer SetWorkers(0)
	defer SetShards(0)
	render := func(shards, workers int) string {
		SetShards(shards)
		SetWorkers(workers)
		rep, err := Run("wan", 0.01, 42)
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
		}
		return rep.String()
	}
	base := render(1, 1)
	if !strings.Contains(base, "0 violated") {
		t.Fatalf("base wan report shows conservation violations:\n%s", base)
	}
	for _, workers := range []int{2, 8} {
		if got := render(1, workers); got != base {
			t.Errorf("report differs between workers=1 and workers=%d:\n--- base ---\n%s--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		if got := render(4, workers); got != base {
			t.Errorf("report differs between shards=1 and shards=4 workers=%d:\n--- base ---\n%s--- shards=4 ---\n%s",
				workers, base, got)
		}
	}
}

// TestWANConservation is the acceptance run for the generated WAN: at
// least 100 generated nodes carrying at least 1000 concurrent flows, the
// x0 backbone flap active mid-run, and the byte ledger of every generated
// link balancing when the simulation stops.
func TestWANConservation(t *testing.T) {
	const dur = 5.0
	sh := NewWANShape(100, 1000, 2, dur, 42)
	if n := sh.NumNodes(); n < 100 {
		t.Fatalf("generated %d nodes, want >= 100", n)
	}
	if len(sh.flows) < 1000 {
		t.Fatalf("routed %d flows, want >= 1000", len(sh.flows))
	}
	for k := range sh.flows {
		if s := sh.flows[k].startAt; s >= 0.3*dur {
			t.Fatalf("flow %d starts at %v, after the first outage — flows must all be live under the fault schedule", k, s)
		}
	}
	ts := new(TrialScratch)
	r, goodput := wanTrial(ts, sh, "pcc", dur, 42)
	for _, s := range r.Topo.Stats() {
		if !s.Conserved() {
			t.Errorf("link %s conservation broken: %+v", s.Name, s)
		}
	}
	downs, dropped := 0, int64(0)
	for _, ev := range r.FaultEvents() {
		if ev.Kind == netem.FaultLinkDown {
			downs++
		}
	}
	for _, s := range r.Topo.Stats() {
		dropped += s.FaultDropped
	}
	if downs == 0 {
		t.Error("flap schedule produced no link-down events")
	}
	if dropped == 0 {
		t.Error("outages destroyed no in-flight packets; x0 likely carried no traffic")
	}
	active, sum := 0, 0.0
	for _, g := range goodput {
		if g > 0 {
			active++
		}
		sum += g
	}
	if active < len(goodput)*9/10 {
		t.Errorf("only %d/%d flows moved bytes", active, len(goodput))
	}
	if sum <= 0 {
		t.Error("zero aggregate goodput")
	}
}

// TestWANArenaMatchesFresh pins the generated-topology respec path: a wan
// trial re-run on a warm arena (identical link slice, shard hints and flap
// schedule shared from one WANShape) must be bit-identical to a fresh
// build.
func TestWANArenaMatchesFresh(t *testing.T) {
	t.Parallel()
	sh := NewWANShape(20, 12, 2, 3.0, 9)
	trial := func(ts *TrialScratch, i int) float64 {
		return RunWANTrial(ts, sh, 3.0, TrialSeed(9, i))
	}
	warm := new(TrialScratch)
	for i := 0; i < 4; i++ {
		if fresh, got := trial(new(TrialScratch), i), trial(warm, i); got != fresh {
			t.Fatalf("trial %d: warm arena %v != fresh %v", i, got, fresh)
		}
	}
}

// TestWANArenaSteadyStateAllocs holds warm generated-topology trials to the
// arena budget: respeccing a 100+-link generated graph in place (per-link
// rewind, shared hint map, shared flap schedule) must not scale allocations
// with topology size.
func TestWANArenaSteadyStateAllocs(t *testing.T) {
	sh := NewWANShape(20, 8, 2, 2.0, 13)
	ts := new(TrialScratch)
	trial := func() {
		if RunWANTrial(ts, sh, 2.0, 13) <= 0 {
			t.Fatal("trial produced no goodput")
		}
	}
	trial() // cold build
	trial() // grow retained storage to steady state
	avg := testing.AllocsPerRun(5, trial)
	t.Logf("warm wan trial (%d links, %d flows): %.0f allocs", sh.graph.NumLinks(), len(sh.flows), avg)
	if avg > steadyAllocBudget {
		t.Errorf("warm wan trial allocates %.0f objects, budget %d", avg, steadyAllocBudget)
	}
}
