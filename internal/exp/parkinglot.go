package exp

import (
	"context"
	"fmt"

	"pcc/internal/metrics"
	"pcc/internal/netem"
	"pcc/internal/workload"
)

// RunParkingLot ("parklot") probes the paper's core robustness claim
// (§2.2–§2.3: utility-driven control needs no knowledge of the network)
// where the dumbbell cannot go: a parking-lot topology with 2–3 bottleneck
// links in series. One long flow crosses every hop while each hop also
// carries its own single-hop cross flow, and Poisson short-flow
// cross-traffic (bounded-Pareto sizes, internal/workload) churns the
// interior link. The figure of merit is the long flow's share relative to
// its per-hop competitors: RTT-biased loss-based TCP squeezes the long flow
// hard (it faces drops at every hop and has the longest RTT), while PCC's
// utility equilibrium keeps it a workable share. Context-aware: a cancelled
// ctx stops the sweep at the next (hops, proto) trial boundary.
func RunParkingLot(ctx context.Context, scale float64, seed int64) (*Report, error) {
	scale = clampScale(scale)
	dur := scaledDur(120, 30, scale)
	protos := []string{"pcc", "cubic", "newreno"}
	hopCounts := []int{2, 3}

	rep := &Report{
		ID:     "parklot",
		Title:  "parking lot (100 Mbps hops in series, per-hop cross flows + Poisson mice on hop2)",
		Header: []string{"hops", "proto", "long_Mbps", "cross_Mbps", "long/cross", "jain"},
	}
	type plResult struct {
		row   []string
		notes []string
	}
	results, err := RunPointsScratchCtx(ctx, len(hopCounts)*len(protos), func(i int, ts *TrialScratch) plResult {
		nHops := hopCounts[i/len(protos)]
		proto := protos[i%len(protos)]
		ts.Stamp("parklot", proto, TrialSeed(seed, i))
		r, long, cross := parkingLotTrial(ts, nHops, proto, dur, TrialSeed(seed, i))
		longT := long.WindowMbps(0.2*dur, dur)
		var crossT []float64
		for _, c := range cross {
			crossT = append(crossT, c.WindowMbps(0.2*dur, dur))
		}
		ratio := 0.0
		if m := metrics.Mean(crossT); m > 0 {
			ratio = longT / m
		}
		res := plResult{row: []string{
			fmt.Sprintf("%d", nHops), proto,
			f1(longT), joinF1(crossT), f2(ratio),
			f3(metrics.JainIndex(append([]float64{longT}, crossT...))),
		}}
		// Per-link accounting for the deepest PCC run, so the report shows
		// conservation across every hop of the route.
		if proto == "pcc" && nHops == 3 {
			res.notes = r.LinkStatsNotes()
		}
		return res
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		rep.Rows = append(rep.Rows, res.row)
		rep.Notes = append(rep.Notes, res.notes...)
	}
	rep.Notes = append(rep.Notes,
		"long flow crosses every hop; each hop also carries one dedicated cross flow, and hop2 (interior for 3 hops, final for 2) adds ~10% Poisson mice load",
		"the paper's single-bottleneck theory (§2.2) does not cover this shape: the long flow sees the sum of per-hop loss rates, so PCC's 5%-sigmoid utility squeezes it hardest (below even New Reno's RTT-biased share) — a measured limitation, not a simulator artifact (a solo flow fills ~98 Mbps over the same 3 hops)")
	return rep, nil
}

// parkingLotTrial builds and runs one parking-lot simulation: nHops
// bottlenecks in series, one long flow over all of them, one cross flow per
// hop, and Poisson short flows on the interior hop. It returns the runner
// (for link stats), the long flow, and the per-hop cross flows.
func parkingLotTrial(ts *TrialScratch, nHops int, proto string, dur float64, seed int64) (*Runner, *Flow, []*Flow) {
	const (
		rateMbps = 100
		linkDel  = 0.005 // per-hop propagation, seconds
		accessD  = 0.002 // per-flow access delay, seconds
	)
	spec := TopologySpec{Seed: seed}
	for i := 0; i < nHops; i++ {
		spec.Links = append(spec.Links, LinkSpec{
			Name: hopName(i), From: fmt.Sprintf("n%d", i), To: fmt.Sprintf("n%d", i+1),
			RateMbps: rateMbps, Delay: linkDel, BufBytes: 250 * netem.KB,
		})
	}
	r := ts.TopologyRunner(fmt.Sprintf("%d/%s", nHops, proto), spec)

	longFwd := []netem.HopSpec{netem.DelayHop(accessD)}
	for i := 0; i < nHops; i++ {
		longFwd = append(longFwd, netem.LinkHop(hopName(i)))
	}
	longRev := []netem.HopSpec{netem.DelayHop(accessD + float64(nHops)*linkDel)}
	long := r.AddFlow(FlowSpec{Proto: proto, FwdRoute: longFwd, RevRoute: longRev, Bucket: 1})

	cross := make([]*Flow, nHops)
	for i := 0; i < nHops; i++ {
		cross[i] = r.AddFlow(FlowSpec{
			Proto:    proto,
			FwdRoute: []netem.HopSpec{netem.DelayHop(accessD), netem.LinkHop(hopName(i))},
			RevRoute: []netem.HopSpec{netem.DelayHop(accessD + linkDel)},
			Bucket:   1,
		})
	}

	// Poisson mice on hop2 (interior for 3 hops, final for 2): ~10% load of
	// bounded-Pareto short flows, the workload §4.3.2 generator pointed at
	// one bottleneck the long flow crosses. New Reno mice regardless of the
	// long-lived protocol — cross-traffic is whatever the internet runs.
	const miceHop = 1
	arrRNG := r.NextRand()
	sizeRNG := r.NextRand()
	miceRoute := []netem.HopSpec{netem.DelayHop(accessD), netem.LinkHop(hopName(miceHop))}
	miceRev := []netem.HopSpec{netem.DelayHop(accessD + linkDel)}
	workload.PoissonArrivals(r.Eng, arrRNG, 10, dur, func(int) {
		r.AddFlow(FlowSpec{
			Proto:    "newreno",
			FwdRoute: miceRoute, RevRoute: miceRev,
			FlowKB:  workload.ParetoFlowKB(sizeRNG, 1.2, 30, 3000),
			StartAt: r.Eng.Now(),
		})
	})

	r.Run(dur)
	return r, long, cross
}

func hopName(i int) string { return fmt.Sprintf("hop%d", i+1) }
