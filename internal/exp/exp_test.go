package exp

import (
	"strconv"
	"strings"
	"testing"

	"pcc/internal/core"
	"pcc/internal/netem"
)

// These tests assert the paper-shape claims each experiment reproduces, at
// reduced scale so the whole suite stays fast. EXPERIMENTS.md records the
// full-scale numbers.

func TestShapeLossResilience(t *testing.T) {
	t.Parallel()
	// Fig. 7 core claim: at 1% random loss PCC holds most of capacity
	// while CUBIC collapses.
	path := PathSpec{RateMbps: 100, RTT: 0.030, Loss: 0.01, BufBytes: 375 * netem.KB, Seed: 42}
	ts := new(TrialScratch)
	pcc := runSingle(ts, path, "pcc", 40, nil)
	cubic := runSingle(ts, path, "cubic", 40, nil)
	if pcc < 70 {
		t.Errorf("PCC at 1%% loss = %.1f Mbps, want > 70", pcc)
	}
	if cubic > 30 {
		t.Errorf("CUBIC at 1%% loss = %.1f Mbps, want collapse < 30", cubic)
	}
	if pcc < 3*cubic {
		t.Errorf("PCC/CUBIC = %.1f, want > 3x", pcc/cubic)
	}
}

func TestShapeSatellite(t *testing.T) {
	t.Parallel()
	// Fig. 6 core claim: PCC beats Hybla by a large factor on the
	// satellite link.
	path := PathSpec{RateMbps: 42, RTT: 0.8, Loss: 0.0074, BufBytes: 1000 * netem.KB, Seed: 42}
	ts := new(TrialScratch)
	pcc := runSingle(ts, path, "pcc", 80, nil)
	hybla := runSingle(ts, path, "hybla", 80, nil)
	if pcc < 20 {
		t.Errorf("PCC on satellite = %.1f Mbps, want > 20", pcc)
	}
	if pcc < 2*hybla {
		t.Errorf("PCC/Hybla = %.1f, want > 2x", pcc/hybla)
	}
}

func TestShapeShallowBuffer(t *testing.T) {
	t.Parallel()
	// Fig. 9 core claim: PCC fills the link with a 6-MSS buffer where
	// CUBIC cannot.
	path := PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 9000, Seed: 42}
	ts := new(TrialScratch)
	pcc := runSingle(ts, path, "pcc", 30, nil)
	cubic := runSingle(ts, path, "cubic", 30, nil)
	if pcc < 85 {
		t.Errorf("PCC with 6-MSS buffer = %.1f Mbps, want > 85", pcc)
	}
	if cubic > pcc {
		t.Errorf("CUBIC %.1f beat PCC %.1f on shallow buffer", cubic, pcc)
	}
}

func TestShapeSmallBufferRateLimiter(t *testing.T) {
	t.Parallel()
	// Table 1 core claim: on an 800 Mbps reserved path with a small-buffer
	// limiter, PCC far exceeds Illinois.
	path := PathSpec{RateMbps: 800, RTT: 0.036, BufBytes: 75 * netem.KB, Seed: 42}
	ts := new(TrialScratch)
	pcc := runSingle(ts, path, "pcc", 15, nil)
	ill := runSingle(ts, path, "illinois", 15, nil)
	if pcc < 500 {
		t.Errorf("PCC inter-DC = %.0f Mbps, want > 500", pcc)
	}
	if pcc < 2*ill {
		t.Errorf("PCC/Illinois = %.1f, want > 2x", pcc/ill)
	}
}

func TestShapeRTTFairness(t *testing.T) {
	t.Parallel()
	// Fig. 8 core claim: PCC's long/short throughput ratio is far closer
	// to 1 than New Reno's.
	ratio := func(proto string) float64 {
		r := NewRunner(PathSpec{RateMbps: 100, RTT: 0.010, BufBytes: int(netem.Mbps(100) * 0.010), Seed: 42})
		long := r.AddFlow(FlowSpec{Proto: proto, RTT: 0.060, Bucket: 1})
		short := r.AddFlow(FlowSpec{Proto: proto, RTT: 0.010, StartAt: 5, Bucket: 1})
		r.Run(95)
		return long.WindowMbps(5, 95) / short.WindowMbps(5, 95)
	}
	pcc := ratio("pcc")
	reno := ratio("newreno")
	if pcc < 0.4 {
		t.Errorf("PCC long/short ratio = %.2f, want > 0.4", pcc)
	}
	if reno > pcc {
		t.Errorf("New Reno ratio %.2f better than PCC %.2f", reno, pcc)
	}
}

func TestShapeFairConvergence(t *testing.T) {
	t.Parallel()
	// Fig. 12/13 core claim: concurrent PCC flows share fairly with low
	// variance.
	r := NewRunner(PathSpec{RateMbps: 100, RTT: 0.030, BufBytes: 375 * netem.KB, Seed: 42})
	a := r.AddFlow(FlowSpec{Proto: "pcc", Bucket: 1})
	b := r.AddFlow(FlowSpec{Proto: "pcc", Bucket: 1})
	r.Run(60)
	at, bt := a.WindowMbps(20, 60), b.WindowMbps(20, 60)
	if at+bt < 80 {
		t.Errorf("two PCC flows total %.1f Mbps, want > 80", at+bt)
	}
	ratio := at / bt
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("PCC share ratio %.2f, want near 1", ratio)
	}
}

func TestShapeIncast(t *testing.T) {
	t.Parallel()
	// Fig. 10 core claim: with many synchronized senders PCC's goodput
	// beats TCP's.
	ts := new(TrialScratch)
	pcc := incastGoodput(ts, "pcc", 20, 256, 42)
	tcp := incastGoodput(ts, "newreno", 20, 256, 42)
	if pcc < tcp {
		t.Errorf("incast: PCC %.0f Mbps < TCP %.0f Mbps", pcc, tcp)
	}
}

func TestShapeDynamicNetwork(t *testing.T) {
	t.Parallel()
	// Fig. 11 core claim: PCC tracks a rapidly changing network far better
	// than CUBIC.
	rep, series := RunFig11(0.25, 42)
	if rep == nil || len(series.Optimal) == 0 {
		t.Fatal("fig11 produced no series")
	}
	var pccT, cubicT float64
	for _, row := range rep.Rows {
		switch row[0] {
		case "pcc":
			pccT = parseF(t, row[1])
		case "cubic":
			cubicT = parseF(t, row[1])
		}
	}
	if pccT < 2*cubicT {
		t.Errorf("dynamic network: PCC %.1f vs CUBIC %.1f, want > 2x", pccT, cubicT)
	}
}

func TestShapeHeavyLossUtility(t *testing.T) {
	t.Parallel()
	// §4.4.2 core claim: the loss-resilient utility holds most of the
	// achievable rate at 40% loss.
	cfg := core.HeavyLossConfig(0.030)
	r := NewRunner(PathSpec{RateMbps: 100, RTT: 0.030, Loss: 0.40, BufBytes: 375 * netem.KB, QueueKind: "fq", Seed: 42})
	f := r.AddFlow(FlowSpec{Proto: "pcc", PCCConfig: &cfg})
	r.Run(40)
	got := f.GoodputMbps(40)
	if got < 0.7*60 {
		t.Errorf("heavy-loss PCC = %.1f Mbps, want > %.0f (70%% of achievable)", got, 0.7*60)
	}
}

func TestShapeLatencyUtilityKeepsQueueSmall(t *testing.T) {
	t.Parallel()
	// Fig. 17 core claim: PCC with the latency utility keeps self-inflicted
	// queueing far below TCP's on a bufferbloated FQ link.
	cfg := core.InteractiveConfig(0.020)
	r := NewRunner(PathSpec{RateMbps: 40, RTT: 0.020, BufBytes: 2000 * netem.KB, QueueKind: "fq", Seed: 7})
	f := r.AddFlow(FlowSpec{Proto: "pcc", PCCConfig: &cfg})
	r.Run(40)
	pccRTT := f.RS.MeanRTT()

	r2 := NewRunner(PathSpec{RateMbps: 40, RTT: 0.020, BufBytes: 2000 * netem.KB, QueueKind: "fq", Seed: 7})
	g := r2.AddFlow(FlowSpec{Proto: "cubic"})
	r2.Run(40)
	tcpRTT := g.WS.MeanRTT()

	if pccRTT > tcpRTT/3 {
		t.Errorf("PCC mean RTT %.1f ms vs TCP %.1f ms under bufferbloat; want <1/3",
			pccRTT*1e3, tcpRTT*1e3)
	}
}

func TestRegistryRunsEveryExperimentTiny(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs every driver")
	}
	// Every registered driver must produce a non-empty report at minimum
	// scale without panicking. The heavyweight ones are exercised by the
	// benchmarks instead.
	for _, id := range []string{"theory", "fig7", "loss50"} {
		rep, err := Run(id, 0.01, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s: empty report", id)
		}
		if !strings.Contains(rep.String(), rep.ID) {
			t.Fatalf("%s: String() lacks the id", id)
		}
	}
	if _, err := Run("nope", 1, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
