package exp

import (
	"fmt"

	"pcc/internal/netem"
)

// RunFig14 reproduces Fig. 14 (§4.3.1): TCP friendliness. One normal New
// Reno flow competes against n "selfish flows", where a selfish flow is
// either a bundle of 10 parallel New Reno connections (TCP-Selfish — a
// common practice) or a single PCC flow. The relative unfriendliness ratio
// is the normal flow's throughput when competing with PCC divided by its
// throughput when competing with TCP-Selfish: above 1 means PCC is the
// friendlier neighbour.
func RunFig14(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(100, 40, scale)
	nets := []struct {
		RateMbps float64
		RTT      float64
	}{
		{10, 0.010}, {30, 0.020}, {30, 0.010}, {100, 0.010},
	}
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8}

	rep := &Report{
		ID:     "fig14",
		Title:  "TCP friendliness: normal-TCP throughput with PCC rivals / with 10-parallel-TCP rivals",
		Header: append([]string{"network"}, intHeaders(counts, " selfish")...),
	}
	// Two trials per (network, count) cell: rivals are n PCC flows, or n
	// bundles of 10 parallel TCP flows. Run the widest flow fans first so
	// each worker's arena reaches its high-water flow count immediately and
	// every narrower point rebuilds warm.
	nPoints := len(nets) * len(counts) * 2
	order := descendingBy(nPoints, func(i int) int {
		width := 1
		if i%2 == 1 {
			width = 10
		}
		return counts[(i/2)%len(counts)] * width
	})
	tputs := RunPointsScratchOrdered(order, func(i int, ts *TrialScratch) float64 {
		nw := nets[i/(len(counts)*2)]
		n := counts[(i/2)%len(counts)]
		buf := int(netem.Mbps(nw.RateMbps) * nw.RTT)
		if i%2 == 0 {
			return normalTCPThroughput(ts, nw.RateMbps, nw.RTT, buf, n, "pcc", 1, dur, seed)
		}
		return normalTCPThroughput(ts, nw.RateMbps, nw.RTT, buf, n, "newreno", 10, dur, seed)
	})
	for ni, nw := range nets {
		row := []string{fmt.Sprintf("%.0fMbps,%.0fms", nw.RateMbps, nw.RTT*1e3)}
		for ci := range counts {
			withPCC := tputs[(ni*len(counts)+ci)*2]
			withBundle := tputs[(ni*len(counts)+ci)*2+1]
			ratio := 0.0
			if withBundle > 0 {
				ratio = withPCC / withBundle
			}
			row = append(row, f2(ratio))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		">1: PCC is friendlier than the 10-parallel-TCP selfish practice (paper: ratio rises above 1 as selfish senders increase)")
	return rep
}

// normalTCPThroughput measures one normal New Reno flow's goodput (Mbps)
// when sharing the path with n selfish flows, each made of `width`
// connections of the given protocol. The arena is keyed by the rival
// protocol: flow counts vary per trial, but the flow pool reuses whatever
// prefix matches.
func normalTCPThroughput(ts *TrialScratch, rateMbps, rtt float64, buf, n int, proto string, width int, dur float64, seed int64) float64 {
	r := ts.Runner(proto, PathSpec{RateMbps: rateMbps, RTT: rtt, BufBytes: buf, Seed: seed})
	normal := r.AddFlow(FlowSpec{Proto: "newreno"})
	for i := 0; i < n*width; i++ {
		r.AddFlow(FlowSpec{Proto: proto})
	}
	r.Run(dur)
	return normal.GoodputMbps(dur)
}
