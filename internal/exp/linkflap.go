package exp

import (
	"fmt"

	"pcc/internal/netem"
)

// RunLinkFlap ("linkflap") probes recovery from hard link failures, the
// robustness companion to Fig. 8's loss sweep: instead of a constant random
// loss rate, the middle hop of a 3-hop chain flaps — repeated down/up cycles
// with seeded ±30% phase jitter — destroying every in-flight packet and
// parking the serializer while down. PCC's utility-driven probing has no
// loss-type oracle (§2.3), so a flap looks like a catastrophic loss episode;
// the question is how fast each scheme's rate recovers once the link heals.
// The report gives whole-run goodput, the pre-fault reference rate, goodput
// over the flap window, and the recovery time: how long after the final heal
// the flow takes to first reach 80% of its pre-fault rate.
func RunLinkFlap(scale float64, seed int64) *Report {
	scale = clampScale(scale)
	dur := scaledDur(40, 10, scale)
	protos := []string{"pcc", "cubic"}
	shards := Shards()
	firstDownAt := 0.25 * dur

	rep := &Report{
		ID: "linkflap",
		Title: fmt.Sprintf("middle-hop link flaps on a 3-hop chain (down/up cycles over [%.1fs, %.1fs], ±30%% jitter)",
			firstDownAt, 0.7*dur),
		Header: []string{"proto", "run_Mbps", "ref_Mbps", "flap_Mbps", "recovery_s"},
	}
	type lfResult struct {
		row   []string
		notes []string
	}
	results := RunPointsScratch(len(protos), func(i int, ts *TrialScratch) lfResult {
		proto := protos[i]
		r, long := linkFlapTrial(ts, proto, dur, TrialSeed(seed, i), shards)

		const bucket = 0.1
		ref := long.WindowMbps(0.1*dur, firstDownAt)
		// The materialized schedule carries the jittered per-trial times; the
		// last link-up is when the path is whole again for good.
		lastHeal := firstDownAt
		for _, ev := range r.FaultEvents() {
			if ev.Kind == netem.FaultLinkUp && ev.At > lastHeal {
				lastHeal = ev.At
			}
		}
		flapT := long.WindowMbps(firstDownAt, lastHeal)
		series := ts.f64[:0]
		series = long.SeriesMbpsInto(series)
		rec := recoveryAfter(series, bucket, lastHeal, 0.8*ref)
		ts.f64 = series

		res := lfResult{row: []string{
			proto,
			f1(long.WindowMbps(0.1*dur, dur)), f1(ref), f1(flapT), fmtRecovery(rec),
		}}
		if proto == "pcc" {
			res.notes = r.FaultStatsNotesInto(nil)
		}
		return res
	})
	for _, res := range results {
		rep.Rows = append(rep.Rows, res.row)
		rep.Notes = append(rep.Notes, res.notes...)
	}
	rep.Notes = append(rep.Notes,
		"ref_Mbps: goodput before the first outage; flap_Mbps: goodput across the flap window; recovery_s: time after the last heal to reach 80% of ref",
		"fault_dropped counts in-flight packets destroyed by the outages; conservation must hold through every down/up transition")
	return rep
}

// linkFlapTrial builds and runs one flap trial: a 3-hop chain of 100 Mbps
// bottlenecks with real reverse links, one flow over all hops (Fig. 8 style:
// a single sender, so the rate trace isolates the control loop's reaction to
// the outages), and a FlapSpec on the middle forward link f1. The flap pins
// n1–n2 onto one shard; the end nodes still shard off across the
// heterogeneous per-hop delays.
func linkFlapTrial(ts *TrialScratch, proto string, dur float64, seed int64, shards int) (*Runner, *Flow) {
	ts.Stamp("linkflap", proto, seed)
	const (
		nHops    = 3
		rateMbps = 100
		revMbps  = 1000
		accessD  = 0.002
	)
	hopDelay := func(i int) float64 { return 0.004 + 0.0003*float64(i%5) }
	spec := TopologySpec{
		Seed:   seed,
		Shards: shards,
		Faults: &netem.FaultSchedule{Flaps: []netem.FlapSpec{{
			Link:        fwdName(1),
			FirstDownAt: 0.25 * dur,
			DownDur:     0.3,
			UpDur:       0.7,
			Jitter:      0.3,
			Until:       0.7 * dur,
		}}},
	}
	for i := 0; i < nHops; i++ {
		spec.Links = append(spec.Links,
			LinkSpec{
				Name: fwdName(i), From: nodeName(i), To: nodeName(i + 1),
				RateMbps: rateMbps, Delay: hopDelay(i), BufBytes: 250 * netem.KB,
			},
			LinkSpec{
				Name: revName(i), From: nodeName(i + 1), To: nodeName(i),
				RateMbps: revMbps, Delay: hopDelay(i), BufBytes: 250 * netem.KB,
			})
	}
	r := ts.TopologyRunner(fmt.Sprintf("flap/%s/%d", proto, shards), spec)

	longFwd := []netem.HopSpec{netem.DelayHop(accessD)}
	for i := 0; i < nHops; i++ {
		longFwd = append(longFwd, netem.LinkHop(fwdName(i)))
	}
	longRev := make([]netem.HopSpec, 0, nHops+1)
	for i := nHops - 1; i >= 0; i-- {
		longRev = append(longRev, netem.LinkHop(revName(i)))
	}
	longRev = append(longRev, netem.DelayHop(accessD))
	long := r.AddFlow(FlowSpec{Proto: proto, FwdRoute: longFwd, RevRoute: longRev, Bucket: 0.1})

	r.Run(dur)
	return r, long
}

// recoveryAfter scans a bucketed rate series (bucket seconds wide) for the
// first bucket ending after the heal instant whose rate reaches target, and
// returns the gap from healAt to that bucket's end. Returns -1 if the series
// never gets there.
func recoveryAfter(series []float64, bucket, healAt, target float64) float64 {
	for i := int(healAt / bucket); i < len(series); i++ {
		end := float64(i+1) * bucket
		if end <= healAt {
			continue
		}
		if series[i] >= target {
			return end - healAt
		}
	}
	return -1
}

// fmtRecovery renders a recoveryAfter result, using "never" for a flow that
// does not regain the target rate before the run ends.
func fmtRecovery(rec float64) string {
	if rec < 0 {
		return "never"
	}
	return f2(rec)
}
