package exp

import "sync"

// TrialScratch is a per-worker trial arena: a cache of fully built Runners
// keyed by experiment-variant, so the hundreds of short trials a Monte-Carlo
// sweep runs (§4's evaluation is sweeps by construction) reuse their
// engine, topology, flows, PCC/TCP state and packet pool instead of
// rebuilding them from scratch every trial. RunTrials/RunPoints hand each
// worker goroutine one scratch for its whole slice of the sweep (see
// pool.go), so arenas are strictly goroutine-local, like everything else a
// trial owns.
//
// Reuse is placement-policy only. A cache hit re-specs the cached runner in
// place — engine reset, links/queues re-parameterized, seed chain rewound,
// flows reset — through code paths that draw the per-trial seed chain at
// exactly the positions a fresh build would, so a trial's results are
// bit-identical whether it hit or missed the cache (the determinism suite
// exercises this directly: different worker counts produce entirely
// different hit patterns, yet reports must match byte-for-byte).
//
// The key identifies an experiment variant within one driver: trials whose
// network/flow structure matches should share a key (their parameter
// differences — rates, delays, losses, buffer sizes, flow counts, PCC
// configs — are all re-specced per trial); structurally different variants
// (different protocol mix, different link graph) should use distinct keys
// so alternating trials do not evict each other's warm state. Keys are a
// performance hint only: structure is verified on every hit, and a
// mismatch (queue kind, link graph, per-flow sender category or route
// shape) falls back to a fresh build or per-flow rebuild with identical
// semantics.
type TrialScratch struct {
	runners map[string]*Runner
	// f64 is a general float64 scratch drivers may use for per-trial series
	// (SeriesMbpsInto, metrics.SortInto) between runner builds.
	f64 []float64

	// prov is the trial provenance the running trial stamped via Stamp. It
	// is mutex-guarded because the pool's watchdog reads it from another
	// goroutine while the trial runs (see runTrial in pool.go).
	provMu sync.Mutex
	prov   TrialProvenance
}

// TrialProvenance identifies one trial for replay: the experiment and
// variant the driver stamped plus the per-trial seed.
type TrialProvenance struct {
	Exp, Variant string
	Seed         int64
}

// Stamp records the running trial's provenance. Drivers call it at the top
// of each trial function; the pool copies the stamp into the
// TrialPanicError or TrialTimeoutError produced when that trial panics or
// hangs, so a crash deep inside a Monte-Carlo sweep reports which
// experiment, variant and seed to replay instead of an anonymous stack
// from a worker goroutine.
func (ts *TrialScratch) Stamp(exp, variant string, seed int64) {
	ts.provMu.Lock()
	ts.prov = TrialProvenance{Exp: exp, Variant: variant, Seed: seed}
	ts.provMu.Unlock()
}

// Provenance returns the most recently stamped trial provenance.
func (ts *TrialScratch) Provenance() TrialProvenance {
	ts.provMu.Lock()
	p := ts.prov
	ts.provMu.Unlock()
	return p
}

// maxArenaRunners bounds the cached simulations per worker. Real drivers
// use a handful of variant keys; the flush is a backstop so a pathological
// key choice degrades to fresh builds instead of unbounded retention.
const maxArenaRunners = 32

// Runner returns a dumbbell runner for the given path: the cached one for
// key, re-specced in place, or a freshly built one on first use (or when
// the queue kind changed under the key).
func (ts *TrialScratch) Runner(key string, p PathSpec) *Runner {
	k := "d\x00" + p.QueueKind + "\x00" + key
	if r := ts.runners[k]; r != nil && r.respecDumbbell(p) {
		return r
	}
	r := NewRunner(p)
	ts.put(k, r)
	return r
}

// TopologyRunner is Runner for general multi-link topologies. The cached
// runner is reused when the spec's link structure (names, endpoints, queue
// kinds) matches the cached build; parameters are re-specced per trial.
func (ts *TrialScratch) TopologyRunner(key string, spec TopologySpec) *Runner {
	k := "t\x00" + key
	if r := ts.runners[k]; r != nil && r.respecTopology(spec) {
		return r
	}
	r := NewTopologyRunner(spec)
	ts.put(k, r)
	return r
}

func (ts *TrialScratch) put(key string, r *Runner) {
	if ts.runners == nil {
		ts.runners = make(map[string]*Runner)
	} else if len(ts.runners) >= maxArenaRunners {
		clear(ts.runners)
	}
	ts.runners[key] = r
}
