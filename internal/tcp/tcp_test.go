package tcp

import (
	"math"
	"testing"

	"pcc/internal/cc"
)

func est(rtt float64) *cc.RTTEstimator {
	e := cc.NewRTTEstimator()
	e.Sample(rtt)
	return e
}

func TestRegistryKnowsAllVariants(t *testing.T) {
	for _, name := range Variants() {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Cwnd() < 1 {
			t.Fatalf("%s initial cwnd %v < 1", name, a.Cwnd())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestNewRenoSlowStartDoubles(t *testing.T) {
	a := NewReno()
	e := est(0.03)
	start := a.Cwnd()
	for i := 0; i < int(start); i++ {
		a.OnAck(0, 0.03, e)
	}
	if a.Cwnd() != 2*start {
		t.Fatalf("slow start: cwnd %v after %v acks, want %v", a.Cwnd(), start, 2*start)
	}
}

func TestNewRenoCongestionAvoidanceLinear(t *testing.T) {
	a := NewReno()
	a.cwnd, a.ssthresh = 10, 5 // force CA
	e := est(0.03)
	for i := 0; i < 10; i++ {
		a.OnAck(0, 0.03, e)
	}
	if a.Cwnd() < 10.9 || a.Cwnd() > 11.1 {
		t.Fatalf("CA: cwnd %v after one window, want ~11", a.Cwnd())
	}
}

func TestNewRenoHalvesOnLoss(t *testing.T) {
	a := NewReno()
	a.cwnd = 100
	a.OnLossEvent(0)
	if a.Cwnd() != 50 {
		t.Fatalf("cwnd %v after loss, want 50", a.Cwnd())
	}
	a.OnTimeout(0)
	if a.Cwnd() != 1 {
		t.Fatalf("cwnd %v after RTO, want 1", a.Cwnd())
	}
}

func TestCubicWindowCurve(t *testing.T) {
	a := NewCubic()
	a.cwnd, a.ssthresh = 100, 50 // CA
	// Long RTT (300 ms) keeps the TCP-friendly envelope below the cubic
	// curve so the test observes the cubic shape itself.
	e := est(0.3)
	a.OnLossEvent(0) // cwnd = 70, wMax = 100
	if math.Abs(a.Cwnd()-70) > 1e-9 {
		t.Fatalf("cwnd after loss %v, want 70", a.Cwnd())
	}
	// K = cbrt(wMax(1-beta)/C) = cbrt(100*0.3/0.4) = cbrt(75) ≈ 4.217 s:
	// after K seconds of acks the window should be back near wMax.
	now := 0.0
	for now < 4.3 {
		now += 0.3
		for i := 0; i < int(a.Cwnd()); i++ {
			a.OnAck(now, 0.3, e)
		}
	}
	if a.Cwnd() < 85 || a.Cwnd() > 115 {
		t.Fatalf("cwnd %v after K seconds, want near wMax=100", a.Cwnd())
	}
}

func TestCubicFastConvergence(t *testing.T) {
	a := NewCubic()
	a.cwnd, a.ssthresh = 100, 50
	a.OnLossEvent(0)
	w1 := a.wMax // 100
	a.OnLossEvent(0)
	if a.wMax >= w1 {
		t.Fatalf("fast convergence did not shrink wMax: %v >= %v", a.wMax, w1)
	}
}

func TestIllinoisAlphaBetaBounds(t *testing.T) {
	a := NewIllinois()
	e := est(0.03)
	// Feed small then large delays and check alpha/beta stay within the
	// configured bounds in every regime.
	for _, rtt := range []float64{0.03, 0.03, 0.05, 0.09, 0.15, 0.03, 0.2} {
		for i := 0; i < 50; i++ {
			a.OnAck(0, rtt, e)
		}
		alpha, beta := a.alphaBeta()
		if alpha < a.AlphaMin-1e-9 || alpha > a.AlphaMax+1e-9 {
			t.Fatalf("alpha %v out of [%v,%v]", alpha, a.AlphaMin, a.AlphaMax)
		}
		if beta < a.BetaMin-1e-9 || beta > a.BetaMax+1e-9 {
			t.Fatalf("beta %v out of [%v,%v]", beta, a.BetaMin, a.BetaMax)
		}
	}
}

func TestIllinoisAggressiveWhenDelayLow(t *testing.T) {
	a := NewIllinois()
	e := est(0.03)
	a.cwnd, a.ssthresh = 100, 50
	// Mostly base RTT with one high excursion to establish dm.
	for i := 0; i < 200; i++ {
		a.OnAck(0, 0.03, e)
	}
	for i := 0; i < 10; i++ {
		a.OnAck(0, 0.09, e)
	}
	for i := 0; i < 500; i++ {
		a.OnAck(0, 0.0301, e)
	}
	alpha, beta := a.alphaBeta()
	if alpha < 5 {
		t.Fatalf("alpha %v at near-zero delay, want near AlphaMax", alpha)
	}
	if beta != a.BetaMin {
		t.Fatalf("beta %v at near-zero delay, want BetaMin", beta)
	}
}

func TestHyblaRhoScalesGrowth(t *testing.T) {
	short := NewHybla()
	long := NewHybla()
	eShort := est(0.025)
	eLong := est(0.2) // rho = 8
	short.cwnd, short.ssthresh = 10, 5
	long.cwnd, long.ssthresh = 10, 5
	for i := 0; i < 10; i++ {
		short.OnAck(0, 0.025, eShort)
		long.OnAck(0, 0.2, eLong)
	}
	growShort := short.Cwnd() - 10
	growLong := long.Cwnd() - 10
	// ρ=8 gives ρ²=64x the per-ack step; compounding over a growing window
	// dilutes the observed ratio, so require a conservative 20x.
	if growLong < growShort*20 {
		t.Fatalf("Hybla long-RTT growth %v not ~rho^2 times short %v", growLong, growShort)
	}
}

func TestHyblaRhoClamp(t *testing.T) {
	a := NewHybla()
	e := est(2.0) // rho would be 80 unclamped
	a.OnAck(0, 2.0, e)
	if a.rho != a.RhoMax {
		t.Fatalf("rho = %v, want clamp %v", a.rho, a.RhoMax)
	}
}

func TestVegasBacksOffOnQueueing(t *testing.T) {
	a := NewVegas()
	a.cwnd, a.ssthresh = 50, 10 // CA
	e := est(0.03)
	// Base RTT 30 ms, then persistent 60 ms: diff = 50*(1-0.5) = 25 > beta.
	now := 0.0
	for i := 0; i < 200; i++ {
		now += 0.01
		a.OnAck(now, 0.03, e)
	}
	w := a.Cwnd()
	for i := 0; i < 400; i++ {
		now += 0.01
		a.OnAck(now, 0.06, e)
	}
	if a.Cwnd() >= w {
		t.Fatalf("Vegas did not back off under queueing: %v -> %v", w, a.Cwnd())
	}
}

func TestBicBinarySearchApproachesWMax(t *testing.T) {
	a := NewBic()
	a.cwnd, a.ssthresh = 100, 50
	a.OnLossEvent(0) // wMax=100, cwnd=80
	e := est(0.03)
	for i := 0; i < 5000; i++ {
		a.OnAck(0, 0.03, e)
	}
	if a.Cwnd() < 95 {
		t.Fatalf("BIC stuck at %v, want approach to wMax 100", a.Cwnd())
	}
}

func TestWestwoodSetsWindowFromBWE(t *testing.T) {
	a := NewWestwood()
	a.cwnd, a.ssthresh = 400, 100
	e := est(0.1)
	// 100 acks per 100 ms = 1000 pkts/s; BWE*minRTT = 100 packets.
	now := 0.0
	for i := 0; i < 3000; i++ {
		now += 0.001
		a.OnAck(now, 0.1, e)
	}
	a.OnLossEvent(now)
	if a.Cwnd() < 50 || a.Cwnd() > 150 {
		t.Fatalf("Westwood cwnd %v after loss, want ~BWE*RTTmin=100", a.Cwnd())
	}
}

func TestAllVariantsSurviveEventStorm(t *testing.T) {
	// Robustness: any interleaving of events must keep cwnd >= 1 and finite.
	for _, name := range Variants() {
		a, _ := New(name)
		e := est(0.05)
		now := 0.0
		for i := 0; i < 5000; i++ {
			now += 0.001
			switch i % 7 {
			case 0, 1, 2, 3:
				a.OnAck(now, 0.05+float64(i%13)*0.001, e)
			case 4:
				a.OnDupAck()
			case 5:
				a.OnLossEvent(now)
			case 6:
				a.OnTimeout(now)
			}
			w := a.Cwnd()
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 1 {
				t.Fatalf("%s cwnd degenerate: %v at step %d", name, w, i)
			}
		}
	}
}
