// Package tcp implements the TCP congestion control variants the paper
// evaluates against: New Reno, CUBIC, Illinois, Hybla, Vegas, BIC and
// Westwood+, plus New Reno with packet pacing (§4.1.6).
//
// Each variant implements cc.WindowAlgo; the window/loss-recovery machinery
// lives in internal/cc so every variant shares identical SACK recovery and
// RTO behaviour — exactly the "hardwired mapping" split the paper describes:
// variants differ only in how packet-level events map to window updates.
package tcp

import "pcc/internal/cc"

// reno holds the state shared by Reno-style algorithms: a window, a
// slow-start threshold, and the standard halving response.
type reno struct {
	cwnd     float64
	ssthresh float64
}

func newRenoState() reno {
	return reno{cwnd: 2, ssthresh: 1e12}
}

func (r *reno) Cwnd() float64 { return r.cwnd }

func (r *reno) inSlowStart() bool { return r.cwnd < r.ssthresh }

func (r *reno) halve() {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	r.cwnd = r.ssthresh
}

func (r *reno) collapse() {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	r.cwnd = 1
}

// NewRenoAlgo is textbook TCP New Reno: slow start, AIMD congestion
// avoidance (+1 MSS per RTT), halve on loss.
type NewRenoAlgo struct {
	reno
}

// NewReno returns a New Reno instance.
func NewReno() *NewRenoAlgo { return &NewRenoAlgo{reno: newRenoState()} }

// Name implements cc.WindowAlgo.
func (a *NewRenoAlgo) Name() string { return "newreno" }

// OnAck implements cc.WindowAlgo.
func (a *NewRenoAlgo) OnAck(now, rtt float64, est *cc.RTTEstimator) {
	if a.inSlowStart() {
		a.cwnd++
	} else {
		a.cwnd += 1 / a.cwnd
	}
}

// OnDupAck implements cc.WindowAlgo.
func (a *NewRenoAlgo) OnDupAck() {}

// OnLossEvent implements cc.WindowAlgo.
func (a *NewRenoAlgo) OnLossEvent(now float64) { a.halve() }

// OnTimeout implements cc.WindowAlgo.
func (a *NewRenoAlgo) OnTimeout(now float64) { a.collapse() }
