package tcp

import "pcc/internal/cc"

// IllinoisAlgo implements TCP Illinois (Liu, Başar, Srikant 2008): a
// loss-based protocol that modulates its additive-increase step α and
// multiplicative-decrease factor β using measured queueing delay. Small
// delay → aggressive increase (α up to 10) and gentle decrease (β = 1/8);
// large delay → conservative increase and β up to 1/2.
type IllinoisAlgo struct {
	reno

	AlphaMax, AlphaMin float64
	BetaMax, BetaMin   float64

	baseRTT float64 // minimum observed RTT (propagation estimate)
	maxRTT  float64 // maximum observed RTT
	sumRTT  float64
	cntRTT  int
	avgRTT  float64
	acked   float64 // acks since last per-window delay update
}

// NewIllinois returns an Illinois instance with the published defaults.
func NewIllinois() *IllinoisAlgo {
	return &IllinoisAlgo{
		reno:     newRenoState(),
		AlphaMax: 10, AlphaMin: 0.3,
		BetaMax: 0.5, BetaMin: 0.125,
		baseRTT: 1e9,
	}
}

// Name implements cc.WindowAlgo.
func (a *IllinoisAlgo) Name() string { return "illinois" }

// alphaBeta derives the current (α, β) pair from average queueing delay.
func (a *IllinoisAlgo) alphaBeta() (alpha, beta float64) {
	dm := a.maxRTT - a.baseRTT // maximum queueing delay seen
	if dm <= 0 || a.avgRTT <= 0 {
		return a.AlphaMax, a.BetaMin
	}
	da := a.avgRTT - a.baseRTT
	if da < 0 {
		da = 0
	}
	d1 := dm / 100
	if da <= d1 {
		alpha = a.AlphaMax
	} else {
		// alpha = k1/(k2+da) with alpha(d1)=AlphaMax, alpha(dm)=AlphaMin.
		k1 := (dm - d1) * a.AlphaMin * a.AlphaMax / (a.AlphaMax - a.AlphaMin)
		k2 := k1/a.AlphaMax - d1
		alpha = k1 / (k2 + da)
	}
	d2, d3 := dm/10, 8*dm/10
	switch {
	case da <= d2:
		beta = a.BetaMin
	case da >= d3:
		beta = a.BetaMax
	default:
		// k3 + k4*da linear between (d2, BetaMin) and (d3, BetaMax).
		k4 := (a.BetaMax - a.BetaMin) / (d3 - d2)
		beta = a.BetaMin + k4*(da-d2)
	}
	return alpha, beta
}

// OnAck implements cc.WindowAlgo.
func (a *IllinoisAlgo) OnAck(now, rtt float64, est *cc.RTTEstimator) {
	if rtt > 0 {
		if rtt < a.baseRTT {
			a.baseRTT = rtt
		}
		if rtt > a.maxRTT {
			a.maxRTT = rtt
		}
		a.sumRTT += rtt
		a.cntRTT++
	}
	a.acked++
	if a.acked >= a.cwnd && a.cntRTT > 0 {
		// Once per window: refresh the average-delay estimate.
		a.avgRTT = a.sumRTT / float64(a.cntRTT)
		a.sumRTT, a.cntRTT = 0, 0
		a.acked = 0
	}

	if a.inSlowStart() {
		a.cwnd++
		return
	}
	alpha, _ := a.alphaBeta()
	a.cwnd += alpha / a.cwnd
}

// OnDupAck implements cc.WindowAlgo.
func (a *IllinoisAlgo) OnDupAck() {}

// OnLossEvent implements cc.WindowAlgo.
func (a *IllinoisAlgo) OnLossEvent(now float64) {
	_, beta := a.alphaBeta()
	a.cwnd *= 1 - beta
	if a.cwnd < 2 {
		a.cwnd = 2
	}
	a.ssthresh = a.cwnd
}

// OnTimeout implements cc.WindowAlgo.
func (a *IllinoisAlgo) OnTimeout(now float64) {
	a.ssthresh = a.cwnd / 2
	if a.ssthresh < 2 {
		a.ssthresh = 2
	}
	a.cwnd = 1
}
