package tcp

import "pcc/internal/cc"

// BicAlgo implements BIC-TCP (Xu, Harfoush, Rhee 2004), CUBIC's
// predecessor: binary-search increase toward the window at the last loss,
// then max-probing beyond it.
type BicAlgo struct {
	reno
	// SMax/SMin bound the per-RTT increment (defaults 16 / 0.01 packets).
	SMax, SMin float64
	// Beta is the multiplicative decrease (default 0.8).
	Beta float64
	// LowWindow: below this BIC behaves like Reno (default 14).
	LowWindow float64
	// FastConvergence releases bandwidth faster to new flows.
	FastConvergence bool

	wMax float64
}

// NewBic returns a BIC instance with the published defaults.
func NewBic() *BicAlgo {
	return &BicAlgo{reno: newRenoState(), SMax: 16, SMin: 0.01, Beta: 0.8, LowWindow: 14, FastConvergence: true}
}

// Name implements cc.WindowAlgo.
func (a *BicAlgo) Name() string { return "bic" }

// OnAck implements cc.WindowAlgo.
func (a *BicAlgo) OnAck(now, rtt float64, est *cc.RTTEstimator) {
	if a.inSlowStart() {
		a.cwnd++
		return
	}
	if a.cwnd < a.LowWindow {
		a.cwnd += 1 / a.cwnd
		return
	}
	var inc float64 // increment per RTT
	if a.wMax <= 0 {
		inc = a.SMax // no loss yet: probe at full speed
	} else if a.cwnd < a.wMax {
		// Binary search: jump halfway to wMax each RTT.
		inc = (a.wMax - a.cwnd) / 2
	} else {
		// Max probing: grow away from wMax, slowly at first.
		inc = a.cwnd - a.wMax
	}
	if inc > a.SMax {
		inc = a.SMax
	}
	if inc < a.SMin {
		inc = a.SMin
	}
	a.cwnd += inc / a.cwnd
}

// OnDupAck implements cc.WindowAlgo.
func (a *BicAlgo) OnDupAck() {}

// OnLossEvent implements cc.WindowAlgo.
func (a *BicAlgo) OnLossEvent(now float64) {
	if a.FastConvergence && a.cwnd < a.wMax {
		a.wMax = a.cwnd * (1 + a.Beta) / 2
	} else {
		a.wMax = a.cwnd
	}
	a.cwnd *= a.Beta
	if a.cwnd < 2 {
		a.cwnd = 2
	}
	a.ssthresh = a.cwnd
}

// OnTimeout implements cc.WindowAlgo.
func (a *BicAlgo) OnTimeout(now float64) {
	a.wMax = a.cwnd
	a.ssthresh = a.cwnd * a.Beta
	if a.ssthresh < 2 {
		a.ssthresh = 2
	}
	a.cwnd = 1
}
