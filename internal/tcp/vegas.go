package tcp

import "pcc/internal/cc"

// VegasAlgo implements TCP Vegas (Brakmo & Peterson 1995): a delay-based
// protocol that keeps between Alpha and Beta packets queued at the
// bottleneck, adjusting the window once per RTT based on
// diff = cwnd · (1 − baseRTT/RTT).
type VegasAlgo struct {
	reno
	// Alpha/Beta/Gamma are the queue-occupancy thresholds in packets
	// (defaults 2/4/1).
	Alpha, Beta, Gamma float64

	baseRTT    float64
	epochStart float64
	epochMin   float64 // minimum RTT observed this epoch
	epochCnt   int
}

// NewVegas returns a Vegas instance with the published defaults.
func NewVegas() *VegasAlgo {
	return &VegasAlgo{reno: newRenoState(), Alpha: 2, Beta: 4, Gamma: 1, baseRTT: 1e9, epochStart: -1, epochMin: 1e9}
}

// Name implements cc.WindowAlgo.
func (a *VegasAlgo) Name() string { return "vegas" }

// OnAck implements cc.WindowAlgo.
func (a *VegasAlgo) OnAck(now, rtt float64, est *cc.RTTEstimator) {
	if rtt > 0 {
		if rtt < a.baseRTT {
			a.baseRTT = rtt
		}
		if rtt < a.epochMin {
			a.epochMin = rtt
		}
		a.epochCnt++
	}
	if a.epochStart < 0 {
		a.epochStart = now
		return
	}
	srtt := est.SRTT
	if now-a.epochStart < srtt || a.epochCnt < 2 {
		return // evaluate once per RTT
	}

	// diff = expected − actual rate, in packets queued at the bottleneck.
	diff := a.cwnd * (a.epochMin - a.baseRTT) / a.epochMin

	if a.inSlowStart() {
		if diff > a.Gamma {
			// Leave slow start: queue is building.
			a.ssthresh = a.cwnd
			a.cwnd = a.cwnd - diff
			if a.cwnd < 2 {
				a.cwnd = 2
			}
		} else {
			a.cwnd++ // Vegas doubles every other RTT; approximated as +1/RTT here
		}
	} else {
		switch {
		case diff < a.Alpha:
			a.cwnd++
		case diff > a.Beta:
			a.cwnd--
			if a.cwnd < 2 {
				a.cwnd = 2
			}
		}
	}
	a.epochStart = now
	a.epochMin = 1e9
	a.epochCnt = 0
}

// OnDupAck implements cc.WindowAlgo.
func (a *VegasAlgo) OnDupAck() {}

// OnLossEvent implements cc.WindowAlgo.
func (a *VegasAlgo) OnLossEvent(now float64) { a.halve() }

// OnTimeout implements cc.WindowAlgo.
func (a *VegasAlgo) OnTimeout(now float64) { a.collapse() }
