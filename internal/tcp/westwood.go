package tcp

import "pcc/internal/cc"

// WestwoodAlgo implements TCP Westwood+ (Mascolo et al. 2001): Reno-style
// growth, but on loss the window is set from an end-to-end bandwidth
// estimate (BWE · RTTmin) instead of blind halving, giving better behaviour
// over lossy wireless links.
type WestwoodAlgo struct {
	reno

	bwe        float64 // smoothed bandwidth estimate, packets/s
	minRTT     float64 // cached from the estimator on each ack
	epochStart float64
	epochAcked float64 // packets acked this epoch
}

// NewWestwood returns a Westwood+ instance.
func NewWestwood() *WestwoodAlgo {
	return &WestwoodAlgo{reno: newRenoState(), epochStart: -1}
}

// Name implements cc.WindowAlgo.
func (a *WestwoodAlgo) Name() string { return "westwood" }

// OnAck implements cc.WindowAlgo.
func (a *WestwoodAlgo) OnAck(now, rtt float64, est *cc.RTTEstimator) {
	a.epochAcked++
	if a.epochStart < 0 {
		a.epochStart = now
	}
	if est.HasSample() {
		a.minRTT = est.MinRTT
	}
	srtt := est.SRTT
	if srtt > 0 && now-a.epochStart >= srtt {
		// Westwood+: one bandwidth sample per RTT, EWMA-smoothed.
		sample := a.epochAcked / (now - a.epochStart)
		if a.bwe == 0 {
			a.bwe = sample
		} else {
			a.bwe = 0.9*a.bwe + 0.1*sample
		}
		a.epochStart = now
		a.epochAcked = 0
	}

	if a.inSlowStart() {
		a.cwnd++
	} else {
		a.cwnd += 1 / a.cwnd
	}
}

// OnDupAck implements cc.WindowAlgo.
func (a *WestwoodAlgo) OnDupAck() {}

// bdpWindow converts the bandwidth estimate into a window in packets.
func (a *WestwoodAlgo) bdpWindow() float64 {
	w := a.bwe * a.minRTT
	if w < 2 {
		w = 2
	}
	return w
}

// OnLossEvent implements cc.WindowAlgo: ssthresh = BWE·RTTmin.
func (a *WestwoodAlgo) OnLossEvent(now float64) {
	if a.bwe > 0 && a.minRTT > 0 {
		a.ssthresh = a.bdpWindow()
		if a.cwnd > a.ssthresh {
			a.cwnd = a.ssthresh
		}
	} else {
		a.halve()
	}
}

// OnTimeout implements cc.WindowAlgo.
func (a *WestwoodAlgo) OnTimeout(now float64) {
	if a.bwe > 0 && a.minRTT > 0 {
		a.ssthresh = a.bdpWindow()
	} else {
		a.ssthresh = a.cwnd / 2
		if a.ssthresh < 2 {
			a.ssthresh = 2
		}
	}
	a.cwnd = 1
}
