package tcp

import (
	"math"

	"pcc/internal/cc"
)

// CubicAlgo implements TCP CUBIC (Ha, Rhee, Xu 2008; RFC 8312): the window
// grows as a cubic function of time since the last loss, with a
// TCP-friendly lower envelope and fast convergence.
type CubicAlgo struct {
	reno

	// C is the cubic scaling constant (RFC 8312 default 0.4).
	C float64
	// Beta is the multiplicative decrease factor (RFC 8312 default 0.7).
	Beta float64
	// FastConvergence releases bandwidth faster to new flows.
	FastConvergence bool

	wMax       float64
	epochStart float64 // <0 = no epoch
	k          float64
	origin     float64
	wEst       float64 // TCP-friendly (Reno-equivalent) window estimate
	ackCount   float64
}

// NewCubic returns a CUBIC instance with RFC 8312 defaults.
func NewCubic() *CubicAlgo {
	return &CubicAlgo{reno: newRenoState(), C: 0.4, Beta: 0.7, FastConvergence: true, epochStart: -1}
}

// Name implements cc.WindowAlgo.
func (a *CubicAlgo) Name() string { return "cubic" }

// OnAck implements cc.WindowAlgo.
func (a *CubicAlgo) OnAck(now, rtt float64, est *cc.RTTEstimator) {
	if a.inSlowStart() {
		a.cwnd++
		return
	}
	srtt := est.SRTT
	if srtt <= 0 {
		srtt = 0.1
	}
	if a.epochStart < 0 {
		a.epochStart = now
		if a.cwnd < a.wMax {
			a.k = math.Cbrt((a.wMax - a.cwnd) / a.C)
			a.origin = a.wMax
		} else {
			a.k = 0
			a.origin = a.cwnd
		}
		a.wEst = a.cwnd
		a.ackCount = 0
	}

	t := now - a.epochStart + est.MinRTT
	target := a.origin + a.C*(t-a.k)*(t-a.k)*(t-a.k)

	// Cubic growth toward target over one RTT.
	if target > a.cwnd {
		a.cwnd += (target - a.cwnd) / a.cwnd
	} else {
		a.cwnd += 0.01 / a.cwnd // minimal growth in the plateau region
	}

	// TCP-friendly region (RFC 8312 §4.2): emulate Reno's average rate.
	a.ackCount++
	a.wEst += 3 * (1 - a.Beta) / (1 + a.Beta) / a.cwnd
	if a.wEst > a.cwnd {
		a.cwnd = a.wEst
	}
}

// OnDupAck implements cc.WindowAlgo.
func (a *CubicAlgo) OnDupAck() {}

// OnLossEvent implements cc.WindowAlgo.
func (a *CubicAlgo) OnLossEvent(now float64) {
	a.epochStart = -1
	if a.FastConvergence && a.cwnd < a.wMax {
		a.wMax = a.cwnd * (2 - a.Beta) / 2
	} else {
		a.wMax = a.cwnd
	}
	a.cwnd *= a.Beta
	if a.cwnd < 2 {
		a.cwnd = 2
	}
	a.ssthresh = a.cwnd
}

// OnTimeout implements cc.WindowAlgo.
func (a *CubicAlgo) OnTimeout(now float64) {
	a.epochStart = -1
	a.wMax = a.cwnd
	a.ssthresh = math.Max(a.cwnd*a.Beta, 2)
	a.cwnd = 1
}
