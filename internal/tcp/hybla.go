package tcp

import (
	"math"

	"pcc/internal/cc"
)

// HyblaAlgo implements TCP Hybla (Caini & Firrincieli 2004), the satellite
// TCP of §4.1.3: window growth is scaled by ρ = RTT/RTT0 (RTT0 = 25 ms) so
// long-RTT connections grow their windows at the same wall-clock pace as a
// reference 25 ms connection. Slow start adds 2^ρ−1 per ACK; congestion
// avoidance adds ρ²/cwnd per ACK.
type HyblaAlgo struct {
	reno
	// RTT0 is the reference round-trip time (default 25 ms).
	RTT0 float64
	// RhoMax clamps ρ (default 8). Uncapped ρ on a 800 ms path is 32,
	// whose 2^ρ slow-start and ρ² congestion-avoidance steps produce
	// multi-thousand-packet bursts that no real 2014-era stack survived —
	// the paper measures kernel Hybla at ~2 Mbps on exactly such a link
	// (Fig. 6), and an idealized un-clamped SACK sender would instead fill
	// it. The clamp reproduces deployed behaviour.
	RhoMax float64
	rho    float64
}

// NewHybla returns a Hybla instance with the published defaults.
func NewHybla() *HyblaAlgo {
	h := &HyblaAlgo{reno: newRenoState(), RTT0: 0.025, RhoMax: 8, rho: 1}
	// Hybla recommends an initial ssthresh so slow start ends; keep the
	// shared huge default (first loss sets it), matching the Linux module.
	return h
}

// Name implements cc.WindowAlgo.
func (a *HyblaAlgo) Name() string { return "hybla" }

// OnAck implements cc.WindowAlgo.
func (a *HyblaAlgo) OnAck(now, rtt float64, est *cc.RTTEstimator) {
	if est.HasSample() {
		a.rho = est.SRTT / a.RTT0
		if a.rho < 1 {
			a.rho = 1
		}
		if a.RhoMax > 0 && a.rho > a.RhoMax {
			a.rho = a.RhoMax
		}
	}
	if a.inSlowStart() {
		a.cwnd += math.Pow(2, a.rho) - 1
	} else {
		a.cwnd += a.rho * a.rho / a.cwnd
	}
	// Guard against runaway growth in pathological slow starts.
	if a.cwnd > 1e9 {
		a.cwnd = 1e9
	}
}

// OnDupAck implements cc.WindowAlgo.
func (a *HyblaAlgo) OnDupAck() {}

// OnLossEvent implements cc.WindowAlgo.
func (a *HyblaAlgo) OnLossEvent(now float64) { a.halve() }

// OnTimeout implements cc.WindowAlgo.
func (a *HyblaAlgo) OnTimeout(now float64) { a.collapse() }
