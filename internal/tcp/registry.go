package tcp

import (
	"fmt"

	"pcc/internal/cc"
)

// New returns a fresh instance of the named TCP variant. Known names:
// newreno, cubic, illinois, hybla, vegas, bic, westwood. The "pacing"
// baseline of §4.1.6 is New Reno with the harness's Paced option, so it is
// constructed by the caller, not here.
func New(name string) (cc.WindowAlgo, error) {
	switch name {
	case "newreno", "reno":
		return NewReno(), nil
	case "cubic":
		return NewCubic(), nil
	case "illinois":
		return NewIllinois(), nil
	case "hybla":
		return NewHybla(), nil
	case "vegas":
		return NewVegas(), nil
	case "bic":
		return NewBic(), nil
	case "westwood":
		return NewWestwood(), nil
	default:
		return nil, fmt.Errorf("tcp: unknown variant %q", name)
	}
}

// Variants lists every implemented TCP variant name.
func Variants() []string {
	return []string{"newreno", "cubic", "illinois", "hybla", "vegas", "bic", "westwood"}
}
