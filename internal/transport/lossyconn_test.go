package transport

import (
	"math/rand"
	"net"
	"sync"
)

// lossyConn wraps a UDPConn and applies deterministic (seeded) datagram
// loss and reordering on the write side — an in-process stand-in for a
// misbehaving network path. Reordering holds a datagram back and releases
// it after the next write, swapping adjacent packets, which is exactly the
// pattern that trips naive SACK-gap detection into spurious retransmits.
type lossyConn struct {
	UDPConn
	mu      sync.Mutex
	rng     *rand.Rand
	drop    float64 // per-datagram drop probability
	reorder float64 // probability of holding a datagram behind the next one

	held     []byte
	heldAddr *net.UDPAddr
	dropped  int64
	swapped  int64
}

func newLossyConn(inner UDPConn, seed int64, drop, reorder float64) *lossyConn {
	return &lossyConn{UDPConn: inner, rng: rand.New(rand.NewSource(seed)), drop: drop, reorder: reorder}
}

func (c *lossyConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() < c.drop {
		c.dropped++
		return len(b), nil // swallowed by the "network"
	}
	if c.held != nil {
		// Release pattern: current datagram first, then the held one —
		// adjacent swap.
		if _, err := c.UDPConn.WriteToUDP(b, addr); err != nil {
			return 0, err
		}
		held, heldAddr := c.held, c.heldAddr
		c.held, c.heldAddr = nil, nil
		c.swapped++
		return c.UDPConn.WriteToUDP(held, heldAddr)
	}
	if c.rng.Float64() < c.reorder {
		c.held = append([]byte(nil), b...)
		c.heldAddr = addr
		return len(b), nil
	}
	return c.UDPConn.WriteToUDP(b, addr)
}

// finDropConn swallows the first n FIN datagrams, passing everything else
// through untouched — the targeted failure the FIN retransmission timer
// must survive.
type finDropConn struct {
	UDPConn
	mu    sync.Mutex
	drops int
	seen  int64
}

func (c *finDropConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	c.mu.Lock()
	if len(b) > 0 && b[0] == typeFin {
		c.seen++
		if c.drops > 0 {
			c.drops--
			c.mu.Unlock()
			return len(b), nil
		}
	}
	c.mu.Unlock()
	return c.UDPConn.WriteToUDP(b, addr)
}

func (c *finDropConn) finsSeen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen
}
