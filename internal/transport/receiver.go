package transport

import (
	"io"
	"net"
	"sync"
)

// Receiver reassembles one flow arriving over UDP and acknowledges every
// data packet with a cumulative ACK plus up to 32 received ranges — the
// SACK feedback PCC's monitor consumes. It requires no congestion-control
// intelligence (§2.3: "No receiver change").
type Receiver struct {
	conn UDPConn
	out  io.Writer

	mu        sync.Mutex
	cumAck    int64
	ooo       map[int64][]byte // out-of-order payloads awaiting reassembly
	ranges    []AckRange       // received runs above cumAck
	total     int64            // flow length in packets, from fin; -1 unknown
	uniq      int64
	bytesOut  int64
	done      chan struct{}
	closeOnce sync.Once
}

// NewReceiver wraps a bound UDP socket. Payloads are written to out in
// order. Call Run to start.
func NewReceiver(conn UDPConn, out io.Writer) *Receiver {
	return &Receiver{conn: conn, out: out, ooo: map[int64][]byte{}, total: -1, done: make(chan struct{})}
}

// Done is closed when the whole flow (announced by the sender's fin) has
// been received and written out.
func (r *Receiver) Done() <-chan struct{} { return r.done }

// UniquePackets returns the count of distinct data packets received.
func (r *Receiver) UniquePackets() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.uniq
}

// BytesWritten returns the number of in-order payload bytes delivered.
func (r *Receiver) BytesWritten() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytesOut
}

// Run processes packets until the socket is closed. Flow completion closes
// Done and answers every FIN with a fin-ack, but Run keeps reading — the
// sender may need the confirmation re-sent if it was lost — so the caller
// observes completion via Done and then closes the socket, which makes Run
// return nil.
func (r *Receiver) Run() error {
	buf := make([]byte, 65536)
	ackBuf := make([]byte, 1024)
	for {
		n, addr, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.done:
				return nil
			default:
			}
			return err
		}
		if n == 0 {
			continue
		}
		switch buf[0] {
		case typeData:
			h, payload, err := decodeData(buf[:n])
			if err != nil {
				continue
			}
			r.onData(h, payload)
			r.sendAck(addr, ackBuf, h)
		case typeFin:
			flowID, total, err := decodeFin(buf[:n])
			if err != nil {
				continue
			}
			r.mu.Lock()
			r.total = total
			complete := r.cumAck >= r.total
			r.mu.Unlock()
			if complete {
				// Confirm the close so the sender stops repeating the FIN,
				// then linger: a lost fin-ack means more FIN copies arrive,
				// and each must be answered or the sender gives up with a
				// spurious error. The caller decides when the flow is truly
				// over (Done has fired) and closes the socket, which ends
				// this loop.
				r.sendFinAck(addr, ackBuf, flowID)
				r.finish()
			}
		}
		r.mu.Lock()
		complete := r.total >= 0 && r.cumAck >= r.total
		r.mu.Unlock()
		if complete {
			r.finish()
		}
	}
}

func (r *Receiver) finish() {
	r.closeOnce.Do(func() { close(r.done) })
}

// onData ingests one data packet: in-order payloads stream to the writer,
// out-of-order ones wait in the reassembly map.
func (r *Receiver) onData(h DataHeader, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case h.Seq < r.cumAck:
		return // duplicate
	case h.Seq == r.cumAck:
		r.uniq++
		r.writeLocked(payload)
		r.cumAck++
		for {
			p, ok := r.ooo[r.cumAck]
			if !ok {
				break
			}
			delete(r.ooo, r.cumAck)
			r.writeLocked(p)
			r.cumAck++
		}
		r.trimRanges()
	default:
		if _, dup := r.ooo[h.Seq]; dup {
			return
		}
		r.uniq++
		r.ooo[h.Seq] = append([]byte(nil), payload...)
		r.addRange(h.Seq)
	}
}

func (r *Receiver) writeLocked(p []byte) {
	if r.out != nil {
		r.out.Write(p)
	}
	r.bytesOut += int64(len(p))
}

// addRange merges seq into the sorted out-of-order range list.
func (r *Receiver) addRange(seq int64) {
	for i := range r.ranges {
		rg := &r.ranges[i]
		switch {
		case seq >= rg.Start && seq <= rg.End:
			return
		case seq == rg.End+1:
			rg.End++
			if i+1 < len(r.ranges) && r.ranges[i+1].Start == rg.End+1 {
				rg.End = r.ranges[i+1].End
				r.ranges = append(r.ranges[:i+1], r.ranges[i+2:]...)
			}
			return
		case seq == rg.Start-1:
			rg.Start--
			return
		case seq < rg.Start:
			r.ranges = append(r.ranges, AckRange{})
			copy(r.ranges[i+1:], r.ranges[i:])
			r.ranges[i] = AckRange{Start: seq, End: seq}
			return
		}
	}
	r.ranges = append(r.ranges, AckRange{Start: seq, End: seq})
}

// trimRanges drops ranges now covered by cumAck.
func (r *Receiver) trimRanges() {
	i := 0
	for i < len(r.ranges) && r.ranges[i].End < r.cumAck {
		i++
	}
	r.ranges = r.ranges[i:]
}

// sendFinAck confirms a FIN: an ordinary ack whose EchoSeq is the fin-ack
// sentinel, carrying the final cumulative ack.
func (r *Receiver) sendFinAck(addr *net.UDPAddr, buf []byte, flowID uint32) {
	r.mu.Lock()
	a := Ack{FlowID: flowID, CumAck: r.cumAck, EchoSeq: finAckEcho}
	r.mu.Unlock()
	n := encodeAck(buf, a)
	r.conn.WriteToUDP(buf[:n], addr)
}

func (r *Receiver) sendAck(addr *net.UDPAddr, buf []byte, h DataHeader) {
	r.mu.Lock()
	a := Ack{
		FlowID:    h.FlowID,
		CumAck:    r.cumAck,
		Ranges:    append([]AckRange(nil), r.ranges...),
		EchoSeq:   h.Seq,
		EchoNanos: h.SentNanos,
	}
	r.mu.Unlock()
	n := encodeAck(buf, a)
	r.conn.WriteToUDP(buf[:n], addr)
}
