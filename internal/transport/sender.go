package transport

import (
	"io"
	"math"
	"net"
	"sync"
	"time"

	"pcc/internal/core"
)

// finRetries bounds how many times the flow-terminating FIN is sent. Each
// copy is confirmed by the receiver's fin-ack (EchoSeq == finAckEcho); the
// repeats, exponentially spaced up to finGapCeil, only exist for the case
// where FINs or fin-acks are being lost. Exhausting the budget without a
// confirmation surfaces a RetryExceededError with Stage "fin".
const finRetries = 10

// Sender transmits a byte stream over UDP, paced at the rate the PCC
// controller chooses. It is the real-network counterpart of the simulator's
// RateSender: the identical core.PCC state machine drives both (§2.3 —
// deployment needs only a sender-side change). Byte accounting is
// size-accurate end to end: every packet — including the short final
// chunk — reports its true payload length to the monitor, which credits
// exactly that size when the ACK returns.
type Sender struct {
	conn   UDPConn
	peer   *net.UDPAddr
	flowID uint32

	mu    sync.Mutex
	pcc   *core.PCC
	start time.Time

	payloads [][]byte // chunked flow contents
	sacked   []bool
	lost     []bool
	sentAt   []float64 // time of the most recent (re)transmission, per seq
	attempts []int     // retransmissions so far, per seq (first send not counted)
	rtxQ     []int64
	cumAck   int64
	sackHigh int64
	lossScan int64
	nextSeq  int64

	sent       int64
	rtx        int64
	sentBytes  int64 // payload bytes over all transmissions
	rtxBytes   int64 // payload bytes of retransmissions only
	ackedBytes int64 // payload bytes acknowledged (each seq once)

	doneCh chan struct{}
	once   sync.Once

	// failCh is closed (with failErr set first) when a retry budget is
	// exhausted; Run returns failErr instead of looping forever against a
	// dead peer.
	failCh   chan struct{}
	failOnce sync.Once
	failErr  error

	// finAck is closed when the receiver confirms a FIN.
	finAck     chan struct{}
	finAckOnce sync.Once
}

// NewSender chunks the contents of r into packets and prepares a sender
// with the given PCC configuration. The whole flow is buffered in memory —
// these tools move files, like the paper's prototype.
func NewSender(conn UDPConn, peer *net.UDPAddr, cfg core.Config, r io.Reader) (*Sender, error) {
	if cfg.PacketSize == 0 {
		// The monitor's MI floor should track the wire's payload budget
		// (1400 B), not the 1500-byte simulator default.
		cfg.PacketSize = MSS
	}
	s := &Sender{
		conn:   conn,
		peer:   peer,
		flowID: 1,
		pcc:    core.New(cfg, nil),
		doneCh: make(chan struct{}),
		failCh: make(chan struct{}),
		finAck: make(chan struct{}),
	}
	buf := make([]byte, MSS)
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			s.payloads = append(s.payloads, append([]byte(nil), buf[:n]...))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	s.sacked = make([]bool, len(s.payloads))
	s.lost = make([]bool, len(s.payloads))
	s.sentAt = make([]float64, len(s.payloads))
	s.attempts = make([]int, len(s.payloads))
	return s, nil
}

// Done is closed when every packet has been acknowledged.
func (s *Sender) Done() <-chan struct{} { return s.doneCh }

// Stats returns (packets sent, retransmissions).
func (s *Sender) Stats() (sent, rtx int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent, s.rtx
}

// ByteStats returns the sender's byte ledger: payload bytes over all
// transmissions, the retransmitted subset, and the bytes acknowledged so
// far (each sequence counted once). When the flow completes,
// sent − rtx == acked == the flow's length — the cross-check the loopback
// harness runs against the receiver's BytesWritten.
func (s *Sender) ByteStats() (sent, rtx, acked int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentBytes, s.rtxBytes, s.ackedBytes
}

// Rate returns the controller's current rate in bytes/s.
func (s *Sender) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pcc.Rate(s.now())
}

func (s *Sender) now() float64 { return time.Since(s.start).Seconds() }

// Run transmits until the flow is fully acknowledged or the socket fails.
func (s *Sender) Run() error {
	s.start = time.Now()
	s.mu.Lock()
	s.pcc.Start(0)
	s.mu.Unlock()
	if len(s.payloads) == 0 {
		// Empty flow: nothing will ever be acknowledged, so complete now
		// and just announce the zero length.
		s.once.Do(func() { close(s.doneCh) })
	}

	go s.ackLoop()

	pktBuf := make([]byte, dataHeaderLen+MSS)
	for {
		select {
		case <-s.doneCh:
			return s.sendFin()
		case <-s.failCh:
			return s.failErr
		default:
		}

		s.mu.Lock()
		seq, payload, isRtx := s.pickNextLocked()
		var interval time.Duration
		if payload != nil {
			now := s.now()
			rate := s.pcc.Rate(now)
			if rate < 2*MSS {
				rate = 2 * MSS
			}
			nanos := time.Since(s.start).Nanoseconds()
			n := encodeData(pktBuf, s.flowID, seq, nanos, payload)
			s.pcc.OnSend(seq, len(payload), now)
			s.sentAt[seq] = now
			s.sent++
			s.sentBytes += int64(len(payload))
			if isRtx {
				s.rtxBytes += int64(len(payload))
			}
			s.mu.Unlock()
			if _, err := s.conn.WriteToUDP(pktBuf[:n], s.peer); err != nil {
				return err
			}
			interval = time.Duration(float64(len(payload)) / rate * 1e9)
		} else {
			// Everything sent; wait for stragglers or retransmissions.
			s.mu.Unlock()
			interval = 2 * time.Millisecond
			s.scheduleTailCheck()
		}
		time.Sleep(interval)
	}
}

// sendFin announces the flow length and waits for the receiver's fin-ack.
// Each unconfirmed copy is followed by an exponentially growing wait — the
// first gap a couple of smoothed RTTs, doubling up to finGapCeil — and
// exhausting the budget without a confirmation returns a typed
// RetryExceededError. A write error means the socket closed under us; the
// flow itself is already fully acknowledged, so that is success, not
// failure.
func (s *Sender) sendFin() error {
	finBuf := make([]byte, 16)
	n := encodeFin(finBuf, s.flowID, int64(len(s.payloads)))
	s.mu.Lock()
	gap := 2 * s.pcc.SRTT()
	s.mu.Unlock()
	if gap < 0.005 {
		gap = 0.005
	}
	if gap > 0.1 {
		gap = 0.1
	}
	for i := 0; i < finRetries; i++ {
		if _, err := s.conn.WriteToUDP(finBuf[:n], s.peer); err != nil {
			return nil
		}
		select {
		case <-s.finAck:
			return nil
		case <-time.After(time.Duration(gap * 1e9)):
		}
		gap *= 2
		if gap > finGapCeil {
			gap = finGapCeil
		}
	}
	return &RetryExceededError{Stage: "fin", FlowID: s.flowID, Seq: -1, Attempts: finRetries}
}

// pickNextLocked returns the next retransmission or fresh packet, and
// whether it is a retransmission.
func (s *Sender) pickNextLocked() (int64, []byte, bool) {
	for len(s.rtxQ) > 0 {
		seq := s.rtxQ[0]
		s.rtxQ = s.rtxQ[1:]
		if !s.sacked[seq] && s.lost[seq] {
			s.lost[seq] = false
			s.rtx++
			s.attempts[seq]++
			return seq, s.payloads[seq], true
		}
	}
	if s.nextSeq < int64(len(s.payloads)) {
		seq := s.nextSeq
		s.nextSeq++
		return seq, s.payloads[seq], false
	}
	return 0, nil, false
}

// scheduleTailCheck re-marks long-unacknowledged packets as lost when the
// stream has drained (tail loss). Only packets older than their RTO are
// eligible — fresher ones may simply still be in flight, and re-marking
// them on every 2 ms idle tick would turn the stream tail into a spurious
// retransmission storm (each copy re-entering the queue before its
// predecessor's ACK could possibly return).
//
// The RTO is per-sequence and exponentially backed off: base (2 smoothed
// RTTs, floored) doubled per prior retransmission of that sequence, capped
// at rtoCeil. A packet that would exceed its retry budget fails the flow
// with a typed error instead of re-queueing: "connect" while nothing has
// ever been acknowledged (the establishment budget is short), "data" after.
func (s *Sender) scheduleTailCheck() {
	s.mu.Lock()
	base := 2 * s.pcc.SRTT()
	if base < 0.05 {
		base = 0.05
	}
	now := s.now()
	var give *RetryExceededError
	for seq := s.cumAck; seq < s.nextSeq; seq++ {
		if s.sacked[seq] || s.lost[seq] {
			continue
		}
		rto := math.Ldexp(base, s.attempts[seq])
		if rto > rtoCeil {
			rto = rtoCeil
		}
		if now-s.sentAt[seq] <= rto {
			continue
		}
		limit, stage := maxDataRetries, "data"
		if s.ackedBytes == 0 && s.cumAck == 0 {
			limit, stage = maxConnRetries, "connect"
		}
		if s.attempts[seq] >= limit {
			give = &RetryExceededError{Stage: stage, FlowID: s.flowID, Seq: seq, Attempts: s.attempts[seq]}
			break
		}
		s.lost[seq] = true
		s.rtxQ = append(s.rtxQ, seq)
	}
	s.mu.Unlock()
	if give != nil {
		s.fail(give)
	}
}

// fail records the first fatal error and unblocks Run.
func (s *Sender) fail(err error) {
	s.failOnce.Do(func() {
		s.failErr = err
		close(s.failCh)
	})
}

// ackLoop ingests acknowledgments.
func (s *Sender) ackLoop() {
	buf := make([]byte, 2048)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n == 0 || buf[0] != typeAck {
			continue
		}
		a, err := decodeAck(buf[:n])
		if err != nil {
			continue
		}
		s.onAck(a)
	}
}

func (s *Sender) onAck(a Ack) {
	if a.EchoSeq == finAckEcho {
		// The receiver confirmed a FIN; the flow was already fully
		// acknowledged when the FIN went out, so there is no data feedback
		// left to ingest.
		s.finAckOnce.Do(func() { close(s.finAck) })
		return
	}
	s.mu.Lock()
	now := s.now()

	ackOne := func(seq int64, rtt float64) {
		if seq < 0 || seq >= int64(len(s.sacked)) || s.sacked[seq] {
			return
		}
		s.sacked[seq] = true
		s.ackedBytes += int64(len(s.payloads[seq]))
		s.pcc.OnAck(seq, rtt, now)
	}

	if a.EchoSeq >= 0 && a.EchoSeq < int64(len(s.sacked)) {
		rtt := float64(time.Since(s.start).Nanoseconds()-a.EchoNanos) / 1e9
		ackOne(a.EchoSeq, rtt)
	}
	for ; s.cumAck < a.CumAck && s.cumAck < int64(len(s.sacked)); s.cumAck++ {
		ackOne(s.cumAck, 0)
	}
	for _, rg := range a.Ranges {
		for seq := rg.Start; seq <= rg.End && seq < int64(len(s.sacked)); seq++ {
			ackOne(seq, 0)
		}
		if rg.End > s.sackHigh {
			s.sackHigh = rg.End
		}
	}
	if a.CumAck-1 > s.sackHigh {
		s.sackHigh = a.CumAck - 1
	}

	// SACK-gap loss detection, one pass per sequence.
	limit := s.sackHigh - 3
	for ; s.lossScan <= limit && s.lossScan < int64(len(s.sacked)); s.lossScan++ {
		seq := s.lossScan
		if !s.sacked[seq] && !s.lost[seq] {
			s.lost[seq] = true
			s.rtxQ = append(s.rtxQ, seq)
		}
	}

	complete := s.cumAck >= int64(len(s.payloads))
	s.mu.Unlock()
	if complete {
		s.once.Do(func() { close(s.doneCh) })
	}
}
