package transport

import (
	"io"
	"net"
	"sync"
	"time"

	"pcc/internal/core"
)

// Sender transmits a byte stream over UDP, paced at the rate the PCC
// controller chooses. It is the real-network counterpart of the simulator's
// RateSender: the identical core.PCC state machine drives both (§2.3 —
// deployment needs only a sender-side change).
type Sender struct {
	conn   *net.UDPConn
	peer   *net.UDPAddr
	flowID uint32

	mu    sync.Mutex
	pcc   *core.PCC
	start time.Time

	payloads [][]byte // chunked flow contents
	sacked   []bool
	lost     []bool
	rtxQ     []int64
	cumAck   int64
	sackHigh int64
	lossScan int64
	nextSeq  int64

	sent int64
	rtx  int64

	doneCh chan struct{}
	once   sync.Once
}

// NewSender chunks the contents of r into packets and prepares a sender
// with the given PCC configuration. The whole flow is buffered in memory —
// these tools move files, like the paper's prototype.
func NewSender(conn *net.UDPConn, peer *net.UDPAddr, cfg core.Config, r io.Reader) (*Sender, error) {
	s := &Sender{
		conn:   conn,
		peer:   peer,
		flowID: 1,
		pcc:    core.New(cfg, nil),
		doneCh: make(chan struct{}),
	}
	buf := make([]byte, MSS)
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			s.payloads = append(s.payloads, append([]byte(nil), buf[:n]...))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	s.sacked = make([]bool, len(s.payloads))
	s.lost = make([]bool, len(s.payloads))
	return s, nil
}

// Done is closed when every packet has been acknowledged.
func (s *Sender) Done() <-chan struct{} { return s.doneCh }

// Stats returns (packets sent, retransmissions).
func (s *Sender) Stats() (sent, rtx int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent, s.rtx
}

// Rate returns the controller's current rate in bytes/s.
func (s *Sender) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pcc.Rate(s.now())
}

func (s *Sender) now() float64 { return time.Since(s.start).Seconds() }

// Run transmits until the flow is fully acknowledged or the socket fails.
func (s *Sender) Run() error {
	s.start = time.Now()
	s.mu.Lock()
	s.pcc.Start(0)
	s.mu.Unlock()

	go s.ackLoop()

	finBuf := make([]byte, 16)
	pktBuf := make([]byte, dataHeaderLen+MSS)
	for {
		select {
		case <-s.doneCh:
			n := encodeFin(finBuf, s.flowID, int64(len(s.payloads)))
			s.conn.WriteToUDP(finBuf[:n], s.peer)
			return nil
		default:
		}

		s.mu.Lock()
		seq, payload := s.pickNextLocked()
		var interval time.Duration
		if payload != nil {
			now := s.now()
			rate := s.pcc.Rate(now)
			if rate < 2*MSS {
				rate = 2 * MSS
			}
			nanos := time.Since(s.start).Nanoseconds()
			n := encodeData(pktBuf, s.flowID, seq, nanos, payload)
			s.pcc.OnSend(seq, MSS, now)
			s.sent++
			s.mu.Unlock()
			if _, err := s.conn.WriteToUDP(pktBuf[:n], s.peer); err != nil {
				return err
			}
			interval = time.Duration(float64(MSS) / rate * 1e9)
		} else {
			// Everything sent; wait for stragglers or retransmissions.
			s.mu.Unlock()
			interval = 2 * time.Millisecond
			s.scheduleTailCheck()
		}
		time.Sleep(interval)
	}
}

// pickNextLocked returns the next retransmission or fresh packet.
func (s *Sender) pickNextLocked() (int64, []byte) {
	for len(s.rtxQ) > 0 {
		seq := s.rtxQ[0]
		s.rtxQ = s.rtxQ[1:]
		if !s.sacked[seq] && s.lost[seq] {
			s.lost[seq] = false
			s.rtx++
			return seq, s.payloads[seq]
		}
	}
	if s.nextSeq < int64(len(s.payloads)) {
		seq := s.nextSeq
		s.nextSeq++
		return seq, s.payloads[seq]
	}
	return 0, nil
}

// scheduleTailCheck re-marks long-unacknowledged packets as lost when the
// stream has drained (tail loss).
func (s *Sender) scheduleTailCheck() {
	s.mu.Lock()
	defer s.mu.Unlock()
	rto := 2 * s.pcc.SRTT()
	if rto < 0.05 {
		rto = 0.05
	}
	_ = rto
	for seq := s.cumAck; seq < s.nextSeq; seq++ {
		if !s.sacked[seq] && !s.lost[seq] {
			s.lost[seq] = true
			s.rtxQ = append(s.rtxQ, seq)
		}
	}
}

// ackLoop ingests acknowledgments.
func (s *Sender) ackLoop() {
	buf := make([]byte, 2048)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n == 0 || buf[0] != typeAck {
			continue
		}
		a, err := decodeAck(buf[:n])
		if err != nil {
			continue
		}
		s.onAck(a)
	}
}

func (s *Sender) onAck(a Ack) {
	s.mu.Lock()
	now := s.now()

	ackOne := func(seq int64, rtt float64) {
		if seq < 0 || seq >= int64(len(s.sacked)) || s.sacked[seq] {
			return
		}
		s.sacked[seq] = true
		s.pcc.OnAck(seq, rtt, now)
	}

	if a.EchoSeq >= 0 && a.EchoSeq < int64(len(s.sacked)) {
		rtt := float64(time.Since(s.start).Nanoseconds()-a.EchoNanos) / 1e9
		ackOne(a.EchoSeq, rtt)
	}
	for ; s.cumAck < a.CumAck && s.cumAck < int64(len(s.sacked)); s.cumAck++ {
		ackOne(s.cumAck, 0)
	}
	for _, rg := range a.Ranges {
		for seq := rg.Start; seq <= rg.End && seq < int64(len(s.sacked)); seq++ {
			ackOne(seq, 0)
		}
		if rg.End > s.sackHigh {
			s.sackHigh = rg.End
		}
	}
	if a.CumAck-1 > s.sackHigh {
		s.sackHigh = a.CumAck - 1
	}

	// SACK-gap loss detection, one pass per sequence.
	limit := s.sackHigh - 3
	for ; s.lossScan <= limit && s.lossScan < int64(len(s.sacked)); s.lossScan++ {
		seq := s.lossScan
		if !s.sacked[seq] && !s.lost[seq] {
			s.lost[seq] = true
			s.rtxQ = append(s.rtxQ, seq)
		}
	}

	complete := s.cumAck >= int64(len(s.payloads))
	s.mu.Unlock()
	if complete {
		s.once.Do(func() { close(s.doneCh) })
	}
}
