package transport

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"pcc/internal/core"
)

// loopbackPair binds two UDP sockets on 127.0.0.1 and returns them plus the
// receiver's address.
func loopbackPair(t *testing.T) (send, recv *net.UDPConn, peer *net.UDPAddr) {
	t.Helper()
	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recvConn.Close() })
	sendConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sendConn.Close() })
	return sendConn, recvConn, recvConn.LocalAddr().(*net.UDPAddr)
}

// TestLossyLoopbackTelemetry is the transport integration harness: a
// transfer over a dropping AND reordering path must complete, deliver the
// exact bytes, and keep the sender's byte ledger consistent with the
// receiver's — sent − rtx == acked == BytesWritten == flow length. The
// loss/reorder processes are seeded, so failures reproduce.
func TestLossyLoopbackTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback transfer uses wall-clock time")
	}
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 400*1024+137) // short final chunk on purpose
	rng.Read(data)

	sendConn, recvConn, peer := loopbackPair(t)
	// Loss and reordering on the data path, loss on the ACK path.
	dataSide := newLossyConn(sendConn, 21, 0.05, 0.05)
	ackSide := newLossyConn(recvConn, 22, 0.05, 0)

	var out bytes.Buffer
	recv := NewReceiver(ackSide, &out)
	go recv.Run()

	// The loss-resilient utility tolerates the injected random loss; the
	// safe utility's 5% sigmoid cut-off would pin the rate to the floor.
	cfg := core.HeavyLossConfig(0.002)
	cfg.InitialRate = 5e6
	s, err := NewSender(dataSide, peer, cfg, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Run() }()

	select {
	case <-s.Done():
	case err := <-errCh:
		t.Fatalf("sender exited early: %v", err)
	case <-time.After(60 * time.Second):
		sent, rtx := s.Stats()
		t.Fatalf("transfer timed out: sent=%d rtx=%d recvUniq=%d", sent, rtx, recv.UniquePackets())
	}
	select {
	case <-recv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("receiver did not observe completion (FIN retransmission failed?)")
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatalf("payload corrupted: got %d bytes want %d", out.Len(), len(data))
	}

	sentB, rtxB, ackedB := s.ByteStats()
	flowLen := int64(len(data))
	if ackedB != flowLen {
		t.Errorf("acked bytes %d, want flow length %d", ackedB, flowLen)
	}
	if sentB-rtxB != flowLen {
		t.Errorf("sent(%d) - rtx(%d) = %d bytes, want flow length %d (first transmissions must cover the flow exactly once)",
			sentB, rtxB, sentB-rtxB, flowLen)
	}
	if got := recv.BytesWritten(); got != flowLen {
		t.Errorf("receiver wrote %d bytes, want %d", got, flowLen)
	}
	if dataSide.dropped == 0 {
		t.Error("lossy conn dropped nothing: the harness exercised no loss")
	}
	if rtxB == 0 {
		t.Error("no bytes were retransmitted despite data-path loss")
	}
	t.Logf("sent=%dB rtx=%dB acked=%dB drops(data=%d ack=%d) swaps=%d",
		sentB, rtxB, ackedB, dataSide.dropped, ackSide.dropped, dataSide.swapped)
}

// TestFinRetransmitSurvivesLoss proves the FIN hardening: the first five
// FIN datagrams are swallowed, and the receiver still learns the flow
// length from a retransmitted copy instead of stranding Done forever.
func TestFinRetransmitSurvivesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback transfer uses wall-clock time")
	}
	data := make([]byte, 40*1024)
	rand.New(rand.NewSource(3)).Read(data)

	sendConn, recvConn, peer := loopbackPair(t)
	dataSide := &finDropConn{UDPConn: sendConn, drops: 5}

	var out bytes.Buffer
	recv := NewReceiver(recvConn, &out)
	go recv.Run()

	cfg := core.DefaultConfig(0.002)
	cfg.InitialRate = 5e6
	s, err := NewSender(dataSide, peer, cfg, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Run() }()

	select {
	case <-s.Done():
	case err := <-errCh:
		t.Fatalf("sender exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("transfer timed out")
	}
	select {
	case <-recv.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("receiver stranded: %d FINs seen by the dropper, none got through?", dataSide.finsSeen())
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatalf("payload corrupted: got %d bytes want %d", out.Len(), len(data))
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	if seen := dataSide.finsSeen(); seen < 6 {
		t.Errorf("only %d FINs sent; the retransmission timer never fired", seen)
	}
}

// TestTailCheckAgeGate is the regression for the tail retransmission storm:
// the drained-stream check must only re-mark packets older than an RTO, not
// every unacked packet on every 2 ms idle tick.
func TestTailCheckAgeGate(t *testing.T) {
	data := make([]byte, 10*MSS)
	s, err := NewSender(nil, nil, core.DefaultConfig(0.01), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	s.start = time.Now()
	// Simulate a fully-sent stream: every packet just left the wire.
	now := s.now()
	s.nextSeq = int64(len(s.payloads))
	for i := range s.sentAt {
		s.sentAt[i] = now
	}
	s.sacked[3] = true

	s.scheduleTailCheck()
	if len(s.rtxQ) != 0 {
		t.Fatalf("tail check declared %d fresh in-flight packets lost (the old storm)", len(s.rtxQ))
	}

	// Age the odd-numbered packets past any plausible RTO; the young and
	// the SACKed must stay untouched.
	for i := range s.sentAt {
		if i%2 == 1 {
			s.sentAt[i] = now - 10
		}
	}
	s.scheduleTailCheck()
	for _, seq := range s.rtxQ {
		if seq%2 != 1 || s.sacked[seq] {
			t.Fatalf("tail check marked seq %d (young or SACKed)", seq)
		}
		if !s.lost[seq] {
			t.Fatalf("seq %d queued but not marked lost", seq)
		}
	}
	want := 0
	for i := range s.payloads {
		if i%2 == 1 && !s.sacked[i] {
			want++
		}
	}
	if len(s.rtxQ) != want {
		t.Fatalf("tail check marked %d packets, want %d aged unSACKed ones", len(s.rtxQ), want)
	}
}
