package transport

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeConnData builds a raw data packet for direct onData injection.
func mkHeader(seq int64) DataHeader {
	return DataHeader{FlowID: 1, Seq: seq, SentNanos: seq * 1000, PayloadLen: 8}
}

func payloadFor(seq int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(seq))
	return b
}

// TestReassemblyInOrderDelivery: any permutation of packet arrivals must
// produce in-order byte delivery with no duplicates or gaps.
func TestReassemblyPermutationProperty(t *testing.T) {
	f := func(permSeed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(permSeed))
		order := rng.Perm(n)

		var out bytes.Buffer
		r := NewReceiver(nil, &out)
		for _, i := range order {
			r.onData(mkHeader(int64(i)), payloadFor(int64(i)))
			// Duplicate some packets: must be idempotent.
			if i%3 == 0 {
				r.onData(mkHeader(int64(i)), payloadFor(int64(i)))
			}
		}
		if r.cumAck != int64(n) {
			return false
		}
		want := make([]byte, 0, 8*n)
		for i := 0; i < n; i++ {
			want = append(want, payloadFor(int64(i))...)
		}
		return bytes.Equal(out.Bytes(), want) && r.UniquePackets() == int64(n)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRangeTracking: the receiver's SACK range list must exactly describe
// the out-of-order set.
func TestRangeTracking(t *testing.T) {
	r := NewReceiver(nil, nil)
	for _, seq := range []int64{5, 3, 7, 6, 10} {
		r.onData(mkHeader(seq), payloadFor(seq))
	}
	// cumAck = 0; ranges should be [3,3] [5,7] [10,10].
	want := []AckRange{{3, 3}, {5, 7}, {10, 10}}
	if len(r.ranges) != len(want) {
		t.Fatalf("ranges = %v, want %v", r.ranges, want)
	}
	for i, rg := range want {
		if r.ranges[i] != rg {
			t.Fatalf("ranges = %v, want %v", r.ranges, want)
		}
	}
	// Fill the head: ranges below cumAck must be trimmed.
	r.onData(mkHeader(0), payloadFor(0))
	r.onData(mkHeader(1), payloadFor(1))
	r.onData(mkHeader(2), payloadFor(2))
	if r.cumAck != 4 {
		t.Fatalf("cumAck = %d, want 4", r.cumAck)
	}
	if len(r.ranges) != 2 || r.ranges[0] != (AckRange{5, 7}) {
		t.Fatalf("ranges after trim = %v", r.ranges)
	}
}

// Property: range list is always sorted, non-overlapping, above cumAck.
func TestRangeInvariantProperty(t *testing.T) {
	f := func(seqsRaw []uint8) bool {
		r := NewReceiver(nil, nil)
		for _, s := range seqsRaw {
			r.onData(mkHeader(int64(s)), payloadFor(int64(s)))
		}
		prev := r.cumAck - 1
		for _, rg := range r.ranges {
			if rg.Start <= prev || rg.End < rg.Start {
				return false
			}
			prev = rg.End + 1 // adjacent ranges must have been merged
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
