package transport

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip fuzzes the wire codec with raw bytes: any input that
// decodes must re-encode to the identical wire image (modulo the documented
// 32-range ACK truncation) and decode again to the identical structure.
// Seed corpus entries live in testdata/fuzz/FuzzWireRoundTrip; a few
// programmatic seeds below cover each packet type and the empty input.
func FuzzWireRoundTrip(f *testing.F) {
	var buf [4096]byte
	n := encodeData(buf[:], 7, 42, 12345, []byte("hello, wire"))
	f.Add(append([]byte(nil), buf[:n]...))
	n = encodeAck(buf[:], Ack{FlowID: 7, CumAck: 9,
		Ranges: []AckRange{{Start: 1, End: 3}, {Start: 5, End: 5}}, EchoSeq: 11, EchoNanos: 99})
	f.Add(append([]byte(nil), buf[:n]...))
	n = encodeFin(buf[:], 3, 1<<40)
	f.Add(append([]byte(nil), buf[:n]...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})
	// Wire edge cases: the maximum 32-range ACK (must round-trip through
	// the receiver's 1024-byte ackBuf), the same ACK truncated inside its
	// trailing echo fields, and a zero-length final payload.
	n = encodeAck(buf[:], maxAck())
	f.Add(append([]byte(nil), buf[:n]...))
	f.Add(append([]byte(nil), buf[:n-7]...))
	n = encodeData(buf[:], 3, 77, 555, nil)
	f.Add(append([]byte(nil), buf[:n]...))

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) == 0 {
			return
		}
		switch b[0] {
		case typeData:
			h, payload, err := decodeData(b)
			if err != nil {
				return // malformed input must only error, never panic
			}
			if h.PayloadLen != len(payload) {
				t.Fatalf("decodeData: header says %d payload bytes, returned %d", h.PayloadLen, len(payload))
			}
			out := make([]byte, dataHeaderLen+len(payload))
			n := encodeData(out, h.FlowID, h.Seq, h.SentNanos, payload)
			if !bytes.Equal(out[:n], b[:n]) {
				t.Fatalf("data re-encode mismatch:\n in: %x\nout: %x", b[:n], out[:n])
			}
		case typeAck:
			a, err := decodeAck(b)
			if err != nil {
				return
			}
			out := make([]byte, 14+16*len(a.Ranges)+16)
			n := encodeAck(out, a)
			a2, err := decodeAck(out[:n])
			if err != nil {
				t.Fatalf("re-decode of re-encoded ack failed: %v", err)
			}
			want := a
			if len(want.Ranges) > 32 {
				// encodeAck documents truncation to 32 SACK ranges.
				want.Ranges = want.Ranges[:32]
			}
			if !reflect.DeepEqual(a2, want) {
				t.Fatalf("ack round-trip mismatch:\nwant %+v\ngot  %+v", want, a2)
			}
		case typeFin:
			id, total, err := decodeFin(b)
			if err != nil {
				return
			}
			out := make([]byte, 13)
			n := encodeFin(out, id, total)
			id2, total2, err := decodeFin(out[:n])
			if err != nil || id2 != id || total2 != total {
				t.Fatalf("fin round-trip mismatch: (%d,%d,%v) vs (%d,%d)", id2, total2, err, id, total)
			}
		default:
			// Unknown type byte: every decoder must reject it without panicking.
			if _, _, err := decodeData(b); err == nil {
				t.Fatal("decodeData accepted a mistyped packet")
			}
			if _, err := decodeAck(b); err == nil {
				t.Fatal("decodeAck accepted a mistyped packet")
			}
			if _, _, err := decodeFin(b); err == nil {
				t.Fatal("decodeFin accepted a mistyped packet")
			}
		}
	})
}
