package transport

import (
	"bytes"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"pcc/internal/core"
)

func TestWireDataRoundTrip(t *testing.T) {
	buf := make([]byte, dataHeaderLen+MSS)
	payload := []byte("hello pcc")
	n := encodeData(buf, 7, 42, 12345, payload)
	h, got, err := decodeData(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.FlowID != 7 || h.Seq != 42 || h.SentNanos != 12345 || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip mismatch: %+v %q", h, got)
	}
}

func TestWireAckRoundTripQuick(t *testing.T) {
	f := func(flow uint32, cum int64, starts []int64, echoSeq, echoNanos int64) bool {
		if cum < 0 {
			cum = -cum
		}
		a := Ack{FlowID: flow, CumAck: cum, EchoSeq: echoSeq, EchoNanos: echoNanos}
		for i, s := range starts {
			if i >= 32 {
				break
			}
			if s < 0 {
				s = -s
			}
			a.Ranges = append(a.Ranges, AckRange{Start: s, End: s + int64(i)})
		}
		buf := make([]byte, 2048)
		n := encodeAck(buf, a)
		got, err := decodeAck(buf[:n])
		if err != nil {
			return false
		}
		if len(a.Ranges) == 0 {
			a.Ranges = nil
		}
		return reflect.DeepEqual(a, got)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWireDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := decodeData([]byte{typeAck, 0}); err == nil {
		t.Error("decodeData accepted an ack")
	}
	if _, err := decodeAck([]byte{typeData}); err == nil {
		t.Error("decodeAck accepted a short packet")
	}
	if _, _, err := decodeFin([]byte{typeFin, 0}); err == nil {
		t.Error("decodeFin accepted a short packet")
	}
}

// TestLoopbackTransfer moves ~300 KB over real loopback UDP with the PCC
// controller pacing and verifies byte-exact delivery.
func TestLoopbackTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback transfer uses wall-clock time")
	}
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 300*1024)
	rng.Read(data)

	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recvConn.Close()
	sendConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sendConn.Close()

	var out bytes.Buffer
	recv := NewReceiver(recvConn, &out)
	go recv.Run()

	cfg := core.DefaultConfig(0.002)
	cfg.InitialRate = 5e6 // 40 Mbps start keeps the test fast on loopback
	s, err := NewSender(sendConn, recvConn.LocalAddr().(*net.UDPAddr), cfg, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Run() }()

	select {
	case <-s.Done():
	case err := <-errCh:
		t.Fatalf("sender exited early: %v", err)
	case <-time.After(30 * time.Second):
		sent, rtx := s.Stats()
		t.Fatalf("transfer timed out: sent=%d rtx=%d recvUniq=%d", sent, rtx, recv.UniquePackets())
	}
	select {
	case <-recv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not observe completion")
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatalf("payload corrupted: got %d bytes want %d", out.Len(), len(data))
	}
	sent, rtx := s.Stats()
	t.Logf("transferred %d bytes in %d packets (%d rtx), final rate %.1f Mbps",
		len(data), sent, rtx, s.Rate()*8/1e6)
}
