package transport

import (
	"reflect"
	"testing"
)

// maxAck builds an acknowledgment with the full 32 SACK ranges.
func maxAck() Ack {
	a := Ack{FlowID: 9, CumAck: 1000, EchoSeq: 4096, EchoNanos: 1 << 50}
	for i := 0; i < 32; i++ {
		start := int64(2000 + 10*i)
		a.Ranges = append(a.Ranges, AckRange{Start: start, End: start + 3})
	}
	return a
}

// TestAckMaxRangesFitsAckBuf pins the receiver's sizing assumption: a
// 32-range ACK (the documented maximum) must round-trip through the
// 1024-byte ackBuf Receiver.Run allocates.
func TestAckMaxRangesFitsAckBuf(t *testing.T) {
	a := maxAck()
	buf := make([]byte, 1024) // same capacity as Receiver.Run's ackBuf
	n := encodeAck(buf, a)
	if n > len(buf) {
		t.Fatalf("32-range ack needs %d bytes, receiver buffer holds %d", n, len(buf))
	}
	got, err := decodeAck(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", a, got)
	}
	// One range past the maximum must truncate to 32, not overflow.
	a.Ranges = append(a.Ranges, AckRange{Start: 9000, End: 9001})
	n = encodeAck(buf, a)
	got, err = decodeAck(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ranges) != 32 {
		t.Fatalf("encodeAck kept %d ranges, want the documented 32", len(got.Ranges))
	}
}

// TestZeroLengthFinalPayload covers the empty final chunk: a data packet
// may legally carry zero payload bytes and must round-trip.
func TestZeroLengthFinalPayload(t *testing.T) {
	buf := make([]byte, dataHeaderLen+MSS)
	n := encodeData(buf, 3, 77, 555, nil)
	if n != dataHeaderLen {
		t.Fatalf("zero-payload packet is %d bytes, want header-only %d", n, dataHeaderLen)
	}
	h, payload, err := decodeData(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.Seq != 77 || h.PayloadLen != 0 || len(payload) != 0 {
		t.Fatalf("zero-payload round-trip: %+v payload %d bytes", h, len(payload))
	}
}

// TestDecodeAckTruncatedEcho: an ACK cut anywhere inside its trailing echo
// fields (or its range list) must error, never mis-parse or panic.
func TestDecodeAckTruncatedEcho(t *testing.T) {
	a := maxAck()
	buf := make([]byte, 1024)
	n := encodeAck(buf, a)
	for cut := n - 1; cut >= 14; cut-- {
		if _, err := decodeAck(buf[:cut]); err == nil {
			t.Fatalf("decodeAck accepted an ack truncated to %d of %d bytes", cut, n)
		}
	}
	// Below the fixed header it must also reject.
	for cut := 13; cut >= 0; cut-- {
		if _, err := decodeAck(buf[:cut]); err == nil {
			t.Fatalf("decodeAck accepted a %d-byte fragment", cut)
		}
	}
}
