package transport

import "fmt"

// Retry ceilings. The simulator can assume its packets eventually arrive;
// the real-network transport cannot: a peer that vanished, a blackholed
// route, or a firewall that eats one direction would otherwise leave the
// sender retransmitting forever. Each stage of a flow's life has a bounded
// retry budget, and exhausting it surfaces a RetryExceededError instead of
// a silent hang.
const (
	// maxConnRetries bounds retransmissions while nothing has EVER been
	// acknowledged — the establishment phase. A peer that answers nothing at
	// all should fail fast, not after the full data budget.
	maxConnRetries = 6
	// maxDataRetries bounds retransmissions of any single data packet once
	// the connection has shown signs of life.
	maxDataRetries = 20
	// rtoCeil caps the exponentially backed-off retransmission timeout,
	// seconds. Backoff doubles per retry from the smoothed-RTT base but a
	// single slow packet must not push the probe cadence into minutes.
	rtoCeil = 2.0
	// finGapCeil caps the exponentially backed-off gap between FIN repeats,
	// seconds.
	finGapCeil = 1.0
)

// RetryExceededError reports a flow that gave up after exhausting a retry
// budget. Stage says which phase failed: "connect" (nothing was ever
// acknowledged), "data" (one packet exceeded its retransmission budget
// mid-flow), or "fin" (the close handshake was never confirmed; Seq is -1).
type RetryExceededError struct {
	Stage    string
	FlowID   uint32
	Seq      int64
	Attempts int
}

func (e *RetryExceededError) Error() string {
	if e.Stage == "fin" {
		return fmt.Sprintf("transport: flow %d: fin unconfirmed after %d attempts", e.FlowID, e.Attempts)
	}
	return fmt.Sprintf("transport: flow %d: %s retry budget exhausted (seq %d, %d retransmissions)",
		e.FlowID, e.Stage, e.Seq, e.Attempts)
}
