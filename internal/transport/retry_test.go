package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"pcc/internal/core"
)

// blackholeConn accepts every write and answers nothing — a peer that does
// not exist. Reads block until the test closes the conn.
type blackholeConn struct {
	closed chan struct{}
}

func (c *blackholeConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	<-c.closed
	return 0, nil, net.ErrClosed
}

func (c *blackholeConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return len(b), nil
}

// TestRetryBudgetStages drives scheduleTailCheck directly through both
// give-up stages: with nothing ever acknowledged the short establishment
// budget applies ("connect"); once bytes have been acknowledged the data
// budget applies ("data"). Packets still inside their budget must keep
// being re-queued, not fail.
func TestRetryBudgetStages(t *testing.T) {
	mk := func() *Sender {
		s, err := NewSender(nil, nil, core.DefaultConfig(0.01), bytes.NewReader(make([]byte, 4*MSS)))
		if err != nil {
			t.Fatal(err)
		}
		s.start = time.Now()
		s.nextSeq = int64(len(s.payloads))
		for i := range s.sentAt {
			s.sentAt[i] = s.now() - 100 // ancient: older than any backed-off RTO
		}
		return s
	}

	s := mk()
	s.attempts[0] = maxConnRetries // at the establishment ceiling
	s.scheduleTailCheck()
	var re *RetryExceededError
	select {
	case <-s.failCh:
	default:
		t.Fatal("connect-stage budget exhaustion did not fail the flow")
	}
	if !errors.As(s.failErr, &re) || re.Stage != "connect" || re.Seq != 0 || re.Attempts != maxConnRetries {
		t.Fatalf("failErr = %v, want connect-stage RetryExceededError for seq 0", s.failErr)
	}

	s = mk()
	s.ackedBytes = MSS // the peer is alive: data budget applies
	s.attempts[1] = maxConnRetries
	s.attempts[2] = maxDataRetries
	s.scheduleTailCheck()
	select {
	case <-s.failCh:
	default:
		t.Fatal("data-stage budget exhaustion did not fail the flow")
	}
	if !errors.As(s.failErr, &re) || re.Stage != "data" || re.Seq != 2 {
		t.Fatalf("failErr = %v, want data-stage RetryExceededError for seq 2", s.failErr)
	}
	// Seq 1 is past the connect ceiling but inside the data budget: it must
	// have been re-queued before seq 2 failed the flow.
	found := false
	for _, seq := range s.rtxQ {
		found = found || seq == 1
	}
	if !found {
		t.Error("seq 1 (within data budget) was not re-queued")
	}
}

// TestRetryBackoffDelaysRequeue pins the exponential RTO: a packet that was
// already retransmitted several times must not be re-marked at the base RTO,
// only after the backed-off (and capped) one.
func TestRetryBackoffDelaysRequeue(t *testing.T) {
	s, err := NewSender(nil, nil, core.DefaultConfig(0.01), bytes.NewReader(make([]byte, 2*MSS)))
	if err != nil {
		t.Fatal(err)
	}
	s.start = time.Now()
	s.nextSeq = int64(len(s.payloads))
	// Base RTO is 50 ms (floored); 4 prior attempts back it off to 800 ms.
	// An 0.5 s old transmission is past the base but inside the backoff.
	age := 0.5
	for i := range s.sentAt {
		s.sentAt[i] = s.now() - age
	}
	s.attempts[0] = 4
	s.scheduleTailCheck()
	for _, seq := range s.rtxQ {
		if seq == 0 {
			t.Fatal("backed-off packet re-marked at the base RTO")
		}
	}
	if len(s.rtxQ) != 1 || s.rtxQ[0] != 1 {
		t.Fatalf("rtxQ = %v, want just seq 1 (zero attempts, past base RTO)", s.rtxQ)
	}
	// The cap: with absurdly many attempts the RTO is rtoCeil, not hours, so
	// a transmission older than the ceiling is still eligible — and at that
	// attempt count the budget check fails the flow rather than re-queueing.
	s2, err := NewSender(nil, nil, core.DefaultConfig(0.01), bytes.NewReader(make([]byte, MSS)))
	if err != nil {
		t.Fatal(err)
	}
	s2.start = time.Now()
	s2.nextSeq = 1
	s2.ackedBytes = MSS
	s2.sentAt[0] = s2.now() - (rtoCeil + 0.5)
	s2.attempts[0] = maxDataRetries + 3
	s2.scheduleTailCheck()
	select {
	case <-s2.failCh:
	default:
		t.Fatal("capped RTO never elapsed: the ceiling is not applied")
	}
}

// TestBlackholePeerFailsConnect sends a small flow into a peer that answers
// nothing: the sender must give up with a connect-stage RetryExceededError
// instead of retransmitting forever.
func TestBlackholePeerFailsConnect(t *testing.T) {
	if testing.Short() {
		t.Skip("exhausts the establishment retry budget in wall-clock time")
	}
	conn := &blackholeConn{closed: make(chan struct{})}
	t.Cleanup(func() { close(conn.closed) })
	cfg := core.DefaultConfig(0.002)
	cfg.InitialRate = 5e6
	s, err := NewSender(conn, &net.UDPAddr{}, cfg, bytes.NewReader(make([]byte, 3*MSS)))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Run() }()
	select {
	case err := <-errCh:
		var re *RetryExceededError
		if !errors.As(err, &re) {
			t.Fatalf("Run returned %v, want RetryExceededError", err)
		}
		if re.Stage != "connect" {
			t.Fatalf("Stage = %q, want connect (nothing was ever acked)", re.Stage)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sender still retransmitting into a blackhole after 30s")
	}
}

// TestFinExhaustionSurfacesError swallows every FIN: the close handshake can
// never be confirmed, so after the bounded exponentially-spaced repeats the
// sender must return a fin-stage RetryExceededError (the data transfer
// itself succeeded — Done fires first).
func TestFinExhaustionSurfacesError(t *testing.T) {
	if testing.Short() {
		t.Skip("exhausts the FIN retry budget in wall-clock time")
	}
	data := make([]byte, 20*1024)
	rand.New(rand.NewSource(11)).Read(data)
	sendConn, recvConn, peer := loopbackPair(t)
	dataSide := &finDropConn{UDPConn: sendConn, drops: 1 << 30}

	recv := NewReceiver(recvConn, &bytes.Buffer{})
	go recv.Run()

	cfg := core.DefaultConfig(0.002)
	cfg.InitialRate = 5e6
	s, err := NewSender(dataSide, peer, cfg, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Run() }()
	select {
	case <-s.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("data transfer did not complete")
	}
	select {
	case err := <-errCh:
		var re *RetryExceededError
		if !errors.As(err, &re) || re.Stage != "fin" {
			t.Fatalf("Run returned %v, want fin-stage RetryExceededError", err)
		}
		if re.Attempts != finRetries {
			t.Fatalf("Attempts = %d, want %d", re.Attempts, finRetries)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sender never gave up on the unconfirmable FIN")
	}
	if seen := dataSide.finsSeen(); seen != finRetries {
		t.Errorf("%d FINs sent, want exactly %d", seen, finRetries)
	}
}
