// Package transport is a user-space reliable transport over UDP driven by
// the PCC controller from internal/core — the analogue of the paper's
// UDT-based prototype (§3). The sender paces MSS-sized data packets at the
// rate PCC chooses, the receiver batches selective acknowledgments, and the
// monitor module aggregates them into per-MI metrics for the controller.
// No kernel support, router support or receiver intelligence is needed
// (§2.3): the receiver only echoes what it saw.
//
// Wire format (all integers big-endian):
//
//	data packet:  type(1)=0x01 | flowID(4) | seq(8) | sentNanos(8) | payloadLen(2) | payload
//	ack packet:   type(1)=0x02 | flowID(4) | cumAck(8) | nRanges(1) |
//	              nRanges × { startSeq(8) | endSeq(8) } |
//	              echoSeq(8) | echoSentNanos(8)
//	fin packet:   type(1)=0x03 | flowID(4) | totalPkts(8)
//
// The echo fields carry the most recently received packet's seq and send
// timestamp so the sender can measure RTT without keeping per-packet clocks
// synchronized.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
)

// UDPConn is the socket surface Sender and Receiver need: the two datagram
// calls of *net.UDPConn. Tests substitute in-process lossy/reordering
// wrappers (see lossyconn_test.go) to harden the transport against the
// pathologies real networks produce — dropped FINs, reordered data,
// spurious tail timeouts — without leaving the process or the seed.
type UDPConn interface {
	ReadFromUDP(b []byte) (int, *net.UDPAddr, error)
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
}

var _ UDPConn = (*net.UDPConn)(nil)

// Packet type bytes.
const (
	typeData byte = 0x01
	typeAck  byte = 0x02
	typeFin  byte = 0x03
)

// finAckEcho is the EchoSeq sentinel marking an ack as the receiver's answer
// to a FIN rather than to a data packet. Data echoes are always >= 0, so the
// sentinel cannot collide; the uint64 cast in encodeAck round-trips negative
// values exactly.
const finAckEcho int64 = -2

// MSS is the data payload budget per packet. Headers add 23 bytes; the
// default keeps total under a typical 1500-byte MTU.
const MSS = 1400

const dataHeaderLen = 1 + 4 + 8 + 8 + 2

// AckRange is a contiguous run of received sequence numbers [Start, End].
type AckRange struct {
	Start, End int64
}

// DataHeader is a decoded data-packet header.
type DataHeader struct {
	FlowID     uint32
	Seq        int64
	SentNanos  int64
	PayloadLen int
}

// Ack is a decoded acknowledgment.
type Ack struct {
	FlowID    uint32
	CumAck    int64
	Ranges    []AckRange
	EchoSeq   int64
	EchoNanos int64
}

// encodeData writes a data packet into buf and returns the packet length.
// buf must have room for dataHeaderLen+len(payload) bytes.
func encodeData(buf []byte, flowID uint32, seq, sentNanos int64, payload []byte) int {
	buf[0] = typeData
	binary.BigEndian.PutUint32(buf[1:], flowID)
	binary.BigEndian.PutUint64(buf[5:], uint64(seq))
	binary.BigEndian.PutUint64(buf[13:], uint64(sentNanos))
	binary.BigEndian.PutUint16(buf[21:], uint16(len(payload)))
	copy(buf[dataHeaderLen:], payload)
	return dataHeaderLen + len(payload)
}

// decodeData parses a data packet.
func decodeData(b []byte) (DataHeader, []byte, error) {
	if len(b) < dataHeaderLen || b[0] != typeData {
		return DataHeader{}, nil, errors.New("transport: short or mistyped data packet")
	}
	h := DataHeader{
		FlowID:     binary.BigEndian.Uint32(b[1:]),
		Seq:        int64(binary.BigEndian.Uint64(b[5:])),
		SentNanos:  int64(binary.BigEndian.Uint64(b[13:])),
		PayloadLen: int(binary.BigEndian.Uint16(b[21:])),
	}
	if len(b) < dataHeaderLen+h.PayloadLen {
		return DataHeader{}, nil, fmt.Errorf("transport: truncated payload: have %d want %d", len(b)-dataHeaderLen, h.PayloadLen)
	}
	return h, b[dataHeaderLen : dataHeaderLen+h.PayloadLen], nil
}

// encodeAck writes an acknowledgment into buf, truncating ranges to what
// fits, and returns the packet length.
func encodeAck(buf []byte, a Ack) int {
	const maxRanges = 32
	n := len(a.Ranges)
	if n > maxRanges {
		n = maxRanges
	}
	buf[0] = typeAck
	binary.BigEndian.PutUint32(buf[1:], a.FlowID)
	binary.BigEndian.PutUint64(buf[5:], uint64(a.CumAck))
	buf[13] = byte(n)
	off := 14
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(buf[off:], uint64(a.Ranges[i].Start))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(a.Ranges[i].End))
		off += 16
	}
	binary.BigEndian.PutUint64(buf[off:], uint64(a.EchoSeq))
	binary.BigEndian.PutUint64(buf[off+8:], uint64(a.EchoNanos))
	return off + 16
}

// decodeAck parses an acknowledgment.
func decodeAck(b []byte) (Ack, error) {
	if len(b) < 14 || b[0] != typeAck {
		return Ack{}, errors.New("transport: short or mistyped ack")
	}
	a := Ack{
		FlowID: binary.BigEndian.Uint32(b[1:]),
		CumAck: int64(binary.BigEndian.Uint64(b[5:])),
	}
	n := int(b[13])
	off := 14
	if len(b) < off+16*n+16 {
		return Ack{}, errors.New("transport: truncated ack ranges")
	}
	for i := 0; i < n; i++ {
		a.Ranges = append(a.Ranges, AckRange{
			Start: int64(binary.BigEndian.Uint64(b[off:])),
			End:   int64(binary.BigEndian.Uint64(b[off+8:])),
		})
		off += 16
	}
	a.EchoSeq = int64(binary.BigEndian.Uint64(b[off:]))
	a.EchoNanos = int64(binary.BigEndian.Uint64(b[off+8:]))
	return a, nil
}

// encodeFin writes a fin packet announcing the flow length.
func encodeFin(buf []byte, flowID uint32, totalPkts int64) int {
	buf[0] = typeFin
	binary.BigEndian.PutUint32(buf[1:], flowID)
	binary.BigEndian.PutUint64(buf[5:], uint64(totalPkts))
	return 13
}

// decodeFin parses a fin packet.
func decodeFin(b []byte) (flowID uint32, totalPkts int64, err error) {
	if len(b) < 13 || b[0] != typeFin {
		return 0, 0, errors.New("transport: short or mistyped fin")
	}
	return binary.BigEndian.Uint32(b[1:]), int64(binary.BigEndian.Uint64(b[5:])), nil
}
