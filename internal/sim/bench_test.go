package sim

import "testing"

// BenchmarkEventChurn measures the core schedule→pop→run loop: a chain of
// self-rescheduling events, the dominant pattern of every sender's pacing
// loop. With the event free list and the direct 4-ary heap this runs
// allocation-free after warm-up.
func BenchmarkEventChurn(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Post(0.001, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Post(0.001, tick)
	e.Run()
}

// BenchmarkEventChurnDeep measures pop cost with a deep heap (many pending
// events), the regime of large incast scenarios.
func BenchmarkEventChurnDeep(b *testing.B) {
	e := NewEngine()
	const pending = 4096
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Post(0.001, tick)
		}
	}
	for i := 0; i < pending; i++ {
		e.At(float64(i)*1e9+1e6, func() {}) // far-future ballast
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Post(0.001, tick)
	for n < b.N && e.step() {
	}
}

// BenchmarkWheelChurn measures the timing-wheel path under a dense timer
// population: 4096 live timers rescheduling at spread-out delays across the
// level-0 and level-1 bands, the regime of an incast's worth of senders'
// pacing/monitor/tail timers. The pure heap pays O(log n) per event here;
// the wheel buckets each insertion in O(1) and the residual heap stays
// shallow.
func BenchmarkWheelChurn(b *testing.B) {
	e := NewEngine()
	const timers = 4096
	n := 0
	var tick func(i int) func()
	tick = func(i int) func() {
		var fn func()
		// Deterministic per-timer delay spanning ~160 µs to ~52 ms.
		delay := 0.000160 * float64(1+i%326)
		fn = func() {
			n++
			if n < b.N {
				e.Post(delay, fn)
			}
		}
		return fn
	}
	for i := 0; i < timers; i++ {
		e.Post(0.001, tick(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n < b.N && e.step() {
	}
}

// BenchmarkPostArg measures the closure-free packet-delivery path used by
// netem's links: a long-lived func(any) plus a pointer payload.
func BenchmarkPostArg(b *testing.B) {
	e := NewEngine()
	type payload struct{ n int }
	p := &payload{}
	var deliver func(any)
	deliver = func(a any) {
		pl := a.(*payload)
		pl.n++
		if pl.n < b.N {
			e.PostArg(0.001, deliver, pl)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.PostArg(0.001, deliver, p)
	e.Run()
}

// BenchmarkTimerRearm measures the reusable-Timer path used by
// retransmission and pacing timers (one live Timer rescheduled forever).
func BenchmarkTimerRearm(b *testing.B) {
	e := NewEngine()
	var tm Timer
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Rearm(&tm, 0.001, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Rearm(&tm, 0.001, tick)
	e.Run()
}
