package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// loadEngine parks enough far-future ballast that place() engages the
// timing wheel (the wheelMinHeap bypass is a cost policy for near-empty
// engines; these tests want the wheel exercised).
func loadEngine(e *Engine) {
	for i := 0; i < 2*wheelMinHeap; i++ {
		e.At(1e6+float64(i), func() {})
	}
}

// TestWheelOrderAcrossBands schedules events in every scheduling band —
// same-tick (heap), level 0, level 1, and beyond the horizon (heap
// overflow) — and asserts global (at, seq) execution order.
func TestWheelOrderAcrossBands(t *testing.T) {
	e := NewEngine()
	loadEngine(e)
	delays := []float64{
		0, 1e-9, wheelGranularity / 2, // same-tick band
		wheelGranularity * 3, 0.001, 0.003, // level 0
		0.01, 0.1, 0.9, // level 1
		2.0, 10.0, // beyond the horizon
	}
	var got []float64
	for _, d := range delays {
		d := d
		e.After(d, func() { got = append(got, d) })
	}
	e.RunUntil(100)
	if len(got) != len(delays) {
		t.Fatalf("ran %d events, want %d", len(got), len(delays))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
}

// TestWheelFIFOTieBreak pins same-timestamp FIFO across bands: events
// scheduled at the same instant from different code paths must fire in
// scheduling order even when some were bucketed and flushed.
func TestWheelFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	loadEngine(e)
	var got []int
	const at = 0.05 // level-1 band
	for i := 0; i < 50; i++ {
		i := i
		e.At(at, func() { got = append(got, i) })
	}
	e.RunUntil(1)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO after wheel flush: %v", got)
		}
	}
}

// TestWheelTimerStop cancels wheel-resident timers; they must not fire and
// must be recycled without disturbing live events.
func TestWheelTimerStop(t *testing.T) {
	e := NewEngine()
	loadEngine(e)
	fired := 0
	var timers []*Timer
	for i := 0; i < 20; i++ {
		timers = append(timers, e.After(0.01+float64(i)*0.001, func() { fired++ }))
	}
	for i, tm := range timers {
		if i%2 == 0 && !tm.Stop() {
			t.Fatalf("Stop failed on pending wheel timer %d", i)
		}
	}
	e.RunUntil(1)
	if fired != 10 {
		t.Fatalf("fired %d, want 10 (half stopped)", fired)
	}
}

// TestWheelLongIdle exercises block-crossing and cascade over gaps much
// wider than a level-0 block, and an empty-wheel clock jump.
func TestWheelLongIdle(t *testing.T) {
	e := NewEngine()
	loadEngine(e)
	var got []float64
	for _, d := range []float64{0.0001, 0.5, 0.50001, 1.04, 300} {
		d := d
		e.After(d, func() { got = append(got, d) })
	}
	e.RunUntil(1e5)
	want := []float64{0.0001, 0.5, 0.50001, 1.04, 300}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestWheelOrderProperty is the quick-check ordering property with the
// wheel engaged: any multiset of times executes in sorted order, with ties
// in scheduling order.
func TestWheelOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		loadEngine(e)
		type rec struct {
			at  float64
			ord int
		}
		var got []rec
		for ord, d := range delays {
			at := float64(d) / 5000 // spans all bands up to ~13 s
			ord := ord
			e.At(at, func() { got = append(got, rec{at, ord}) })
		}
		e.RunUntil(1e5)
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].ord < got[i-1].ord {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWheelRunUntilBoundary checks RunUntil stops exactly at the deadline
// with wheel-resident events on both sides of it.
func TestWheelRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	loadEngine(e)
	ran := map[float64]bool{}
	for _, d := range []float64{0.01, 0.02, 0.03, 0.04} {
		d := d
		e.After(d, func() { ran[d] = true })
	}
	e.RunUntil(0.025)
	if !ran[0.01] || !ran[0.02] || ran[0.03] || ran[0.04] {
		t.Fatalf("RunUntil(0.025) ran wrong set: %v", ran)
	}
	if e.Now() != 0.025 {
		t.Fatalf("clock = %v, want 0.025", e.Now())
	}
	e.RunUntil(1)
	if !ran[0.03] || !ran[0.04] {
		t.Fatalf("resume did not drain the wheel: %v", ran)
	}
}

// TestWheelReactivatesAfterIdle pins the cursor-resync fix: after the
// wheel drains and simulated time coasts far past the level-1 horizon, new
// near-future events must still be bucketed (a stale cursor used to make
// every insert look beyond-horizon, silently degrading to pure-heap
// scheduling for the rest of the run).
func TestWheelReactivatesAfterIdle(t *testing.T) {
	e := NewEngine()
	loadEngine(e) // far ballast keeps the heap above wheelMinHeap
	e.After(0.01, func() {})
	e.RunUntil(10) // drain the wheel, coast ~10x past the horizon
	if e.wheel.count != 0 {
		t.Fatalf("wheel still holds %d events after drain", e.wheel.count)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		e.After(0.001*float64(i+1), func() { fired++ })
	}
	if e.wheel.count == 0 {
		t.Fatal("near-future events bypassed the wheel: cursor was not resynced after idle")
	}
	e.RunUntil(11)
	if fired != 10 {
		t.Fatalf("fired %d, want 10", fired)
	}
}

// TestWheelPending counts live events across heap, wheel, and stopped
// timers.
func TestWheelPending(t *testing.T) {
	e := NewEngine()
	loadEngine(e)
	base := e.Pending()
	tm := e.After(0.01, func() {})
	e.After(0.02, func() {})
	if got := e.Pending(); got != base+2 {
		t.Fatalf("Pending = %d, want %d", got, base+2)
	}
	tm.Stop()
	if got := e.Pending(); got != base+1 {
		t.Fatalf("Pending after Stop = %d, want %d", got, base+1)
	}
}
