// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events. Events
// scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-breaking via a monotonically increasing sequence number), which
// makes every simulation in this repository bit-reproducible for a given
// set of RNG seeds.
//
// Time is a float64 number of seconds since the start of the simulation.
// Sub-nanosecond precision is irrelevant at the packet timescales simulated
// here; float64 keeps the arithmetic in experiment code simple.
//
// Engines are not safe for concurrent use; a simulation is a
// single-threaded computation by design. Parallel experiment runners (see
// internal/exp) give every trial its own Engine, so all engine-owned
// resources — the event free list included — stay goroutine-local.
package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Time is a simulated instant, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback. The zero Event is invalid. Events are
// recycled through an engine-owned free list once they fire or are observed
// dead, so code outside this package must hold Timers, never Events.
type Event struct {
	at  Time
	seq uint64
	// gen invalidates Timers pointing at a recycled Event: a Timer is live
	// only while its stored generation matches the event's.
	gen uint64
	// fn is the niladic callback; afn+arg is the closure-free alternative
	// used by hot paths (packet delivery) to avoid allocating a capturing
	// closure per event. Exactly one of fn and afn is set.
	fn   func()
	afn  func(any)
	arg  any
	dead bool
	// pinned marks an event whose storage is owned by another object (a
	// Pipe's embedded delivery slot): release bumps its generation but never
	// hands it to the free list, so the owner can re-arm it in place.
	pinned bool
}

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. A nil or zero Timer is inert: Stop and Active are safe to
// call.
type Timer struct {
	ev  *Event
	gen uint64
}

// live reports whether the timer still refers to the scheduling it was
// created for (the underlying event may be recycled after firing).
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if !t.live() || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// Active reports whether the timer is still pending. (A fired event is
// recycled before its callback runs, which bumps its generation, so a live
// undead event is by construction still queued.)
func (t *Timer) Active() bool {
	return t.live() && !t.ev.dead
}

// When returns the absolute simulated time at which the timer fires.
// It is meaningful only while Active.
func (t *Timer) When() Time {
	if !t.live() {
		return math.Inf(1)
	}
	return t.ev.at
}

// eventHeap is a 4-ary min-heap ordered by (at, seq). It is implemented
// directly rather than via container/heap: the event loop is the hottest
// code in the repository and the interface-based heap spends most of its
// time in Less/Swap dynamic dispatch. The wider fan-out also halves the
// tree depth relative to a binary heap, which matters for the pop-heavy
// access pattern of a simulation. The ordering key rides inline in each
// slot so sift comparisons stay within the heap's own backing array
// instead of chasing an *Event cache line per compare.
type heapItem struct {
	at  Time
	seq uint64
	ev  *Event
}

type eventHeap []heapItem

func evLess(a, b *heapItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) siftUp(i int) {
	it := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(&it, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = it
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	it := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evLess(&h[j], &h[m]) {
				m = j
			}
		}
		if !evLess(&h[m], &it) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = it
}

func (e *Engine) heapPush(ev *Event) {
	e.events = append(e.events, heapItem{at: ev.at, seq: ev.seq, ev: ev})
	e.events.siftUp(len(e.events) - 1)
}

func (e *Engine) heapPop() *Event {
	h := e.events
	top := h[0].ev
	n := len(h) - 1
	h[0] = h[n]
	// h[n] keeps its stale pointer: events are engine-pooled, so the pin is
	// free and skipping the clear avoids a write barrier per pop.
	e.events = h[:n]
	if n > 0 {
		e.events.siftDown(0)
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine. Engine is not safe for concurrent use: a simulation is a
// single-threaded computation by design.
type Engine struct {
	now     Time
	nextSeq uint64
	// events is the residual heap: events inside the current wheel tick,
	// events beyond the wheel horizon, and the contents of flushed wheel
	// slots. Final ordering is always decided here, by (at, seq).
	events eventHeap
	// wheel buckets the dense near-future band of timers so their
	// insertion is O(1) instead of an O(log n) heap push (see wheel.go).
	wheel wheel
	// pipes lists every FIFO delay line (see pipe.go); entries there are
	// pending work the heap and wheel do not see.
	pipes []*Pipe
	// free recycles fired Events; its size is bounded by the peak number of
	// simultaneously queued events.
	free   []*Event
	nRun   uint64
	halted bool

	// batch is the burst-dispatch scratch: every live event sharing the
	// earliest pending timestamp is popped here in one scheduler probe and
	// executed in seq order without re-probing the wheel or heap between
	// events (see Run). Events scheduled *during* the burst at exactly the
	// burst timestamp join the batch in place instead of round-tripping
	// through the heap; batchPos is the index of the entry currently
	// executing. batch is empty whenever the engine is not inside Run /
	// RunUntil.
	batch    []*Event
	batchPos int
	inBurst  bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. It is exposed for
// tests and benchmarks.
func (e *Engine) Processed() uint64 { return e.nRun }

func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// release recycles a popped event. Bumping gen makes every Timer that still
// points here inert. The callback fields are deliberately left in place —
// the next schedule overwrites them all, and anything they pin (a pooled
// packet, a per-link closure) is engine-local state with the engine's own
// lifetime, so skipping three hot-path write barriers costs no memory that
// was not already being retained.
func (e *Engine) release(ev *Event) {
	ev.gen++
	if ev.pinned {
		return
	}
	e.free = append(e.free, ev)
}

// schedule queues a recycled or fresh event. Scheduling in the past panics:
// it is always a bug in the caller, and silently reordering time would
// corrupt results.
func (e *Engine) schedule(at Time, fn func(), afn func(any), arg any) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.nextSeq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	ev.dead = false
	e.nextSeq++
	e.place(ev)
	return ev
}

// scheduleSeq queues fn(arg) at an absolute time under a sequence number the
// caller already drew from nextSeq. It exists for Pipes, which draw one seq
// per entry at Post time and arm their delivery slot with the head entry's
// stored (at, seq) so batched entries keep their original engine-wide order.
func (e *Engine) scheduleSeq(at Time, seq uint64, afn func(any), arg any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = seq
	ev.fn = nil
	ev.afn = afn
	ev.arg = arg
	ev.dead = false
	e.place(ev)
}

// wheelMinHeap is the heap size below which place bypasses the wheel: with
// only a handful of pending events a direct O(log n) push/pop is cheaper
// than bucketing plus a slot flush. Placement is purely a cost policy — the
// heap decides final (at, seq) order either way (see wheel.go) — so the
// threshold cannot change any simulation result.
const wheelMinHeap = 8

// place routes a ready event to the timing wheel when it lands in the
// bucketable band, else to the heap.
func (e *Engine) place(ev *Event) {
	if e.inBurst && ev.at == e.now {
		// Scheduled during a burst at exactly the burst timestamp: it belongs
		// to the batch being executed, so insert it in seq position directly
		// instead of round-tripping through the heap. Fresh sequence numbers
		// (every Post/After/Rearm) exceed all batch seqs and append; only a
		// Pipe re-arming its delivery slot with a stored older seq has to
		// walk backward, and never past the executing position (the pipe's
		// next head always outranks the entry that just fired).
		e.batchInsert(ev)
		return
	}
	if len(e.events) < wheelMinHeap || ev.at <= e.events[0].at {
		// Near-empty engine, or an event earlier than everything already
		// queued: it pops before anything could accumulate above it, so
		// bucketing buys nothing and the flush round-trip is pure cost.
		e.heapPush(ev)
		return
	}
	if e.wheel.count == 0 {
		// An empty wheel's cursor can be arbitrarily stale in either
		// direction: a long quiet stretch leaves it behind the clock, and
		// an empty-wheel flush toward a far heap top fast-forwards it past
		// the horizon (wheelFlushBelow's count==0 jump). Either way every
		// insert would look out-of-band and the wheel would silently
		// degrade to pure-heap scheduling. With no events and an empty
		// level 1 the cursor invariants are vacuous, so snapping it to the
		// clock is always safe.
		e.wheel.cur = tickOf(e.now)
	}
	if !e.wheel.insert(ev) {
		e.heapPush(ev)
	}
}

// At schedules fn at absolute time at.
func (e *Engine) At(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.schedule(at, fn, nil, nil)
	return &Timer{ev: ev, gen: ev.gen}
}

// After schedules fn delay seconds from now. Negative delays are clamped to
// zero so that floating-point jitter in callers cannot panic the engine.
func (e *Engine) After(delay float64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// Rearm schedules fn delay seconds from now and stores the handle in *t,
// replacing whatever t previously referred to. It is the allocation-free
// equivalent of `*t = *e.After(delay, fn)` for callers that keep a Timer
// field alive across many reschedules (pacing loops, retransmission
// timers).
func (e *Engine) Rearm(t *Timer, delay float64, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if delay < 0 {
		delay = 0
	}
	ev := e.schedule(e.now+delay, fn, nil, nil)
	t.ev = ev
	t.gen = ev.gen
}

// Post schedules fn delay seconds from now, fire-and-forget: no Timer is
// allocated, so the event cannot be cancelled.
func (e *Engine) Post(delay float64, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if delay < 0 {
		delay = 0
	}
	e.schedule(e.now+delay, fn, nil, nil)
}

// PostArg schedules fn(arg) delay seconds from now, fire-and-forget.
// Because fn is typically a long-lived function value and arg rides in the
// event itself, hot paths can schedule per-packet work with zero closure
// allocations.
func (e *Engine) PostArg(delay float64, fn func(any), arg any) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if delay < 0 {
		delay = 0
	}
	e.schedule(e.now+delay, nil, fn, arg)
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Reset returns the engine to its initial state — clock at zero, no queued
// events, sequence counter restarted — while retaining every piece of
// allocated storage: the heap's backing array, the wheel's slot arrays, each
// registered Pipe's ring, and the event free list. A reset engine therefore
// schedules its next simulation without the warm-up allocations a fresh
// NewEngine pays, and (because nextSeq restarts at zero) produces exactly
// the event sequence a fresh engine would.
//
// reclaim, when non-nil, is called with the arg of every dropped
// arg-carrying event and pipe entry, so callers can recycle pooled objects
// (in-flight packets) that would otherwise leak from their free lists.
// Pending niladic events are simply discarded. Timers handed out before the
// reset become inert (their generation no longer matches).
func (e *Engine) Reset(reclaim func(arg any)) {
	for i := range e.events {
		ev := e.events[i].ev
		if reclaim != nil && ev.arg != nil && !ev.dead {
			reclaim(ev.arg)
		}
		e.release(ev)
	}
	e.events = e.events[:0]
	for l := range e.wheel.levels {
		lvl := &e.wheel.levels[l]
		for w, word := range lvl.occupied {
			for word != 0 {
				s := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				for _, ev := range lvl.slots[s] {
					if reclaim != nil && ev.arg != nil && !ev.dead {
						reclaim(ev.arg)
					}
					e.release(ev)
				}
				lvl.slots[s] = lvl.slots[s][:0]
			}
			lvl.occupied[w] = 0
		}
	}
	e.wheel.cur = 0
	e.wheel.count = 0
	for _, p := range e.pipes {
		for i := 0; i < p.count; i++ {
			ent := &p.buf[(p.head+i)&(len(p.buf)-1)]
			if reclaim != nil && ent.arg != nil {
				reclaim(ent.arg)
			}
		}
		p.head, p.count, p.armed = 0, 0, false
		// A slot marked stale by Flush is fully released below (every heap,
		// wheel and batch entry goes through release), so it is safe to reuse
		// immediately, and any dynamic fallback event is recycled the same way.
		p.stale, p.dyn = false, nil
	}
	if e.inBurst {
		// Reset issued from inside a burst callback: drop the unexecuted
		// remainder of the batch so runBatch's loop terminates cleanly.
		for i := e.batchPos + 1; i < len(e.batch); i++ {
			ev := e.batch[i]
			if reclaim != nil && ev.arg != nil && !ev.dead {
				reclaim(ev.arg)
			}
			e.release(ev)
		}
		e.batch = e.batch[:e.batchPos+1]
	}
	e.now = 0
	e.nextSeq = 0
	e.nRun = 0
	e.halted = false
}

// DropPipe deregisters a pipe created with NewPipe so an abandoned delay
// stage (a torn-down route hop) does not accumulate in the engine's pipe
// list across topology re-specs. The pipe must be idle — Reset the engine
// first; dropping a pipe with queued entries would corrupt Pending.
// Dropping a pipe the engine does not own panics: a silent miss would hide
// respec bugs where a torn-down hop's pipe leaks into the next trial.
func (e *Engine) DropPipe(p *Pipe) {
	if p.count > 0 || p.armed {
		panic("sim: DropPipe on a non-empty pipe (Reset the engine first)")
	}
	for i, q := range e.pipes {
		if q == p {
			last := len(e.pipes) - 1
			e.pipes[i] = e.pipes[last]
			e.pipes[last] = nil
			e.pipes = e.pipes[:last]
			return
		}
	}
	panic("sim: DropPipe on a pipe not registered with this engine")
}

// Pending returns the number of live queued events, wherever they reside:
// the heap, the timing wheel, or a Pipe (pipe entries cannot be cancelled,
// so all of them count as live).
func (e *Engine) Pending() int {
	n := 0
	for i := range e.events {
		if !e.events[i].ev.dead {
			n++
		}
	}
	for l := range e.wheel.levels {
		for s := range e.wheel.levels[l].slots {
			for _, ev := range e.wheel.levels[l].slots[s] {
				if !ev.dead {
					n++
				}
			}
		}
	}
	for _, p := range e.pipes {
		n += p.count
		if p.armed {
			n-- // the armed head is already counted as a heap/wheel event
		}
	}
	if e.inBurst {
		// Called from inside a burst callback: the batch entries past the
		// executing position are pending too (the executing entry itself is
		// already released).
		for i := e.batchPos + 1; i < len(e.batch); i++ {
			if !e.batch[i].dead {
				n++
			}
		}
	}
	return n
}

// runAt dispatches every live event at t0, the timestamp peekLive just
// returned (so the heap top is live and at t0). The wheel needs no further
// probe: peekLive has already flushed it far enough that every remaining
// wheel event is strictly later than t0 (see wheel.go's slack argument), so
// a same-timestamp run can only live at the heap top. When the top event is
// alone at t0 — the overwhelmingly common case outside synchronized packet
// trains — it dispatches inline without touching the batch scratch; larger
// runs are popped into the batch (successive pops from the (at, seq)-ordered
// heap arrive in seq order, releasing cancelled events on the way) and
// executed by runBatch.
func (e *Engine) runAt(t0 Time) {
	ev := e.heapPop()
	if len(e.events) == 0 || e.events[0].at != t0 {
		// Alone at t0: dispatch inline, skipping batch collection — but keep
		// the burst machinery armed (batchPos -1 = nothing executing) so any
		// same-instant events the callback schedules still chain into the
		// batch instead of round-tripping through the heap; a
		// delivery→ack→forward cascade fires entirely at one instant.
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		e.release(ev)
		e.now = t0
		e.nRun++
		e.batch = e.batch[:0]
		e.batchPos = -1
		e.inBurst = true
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		if len(e.batch) == 0 {
			e.inBurst = false
			return
		}
		if e.halted {
			// Halt stops after the event that called it: hand the chained
			// remainder back to the heap, exactly as runBatch does.
			for _, b := range e.batch {
				e.heapPush(b)
			}
			e.batch = e.batch[:0]
			e.inBurst = false
			return
		}
		e.runBatch()
		return
	}
	e.batch = append(e.batch[:0], ev)
	for len(e.events) > 0 && e.events[0].at == t0 {
		next := e.heapPop()
		if next.dead {
			e.release(next)
			continue
		}
		e.batch = append(e.batch, next)
	}
	e.now = t0
	e.runBatch()
}

// batchInsert places an event scheduled during the current burst (at exactly
// the burst timestamp) into seq position within the batch, strictly after
// the executing entry. The common case — a fresh sequence number larger than
// everything queued — is a pure append.
func (e *Engine) batchInsert(ev *Event) {
	b := append(e.batch, ev)
	i := len(b) - 1
	for i > e.batchPos+1 && b[i-1].seq > ev.seq {
		b[i] = b[i-1]
		i--
	}
	b[i] = ev
	e.batch = b
}

// runBatch executes the collected batch in index (hence seq) order without
// re-probing the scheduler between events. Semantics match per-event
// dispatch exactly: each entry is dead-checked at execution time, not
// collection time, so a Timer.Stop issued by an earlier same-instant
// callback still cancels a later one; each event is released immediately
// before its callback runs, exactly as step does; Halt mid-batch pushes the
// unexecuted remainder back into the heap.
func (e *Engine) runBatch() {
	e.inBurst = true
	for e.batchPos = 0; e.batchPos < len(e.batch); e.batchPos++ {
		ev := e.batch[e.batchPos]
		if ev.dead {
			e.release(ev)
			continue
		}
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		e.release(ev)
		e.nRun++
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		if e.halted {
			for i := e.batchPos + 1; i < len(e.batch); i++ {
				e.heapPush(e.batch[i])
			}
			break
		}
	}
	// Entries keep their stale pointers until overwritten: events are
	// engine-pooled, so the pin is free and skipping the clears avoids a
	// write barrier per slot.
	e.batch = e.batch[:0]
	e.inBurst = false
}

// step executes the earliest event. It reports false when no live event
// remains.
func (e *Engine) step() bool {
	// Fast path: nothing bucketed in the wheel and a live heap top.
	if !(e.wheel.count == 0 && len(e.events) > 0 && !e.events[0].ev.dead) && e.peekLive() == nil {
		return false
	}
	ev := e.heapPop()
	at, fn, afn, arg := ev.at, ev.fn, ev.afn, ev.arg
	// Recycle before running: the callback may schedule new events, and
	// handing it this slot keeps the free list hot.
	e.release(ev)
	e.now = at
	e.nRun++
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	return true
}

// Run executes events until the queue drains or Halt is called. The loop
// dispatches in bursts: one scheduler probe finds the earliest live
// timestamp, then every event sharing it is popped and executed in seq
// order without re-probing the wheel or heap in between (same-instant packet
// trains — an incast tick, a saturated link's dequeue+delivery+feed cluster
// — are the common case at high BDP). Execution order is identical to
// per-event dispatch: the batch preserves the engine-wide (at, seq) total
// order, and events scheduled during the burst at the burst instant join
// the batch in seq position (see place).
func (e *Engine) Run() {
	e.halted = false
	for !e.halted {
		// Wheel-empty fast path: with nothing bucketed, probing the
		// scheduler is a single comparison, so batching would amortize
		// nothing — dispatch straight off the heap as before.
		if e.wheel.count == 0 {
			if len(e.events) == 0 {
				return
			}
			if ev := e.events[0].ev; !ev.dead {
				e.heapPop()
				at, fn, afn, arg := ev.at, ev.fn, ev.afn, ev.arg
				e.release(ev)
				e.now = at
				e.nRun++
				if fn != nil {
					fn()
				} else {
					afn(arg)
				}
				continue
			}
		}
		// Wheel active: a live heap top strictly below the wheel cursor
		// needs no flush — the probe is two comparisons, done inline. The
		// slow probe only runs when the wheel actually has to rotate.
		if len(e.events) > 0 {
			it := &e.events[0]
			if !it.ev.dead && e.wheel.cur > tickOf(it.at)+1 {
				e.runAt(it.at)
				continue
			}
		}
		top := e.peekLiveSlow()
		if top == nil {
			return
		}
		e.runAt(top.at)
	}
}

// NextEventAt returns the timestamp of the earliest live pending event, or
// +Inf when the engine is drained. Probing may flush timing-wheel slots into
// the heap, which is placement only and cannot change any result.
func (e *Engine) NextEventAt() Time {
	if ev := e.peekLive(); ev != nil {
		return ev.at
	}
	return math.Inf(1)
}

// RunBefore executes every event with a timestamp strictly below limit and
// leaves the clock at the last executed event. Unlike RunUntil it neither
// runs events at exactly limit nor force-advances the clock: conservative
// shard rounds execute half-open [now, limit) windows, and only the group
// coordinator knows the final deadline (see ShardGroup).
func (e *Engine) RunBefore(limit Time) {
	e.halted = false
	for !e.halted {
		if len(e.events) > 0 {
			it := &e.events[0]
			if !it.ev.dead && (e.wheel.count == 0 || e.wheel.cur > tickOf(it.at)+1) {
				if it.at >= limit {
					return
				}
				e.runAt(it.at)
				continue
			}
		}
		next := e.peekLiveSlow()
		if next == nil || next.at >= limit {
			return
		}
		e.runAt(next.at)
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// queued, so simulations can be resumed with further RunUntil calls.
// Dispatch is burst-mode, as in Run.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		// Inline probe, as in Run: a live heap top that is provably the
		// earliest pending event (wheel empty or strictly above it) settles
		// the deadline comparison without the slow probe.
		if len(e.events) > 0 {
			it := &e.events[0]
			if !it.ev.dead && (e.wheel.count == 0 || e.wheel.cur > tickOf(it.at)+1) {
				if it.at > deadline {
					break
				}
				e.runAt(it.at)
				continue
			}
		}
		next := e.peekLiveSlow()
		if next == nil || next.at > deadline {
			break
		}
		e.runAt(next.at)
	}
	if e.now < deadline {
		e.now = deadline
	}
}
