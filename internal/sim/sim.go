// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events. Events
// scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-breaking via a monotonically increasing sequence number), which
// makes every simulation in this repository bit-reproducible for a given
// set of RNG seeds.
//
// Time is a float64 number of seconds since the start of the simulation.
// Sub-nanosecond precision is irrelevant at the packet timescales simulated
// here; float64 keeps the arithmetic in experiment code simple.
//
// Engines are not safe for concurrent use; a simulation is a
// single-threaded computation by design. Parallel experiment runners (see
// internal/exp) give every trial its own Engine, so all engine-owned
// resources — the event free list included — stay goroutine-local.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated instant, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback. The zero Event is invalid. Events are
// recycled through an engine-owned free list once they fire or are observed
// dead, so code outside this package must hold Timers, never Events.
type Event struct {
	at  Time
	seq uint64
	// gen invalidates Timers pointing at a recycled Event: a Timer is live
	// only while its stored generation matches the event's.
	gen uint64
	// fn is the niladic callback; afn+arg is the closure-free alternative
	// used by hot paths (packet delivery) to avoid allocating a capturing
	// closure per event. Exactly one of fn and afn is set.
	fn   func()
	afn  func(any)
	arg  any
	dead bool
}

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. A nil or zero Timer is inert: Stop and Active are safe to
// call.
type Timer struct {
	ev  *Event
	gen uint64
}

// live reports whether the timer still refers to the scheduling it was
// created for (the underlying event may be recycled after firing).
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if !t.live() || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// Active reports whether the timer is still pending. (A fired event is
// recycled before its callback runs, which bumps its generation, so a live
// undead event is by construction still queued.)
func (t *Timer) Active() bool {
	return t.live() && !t.ev.dead
}

// When returns the absolute simulated time at which the timer fires.
// It is meaningful only while Active.
func (t *Timer) When() Time {
	if !t.live() {
		return math.Inf(1)
	}
	return t.ev.at
}

// eventHeap is a 4-ary min-heap ordered by (at, seq). It is implemented
// directly rather than via container/heap: the event loop is the hottest
// code in the repository and the interface-based heap spends most of its
// time in Less/Swap dynamic dispatch. The wider fan-out also halves the
// tree depth relative to a binary heap, which matters for the pop-heavy
// access pattern of a simulation.
type eventHeap []*Event

func evLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evLess(h[j], h[m]) {
				m = j
			}
		}
		if !evLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}

func (e *Engine) heapPush(ev *Event) {
	e.events = append(e.events, ev)
	e.events.siftUp(len(e.events) - 1)
}

func (e *Engine) heapPop() *Event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		e.events.siftDown(0)
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine. Engine is not safe for concurrent use: a simulation is a
// single-threaded computation by design.
type Engine struct {
	now     Time
	nextSeq uint64
	events  eventHeap
	// free recycles fired Events; its size is bounded by the peak number of
	// simultaneously queued events.
	free   []*Event
	nRun   uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. It is exposed for
// tests and benchmarks.
func (e *Engine) Processed() uint64 { return e.nRun }

func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// release recycles a popped event. Bumping gen makes every Timer that still
// points here inert; clearing the callback fields drops references (notably
// arg, which may pin a pooled packet).
func (e *Engine) release(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// schedule queues a recycled or fresh event. Scheduling in the past panics:
// it is always a bug in the caller, and silently reordering time would
// corrupt results.
func (e *Engine) schedule(at Time, fn func(), afn func(any), arg any) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.nextSeq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	ev.dead = false
	e.nextSeq++
	e.heapPush(ev)
	return ev
}

// At schedules fn at absolute time at.
func (e *Engine) At(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.schedule(at, fn, nil, nil)
	return &Timer{ev: ev, gen: ev.gen}
}

// After schedules fn delay seconds from now. Negative delays are clamped to
// zero so that floating-point jitter in callers cannot panic the engine.
func (e *Engine) After(delay float64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// Rearm schedules fn delay seconds from now and stores the handle in *t,
// replacing whatever t previously referred to. It is the allocation-free
// equivalent of `*t = *e.After(delay, fn)` for callers that keep a Timer
// field alive across many reschedules (pacing loops, retransmission
// timers).
func (e *Engine) Rearm(t *Timer, delay float64, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if delay < 0 {
		delay = 0
	}
	ev := e.schedule(e.now+delay, fn, nil, nil)
	t.ev = ev
	t.gen = ev.gen
}

// Post schedules fn delay seconds from now, fire-and-forget: no Timer is
// allocated, so the event cannot be cancelled.
func (e *Engine) Post(delay float64, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if delay < 0 {
		delay = 0
	}
	e.schedule(e.now+delay, fn, nil, nil)
}

// PostArg schedules fn(arg) delay seconds from now, fire-and-forget.
// Because fn is typically a long-lived function value and arg rides in the
// event itself, hot paths can schedule per-packet work with zero closure
// allocations.
func (e *Engine) PostArg(delay float64, fn func(any), arg any) {
	if fn == nil {
		panic("sim: nil event function")
	}
	if delay < 0 {
		delay = 0
	}
	e.schedule(e.now+delay, nil, fn, arg)
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of live queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// step executes the earliest event. It reports false when no live event
// remains.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := e.heapPop()
		if ev.dead {
			e.release(ev)
			continue
		}
		at, fn, afn, arg := ev.at, ev.fn, ev.afn, ev.arg
		// Recycle before running: the callback may schedule new events, and
		// handing it this slot keeps the free list hot.
		e.release(ev)
		e.now = at
		e.nRun++
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// queued, so simulations can be resumed with further RunUntil calls.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		// Peek at the earliest live event.
		var next *Event
		for len(e.events) > 0 {
			if e.events[0].dead {
				e.release(e.heapPop())
				continue
			}
			next = e.events[0]
			break
		}
		if next == nil || next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
