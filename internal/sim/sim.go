// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events. Events
// scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-breaking via a monotonically increasing sequence number), which
// makes every simulation in this repository bit-reproducible for a given
// set of RNG seeds.
//
// Time is a float64 number of seconds since the start of the simulation.
// Sub-nanosecond precision is irrelevant at the packet timescales simulated
// here; float64 keeps the arithmetic in experiment code simple.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated instant, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index, -1 when not queued
	dead bool
}

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. A nil Timer is inert: Stop and Active are safe to call.
type Timer struct {
	ev  *Event
	eng *Engine
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.dead && t.ev.idx >= 0
}

// When returns the absolute simulated time at which the timer fires.
// It is meaningful only while Active.
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return math.Inf(1)
	}
	return t.ev.at
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine. Engine is not safe for concurrent use: a simulation is a
// single-threaded computation by design.
type Engine struct {
	now     Time
	nextSeq uint64
	events  eventHeap
	nRun    uint64
	halted  bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. It is exposed for
// tests and benchmarks.
func (e *Engine) Processed() uint64 { return e.nRun }

// At schedules fn at absolute time at. Scheduling in the past panics: it is
// always a bug in the caller, and silently reordering time would corrupt
// results.
func (e *Engine) At(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{at: at, seq: e.nextSeq, fn: fn, idx: -1}
	e.nextSeq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev, eng: e}
}

// After schedules fn delay seconds from now. Negative delays are clamped to
// zero so that floating-point jitter in callers cannot panic the engine.
func (e *Engine) After(delay float64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of live queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// step executes the earliest event. It reports false when no live event
// remains.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.nRun++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// queued, so simulations can be resumed with further RunUntil calls.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		// Peek at the earliest live event.
		var next *Event
		for len(e.events) > 0 {
			if e.events[0].dead {
				heap.Pop(&e.events)
				continue
			}
			next = e.events[0]
			break
		}
		if next == nil || next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
