package sim

import (
	"math/rand"
	"testing"
)

// TestCachedSourceMatchesMathRand is the keystone of the reseed cache: for a
// spread of seeds (including the negative and zero specials of the seeding
// chain), a rand.Rand over a CachedSource must reproduce rand.NewSource's
// stream exactly, across the full derived-value API the repository uses.
func TestCachedSourceMatchesMathRand(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -(1 << 40), 89482311, lfInt32Max} {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(NewCachedSource(seed))
		for i := 0; i < 2000; i++ {
			switch i % 5 {
			case 0:
				if a, b := ref.Int63(), got.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, b, a)
				}
			case 1:
				if a, b := ref.Float64(), got.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, b, a)
				}
			case 2:
				if a, b := ref.Uint64(), got.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, b, a)
				}
			case 3:
				if a, b := ref.Intn(977), got.Intn(977); a != b {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, b, a)
				}
			case 4:
				if a, b := ref.NormFloat64(), got.NormFloat64(); a != b {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, b, a)
				}
			}
		}
	}
}

// TestCachedSourceReseedSnapshot verifies the cache itself: re-seeding with
// a previously seen seed (the snapshot path) must restart the exact stream,
// interleaved arbitrarily with other seeds.
func TestCachedSourceReseedSnapshot(t *testing.T) {
	t.Parallel()
	s := NewCachedSource(7)
	r := rand.New(s)
	first := make([]int64, 100)
	for i := range first {
		first[i] = r.Int63()
	}
	r.Seed(99) // different seed in between
	r.Int63()
	r.Seed(7) // snapshot restore
	for i := range first {
		if got := r.Int63(); got != first[i] {
			t.Fatalf("draw %d after cached reseed: %d, want %d", i, got, first[i])
		}
	}
	r.Seed(99) // 99 is cached now too
	r.Seed(7)
	if got := r.Int63(); got != first[0] {
		t.Fatalf("draw after double cached reseed: %d, want %d", got, first[0])
	}
}
