package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// These tests pin the burst-dispatch rework: however events reach the
// dispatcher — straight off the heap, promoted from a wheel slot, through a
// pipe's self-rearming delivery slot, or via the pipe's shrinking-delay
// engine fallback — the observable firing order is the engine-wide
// (at, seq) total order, and Pending always equals the number of events
// that will actually fire.

// burstModel accumulates a reference model of a random workload: one record
// per drawn sequence number, in draw order, so the expected firing order is
// simply a stable sort by timestamp.
type burstModel struct {
	at   []float64
	dead []bool
}

func (m *burstModel) add(at float64) int {
	m.at = append(m.at, at)
	m.dead = append(m.dead, false)
	return len(m.at) - 1
}

// expected returns the ids of live records in (at, seq) order.
func (m *burstModel) expected() []int {
	ids := make([]int, 0, len(m.at))
	for id := range m.at {
		if !m.dead[id] {
			ids = append(ids, id)
		}
	}
	sort.SliceStable(ids, func(a, b int) bool { return m.at[ids[a]] < m.at[ids[b]] })
	return ids
}

// TestBurstDispatchTotalOrder drives a seeded random workload through every
// scheduling structure at once — heap events, wheel-banded events, stoppable
// timers, two pipe trains (with naturally occurring shrinking-delay
// fallbacks), same-instant ties, nested same-tick scheduling from inside
// callbacks, and mid-run timer stops — and asserts the firing order equals
// the model's (at, seq) total order.
func TestBurstDispatchTotalOrder(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 424242} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			e := NewEngine()
			var m burstModel
			var fired []int

			type liveTimer struct {
				id int
				tm *Timer
			}
			var timers []liveTimer
			nested := 60
			var rec func(id int)
			rec = func(id int) {
				fired = append(fired, id)
				if nested > 0 && rng.Intn(6) == 0 {
					// Same-tick nested event: lands in the running burst via
					// batchInsert and must fire later this instant, in seq
					// order.
					nested--
					nid := m.add(e.Now())
					e.At(e.Now(), func() { rec(nid) })
				}
				if len(timers) > 0 && rng.Intn(8) == 0 {
					// Mid-run stop of a strictly-future timer: its event is
					// already placed (heap, wheel, or current batch tail) and
					// must be skipped by the dead-check at execution.
					k := rng.Intn(len(timers))
					lt := timers[k]
					if !m.dead[lt.id] && m.at[lt.id] > e.Now() {
						lt.tm.Stop()
						m.dead[lt.id] = true
					}
				}
			}
			pipeFn := func(a any) { rec(a.(int)) }
			pa, pb := e.NewPipe(pipeFn), e.NewPipe(pipeFn)

			// Dense sub-millisecond instants open the timing wheel and force
			// heavy same-instant collisions across structures; the sparse far
			// band keeps the heap in play past the wheel horizon.
			instant := func() float64 {
				if rng.Intn(10) == 0 {
					return 1.0 + float64(rng.Intn(8))*0.25
				}
				return float64(rng.Intn(40)) * 0.0005
			}
			for i := 0; i < 500; i++ {
				at := instant()
				switch rng.Intn(5) {
				case 0:
					id := m.add(at)
					e.At(at, func() { rec(id) })
				case 1, 2:
					id := m.add(at)
					tm := e.At(at, func() { rec(id) })
					if rng.Intn(5) == 0 {
						tm.Stop()
						m.dead[id] = true
					} else {
						timers = append(timers, liveTimer{id: id, tm: tm})
					}
				case 3:
					// Random delays make some posts land before the pipe's
					// tail, exercising the shrinking-delay engine fallback.
					pa.Post(at, m.add(at))
				case 4:
					pb.Post(at, m.add(at))
				}
			}

			setupLive := 0
			for id := range m.at {
				if !m.dead[id] {
					setupLive++
				}
			}
			if got := e.Pending(); got != setupLive {
				t.Fatalf("Pending() = %d before Run, want %d live events", got, setupLive)
			}
			e.Run()

			want := m.expected()
			if len(fired) != len(want) {
				t.Fatalf("%d events fired, want %d", len(fired), len(want))
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("firing order diverges at %d: got id %d (at=%g), want id %d (at=%g)",
						i, fired[i], m.at[fired[i]], want[i], m.at[want[i]])
				}
			}
		})
	}
}

// TestPendingMatchesReality is the Pending-vs-reality property: after an
// arbitrary seeded sequence of schedules, cancels, pipe posts and Resets,
// Engine.Pending equals the number of events that actually fire. This
// covers the subtle counting paths — the armed pipe head (counted once,
// not twice), dead wheel entries, dead heap events, and batch remainders.
func TestPendingMatchesReality(t *testing.T) {
	for _, seed := range []int64{3, 99, 2026} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			e := NewEngine()
			fires := 0
			count := func() { fires++ }
			countArg := func(any) { fires++ }
			p := e.NewPipe(countArg)

			for round := 0; round < 8; round++ {
				var timers []*Timer
				expect := 0
				n := 50 + rng.Intn(200)
				for i := 0; i < n; i++ {
					// The clock keeps running across rounds; schedule
					// relative to it.
					d := float64(rng.Intn(60)) * 0.0004
					switch rng.Intn(4) {
					case 0:
						e.At(e.Now()+d, count)
						expect++
					case 1:
						timers = append(timers, e.After(d, count))
						expect++
					case 2:
						e.PostArg(d, countArg, i)
						expect++
					case 3:
						p.Post(d, i)
						expect++
					}
				}
				// Cancel a random subset before running: dead events linger
				// in the heap and wheel and must be excluded from Pending.
				for _, tm := range timers {
					if rng.Intn(3) == 0 && tm.Stop() {
						expect--
					}
				}
				if got := e.Pending(); got != expect {
					t.Fatalf("round %d: Pending() = %d, want %d", round, got, expect)
				}
				if rng.Intn(4) == 0 {
					// Abandon the round: Reset must zero the count and the
					// next round must still balance.
					e.Reset(nil)
					if got := e.Pending(); got != 0 {
						t.Fatalf("round %d: Pending() = %d after Reset, want 0", round, got)
					}
					continue
				}
				fires = 0
				e.Run()
				if fires != expect {
					t.Fatalf("round %d: %d events fired, want %d", round, fires, expect)
				}
				if got := e.Pending(); got != 0 {
					t.Fatalf("round %d: Pending() = %d after Run, want 0", round, got)
				}
			}
		})
	}
}

// TestDropPipeUnregisteredPanics pins that deregistering a pipe the engine
// does not own is a programming error, not a silent no-op.
func TestDropPipeUnregisteredPanics(t *testing.T) {
	t.Parallel()
	e1, e2 := NewEngine(), NewEngine()
	p := e1.NewPipe(func(any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("DropPipe on a foreign pipe must panic")
		}
	}()
	e2.DropPipe(p)
}

// TestDropPipeTwicePanics pins the same contract for double deregistration.
func TestDropPipeTwicePanics(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	p := e.NewPipe(func(any) {})
	e.DropPipe(p)
	defer func() {
		if recover() == nil {
			t.Fatal("second DropPipe of the same pipe must panic")
		}
	}()
	e.DropPipe(p)
}
