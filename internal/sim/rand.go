package sim

import "math/rand"

// Seeds derives independent, stable sub-seeds from a root seed so that every
// component of a simulation (each link's loss process, each sender's MI
// jitter, each workload generator) owns its own RNG stream. Adding a new
// consumer never perturbs the draws seen by existing ones, which keeps
// recorded experiment outputs stable across refactors.
type Seeds struct {
	state uint64
}

// NewSeeds returns a derivation chain rooted at seed.
func NewSeeds(seed int64) *Seeds {
	return &Seeds{state: uint64(seed) ^ 0x9e3779b97f4a7c15}
}

// Reset rewinds the chain to the start of a new root seed, in place. A reset
// chain produces exactly the sequence NewSeeds(seed) would, so arena-style
// callers can re-derive a trial's streams without reallocating the chain.
func (s *Seeds) Reset(seed int64) {
	s.state = uint64(seed) ^ 0x9e3779b97f4a7c15
}

// Next returns the next derived seed. The mixing function is SplitMix64,
// which has full 64-bit period and passes standard avalanche tests; any
// two derived streams are effectively independent for simulation purposes.
func (s *Seeds) Next() int64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NextRand returns a rand.Rand seeded with the next derived seed.
func (s *Seeds) NextRand() *rand.Rand {
	return rand.New(rand.NewSource(s.Next()))
}
