package sim

import (
	"math"
	"testing"
)

// The shard property test model-checks the conservative horizon protocol:
// random 2–4 shard workloads of self-replicating events, where every event
// derives its children (count, local/cross, delays, destination shard)
// purely from a 64-bit token via a splitmix mix. That makes the workload a
// pure function of the root tokens — no shared counters, no reads of
// cross-goroutine state — so the sharded run is race-free under -race and
// the single-engine reference run (same shards, but cross-shard hops become
// plain PostArg calls on the one engine) produces the exact event set the
// sharded run must reproduce: per virtual shard, the same (at, token)
// execution sequence in the same order.

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type shardTrace struct {
	at    Time
	token uint64
}

// shardModel drives one workload against either a ShardGroup or a single
// reference engine; logs[i] records shard i's execution order.
type shardModel struct {
	n         int
	lookahead float64
	maxDepth  int
	logs      [][]shardTrace

	group *ShardGroup // nil for the single-engine reference
	ref   *Engine
}

type shardEvt struct {
	m     *shardModel
	shard int
	depth int
	token uint64
}

func (m *shardModel) engine(shard int) *Engine {
	if m.group != nil {
		return m.group.Engine(shard)
	}
	return m.ref
}

func (m *shardModel) run(ev *shardEvt) {
	e := m.engine(ev.shard)
	m.logs[ev.shard] = append(m.logs[ev.shard], shardTrace{at: e.Now(), token: ev.token})
	if ev.depth >= m.maxDepth {
		return
	}
	children := 1
	if ev.token>>62 == 3 { // p = 1/4
		children = 2
	}
	for c := 0; c < children; c++ {
		tok := mix64(ev.token + uint64(c) + 1)
		child := &shardEvt{m: m, depth: ev.depth + 1, token: tok}
		// Bit 0 picks local vs cross; the rest feed delay and destination.
		frac := float64(tok>>11) / (1 << 53) // uniform [0,1)
		if tok&1 == 0 || m.n == 1 {
			child.shard = ev.shard
			delay := m.lookahead * (0.1 + 1.9*frac)
			e.PostArg(delay, shardEvtFn, child)
			continue
		}
		dst := int(tok>>1) % (m.n - 1)
		if dst >= ev.shard {
			dst++
		}
		child.shard = dst
		delay := m.lookahead * (1 + 2*frac)
		if m.group != nil {
			m.group.Post(ev.shard, dst, delay, shardEvtFn, child)
		} else {
			m.ref.PostArg(delay, shardEvtFn, child)
		}
	}
}

func shardEvtFn(a any) {
	ev := a.(*shardEvt)
	ev.m.run(ev)
}

func (m *shardModel) seed(roots int, baseToken uint64) {
	for r := 0; r < roots; r++ {
		shard := r % m.n
		ev := &shardEvt{m: m, shard: shard, token: mix64(baseToken + uint64(r))}
		// Staggered root offsets so shards start out of phase.
		m.engine(shard).At(m.lookahead*float64(r+1)*0.37, func() { m.run(ev) })
	}
}

func TestShardGroupMatchesSingleEngine(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		s := mix64(seed * 0x5851f42d4c957f2d)
		n := 2 + int(s%3)                       // 2..4 shards
		lookahead := 1e-3 * float64(1+(s>>8)%5) // 1..5 ms
		roots := 3 + int((s>>16)%4)

		build := func(group *ShardGroup, ref *Engine) *shardModel {
			m := &shardModel{
				n: n, lookahead: lookahead, maxDepth: 12,
				logs:  make([][]shardTrace, n),
				group: group, ref: ref,
			}
			m.seed(roots, s)
			return m
		}

		g := NewShardGroup(n, lookahead)
		sharded := build(g, nil)
		g.RunUntil(1.0)
		g.Close()

		single := build(nil, NewEngine())
		single.ref.RunUntil(1.0)

		for i := 0; i < n; i++ {
			a, b := sharded.logs[i], single.logs[i]
			if len(a) != len(b) {
				t.Fatalf("seed %d shard %d: %d events sharded vs %d single-engine", seed, i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("seed %d shard %d event %d: sharded (at=%.9g tok=%x) vs single (at=%.9g tok=%x)",
						seed, i, j, a[j].at, a[j].token, b[j].at, b[j].token)
				}
			}
			if len(a) == 0 {
				t.Fatalf("seed %d shard %d: empty trace — workload degenerate", seed, i)
			}
		}

		// All clocks land exactly on the deadline.
		for i := 0; i < n; i++ {
			if got := g.Engine(i).Now(); got != 1.0 {
				t.Fatalf("seed %d shard %d clock = %v, want 1.0", seed, i, got)
			}
		}
	}
}

// A resumed group (two RunUntil calls) must match one straight run: the
// window protocol may not depend on where the caller slices the timeline.
func TestShardGroupResume(t *testing.T) {
	s := mix64(42)
	n := 3
	lookahead := 2e-3

	runTo := func(cuts []Time) [][]shardTrace {
		g := NewShardGroup(n, lookahead)
		defer g.Close()
		m := &shardModel{
			n: n, lookahead: lookahead, maxDepth: 10,
			logs:  make([][]shardTrace, n),
			group: g,
		}
		m.seed(4, s)
		for _, c := range cuts {
			g.RunUntil(c)
		}
		return m.logs
	}

	whole := runTo([]Time{0.5})
	split := runTo([]Time{0.13, 0.31, 0.5})
	for i := 0; i < n; i++ {
		if len(whole[i]) != len(split[i]) {
			t.Fatalf("shard %d: %d events in one run vs %d resumed", i, len(whole[i]), len(split[i]))
		}
		for j := range whole[i] {
			if whole[i][j] != split[i][j] {
				t.Fatalf("shard %d event %d differs across resume slicing", i, j)
			}
		}
	}
}

func TestShardGroupPostBelowLookaheadPanics(t *testing.T) {
	g := NewShardGroup(2, 1e-3)
	defer func() {
		if recover() == nil {
			t.Fatal("Post below lookahead did not panic")
		}
	}()
	g.Post(0, 1, 0.5e-3, func(any) {}, nil)
}

func TestShardGroupInfiniteLookahead(t *testing.T) {
	// Disconnected shards: +Inf lookahead runs each shard free to the
	// deadline in one round.
	g := NewShardGroup(2, math.Inf(1))
	defer g.Close()
	var fired [2]int
	for i := 0; i < 2; i++ {
		i := i
		e := g.Engine(i)
		var tick func()
		tick = func() {
			fired[i]++
			if fired[i] < 100 {
				e.At(e.Now()+0.01, tick)
			}
		}
		e.At(0.005, tick)
	}
	g.RunUntil(2.0)
	for i := 0; i < 2; i++ {
		if fired[i] != 100 {
			t.Fatalf("shard %d fired %d timers, want 100", i, fired[i])
		}
		if g.Engine(i).Now() != 2.0 {
			t.Fatalf("shard %d clock %v, want 2.0", i, g.Engine(i).Now())
		}
	}
}
