package sim

// CachedSource is a math/rand-compatible random source (the Mitchell-Reeds
// additive lagged-Fibonacci generator, bit-identical to rand.NewSource) that
// memoizes its post-seed register state. Re-seeding is the dominant setup
// cost of a simulation trial — filling the 607-word register walks a
// ~1900-step Lehmer chain — and arena-cached experiment runners re-seed the
// same generators with a small set of recurring seeds (one per trial of a
// sweep, identical across the grid's shapes). A CachedSource pays the chain
// once per distinct seed and restores a snapshot on every later Seed call
// with that seed, turning the per-trial RNG rewind into a memcpy.
//
// The stream is exactly rand.NewSource's for every seed: Seed, Int63 and
// Uint64 reproduce math/rand's rngSource step for step (the seeding chain
// XORs the lfCooked warm-up table just as the original does), so swapping a
// CachedSource underneath a rand.Rand changes no recorded report byte.
// Snapshots cost 607 words (~5 KB) per distinct seed and live until the
// source is garbage; experiment arenas see one seed per trial index, so a
// source's cache stays a handful of entries.
type CachedSource struct {
	tap  int
	feed int
	vec  [lfLen]int64
	snap map[int64]*[lfLen]int64
}

const (
	lfLen      = 607
	lfTap      = 273
	lfMask     = 1<<63 - 1
	lfInt32Max = 1<<31 - 1
)

// NewCachedSource returns a seeded CachedSource. The result is valid for
// rand.New: it implements both rand.Source and rand.Source64.
func NewCachedSource(seed int64) *CachedSource {
	s := &CachedSource{}
	s.Seed(seed)
	return s
}

// lehmer is math/rand's seeding step: x[n+1] = 48271·x[n] mod (2³¹−1),
// computed with the Schrage decomposition to stay in 32 bits.
func lehmer(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += lfInt32Max
	}
	return x
}

// Seed initializes the register to the deterministic state math/rand's
// rngSource.Seed produces, restoring a snapshot when this source has been
// seeded with the same value before.
func (s *CachedSource) Seed(seed int64) {
	s.tap = 0
	s.feed = lfLen - lfTap
	if v := s.snap[seed]; v != nil {
		s.vec = *v
		return
	}
	x := seed % lfInt32Max
	if x < 0 {
		x += lfInt32Max
	}
	if x == 0 {
		x = 89482311
	}
	w := int32(x)
	for i := -20; i < lfLen; i++ {
		w = lehmer(w)
		if i >= 0 {
			u := int64(w) << 40
			w = lehmer(w)
			u ^= int64(w) << 20
			w = lehmer(w)
			u ^= int64(w)
			u ^= lfCooked[i]
			s.vec[i] = u
		}
	}
	if s.snap == nil {
		s.snap = make(map[int64]*[lfLen]int64, 4)
	}
	v := s.vec
	s.snap[seed] = &v
}

// Uint64 returns the next raw register sum, exactly as math/rand does.
func (s *CachedSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns a non-negative 63-bit integer, exactly as math/rand does.
func (s *CachedSource) Int63() int64 {
	return int64(s.Uint64() & lfMask)
}
