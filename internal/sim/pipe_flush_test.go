package sim

import (
	"testing"
)

// TestPipeFlushDropsPending flushes a loaded pipe mid-run: every buffered
// entry must be handed to the drop callback exactly once, nothing may be
// delivered afterwards, and the engine must keep running past the dead
// armed slot without firing it.
func TestPipeFlushDropsPending(t *testing.T) {
	e := NewEngine()
	var delivered, dropped []int
	p := e.NewPipe(func(a any) { delivered = append(delivered, a.(int)) })
	e.At(0, func() {
		for i := 0; i < 5; i++ {
			p.Post(1+float64(i)*0.1, i)
		}
	})
	e.At(0.5, func() { p.Flush(func(a any) { dropped = append(dropped, a.(int)) }) })
	e.Run()
	if len(delivered) != 0 {
		t.Fatalf("delivered %v after flush, want none", delivered)
	}
	if len(dropped) != 5 {
		t.Fatalf("dropped %v, want all 5 entries", dropped)
	}
	for i, v := range dropped {
		if v != i {
			t.Fatalf("drop order %v, want FIFO order", dropped)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after flush, want 0", p.Len())
	}
}

// TestPipeFlushNilDrop covers the drop-less flush: entries are discarded
// silently.
func TestPipeFlushNilDrop(t *testing.T) {
	e := NewEngine()
	n := 0
	p := e.NewPipe(func(any) { n++ })
	e.At(0, func() { p.Post(1, "x") })
	e.At(0.5, func() { p.Flush(nil) })
	e.Run()
	if n != 0 || p.Len() != 0 {
		t.Fatalf("after nil-drop flush: deliveries=%d Len=%d, want 0/0", n, p.Len())
	}
}

// TestPipeFlushRepostBeforeSlotTime re-arms a flushed pipe while the dead
// slot event is still scheduled in the future: the pipe must fall back to a
// dynamically allocated event (the slot cannot be re-used until it pops) and
// deliver at exactly the posted time, even though that time precedes the
// dead slot's.
func TestPipeFlushRepostBeforeSlotTime(t *testing.T) {
	e := NewEngine()
	type arrival struct {
		v  string
		at float64
	}
	var got []arrival
	p := e.NewPipe(func(a any) { got = append(got, arrival{a.(string), e.Now()}) })
	e.At(0, func() { p.Post(1, "doomed") }) // slot armed for t=1
	e.At(0.5, func() {
		p.Flush(nil)
		p.Post(0.2, "fresh") // arrives t=0.7, before the dead slot's t=1
	})
	e.Run()
	if len(got) != 1 || got[0].v != "fresh" || got[0].at != 0.7 {
		t.Fatalf("got %+v, want [{fresh 0.7}]", got)
	}
}

// TestPipeFlushRepostAfterSlotTime re-arms a flushed pipe only after the
// clock has passed the dead slot's timestamp, which proves the dead slot
// already popped (dead events at the heap top are released before any
// later-time event runs) and the pipe may re-use it directly.
func TestPipeFlushRepostAfterSlotTime(t *testing.T) {
	e := NewEngine()
	type arrival struct {
		v  string
		at float64
	}
	var got []arrival
	p := e.NewPipe(func(a any) { got = append(got, arrival{a.(string), e.Now()}) })
	e.At(0, func() { p.Post(1, "doomed") })
	e.At(0.5, func() { p.Flush(nil) })
	e.At(1.5, func() { p.Post(0.1, "late") })
	e.Run()
	if len(got) != 1 || got[0].v != "late" || got[0].at != 1.6 {
		t.Fatalf("got %+v, want [{late 1.6}]", got)
	}
}

// TestPipeFlushTwice flushes, re-arms through the dynamic-event fallback,
// flushes again (killing the dynamic event), and re-arms once more: the
// double-kill path must not deliver stale entries or fire dead events.
func TestPipeFlushTwice(t *testing.T) {
	e := NewEngine()
	type arrival struct {
		v  string
		at float64
	}
	var got []arrival
	var dropped []string
	p := e.NewPipe(func(a any) { got = append(got, arrival{a.(string), e.Now()}) })
	drop := func(a any) { dropped = append(dropped, a.(string)) }
	e.At(0, func() { p.Post(1, "a") })   // slot armed for t=1
	e.At(0.3, func() { p.Flush(drop) })  // slot dead
	e.At(0.4, func() { p.Post(1, "b") }) // dyn event for t=1.4
	e.At(0.5, func() { p.Flush(drop) })  // dyn dead
	e.At(0.6, func() { p.Post(0.1, "c") })
	e.Run()
	if len(got) != 1 || got[0].v != "c" || got[0].at != 0.7 {
		t.Fatalf("got %+v, want only {c 0.7}", got)
	}
	if len(dropped) != 2 || dropped[0] != "a" || dropped[1] != "b" {
		t.Fatalf("dropped %v, want [a b]", dropped)
	}
}

// TestPipeFlushSurvivesEngineReset flushes a pipe, resets the engine, and
// runs a fresh trial on the same pipe: Reset must clear the stale-slot
// bookkeeping so the recycled slot arms normally.
func TestPipeFlushSurvivesEngineReset(t *testing.T) {
	e := NewEngine()
	var got []string
	p := e.NewPipe(func(a any) { got = append(got, a.(string)) })
	e.At(0, func() { p.Post(1, "old") })
	e.At(0.5, func() { p.Flush(nil) })
	e.RunUntil(0.5)
	e.Reset(nil)
	got = got[:0]
	e.At(0, func() { p.Post(0.25, "new") })
	e.Run()
	if len(got) != 1 || got[0] != "new" {
		t.Fatalf("after reset: got %v, want [new]", got)
	}
	if e.Now() != 0.25 {
		t.Fatalf("clock = %v, want 0.25", e.Now())
	}
}

// TestPipeFlushKeepsLaterTraffic pins that a flush only affects entries
// present at flush time: posts after the flush flow through untouched, in
// FIFO order, interleaved with ordinary events.
func TestPipeFlushKeepsLaterTraffic(t *testing.T) {
	e := NewEngine()
	var got []int
	p := e.NewPipe(func(a any) { got = append(got, a.(int)) })
	e.At(0, func() {
		p.Post(2, -1) // flushed before delivery
		p.Post(2, -2)
	})
	e.At(0.5, func() { p.Flush(nil) })
	e.At(1, func() {
		for i := 0; i < 4; i++ {
			p.Post(0.5+float64(i)*0.01, i)
		}
	})
	e.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %v, want the 4 post-flush entries", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("post-flush FIFO order broken: %v", got)
		}
	}
}
