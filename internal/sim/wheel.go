package sim

import "math/bits"

// Hierarchical timing wheel.
//
// The wheel sits in front of the event heap and absorbs the dense band of
// near-future timers (packet-timescale pacing loops, monitor intervals,
// retransmission timers) at O(1) insertion cost. Simulated time is bucketed
// into fixed-width ticks; each wheel level is a ring of slots one tick (level
// 0) or wheelSlotCount ticks (level 1) wide. An event lands in the slot
// covering its timestamp; when the engine needs events from a slot, the whole
// slot is flushed into the heap at once, so the heap only ever holds
//
//   - events inside the current tick (too near to bucket),
//   - events beyond the wheel horizon (the far-overflow band), and
//   - the contents of recently flushed slots.
//
// Ordering is therefore still decided exclusively by the heap's (at, seq)
// comparison: the wheel never reorders anything, it only defers heap
// insertion, which keeps every simulation byte-identical to the pure-heap
// engine while cutting the heap's size — and the O(log n) cost of every
// push/pop — down to the handful of events in flight around "now".
//
// Float rounding: tickOf truncates at/granularity, and the product can round
// up across an integer boundary, so a computed tick overshoots the exact
// floor by at most one (it never undershoots: truncation of a value ≥ the
// exact quotient minus one ulp cannot go below the exact floor). Every
// consumer therefore keeps one tick of slack: an event is safe to leave in
// the wheel only while its slot start is at least two ticks past the
// reference timestamp.
const (
	wheelBits      = 8
	wheelSlotCount = 1 << wheelBits // slots per level
	wheelMask      = wheelSlotCount - 1
	// wheelGranularity is the level-0 tick width in seconds. 16 µs is near
	// the serialization time of one MSS at 1 Gbps, the finest timer scale
	// the simulations produce in bulk; level 0 then spans ~4.1 ms and level
	// 1 ~1.05 s, so everything up to satellite-RTT timers stays in the
	// wheel and only truly far timers overflow to the heap.
	wheelGranularity = 16e-6
	wheelInvGran     = 1 / wheelGranularity
	// wheelSpan0/wheelSpan1 are the level horizons in ticks.
	wheelSpan0 = wheelSlotCount
	wheelSpan1 = wheelSlotCount * wheelSlotCount
)

func tickOf(at Time) int64 { return int64(at * wheelInvGran) }

// wheelLevel is one ring of slots with an occupancy bitmap (one bit per
// slot) so advancing across empty regions costs a few word scans, not a
// per-slot walk.
type wheelLevel struct {
	slots    [wheelSlotCount][]*Event
	occupied [wheelSlotCount / 64]uint64
	// arena seeds first-touch slots with small capacity carved from one
	// shared block, so a fresh engine does not pay one growth chain of
	// allocations per slot it ever uses. Slot backing arrays are retained
	// across flushes either way.
	arena []*Event
}

const wheelSlotSeedCap = 4

func (l *wheelLevel) put(slot int, ev *Event) {
	s := l.slots[slot]
	if s == nil {
		if len(l.arena) < wheelSlotSeedCap {
			l.arena = make([]*Event, wheelSlotCount*wheelSlotSeedCap)
		}
		s = l.arena[:0:wheelSlotSeedCap]
		l.arena = l.arena[wheelSlotSeedCap:]
	}
	l.slots[slot] = append(s, ev)
	l.occupied[slot>>6] |= 1 << (slot & 63)
}

// nextOccupied returns the smallest occupied slot index >= from, or -1.
func (l *wheelLevel) nextOccupied(from int) int {
	if from >= wheelSlotCount {
		return -1
	}
	w := from >> 6
	word := l.occupied[w] >> (from & 63)
	if word != 0 {
		return from + bits.TrailingZeros64(word)
	}
	for w++; w < len(l.occupied); w++ {
		if l.occupied[w] != 0 {
			return w<<6 + bits.TrailingZeros64(l.occupied[w])
		}
	}
	return -1
}

type wheel struct {
	levels [2]wheelLevel
	// cur is the first tick not yet flushed: every event still in the wheel
	// has a computed tick >= cur, and the level-1 slot covering cur's block
	// has already been cascaded down.
	cur   int64
	count int
}

// insert buckets ev into the wheel, or reports false when the event belongs
// in the heap instead: timestamps within the current tick (flushing slack)
// or beyond the level-1 horizon.
func (w *wheel) insert(ev *Event) bool {
	t := tickOf(ev.at)
	d := t - w.cur
	if d < 1 {
		return false
	}
	if d < wheelSpan0 {
		w.levels[0].put(int(t&wheelMask), ev)
	} else if d < wheelSpan1 {
		w.levels[1].put(int((t>>wheelBits)&wheelMask), ev)
	} else {
		return false
	}
	w.count++
	return true
}

// flushSlot empties one level-0 slot into the heap. Cancelled events are
// released here instead of travelling through the heap. The slot's backing
// array is retained, so steady-state flushing does not allocate.
func (e *Engine) flushSlot(l *wheelLevel, slot int) {
	evs := l.slots[slot]
	for _, ev := range evs {
		if ev.dead {
			e.release(ev)
		} else {
			e.heapPush(ev)
		}
	}
	l.slots[slot] = evs[:0]
	l.occupied[slot>>6] &^= 1 << (slot & 63)
	e.wheel.count -= len(evs)
}

// cascade moves the level-1 slot covering the block that starts at tick
// `base` down into level 0. Called exactly once per block, when cur first
// enters it, so level-0 slot indices never collide across blocks.
func (e *Engine) cascade(base int64) {
	w := &e.wheel
	l1 := &w.levels[1]
	slot := int((base >> wheelBits) & wheelMask)
	if l1.occupied[slot>>6]&(1<<(slot&63)) == 0 {
		return
	}
	evs := l1.slots[slot]
	for _, ev := range evs {
		if ev.dead {
			e.release(ev)
			w.count--
			continue
		}
		w.levels[0].put(int(tickOf(ev.at)&wheelMask), ev)
	}
	l1.slots[slot] = evs[:0]
	l1.occupied[slot>>6] &^= 1 << (slot & 63)
}

// wheelFlushBelow moves every wheel event with tick < T into the heap and
// advances cur to at least T.
func (e *Engine) wheelFlushBelow(T int64) {
	w := &e.wheel
	for w.cur < T {
		if w.count == 0 {
			// An empty wheel has nothing to cascade either; jump.
			w.cur = T
			return
		}
		base := w.cur &^ int64(wheelMask)
		blockEnd := base + wheelSlotCount // first tick of the next block
		lim := T
		if lim > blockEnd {
			lim = blockEnd
		}
		l0 := &w.levels[0]
		for i := int(w.cur & wheelMask); ; {
			s := l0.nextOccupied(i)
			if s < 0 || base+int64(s) >= lim {
				break
			}
			e.flushSlot(l0, s)
			i = s + 1
		}
		w.cur = lim
		if w.cur == blockEnd {
			e.cascade(blockEnd)
		}
	}
}

// wheelFlushNext advances to the next occupied slot and flushes it, for the
// heap-empty case. It returns once the heap is non-empty or the wheel
// drains (a flushed slot may contain only cancelled events).
func (e *Engine) wheelFlushNext() {
	w := &e.wheel
	for w.count > 0 && len(e.events) == 0 {
		base := w.cur &^ int64(wheelMask)
		if s := w.levels[0].nextOccupied(int(w.cur & wheelMask)); s >= 0 {
			e.flushSlot(&w.levels[0], s)
			w.cur = base + int64(s) + 1
			if w.cur&wheelMask == 0 {
				e.cascade(w.cur)
			}
			continue
		}
		// Nothing left in this block at level 0: step to the next block.
		w.cur = base + wheelSlotCount
		e.cascade(w.cur)
	}
}

// peekLive flushes the wheel just far enough that the earliest live pending
// event, if any, sits at the heap top, and returns it (nil when the engine
// is drained). The one-tick slack absorbs tickOf's floor-overshoot (see the
// package comment above).
func (e *Engine) peekLive() *Event {
	// Fast path, small enough to inline into the run loops: a live heap top
	// that is provably earlier than every wheel event (or the wheel is
	// empty). This is the steady state of pipe-dominated workloads, where
	// the top few events churn in the heap while the wheel holds the far
	// timers.
	if len(e.events) > 0 {
		it := &e.events[0]
		if !it.ev.dead && (e.wheel.count == 0 || e.wheel.cur > tickOf(it.at)+1) {
			return it.ev
		}
	}
	return e.peekLiveSlow()
}

func (e *Engine) peekLiveSlow() *Event {
	for {
		for len(e.events) > 0 && e.events[0].ev.dead {
			e.release(e.heapPop())
		}
		if e.wheel.count == 0 {
			if len(e.events) == 0 {
				return nil
			}
			return e.events[0].ev
		}
		if len(e.events) == 0 {
			e.wheelFlushNext()
			continue
		}
		hTick := tickOf(e.events[0].at)
		if e.wheel.cur > hTick+1 {
			// Every wheel event has tick >= cur >= hTick+2, hence an exact
			// timestamp >= (hTick+1)*granularity > heap top's. Safe to pop.
			return e.events[0].ev
		}
		e.wheelFlushBelow(hTick + 2)
	}
}
