package sim

import (
	"testing"
)

// runScript schedules a fixed workload on e (heap, wheel, pipe and timer
// traffic) and returns the observed firing order. It is deliberately shaped
// so events land in every scheduling structure: a dense near-future band
// (wheel), same-instant ties (heap), a pipe train, and a cancelled timer.
func runScript(e *Engine) []int {
	var order []int
	rec := func(id int) func() { return func() { order = append(order, id) } }
	p := e.NewPipe(func(a any) { order = append(order, a.(int)) })
	for i := 0; i < 64; i++ {
		e.At(float64(i)*0.001, rec(i))
	}
	e.At(0.0005, rec(1000))
	e.At(0.0005, rec(1001)) // same-instant FIFO tie
	p.Post(0.0101, 2000)
	p.Post(0.0102, 2001)
	t := e.After(0.002, rec(3000))
	t.Stop()
	e.At(1.5, rec(4000)) // beyond the wheel horizon
	e.Run()
	return order
}

// TestEngineResetReproducesFreshRun is the arena guarantee at the engine
// level: after Reset, an identical workload fires in the identical order a
// fresh engine produces, and the clock/sequence state matches.
func TestEngineResetReproducesFreshRun(t *testing.T) {
	t.Parallel()
	fresh := NewEngine()
	want := runScript(fresh)

	reused := NewEngine()
	runScript(reused)
	for trial := 0; trial < 3; trial++ {
		reused.Reset(nil)
		if reused.Now() != 0 || reused.Pending() != 0 || reused.Processed() != 0 {
			t.Fatalf("after Reset: now=%v pending=%d processed=%d, want zeros",
				reused.Now(), reused.Pending(), reused.Processed())
		}
		got := runScript(reused)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d events fired, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestEngineResetReclaimsArgs verifies Reset hands every live arg-carrying
// event and pipe entry to the reclaim callback exactly once — heap events,
// wheel-bucketed events, and pipe entries — and skips cancelled timers.
func TestEngineResetReclaimsArgs(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	fn := func(any) {}
	p := e.NewPipe(fn)
	want := map[int]bool{}
	// Heap band (near-empty engine keeps these in the heap).
	e.PostArg(0.5, fn, 1)
	e.PostArg(1.0, fn, 2)
	want[1], want[2] = true, true
	// Push enough events to open the wheel, all arg-carrying.
	for i := 10; i < 60; i++ {
		e.PostArg(0.001*float64(i), fn, i)
		want[i] = true
	}
	// Pipe entries, including the armed head.
	p.Post(0.25, 100)
	p.Post(0.26, 101)
	want[100], want[101] = true, true

	got := map[int]bool{}
	e.Reset(func(a any) {
		id, ok := a.(int)
		if !ok {
			return // the pipe's armed slot carries the pipe itself; skip
		}
		if got[id] {
			t.Fatalf("arg %d reclaimed twice", id)
		}
		got[id] = true
	})
	for id := range want {
		if !got[id] {
			t.Errorf("arg %d not reclaimed", id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("unexpected reclaim of %d", id)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after reset", e.Pending())
	}
}

// TestDropPipe verifies pipe deregistration (and its idle-only guard).
func TestDropPipe(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	fn := func(any) {}
	p1 := e.NewPipe(fn)
	p2 := e.NewPipe(fn)
	p1.Post(0.1, 1)
	e.Run()
	e.DropPipe(p1)
	p2.Post(0.1, 2)
	if got := e.Pending(); got != 1 {
		t.Fatalf("pending = %d after dropping an unrelated pipe, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DropPipe on a non-empty pipe must panic")
		}
	}()
	e.DropPipe(p2)
}

// TestSeedsReset pins that a reset chain replays exactly.
func TestSeedsReset(t *testing.T) {
	t.Parallel()
	s := NewSeeds(99)
	a, b := s.Next(), s.Next()
	s.Next()
	s.Reset(99)
	if got := s.Next(); got != a {
		t.Fatalf("first draw after Reset = %d, want %d", got, a)
	}
	if got := s.Next(); got != b {
		t.Fatalf("second draw after Reset = %d, want %d", got, b)
	}
}
