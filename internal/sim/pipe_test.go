package sim

import (
	"sort"
	"testing"
)

// TestPipeFIFO drives a constant-delay pipe and checks arrival order and
// times.
func TestPipeFIFO(t *testing.T) {
	e := NewEngine()
	type arrival struct {
		v  int
		at float64
	}
	var got []arrival
	p := e.NewPipe(func(a any) { got = append(got, arrival{a.(int), e.Now()}) })
	const delay = 0.25
	for i := 0; i < 100; i++ {
		i := i
		e.At(float64(i)*0.001, func() { p.Post(delay, i) })
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	for i, a := range got {
		if a.v != i {
			t.Fatalf("out of FIFO order at %d: %+v", i, a)
		}
		want := float64(i)*0.001 + delay
		if a.at != want {
			t.Fatalf("entry %d delivered at %v, want %v", i, a.at, want)
		}
	}
}

// TestPipeInterleavesWithEvents pins the determinism contract: pipe entries
// and ordinary events at the same timestamp fire in scheduling order,
// because each Post draws its engine sequence number at call time and the
// pipe re-arms with the head entry's own (at, seq).
func TestPipeInterleavesWithEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	p := e.NewPipe(func(a any) { got = append(got, a.(int)) })
	// All fire at t=1, alternating between pipe entries and plain events,
	// scheduled from a single setup event so Post sees now=0.
	e.At(0, func() {
		for i := 0; i < 10; i++ {
			if i%2 == 0 {
				p.Post(1, i)
			} else {
				i := i
				e.At(1, func() { got = append(got, i) })
			}
		}
	})
	e.Run()
	if len(got) != 10 {
		t.Fatalf("ran %d, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time pipe/event interleaving broke scheduling order: %v", got)
		}
	}
}

// TestPipeNonMonotonic lowers the effective delay mid-stream; later entries
// must overtake exactly as per-event scheduling would have let them.
func TestPipeNonMonotonic(t *testing.T) {
	e := NewEngine()
	type arrival struct {
		v  int
		at float64
	}
	var got []arrival
	p := e.NewPipe(func(a any) { got = append(got, arrival{a.(int), e.Now()}) })
	sendAt := []float64{0, 0.001, 0.002, 0.003}
	delays := []float64{0.5, 0.5, 0.1, 0.5} // entry 2 overtakes 0 and 1
	for i := range sendAt {
		i := i
		e.At(sendAt[i], func() { p.Post(delays[i], i) })
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
	ats := make([]float64, len(got))
	for i, a := range got {
		ats[i] = a.at
	}
	if !sort.Float64sAreSorted(ats) {
		t.Fatalf("deliveries out of time order: %+v", got)
	}
	if got[0].v != 2 {
		t.Fatalf("overtaking entry should arrive first, got %+v", got)
	}
	wantOrder := []int{2, 0, 1, 3}
	for i, idx := range wantOrder {
		if want := sendAt[idx] + delays[idx]; ats[i] != want {
			t.Fatalf("arrival %d at %v, want %v", i, ats[i], want)
		}
	}
}

// TestPipePendingAndLen covers the accounting surface.
func TestPipePendingAndLen(t *testing.T) {
	e := NewEngine()
	p := e.NewPipe(func(any) {})
	e.At(0, func() {
		p.Post(1, "a")
		p.Post(2, "b")
		p.Post(3, "c")
	})
	e.RunUntil(0)
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	// Three entries, but the armed head is a scheduled event: Pending must
	// count each exactly once.
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	e.RunUntil(2.5)
	if p.Len() != 1 || e.Pending() != 1 {
		t.Fatalf("after partial drain: Len=%d Pending=%d, want 1/1", p.Len(), e.Pending())
	}
	e.Run()
	if p.Len() != 0 || e.Pending() != 0 {
		t.Fatalf("after drain: Len=%d Pending=%d, want 0/0", p.Len(), e.Pending())
	}
}

// TestPipeReentrantPost posts into the pipe from its own delivery callback
// (a chained hop delivering into the next stage of the same pipe would look
// like this).
func TestPipeReentrantPost(t *testing.T) {
	e := NewEngine()
	n := 0
	var p *Pipe
	p = e.NewPipe(func(a any) {
		n++
		if v := a.(int); v < 5 {
			p.Post(0.1, v+1)
		}
	})
	e.At(0, func() { p.Post(0.1, 0) })
	e.Run()
	if n != 6 {
		t.Fatalf("reentrant chain ran %d deliveries, want 6", n)
	}
	if e.Now() != 0.6 {
		t.Fatalf("clock = %v, want 0.6", e.Now())
	}
}
