package sim

// Pipe is a FIFO delay line: a ring of (at, seq, arg) entries delivered
// through a single self-rearming scheduler slot. It exploits the structure
// of constant-delay hops — entries posted in time order also fire in time
// order — to keep an arbitrarily long in-flight train (a high-BDP link can
// carry tens of thousands of packets) out of the engine's scheduling
// structures: the pipe occupies one heap/wheel slot for its head entry,
// re-armed as entries drain, so scheduler size is O(pipes), not O(in-flight
// packets).
//
// Determinism is preserved exactly. Post draws one engine sequence number
// per entry — the same draw Engine.PostArg would have made — and the pipe's
// scheduler slot is armed with the head entry's own (at, seq), so every
// delivery interleaves with heap and wheel events in precisely the
// engine-wide (at, seq) order the per-event implementation produced. If an
// entry is posted with a timestamp before the current tail (a hop whose
// delay was lowered mid-flight; packets then physically overtake), the pipe
// falls back to an ordinary engine event for that entry, again with
// identical semantics.
//
// Entries are fire-and-forget: they cannot be cancelled. Use Timers for
// anything that may need to be stopped.
type Pipe struct {
	e  *Engine
	fn func(any)

	buf   []pipeEntry
	head  int
	count int
	armed bool
	// slot is the pipe's own delivery event, re-armed in place for every
	// head entry. Pinning it (see Event.pinned) keeps the per-delivery
	// arm/fire cycle off the engine's event free list entirely.
	slot Event
	// stale marks the slot as killed by Flush while still lodged in a
	// scheduling structure: until the dead arming provably pops, arm must
	// not refresh the slot in place (a double insert would corrupt the heap)
	// and instead falls back to a dynamic engine event (dyn/dynGen track the
	// outstanding one so a later Flush can cancel it too).
	stale  bool
	dyn    *Event
	dynGen uint64
}

type pipeEntry struct {
	at  Time
	seq uint64
	arg any
}

// NewPipe returns a pipe delivering entries through fn. One pipe per
// constant-delay stage (link propagation, access segment) is the intended
// granularity.
func (e *Engine) NewPipe(fn func(any)) *Pipe {
	if fn == nil {
		panic("sim: nil pipe function")
	}
	p := &Pipe{e: e, fn: fn}
	p.slot.pinned = true
	p.slot.afn = pipeFire
	p.slot.arg = p
	e.pipes = append(e.pipes, p)
	return p
}

// Len returns the number of queued entries.
func (p *Pipe) Len() int { return p.count }

// Post queues fn(arg) to fire delay seconds from now, drawing the entry's
// engine sequence number immediately (so same-instant ordering against
// other events matches per-event scheduling exactly).
func (p *Pipe) Post(delay float64, arg any) {
	if delay < 0 {
		delay = 0
	}
	e := p.e
	at := e.now + delay
	seq := e.nextSeq
	e.nextSeq++
	if p.count > 0 && at < p.buf[(p.head+p.count-1)&(len(p.buf)-1)].at {
		// Out-of-order entry (the stage's delay shrank since the tail was
		// posted): deliver through the engine so it can overtake, exactly
		// as the per-event path did.
		e.scheduleSeq(at, seq, p.fn, arg)
		return
	}
	p.push(pipeEntry{at: at, seq: seq, arg: arg})
	if !p.armed {
		p.arm()
	}
}

// arm schedules the pipe's delivery slot at the head entry's (at, seq).
// Re-arming with a stored — hence older — seq is safe: the heap orders by
// (at, seq), and the head's timestamp is never in the engine's past. The
// slot is the pipe's own pinned Event, refreshed in place: by the time arm
// runs the previous arming has always been popped and released (release
// precedes every callback), so no scheduling structure still references it.
//
// Flush breaks that invariant: it kills an armed slot without popping it,
// leaving the dead arming lodged in the heap/wheel/batch. While stale, arm
// falls back to a dynamically allocated event — unless the clock has moved
// strictly past the dead arming's timestamp, which proves it was popped
// (dead events are released at the heap top before any later-time event
// runs) and the slot is safe to reuse again.
func (p *Pipe) arm() {
	head := &p.buf[p.head]
	if p.stale {
		if p.e.now > p.slot.at {
			p.stale = false
		} else {
			ev := p.e.alloc()
			ev.at = head.at
			ev.seq = head.seq
			ev.fn = nil
			ev.afn = pipeFire
			ev.arg = p
			ev.dead = false
			p.e.place(ev)
			p.dyn = ev
			p.dynGen = ev.gen
			p.armed = true
			return
		}
	}
	ev := &p.slot
	ev.at = head.at
	ev.seq = head.seq
	ev.dead = false
	p.e.place(ev)
	p.armed = true
}

// pipeFire is the shared delivery trampoline; the scheduled event's arg is
// the pipe itself, so arming needs no per-pipe closure.
func pipeFire(a any) {
	p := a.(*Pipe)
	// Whichever event carried this firing is popped and released by now; if
	// it was the dynamic fallback, forget it so Flush cannot chase a recycled
	// event.
	p.dyn = nil
	ent := p.pop()
	if p.count > 0 {
		p.arm()
	} else {
		p.armed = false
	}
	p.fn(ent.arg)
}

// Flush drops every queued entry, calling drop with each entry's arg (oldest
// first) so callers can recycle pooled objects, and cancels the pending
// delivery. It models a fault — a link going administratively down loses its
// whole in-flight train — and is the one operation that kills the pipe's
// armed slot without popping it; arm's stale protocol (see above) keeps the
// scheduler consistent. The pipe remains usable: subsequent Posts deliver
// normally.
func (p *Pipe) Flush(drop func(arg any)) {
	for i := 0; i < p.count; i++ {
		ent := &p.buf[(p.head+i)&(len(p.buf)-1)]
		if drop != nil {
			drop(ent.arg)
		}
	}
	p.head, p.count = 0, 0
	if !p.armed {
		return
	}
	p.armed = false
	if p.dyn != nil {
		if p.dyn.gen == p.dynGen {
			p.dyn.dead = true
		}
		p.dyn = nil
		return
	}
	p.slot.dead = true
	p.stale = true
}

func (p *Pipe) push(ent pipeEntry) {
	if p.count == len(p.buf) {
		p.grow()
	}
	p.buf[(p.head+p.count)&(len(p.buf)-1)] = ent
	p.count++
}

func (p *Pipe) pop() pipeEntry {
	ent := p.buf[p.head]
	// The slot keeps its stale arg reference until overwritten: args are
	// engine-local pooled objects, so the pin is free and skipping the nil
	// store avoids a write barrier per delivery.
	p.head = (p.head + 1) & (len(p.buf) - 1)
	p.count--
	return ent
}

func (p *Pipe) grow() {
	n := len(p.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]pipeEntry, n)
	for i := 0; i < p.count; i++ {
		nb[i] = p.buf[(p.head+i)&(len(p.buf)-1)]
	}
	p.buf = nb
	p.head = 0
}
