package sim

import (
	"fmt"
	"math"
	"slices"
)

// ShardGroup runs several Engines in conservative lockstep so one simulation
// can use several cores. The partition (which component runs on which
// engine) is the caller's job — netem splits a topology by node — and the
// group only needs one physical fact about it: lookahead, a lower bound on
// the delay of every cross-shard interaction. With that bound the classic
// windowed conservative argument holds without null messages:
//
//	nextT = min over shards of the earliest pending event
//	window = [nextT, nextT+lookahead)
//
// Every event a shard executes inside the window happens at >= nextT, so any
// cross-shard message it emits arrives at >= nextT+lookahead — outside the
// window. Shards can therefore execute their window slices concurrently with
// no communication at all; messages posted during a round are parked in
// per-(src,dst) mailboxes and injected at the barrier. Each round advances
// global time by at least lookahead, bounding the number of rounds by
// duration/lookahead.
//
// Determinism survives sharding. Each engine keeps its own (at, seq) total
// order, mailbox entries carry (at, srcShard, srcSeq) — the source sequence
// number drawn at post time, so one source's messages stay in their causal
// order — and every destination sorts its merged inbox by exactly that key
// before injecting, drawing fresh destination sequence numbers in sorted
// order. The merged order is a pure function of the simulation, independent
// of goroutine scheduling, so a sharded run is reproducible at any shard
// count and — whenever no two causally independent cross-shard events share
// one exact float64 timestamp at one destination — byte-identical to the
// single-engine run (the experiment suite asserts this per experiment).
//
// A ShardGroup, like an Engine, belongs to one coordinating goroutine.
// Worker goroutines (one per shard, started lazily, parked on a channel
// between rounds) touch their engine only inside a round; the channel
// barrier orders those accesses against the coordinator's, so the usual
// single-threaded API (AddLink, AddFlow, Reset, Stats) remains safe between
// RunUntil calls.
type ShardGroup struct {
	engines   []*Engine
	lookahead float64

	// boxes[src*n+dst] is the src→dst mailbox: written only by shard src
	// during a round, drained only by the coordinator at the barrier.
	boxes [][]xmsg
	// merge is the coordinator's per-destination sort scratch.
	merge []xmsg

	started bool
	cmd     []chan shardCmd
	res     chan any
}

// xmsg is one parked cross-shard message.
type xmsg struct {
	at  Time
	seq uint64 // drawn from the source engine at post time
	src int32
	fn  func(any)
	arg any
}

type shardCmd struct {
	limit  Time
	strict bool
}

// NewShardGroup builds n engines coupled by the given lookahead (seconds).
// lookahead must be positive: a zero-delay cross-shard interaction would
// make every window empty. +Inf is legal and means the shards never
// interact (disconnected partitions run free to the deadline).
func NewShardGroup(n int, lookahead float64) *ShardGroup {
	if n < 1 {
		panic("sim: shard group needs at least one engine")
	}
	if !(lookahead > 0) {
		panic(fmt.Sprintf("sim: non-positive shard lookahead %v", lookahead))
	}
	g := &ShardGroup{
		engines:   make([]*Engine, n),
		lookahead: lookahead,
		boxes:     make([][]xmsg, n*n),
	}
	for i := range g.engines {
		g.engines[i] = NewEngine()
	}
	return g
}

// Len returns the number of shards.
func (g *ShardGroup) Len() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the group's conservative lookahead, seconds.
func (g *ShardGroup) Lookahead() float64 { return g.lookahead }

// Post parks fn(arg) for shard dst, to fire delay seconds after shard src's
// current time. It must be called from shard src's execution context (its
// worker goroutine during a round, or the coordinator between rounds) and
// the delay must honor the group lookahead — that bound is what lets rounds
// run without communication.
func (g *ShardGroup) Post(src, dst int, delay float64, fn func(any), arg any) {
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard post with delay %v below group lookahead %v", delay, g.lookahead))
	}
	e := g.engines[src]
	seq := e.nextSeq
	e.nextSeq++
	box := &g.boxes[src*len(g.engines)+dst]
	*box = append(*box, xmsg{at: e.now + delay, seq: seq, src: int32(src), fn: fn, arg: arg})
}

// RunUntil advances every shard to exactly deadline, executing all events
// with timestamps <= deadline in conservative windowed rounds. Like
// Engine.RunUntil it may be called repeatedly to resume.
func (g *ShardGroup) RunUntil(deadline Time) {
	if len(g.engines) == 1 {
		g.engines[0].RunUntil(deadline)
		return
	}
	g.start()
	for {
		nextT := math.Inf(1)
		for _, e := range g.engines {
			if at := e.NextEventAt(); at < nextT {
				nextT = at
			}
		}
		if nextT > deadline {
			break
		}
		limit := nextT + g.lookahead
		strict := true
		if !(limit <= deadline) {
			// The window reaches past the deadline: no message emitted in it
			// can arrive at <= deadline, so every shard can finish the call
			// with ordinary RunUntil semantics (inclusive, clock advanced).
			limit = deadline
			strict = false
		}
		g.round(limit, strict)
		g.deliver()
	}
	for _, e := range g.engines {
		if e.now < deadline {
			e.now = deadline
		}
	}
}

// round runs one window on every shard in parallel and waits for all of
// them. A panic on any shard is re-raised on the coordinator after the
// barrier, so no worker is left mid-window.
func (g *ShardGroup) round(limit Time, strict bool) {
	c := shardCmd{limit: limit, strict: strict}
	for _, ch := range g.cmd {
		ch <- c
	}
	var panicked any
	for range g.cmd {
		if p := <-g.res; p != nil && panicked == nil {
			panicked = p
		}
	}
	if panicked != nil {
		panic(panicked)
	}
}

// deliver drains every mailbox into its destination engine, per destination
// in (at, srcShard, srcSeq) order — the group's deterministic merge rule.
// Injection draws fresh destination sequence numbers in that sorted order,
// so the destination's own (at, seq) total order embeds the merge.
func (g *ShardGroup) deliver() {
	n := len(g.engines)
	for d := 0; d < n; d++ {
		m := g.merge[:0]
		for s := 0; s < n; s++ {
			box := &g.boxes[s*n+d]
			m = append(m, *box...)
			// Entries keep stale arg pointers until overwritten, as the
			// engine's own recycled structures do.
			*box = (*box)[:0]
		}
		if len(m) == 0 {
			g.merge = m
			continue
		}
		slices.SortFunc(m, func(a, b xmsg) int {
			switch {
			case a.at != b.at:
				if a.at < b.at {
					return -1
				}
				return 1
			case a.src != b.src:
				return int(a.src) - int(b.src)
			case a.seq < b.seq:
				return -1
			default:
				return 1
			}
		})
		e := g.engines[d]
		for i := range m {
			e.schedule(m[i].at, nil, m[i].fn, m[i].arg)
		}
		g.merge = m[:0]
	}
}

// start spawns the parked per-shard workers on first use.
func (g *ShardGroup) start() {
	if g.started {
		return
	}
	g.started = true
	g.cmd = make([]chan shardCmd, len(g.engines))
	g.res = make(chan any, len(g.engines))
	for i := range g.engines {
		g.cmd[i] = make(chan shardCmd)
		go g.worker(i)
	}
}

func (g *ShardGroup) worker(i int) {
	e := g.engines[i]
	for c := range g.cmd[i] {
		func() {
			defer func() { g.res <- recover() }()
			if c.strict {
				e.RunBefore(c.limit)
			} else {
				e.RunUntil(c.limit)
			}
		}()
	}
}

// Close stops the worker goroutines. The group restarts them on the next
// multi-shard RunUntil, so Close is purely a resource release for callers
// that build many short-lived groups (tests); long-lived cached runners
// never need it.
func (g *ShardGroup) Close() {
	if !g.started {
		return
	}
	for _, ch := range g.cmd {
		close(ch)
	}
	g.started = false
	g.cmd = nil
}

// Reset rewinds every engine for a fresh simulation (see Engine.Reset),
// reclaiming per shard through reclaims[i] (nil entries skip reclamation).
// Mailboxes are empty between RunUntil calls by construction; entries left
// by an aborted round are reclaimed into their destination shard.
func (g *ShardGroup) Reset(reclaims []func(any)) {
	n := len(g.engines)
	for i, e := range g.engines {
		var rc func(any)
		if i < len(reclaims) {
			rc = reclaims[i]
		}
		e.Reset(rc)
	}
	for i := range g.boxes {
		box := g.boxes[i]
		if len(box) == 0 {
			continue
		}
		var rc func(any)
		if d := i % n; d < len(reclaims) {
			rc = reclaims[d]
		}
		for j := range box {
			if rc != nil && box[j].arg != nil {
				rc(box[j].arg)
			}
		}
		g.boxes[i] = box[:0]
	}
}
