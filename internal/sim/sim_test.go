package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []float64
	var rec func()
	rec = func() {
		got = append(got, e.Now())
		if e.Now() < 5 {
			e.After(1, rec)
		}
	}
	e.After(1, rec)
	e.Run()
	if len(got) != 5 {
		t.Fatalf("recursive scheduling ran %d times, want 5", len(got))
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(1, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop should report success on a pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop should report failure")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	var nilT *Timer
	if nilT.Stop() || nilT.Active() {
		t.Error("nil timer must be inert")
	}
}

func TestRunUntilResumes(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(2.5)
	if len(got) != 2 {
		t.Fatalf("RunUntil(2.5) ran %d events, want 2", len(got))
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", e.Now())
	}
	e.RunUntil(10)
	if len(got) != 4 {
		t.Fatalf("resume ran %d events total, want 4", len(got))
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(1, func() {})
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Halt() })
	e.At(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("Halt did not stop the loop: n=%d", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Fatalf("second Run did not resume: n=%d", n)
	}
}

// Property: any set of scheduled times is executed in sorted order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var got []float64
		for _, d := range delays {
			at := float64(d) / 100
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(delays)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsIndependence(t *testing.T) {
	s1 := NewSeeds(1)
	s2 := NewSeeds(1)
	for i := 0; i < 10; i++ {
		if s1.Next() != s2.Next() {
			t.Fatal("same root seed must derive the same chain")
		}
	}
	s3 := NewSeeds(2)
	same := 0
	s4 := NewSeeds(1)
	for i := 0; i < 100; i++ {
		if s3.Next() == s4.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different roots collided %d times", same)
	}
}
