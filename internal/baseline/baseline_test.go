package baseline

import "testing"

func TestSabulIncreasesWithoutLoss(t *testing.T) {
	s := NewSabul(12.5e6) // 100 Mbps capacity
	s.Start(0)
	r0 := s.Rate(0)
	r1 := s.Rate(1.0) // one second of loss-free SYN intervals
	if r1 <= r0 {
		t.Fatalf("rate did not grow: %v -> %v", r0, r1)
	}
}

func TestSabulDecreasesOncePerEpoch(t *testing.T) {
	s := NewSabul(12.5e6)
	s.Start(0)
	s.OnSend(100, 1500, 0.1)
	r0 := s.Rate(0.1)
	s.OnLost(50, 0.1)
	r1 := s.Rate(0.1)
	if r1 >= r0 {
		t.Fatal("first loss must decrease the rate")
	}
	// Losses below the epoch boundary are absorbed.
	s.OnLost(60, 0.1)
	if got := s.Rate(0.1); got != r1 {
		t.Fatalf("same-epoch loss changed rate: %v -> %v", r1, got)
	}
	// A loss beyond the epoch (new flight) decreases again.
	s.OnSend(200, 1500, 0.11)
	s.OnLost(150, 0.11)
	if got := s.Rate(0.11); got >= r1 {
		t.Fatalf("new-epoch loss did not decrease rate: %v", got)
	}
}

func TestSabulRateFloor(t *testing.T) {
	s := NewSabul(12.5e6)
	s.Start(0)
	for i := int64(0); i < 1000; i++ {
		s.OnSend(i*10, 1500, 0)
		s.OnLost(i*10, 0)
	}
	if s.Rate(0) < 2*1500 {
		t.Fatalf("rate %v fell below floor", s.Rate(0))
	}
}

func TestPCPJumpsOnCleanProbe(t *testing.T) {
	p := NewPCP(1e6)
	p.Start(0)
	p.nextProbe = 0
	r0 := p.rate
	// Probe begins on the next Rate poll.
	if got := p.Rate(0.01); got <= r0 {
		t.Fatalf("probe rate %v not above base %v", got, r0)
	}
	// Deliver a clean train: constant RTT → success → jump.
	for i := int64(0); i < int64(p.TrainLen); i++ {
		p.OnSend(i, 1500, 0.01)
		p.OnAck(i, 0.030, 0.02)
	}
	if p.rate <= r0 {
		t.Fatalf("clean probe did not raise rate: %v", p.rate)
	}
}

func TestPCPBacksOffOnQueueingEvidence(t *testing.T) {
	p := NewPCP(1e6)
	p.Start(0)
	p.nextProbe = 0
	p.Rate(0.01)
	r0 := p.baseRate
	// RTT grows sharply across the train: candidate unavailable.
	for i := int64(0); i < int64(p.TrainLen); i++ {
		p.OnSend(i, 1500, 0.01)
		p.OnAck(i, 0.030+float64(i)*0.005, 0.02)
	}
	if p.rate > r0 {
		t.Fatalf("congested probe raised rate: %v > %v", p.rate, r0)
	}
}

func TestPCPHalvesOncePerFlightOnLoss(t *testing.T) {
	p := NewPCP(8e6)
	p.Start(0)
	p.OnSend(100, 1500, 0)
	r0 := p.rate
	p.OnLost(50, 0)
	if p.rate >= r0 {
		t.Fatal("loss did not halve")
	}
	r1 := p.rate
	p.OnLost(60, 0)
	if p.rate != r1 {
		t.Fatal("second same-flight loss halved again")
	}
}
