package baseline

// PCP implements the probe-and-jump endpoint congestion control of
// Anderson et al. (NSDI '06), the §4.1.1/§5 comparator: the sender
// periodically emits a short packet train at a candidate rate above its
// current rate and uses delay evidence from the train to decide whether
// that bandwidth is available; on success it jumps directly to the
// candidate rate, on failure it backs off proportionally.
//
// The real PCP measures train dispersion at the receiver. This
// reconstruction uses the RTT progression across the train — queue buildup
// during the train inflates successive RTTs by the amount the candidate
// rate exceeds available bandwidth — which has the same failure mode the
// paper observes: latency jitter from queueing (including the flow's own)
// corrupts the estimate and PCP systematically under-uses clean links.
type PCP struct {
	// ProbeInterval separates probe trains (default 0.2 s).
	ProbeInterval float64
	// TrainLen is the number of packets inspected per probe (default 8).
	TrainLen int
	// Aggressiveness is the candidate multiplier (default 1.5).
	Aggressiveness float64

	rate      float64
	probing   bool
	probeRate float64
	baseRate  float64
	nextProbe float64
	trainSent int
	trainAcks int
	firstRTT  float64
	lastRTT   float64
	minRTT    float64
	maxSeq    int64
	lastDec   int64
	started   bool
}

// NewPCP builds a PCP sender starting at initRate bytes/s.
func NewPCP(initRate float64) *PCP {
	if initRate <= 0 {
		initRate = 1e6 / 8 // PCP's 1 Mbps initial rate from the paper's footnote
	}
	return &PCP{ProbeInterval: 0.2, TrainLen: 8, Aggressiveness: 1.5, rate: initRate, minRTT: 1e9}
}

// Name implements cc.RateAlgo.
func (p *PCP) Name() string { return "pcp" }

// Start implements cc.RateAlgo.
func (p *PCP) Start(now float64) {
	p.started = true
	p.nextProbe = now + p.ProbeInterval
}

// Rate implements cc.RateAlgo.
func (p *PCP) Rate(now float64) float64 {
	if !p.probing && now >= p.nextProbe {
		p.probing = true
		p.baseRate = p.rate
		p.probeRate = p.rate * p.Aggressiveness
		p.trainSent = 0
		p.trainAcks = 0
		p.firstRTT = 0
		p.lastRTT = 0
	}
	if p.probing {
		return p.probeRate
	}
	return p.rate
}

// OnSend implements cc.RateAlgo.
func (p *PCP) OnSend(seq int64, size int, now float64) {
	if seq > p.maxSeq {
		p.maxSeq = seq
	}
	if p.probing {
		p.trainSent++
	}
}

// OnAck implements cc.RateAlgo: collects the RTT progression of the probe
// train and concludes the probe when enough evidence arrived.
func (p *PCP) OnAck(seq int64, rtt float64, now float64) {
	if rtt > 0 && rtt < p.minRTT {
		p.minRTT = rtt
	}
	if !p.probing || rtt <= 0 {
		return
	}
	if p.firstRTT == 0 {
		p.firstRTT = rtt
	}
	p.lastRTT = rtt
	p.trainAcks++
	if p.trainAcks < p.TrainLen {
		return
	}
	// Probe verdict: if the queue grew by less than a quarter of the
	// train's own duration, the candidate bandwidth is deemed available.
	trainDur := float64(p.TrainLen) * 1500 / p.probeRate
	growth := p.lastRTT - p.firstRTT
	if growth < 0.25*trainDur {
		p.rate = p.probeRate
	} else {
		// Failed probe: proportional back-off toward the evidence.
		est := p.baseRate * trainDur / (trainDur + growth)
		if est < p.rate {
			p.rate = est
		}
		if p.rate < 2*1500 {
			p.rate = 2 * 1500
		}
	}
	p.probing = false
	p.nextProbe = now + p.ProbeInterval
}

// OnLost implements cc.RateAlgo: PCP treats loss as strong congestion
// evidence and halves, at most once per flight.
func (p *PCP) OnLost(seq int64, now float64) {
	if p.probing {
		p.probing = false
		p.nextProbe = now + p.ProbeInterval
	}
	if seq > p.lastDec {
		p.rate /= 2
		if p.rate < 2*1500 {
			p.rate = 2 * 1500
		}
		p.lastDec = p.maxSeq
	}
}
