// Package baseline implements the two non-TCP comparators of §4.1.1:
// SABUL/UDT's DAIMD rate control and PCP's packet-train bandwidth probing.
// Both are rate-based senders that hardwire packet-level events to control
// responses — the architectural contrast PCC is evaluated against.
package baseline

import "math"

// Sabul implements UDT's native congestion control (Gu & Grossman), the
// algorithm behind the SABUL scientific-data-transfer tool: a DAIMD scheme
// where every rate-control interval (SYN = 10 ms) without loss increases
// the packet rate by a step derived from the estimated link capacity, and
// each new loss epoch multiplies the sending period by 1.125 (rate ×8/9).
//
// UDT estimates raw link capacity with receiver-side packet pairs; on the
// clean simulated links used here that estimate converges to the true
// bottleneck capacity, so the constructor takes the capacity directly (see
// DESIGN.md substitutions). The resulting behaviour matches the paper's
// description: aggressive overshoot to the capacity estimate, deep
// multiplicative backoff on loss bursts.
type Sabul struct {
	// CapacityHint is the link-capacity estimate (bytes/s) the packet-pair
	// estimator would converge to.
	CapacityHint float64
	// SYN is the rate-control interval (UDT: 10 ms).
	SYN float64
	// Beta is UDT's increase scaling constant (1.5e-6 packets per bit of
	// spare capacity, quantized by decimal order of magnitude).
	Beta float64

	rate       float64 // bytes/s
	lastSyn    float64
	lossInSyn  bool
	lastDecSeq int64 // losses at seq <= this belong to the current epoch
	maxSeqSent int64
	started    bool
}

// NewSabul builds a SABUL/UDT sender with the given capacity estimate.
func NewSabul(capacityHint float64) *Sabul {
	return &Sabul{CapacityHint: capacityHint, SYN: 0.01, Beta: 1.5e-6, rate: 16 * 1500}
}

// Name implements cc.RateAlgo.
func (s *Sabul) Name() string { return "sabul" }

// Start implements cc.RateAlgo.
func (s *Sabul) Start(now float64) {
	s.started = true
	s.lastSyn = now
}

// advance runs the per-SYN rate update.
func (s *Sabul) advance(now float64) {
	for now-s.lastSyn >= s.SYN {
		s.lastSyn += s.SYN
		if s.lossInSyn {
			s.lossInSyn = false
			continue
		}
		// UDT increase: inc packets per SYN, from spare capacity in bits/s
		// quantized to the next decimal order of magnitude.
		spare := (s.CapacityHint - s.rate) * 8
		var incPkts float64
		if spare <= 0 {
			incPkts = 1.0 / 1500
		} else {
			incPkts = math.Pow(10, math.Ceil(math.Log10(spare))) * s.Beta / 1500
			if incPkts < 1.0/1500 {
				incPkts = 1.0 / 1500
			}
		}
		s.rate += incPkts * 1500 / s.SYN
	}
}

// Rate implements cc.RateAlgo.
func (s *Sabul) Rate(now float64) float64 {
	s.advance(now)
	return s.rate
}

// OnSend implements cc.RateAlgo.
func (s *Sabul) OnSend(seq int64, size int, now float64) {
	if seq > s.maxSeqSent {
		s.maxSeqSent = seq
	}
	s.advance(now)
}

// OnAck implements cc.RateAlgo.
func (s *Sabul) OnAck(seq int64, rtt float64, now float64) { s.advance(now) }

// OnLost implements cc.RateAlgo: UDT's NAK handling. Only the first loss of
// an epoch (a seq beyond the last decrease point) triggers the 1/9 rate
// decrease; further losses in the same flight are absorbed.
func (s *Sabul) OnLost(seq int64, now float64) {
	s.advance(now)
	s.lossInSyn = true
	if seq > s.lastDecSeq {
		s.rate /= 1.125
		if s.rate < 2*1500 {
			s.rate = 2 * 1500
		}
		s.lastDecSeq = s.maxSeqSent
	}
}
