package workload

import (
	"math"
	"testing"

	"pcc/internal/netem"
	"pcc/internal/sim"
)

func TestPoissonArrivalRate(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewSeeds(1).NextRand()
	n := 0
	PoissonArrivals(eng, rng, 10, 100, func(i int) { n++ })
	eng.RunUntil(100)
	// 10/s over 100 s → ~1000 arrivals; allow 3 sigma (~±95).
	if n < 900 || n > 1100 {
		t.Fatalf("arrivals = %d, want ~1000", n)
	}
}

func TestPoissonStopsAtDeadline(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewSeeds(2).NextRand()
	var last float64
	PoissonArrivals(eng, rng, 100, 1, func(i int) { last = eng.Now() })
	eng.RunUntil(10)
	if last >= 1 {
		t.Fatalf("arrival at %v past the stop time", last)
	}
}

func TestPoissonZeroRateNoArrivals(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewSeeds(3).NextRand()
	n := 0
	PoissonArrivals(eng, rng, 0, 10, func(i int) { n++ })
	eng.RunUntil(10)
	if n != 0 {
		t.Fatalf("zero-rate process produced %d arrivals", n)
	}
}

func TestSampleInternetPathsSpansPaperDiversity(t *testing.T) {
	paths := SampleInternetPaths(500, 42)
	minBDP, maxBDP := math.Inf(1), 0.0
	withLoss := 0
	for _, p := range paths {
		if p.RateMbps < 2 || p.RateMbps > 500 {
			t.Fatalf("rate %v out of range", p.RateMbps)
		}
		if p.RTT < 0.01 || p.RTT > 0.4 {
			t.Fatalf("rtt %v out of range", p.RTT)
		}
		bdp := netem.Mbps(p.RateMbps) * p.RTT
		minBDP = math.Min(minBDP, bdp)
		maxBDP = math.Max(maxBDP, bdp)
		if p.Loss > 0 {
			withLoss++
		}
		if p.BufBytes < 3000 {
			t.Fatalf("buffer %d below floor", p.BufBytes)
		}
	}
	// Paper: BDPs from 14.3 KB to 18 MB; the ensemble must span orders of
	// magnitude.
	if maxBDP/minBDP < 100 {
		t.Fatalf("BDP diversity too narrow: %v..%v", minBDP, maxBDP)
	}
	if withLoss < 200 || withLoss > 400 {
		t.Fatalf("lossy-path count %d, want ~60%% of 500", withLoss)
	}
}

func TestSampleInternetPathsDeterministic(t *testing.T) {
	a := SampleInternetPaths(10, 7)
	b := SampleInternetPaths(10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same ensemble")
		}
	}
}
