// Package workload provides the traffic generators behind the paper's
// evaluation scenarios: Poisson short-flow arrivals (§4.3.2), synchronized
// incast fan-in (§4.1.8), staggered long flows (§4.2) and the Monte-Carlo
// wide-area path sampler standing in for the PlanetLab/GENI measurement
// ensemble (§4.1.1).
package workload

import (
	"math"
	"math/rand"

	"pcc/internal/netem"
	"pcc/internal/sim"
)

// PoissonArrivals schedules spawn(i) at exponentially distributed
// inter-arrival times with the given mean rate (arrivals/second) until
// stop. It returns immediately; arrivals happen as the engine runs.
func PoissonArrivals(eng *sim.Engine, rng *rand.Rand, rate float64, stop float64, spawn func(i int)) {
	if rate <= 0 {
		return
	}
	i := 0
	var next func()
	next = func() {
		if eng.Now() >= stop {
			return
		}
		spawn(i)
		i++
		eng.After(rng.ExpFloat64()/rate, next)
	}
	eng.After(rng.ExpFloat64()/rate, next)
}

// ParetoFlowKB draws a short-flow size in KB from a bounded Pareto
// distribution — the classic mice-and-elephants mix of cross-traffic: most
// flows near minKB, a heavy tail up to maxKB. alpha is the tail index
// (smaller = heavier tail; web traffic is usually fit with 1.1–1.3).
func ParetoFlowKB(rng *rand.Rand, alpha float64, minKB, maxKB int) int {
	lo, hi := float64(minKB), float64(maxKB)
	u := rng.Float64()
	// Inverse CDF of the Pareto truncated to [lo, hi].
	x := lo / math.Pow(1-u*(1-math.Pow(lo/hi, alpha)), 1/alpha)
	if x > hi {
		x = hi
	}
	return int(x)
}

// PathSample is one sampled wide-area path.
type PathSample struct {
	RateMbps float64
	RTT      float64 // seconds
	Loss     float64
	BufBytes int
}

// SampleInternetPaths draws n paths spanning the diversity the paper
// measured across its 510 PlanetLab/GENI pairs: BDPs from ~14 KB to ~18 MB,
// frequent low-grade random loss, and buffers between a small fraction of
// BDP and bufferbloat depth.
func SampleInternetPaths(n int, seed int64) []PathSample {
	rng := sim.NewSeeds(seed).NextRand()
	logU := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	paths := make([]PathSample, n)
	for i := range paths {
		rate := logU(2, 500)    // Mbps
		rtt := logU(0.01, 0.40) // seconds
		loss := 0.0
		if rng.Float64() < 0.6 {
			loss = logU(0.0002, 0.02)
		}
		bdp := netem.Mbps(rate) * rtt
		buf := int(bdp * logU(0.02, 2.0))
		if buf < 3000 {
			buf = 3000
		}
		paths[i] = PathSample{RateMbps: rate, RTT: rtt, Loss: loss, BufBytes: buf}
	}
	return paths
}
