package cc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pcc/internal/netem"
	"pcc/internal/sim"
)

func TestRTTEstimatorFirstSample(t *testing.T) {
	e := NewRTTEstimator()
	if e.HasSample() {
		t.Fatal("fresh estimator claims samples")
	}
	if e.RTO() != 1.0 {
		t.Fatalf("default RTO = %v, want 1.0", e.RTO())
	}
	e.Sample(0.1)
	if e.SRTT != 0.1 || e.RTTVar != 0.05 || e.MinRTT != 0.1 {
		t.Fatalf("first sample: srtt=%v var=%v min=%v", e.SRTT, e.RTTVar, e.MinRTT)
	}
}

func TestRTTEstimatorConvergesToConstant(t *testing.T) {
	e := NewRTTEstimator()
	for i := 0; i < 100; i++ {
		e.Sample(0.05)
	}
	if math.Abs(e.SRTT-0.05) > 1e-6 {
		t.Fatalf("srtt = %v, want 0.05", e.SRTT)
	}
	if e.RTO() != MinRTO {
		t.Fatalf("RTO = %v, want floor %v", e.RTO(), MinRTO)
	}
}

func TestRTTEstimatorIgnoresNonPositive(t *testing.T) {
	e := NewRTTEstimator()
	e.Sample(-1)
	e.Sample(0)
	if e.HasSample() {
		t.Fatal("non-positive samples must be ignored")
	}
}

// Property: MinRTT is always <= every sample fed in.
func TestRTTEstimatorMinProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		e := NewRTTEstimator()
		min := math.Inf(1)
		for _, s := range samples {
			v := float64(s+1) / 1000
			e.Sample(v)
			if v < min {
				min = v
			}
		}
		return len(samples) == 0 || e.MinRTT == min
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// loopback wires a sender and receiver through a perfect instant path.
type loopEnv struct {
	eng  *sim.Engine
	recv *Receiver
}

// fixedWindow is a test algorithm holding a constant window.
type fixedWindow struct{ w float64 }

func (f *fixedWindow) Name() string                            { return "fixed" }
func (f *fixedWindow) OnAck(now, rtt float64, e *RTTEstimator) {}
func (f *fixedWindow) OnDupAck()                               {}
func (f *fixedWindow) OnLossEvent(now float64)                 {}
func (f *fixedWindow) OnTimeout(now float64)                   {}
func (f *fixedWindow) Cwnd() float64                           { return f.w }

func buildPath(eng *sim.Engine, seed int64, rateMbps, rtt, loss float64, buf int) (*netem.Dumbbell, *sim.Seeds) {
	seeds := sim.NewSeeds(seed)
	d := netem.NewDumbbell(eng, netem.NewDropTail(buf), netem.Mbps(rateMbps), loss, seeds)
	return d, seeds
}

func TestWindowSenderDeliversFiniteFlow(t *testing.T) {
	eng := sim.NewEngine()
	d, seeds := buildPath(eng, 1, 100, 0.030, 0, 375*netem.KB)
	recv := NewReceiver(eng, 0)
	recv.SendAck = d.SendAck
	ws := NewWindowSender(eng, 0, &fixedWindow{w: 20}, d.SendData)
	ws.FlowPackets = 500
	doneAt := -1.0
	ws.OnDone = func(now float64) { doneAt = now }
	d.AddFlow(0, netem.SymmetricRTT(0.030), seeds, recv.OnData, ws.OnAck)
	eng.At(0, ws.Start)
	eng.RunUntil(60)
	if doneAt < 0 {
		t.Fatal("finite flow never completed")
	}
	if recv.UniqueBytes() != 500*MSS {
		t.Fatalf("delivered %d bytes, want %d", recv.UniqueBytes(), 500*MSS)
	}
}

func TestWindowSenderRecoversFromLoss(t *testing.T) {
	eng := sim.NewEngine()
	d, seeds := buildPath(eng, 5, 100, 0.030, 0.05, 375*netem.KB)
	recv := NewReceiver(eng, 0)
	recv.SendAck = d.SendAck
	ws := NewWindowSender(eng, 0, &fixedWindow{w: 50}, d.SendData)
	ws.FlowPackets = 2000
	done := false
	ws.OnDone = func(now float64) { done = true }
	d.AddFlow(0, netem.SymmetricRTT(0.030), seeds, recv.OnData, ws.OnAck)
	eng.At(0, ws.Start)
	eng.RunUntil(120)
	if !done {
		t.Fatalf("flow with 5%% loss never completed (acked so far: %d/%d, rtx %d)",
			recv.UniquePackets(), 2000, ws.Retransmitted())
	}
	if ws.Retransmitted() == 0 {
		t.Fatal("5% loss produced zero retransmissions")
	}
}

// UniquePackets helper for tests.
func (r *Receiver) UniquePackets() int64 { return r.uniquePkts }

func TestWindowSenderThroughputMatchesWindow(t *testing.T) {
	// cwnd 25 packets at 30 ms RTT ≈ 10 Mbps, well under the 100 Mbps
	// link: goodput should match the window-limited prediction.
	eng := sim.NewEngine()
	d, seeds := buildPath(eng, 2, 100, 0.030, 0, 375*netem.KB)
	recv := NewReceiver(eng, 0)
	recv.SendAck = d.SendAck
	ws := NewWindowSender(eng, 0, &fixedWindow{w: 25}, d.SendData)
	d.AddFlow(0, netem.SymmetricRTT(0.030), seeds, recv.OnData, ws.OnAck)
	eng.At(0, ws.Start)
	eng.RunUntil(30)
	got := float64(recv.UniqueBytes()) / 30
	want := 25 * MSS / 0.0304 // window / (RTT + serialization)
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("goodput %.0f B/s, want ~%.0f", got, want)
	}
}

// fixedRate is a test RateAlgo pacing at a constant rate.
type fixedRate struct{ r float64 }

func (f *fixedRate) Name() string                              { return "fixedrate" }
func (f *fixedRate) Start(now float64)                         {}
func (f *fixedRate) Rate(now float64) float64                  { return f.r }
func (f *fixedRate) OnSend(seq int64, size int, now float64)   {}
func (f *fixedRate) OnAck(seq int64, rtt float64, now float64) {}
func (f *fixedRate) OnLost(seq int64, now float64)             {}

func TestRateSenderPacesAtTargetRate(t *testing.T) {
	eng := sim.NewEngine()
	d, seeds := buildPath(eng, 3, 100, 0.030, 0, 375*netem.KB)
	recv := NewReceiver(eng, 0)
	recv.SendAck = d.SendAck
	rs := NewRateSender(eng, 0, &fixedRate{r: netem.Mbps(20)}, d.SendData)
	d.AddFlow(0, netem.SymmetricRTT(0.030), seeds, recv.OnData, rs.OnAck)
	eng.At(0, rs.Start)
	eng.RunUntil(20)
	got := netem.ToMbps(float64(recv.UniqueBytes()) / 20)
	if got < 19 || got > 21 {
		t.Fatalf("paced goodput %.1f Mbps, want ~20", got)
	}
}

func TestRateSenderCompletesUnderHeavyLoss(t *testing.T) {
	eng := sim.NewEngine()
	d, seeds := buildPath(eng, 11, 100, 0.030, 0.2, 375*netem.KB)
	recv := NewReceiver(eng, 0)
	recv.SendAck = d.SendAck
	rs := NewRateSender(eng, 0, &fixedRate{r: netem.Mbps(10)}, d.SendData)
	rs.FlowPackets = 1000
	done := false
	rs.OnDone = func(now float64) { done = true }
	d.AddFlow(0, netem.SymmetricRTT(0.030), seeds, recv.OnData, rs.OnAck)
	eng.At(0, rs.Start)
	eng.RunUntil(120)
	if !done {
		t.Fatalf("rate flow with 20%% loss never completed (rtx=%d)", rs.Retransmitted())
	}
}

func TestReceiverGoodputDeduplicates(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReceiver(eng, 0)
	acks := 0
	r.SendAck = func(p *netem.Packet) { acks++ }
	for i := 0; i < 3; i++ {
		r.OnData(&netem.Packet{Flow: 0, Seq: 0, Size: MSS})
	}
	if r.UniqueBytes() != MSS {
		t.Fatalf("duplicates counted: %d", r.UniqueBytes())
	}
	if acks != 3 {
		t.Fatalf("every arrival must be acked: %d", acks)
	}
	if r.TotalPackets() != 3 {
		t.Fatalf("total = %d", r.TotalPackets())
	}
}

func TestReceiverCumAckAdvancesThroughHoles(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReceiver(eng, 0)
	var lastCum int64
	r.SendAck = func(p *netem.Packet) { lastCum = p.CumAck }
	r.OnData(&netem.Packet{Seq: 0, Size: MSS})
	r.OnData(&netem.Packet{Seq: 2, Size: MSS}) // hole at 1
	if lastCum != 1 {
		t.Fatalf("cumAck = %d, want 1", lastCum)
	}
	r.OnData(&netem.Packet{Seq: 1, Size: MSS}) // fill the hole
	if lastCum != 3 {
		t.Fatalf("cumAck = %d, want 3 after hole fill", lastCum)
	}
}

func TestReceiverBuckets(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReceiver(eng, 0)
	r.Bucket = 1
	r.SendAck = func(p *netem.Packet) {}
	eng.At(0.5, func() { r.OnData(&netem.Packet{Seq: 0, Size: MSS}) })
	eng.At(1.5, func() { r.OnData(&netem.Packet{Seq: 1, Size: MSS}) })
	eng.At(1.6, func() { r.OnData(&netem.Packet{Seq: 2, Size: MSS}) })
	eng.Run()
	s := r.BucketSeries()
	if len(s) != 2 || s[0] != MSS || s[1] != 2*MSS {
		t.Fatalf("bucket series = %v", s)
	}
}

// TestWindowSenderHonorsPktSize: a small-packet flow's delivered bytes and
// window-limited throughput both scale with the configured wire size.
func TestWindowSenderHonorsPktSize(t *testing.T) {
	eng := sim.NewEngine()
	d, seeds := buildPath(eng, 9, 100, 0.030, 0, 375*netem.KB)
	recv := NewReceiver(eng, 0)
	recv.SendAck = d.SendAck
	ws := NewWindowSender(eng, 0, &fixedWindow{w: 20}, d.SendData)
	ws.PktSize = 512
	ws.FlowPackets = 500
	doneAt := -1.0
	ws.OnDone = func(now float64) { doneAt = now }
	d.AddFlow(0, netem.SymmetricRTT(0.030), seeds, recv.OnData, ws.OnAck)
	eng.At(0, ws.Start)
	eng.RunUntil(60)
	if doneAt < 0 {
		t.Fatal("finite 512-byte flow never completed")
	}
	if recv.UniqueBytes() != 500*512 {
		t.Fatalf("delivered %d bytes, want %d", recv.UniqueBytes(), 500*512)
	}
}

// TestRateSenderHonorsPktSize: the pacing clock spaces PktSize-sized
// packets, so a fixed byte rate delivers the same goodput regardless of the
// packet size carrying it.
func TestRateSenderHonorsPktSize(t *testing.T) {
	for _, size := range []int{512, 9000} {
		eng := sim.NewEngine()
		d, seeds := buildPath(eng, 3, 100, 0.030, 0, 375*netem.KB)
		recv := NewReceiver(eng, 0)
		recv.SendAck = d.SendAck
		rs := NewRateSender(eng, 0, &fixedRate{r: 1.25e6}, d.SendData) // 10 Mbps
		rs.PktSize = size
		d.AddFlow(0, netem.SymmetricRTT(0.030), seeds, recv.OnData, rs.OnAck)
		eng.At(0, rs.Start)
		eng.RunUntil(30)
		got := float64(recv.UniqueBytes()) / 30
		if got < 1.25e6*0.95 || got > 1.25e6*1.05 {
			t.Fatalf("size %d: goodput %.0f B/s, want ~1.25e6", size, got)
		}
		if rem := recv.UniqueBytes() % int64(size); rem != 0 {
			t.Fatalf("size %d: delivered bytes %d not a multiple of the wire size", size, recv.UniqueBytes())
		}
	}
}
