package cc

import "math/bits"

// seqSet is a windowed bitmap of out-of-order sequence numbers, replacing a
// map[int64]bool on the receiver's per-packet path. All stored sequences lie
// in a window of at most capBits() above the cumulative ACK, so a sequence's
// slot is just seq mod capacity — one word load per membership test instead
// of a map probe. The window grows (power of two, reindexing the rare
// resident bits) when a sender races further ahead of the ACK point.
type seqSet struct {
	words []uint64
}

func (s *seqSet) capBits() int64 { return int64(len(s.words)) << 6 }

// ensure grows the window until seq fits strictly inside (above,
// above+capBits()). Keeping every resident sequence strictly within one
// window width of `above` (the cumulative ACK) makes modulo slots unique,
// so has/set/clear never alias. Growing changes every resident bit's slot,
// so the survivors are re-placed under the new capacity.
func (s *seqSet) ensure(seq, above int64) {
	if s.words == nil {
		s.words = make([]uint64, 16) // 1024-sequence initial window
	}
	for seq-above >= s.capBits() {
		old := s.words
		oldCap := s.capBits()
		s.words = make([]uint64, 2*len(old))
		base := above + 1
		for w, word := range old {
			for word != 0 {
				b := word & (-word)
				word &^= b
				slot := int64(w)<<6 + int64(bits.TrailingZeros64(b))
				// Reconstruct the unique sequence ≡ slot (mod oldCap) in
				// [base, base+oldCap).
				off := (slot - base) & (oldCap - 1)
				s.set(base + off)
			}
		}
	}
}

// reset clears every resident bit, retaining the window's grown capacity. A
// wider-than-fresh window is semantically invisible: ensure's
// strictly-within-one-window invariant holds a fortiori, so membership
// tests stay alias-free.
func (s *seqSet) reset() {
	clear(s.words)
}

func (s *seqSet) has(seq int64) bool {
	if s.words == nil {
		return false
	}
	i := seq & (s.capBits() - 1)
	return s.words[i>>6]&(1<<(i&63)) != 0
}

func (s *seqSet) set(seq int64) {
	i := seq & (s.capBits() - 1)
	s.words[i>>6] |= 1 << (i & 63)
}

func (s *seqSet) clear(seq int64) {
	if s.words == nil {
		return
	}
	i := seq & (s.capBits() - 1)
	s.words[i>>6] &^= 1 << (i & 63)
}
