package cc

import (
	"pcc/internal/netem"
	"pcc/internal/sim"
)

// Receiver is the data sink for one flow. It acknowledges every data packet
// (cumulative + selective sequence number + timestamp echo) and tracks
// goodput: only the first delivery of each sequence number counts.
type Receiver struct {
	Eng  *sim.Engine
	Flow int
	// SendAck transmits an ACK onto the reverse path (wired to
	// Dumbbell.SendAck by the experiment).
	SendAck func(*netem.Packet)

	// FlowPackets, when > 0, is the flow length in packets; OnComplete
	// fires when all of [0, FlowPackets) have been received at least once.
	FlowPackets int64
	OnComplete  func(now float64)

	// Bucket, when > 0, aggregates goodput into time buckets of this width
	// (seconds) for rate-over-time plots.
	Bucket  float64
	buckets []float64 // bytes per bucket

	// Pool, when set, recycles packets: consumed data packets are returned
	// to it and outgoing ACKs are allocated from it. It must belong to this
	// receiver's engine (pooling never crosses goroutines).
	Pool *netem.PacketPool

	cumAck      int64 // next expected in-order sequence
	ooo         seqSet
	uniqueBytes int64
	uniquePkts  int64
	totalPkts   int64
	firstAt     float64
	lastAt      float64
	completed   bool
	// frozen parks the receiver during an injected node crash: arriving data
	// is recycled unprocessed and no ACK is emitted.
	frozen bool
}

// NewReceiver builds a receiver for the given flow.
func NewReceiver(eng *sim.Engine, flow int) *Receiver {
	return &Receiver{Eng: eng, Flow: flow, firstAt: -1}
}

// Reset returns the receiver to its just-constructed state for a new trial
// on a reset engine, retaining grown storage (the out-of-order bitmap and
// the bucket series backing) and the Eng/Flow/SendAck/Pool wiring. Callers
// re-apply the per-trial knobs (Bucket, FlowPackets, OnComplete) afterwards,
// exactly as they would configure a fresh receiver.
func (r *Receiver) Reset() {
	r.FlowPackets = 0
	r.OnComplete = nil
	r.Bucket = 0
	r.buckets = r.buckets[:0]
	r.cumAck = 0
	r.ooo.reset()
	r.uniqueBytes, r.uniquePkts, r.totalPkts = 0, 0, 0
	r.firstAt, r.lastAt = -1, 0
	r.completed = false
	r.frozen = false
}

// Freeze parks the receiver for an injected node crash: data arriving while
// frozen is destroyed (the host is down) and never acknowledged. Counters and
// reassembly state are retained for Unfreeze.
func (r *Receiver) Freeze() { r.frozen = true }

// Unfreeze resumes a frozen receiver; reception continues where it stopped.
func (r *Receiver) Unfreeze() { r.frozen = false }

// OnData processes an arriving data packet and emits an ACK.
func (r *Receiver) OnData(p *netem.Packet) {
	if r.frozen {
		r.Pool.Put(p)
		return
	}
	now := r.Eng.Now()
	r.totalPkts++
	if r.firstAt < 0 {
		r.firstAt = now
	}
	r.lastAt = now

	fresh := false
	switch {
	case p.Seq == r.cumAck:
		fresh = true
		r.cumAck++
		for r.ooo.has(r.cumAck) {
			r.ooo.clear(r.cumAck)
			r.cumAck++
		}
	case p.Seq > r.cumAck:
		// ensure before has: membership tests are only alias-free for
		// sequences inside the current window.
		r.ooo.ensure(p.Seq, r.cumAck)
		if !r.ooo.has(p.Seq) {
			r.ooo.set(p.Seq)
			fresh = true
		}
	}
	if fresh {
		r.uniqueBytes += int64(p.Size)
		r.uniquePkts++
		if r.Bucket > 0 {
			i := int(now / r.Bucket)
			for len(r.buckets) <= i {
				r.buckets = append(r.buckets, 0)
			}
			r.buckets[i] += float64(p.Size)
		}
	}

	flow, seq, sent := p.Flow, p.Seq, p.Sent
	// The data packet is consumed; recycling it here often hands the same
	// slot straight back out as the ACK below.
	r.Pool.Put(p)
	ack := r.Pool.Get()
	ack.Flow = flow
	ack.Ack = true
	ack.Size = AckSize
	ack.Sent = now
	ack.CumAck = r.cumAck
	ack.SackSeq = seq
	ack.EchoSent = sent
	if r.SendAck != nil {
		r.SendAck(ack)
	} else {
		r.Pool.Put(ack)
	}

	if !r.completed && r.FlowPackets > 0 && r.uniquePkts >= r.FlowPackets {
		r.completed = true
		if r.OnComplete != nil {
			r.OnComplete(now)
		}
	}
}

// UniqueBytes returns the goodput byte count (retransmissions deduplicated).
func (r *Receiver) UniqueBytes() int64 { return r.uniqueBytes }

// TotalPackets returns every delivered packet including duplicates.
func (r *Receiver) TotalPackets() int64 { return r.totalPkts }

// Goodput returns unique bytes per second over [from, to].
func (r *Receiver) Goodput(from, to float64) float64 {
	if to <= from {
		return 0
	}
	return float64(r.uniqueBytes) / (to - from)
}

// BucketSeries returns per-bucket goodput in bytes/s. Valid when Bucket > 0.
func (r *Receiver) BucketSeries() []float64 {
	return r.BucketSeriesInto(nil)
}

// BucketSeriesInto is BucketSeries appending into dst[:0], reusing its
// backing array: 0 allocations once dst has the series' capacity.
func (r *Receiver) BucketSeriesInto(dst []float64) []float64 {
	dst = dst[:0]
	for _, b := range r.buckets {
		dst = append(dst, b/r.Bucket)
	}
	return dst
}

// GoodputBetween returns unique-byte goodput measured over bucketed time
// range [from, to) using the bucket series; requires Bucket > 0.
func (r *Receiver) GoodputBetween(from, to float64) float64 {
	if r.Bucket <= 0 || to <= from {
		return 0
	}
	lo, hi := int(from/r.Bucket), int(to/r.Bucket)
	var sum float64
	for i := lo; i < hi && i < len(r.buckets); i++ {
		sum += r.buckets[i]
	}
	return sum / (to - from)
}
