package cc

// pktChunk is the refill granularity of a seqWindow's entry free list.
const pktChunk = 64

// pktArenaBlock is the allocation granularity of a PktArena, in entries.
const pktArenaBlock = 16 * pktChunk

// PktArena carves pktChunk-sized pktState sub-slices out of larger blocks.
// One arena per experiment worker, shared by every sender that worker ever
// builds (see exp.Runner), turns the per-window chunk allocations of a
// many-flow trial into a handful of block allocations — and because blocks
// outlive trials, a warm worker's windows refill without allocating at all.
// pktState is pointer-free, so blocks cost the GC nothing to scan.
type PktArena struct {
	block []pktState
}

// chunk returns a zeroed pktChunk-entry slice carved from the current block.
func (a *PktArena) chunk() []pktState {
	if len(a.block) < pktChunk {
		a.block = make([]pktState, pktArenaBlock)
	}
	c := a.block[:pktChunk:pktChunk]
	a.block = a.block[pktChunk:]
	return c
}

// seqWindow tracks the outstanding packets of one sender, ordered by
// sequence number. It is the single implementation of the window machinery
// both RateSender and WindowSender build on: entries are appended in seq
// order, found by binary search (no per-packet map), detached from the
// head as the cumulative ACK advances, and recycled through a free list so
// steady-state operation allocates nothing.
type seqWindow struct {
	entries []*pktState // ordered by seq; slots below head are nil
	head    int
	free    []*pktState
	// arena, when set, supplies free-list refill chunks (see PktArena).
	arena *PktArena
}

// add appends a fresh or recycled entry for seq, which must exceed every
// seq already tracked (callers add in transmission order).
func (w *seqWindow) add(seq int64) *pktState {
	if len(w.free) == 0 {
		// Refill in chunks: a window ramping to its peak (incast collapse,
		// deep-BDP flights) would otherwise allocate one object per packet.
		var chunk []pktState
		if w.arena != nil {
			chunk = w.arena.chunk()
		} else {
			chunk = make([]pktState, pktChunk)
		}
		for i := range chunk {
			w.free = append(w.free, &chunk[i])
		}
	}
	n := len(w.free)
	st := w.free[n-1]
	w.free = w.free[:n-1]
	*st = pktState{seq: seq}
	w.entries = append(w.entries, st)
	return st
}

// search returns the index of the first live entry with seq >= target.
func (w *seqWindow) search(target int64) int {
	lo, hi := w.head, len(w.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.entries[mid].seq < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lookup returns the entry tracking seq, or nil.
func (w *seqWindow) lookup(seq int64) *pktState {
	if i := w.search(seq); i < len(w.entries) && w.entries[i].seq == seq {
		return w.entries[i]
	}
	return nil
}

// headBelow reports whether the oldest tracked entry exists and has a
// sequence below seq (the head-advance loop condition).
func (w *seqWindow) headBelow(seq int64) bool {
	return w.head < len(w.entries) && w.entries[w.head].seq < seq
}

// popHead detaches the oldest tracked entry. The caller finishes with it
// and then hands it back via recycle.
func (w *seqWindow) popHead() *pktState {
	st := w.entries[w.head]
	w.entries[w.head] = nil
	w.head++
	return st
}

// recycle returns a detached entry to the free list for reuse by add.
func (w *seqWindow) recycle(st *pktState) { w.free = append(w.free, st) }

// maybeCompact shifts the live region down once the dead prefix dominates,
// reusing the backing array.
func (w *seqWindow) maybeCompact() {
	if w.head > 1024 && w.head*2 > len(w.entries) {
		n := copy(w.entries, w.entries[w.head:])
		clear(w.entries[n:])
		w.entries = w.entries[:n]
		w.head = 0
	}
}

// reset empties the window for a new flow, recycling every live entry into
// the free list so the chunk storage is reused (steady-state reset allocates
// nothing).
func (w *seqWindow) reset() {
	for i := w.head; i < len(w.entries); i++ {
		w.free = append(w.free, w.entries[i])
	}
	clear(w.entries)
	w.entries = w.entries[:0]
	w.head = 0
}

// outstanding counts entries not yet SACKed.
func (w *seqWindow) outstanding() int {
	n := 0
	for i := w.head; i < len(w.entries); i++ {
		if !w.entries[i].sacked {
			n++
		}
	}
	return n
}
