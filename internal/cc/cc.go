// Package cc provides the sender/receiver harnesses that connect congestion
// control algorithms to the simulated network.
//
// Two harness styles cover every protocol in the paper:
//
//   - WindowSender drives window-based algorithms (the TCP family,
//     internal/tcp) with SACK-granularity loss recovery, RTO, and optional
//     packet pacing.
//   - RateSender drives rate-based algorithms (PCC, SABUL, PCP) with a
//     pacing clock and the same SACK feedback.
//
// Both use one Receiver, which acknowledges every data packet with a
// cumulative ACK plus the selective sequence number that triggered it,
// mirroring TCP SACK semantics — the only receiver feedback PCC requires
// (§2.3 "No receiver change").
package cc

import "math"

// MSS is the default simulated segment size in bytes, including headers.
// The paper's experiments use 1.5 KB packets throughout; per-flow packet
// sizes are set with the senders' PktSize knob (mixed-MTU scenarios).
const MSS = 1500

// AckSize is the simulated ACK wire size in bytes.
const AckSize = 40

// MinRTO mirrors the common kernel minimum retransmission timeout.
const MinRTO = 0.2

// RTTEstimator keeps the standard SRTT/RTTVAR smoothed estimates
// (RFC 6298) plus the connection minimum.
type RTTEstimator struct {
	SRTT   float64
	RTTVar float64
	MinRTT float64
	n      int
}

// NewRTTEstimator returns an estimator with no samples; SRTT is zero and
// RTO() returns a conservative 1 s until the first sample arrives.
func NewRTTEstimator() *RTTEstimator {
	return &RTTEstimator{MinRTT: math.Inf(1)}
}

// Reset returns the estimator to its no-samples state, as NewRTTEstimator
// built it.
func (r *RTTEstimator) Reset() {
	*r = RTTEstimator{MinRTT: math.Inf(1)}
}

// Sample folds in one RTT measurement.
func (r *RTTEstimator) Sample(rtt float64) {
	if rtt <= 0 {
		return
	}
	if rtt < r.MinRTT {
		r.MinRTT = rtt
	}
	if r.n == 0 {
		r.SRTT = rtt
		r.RTTVar = rtt / 2
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		diff := r.SRTT - rtt
		if diff < 0 {
			diff = -diff
		}
		r.RTTVar = (1-beta)*r.RTTVar + beta*diff
		r.SRTT = (1-alpha)*r.SRTT + alpha*rtt
	}
	r.n++
}

// HasSample reports whether at least one RTT measurement was folded in.
func (r *RTTEstimator) HasSample() bool { return r.n > 0 }

// RTO returns the RFC 6298 retransmission timeout with the MinRTO floor.
func (r *RTTEstimator) RTO() float64 {
	if r.n == 0 {
		return 1.0
	}
	rto := r.SRTT + 4*r.RTTVar
	if rto < MinRTO {
		rto = MinRTO
	}
	return rto
}

// WindowAlgo is a window-based congestion control algorithm (the TCP
// family). The harness calls the On* hooks and reads Cwnd (in packets,
// fractional) to clock transmissions.
type WindowAlgo interface {
	Name() string
	// OnAck is invoked for every newly acknowledged packet with the current
	// time, the packet's RTT sample (0 when unavailable, e.g. cumulative
	// coverage or Karn-excluded retransmissions) and the connection RTT
	// estimator.
	OnAck(now, rtt float64, est *RTTEstimator)
	// OnDupAck is invoked for ACKs that advance nothing (kept for
	// algorithms that count duplicates; SACK recovery itself is in the
	// harness).
	OnDupAck()
	// OnLossEvent is invoked once per loss event (at most once per window).
	OnLossEvent(now float64)
	// OnTimeout is invoked when the retransmission timer fires.
	OnTimeout(now float64)
	// Cwnd returns the congestion window in packets.
	Cwnd() float64
}

// RateAlgo is a rate-based congestion control algorithm (PCC, SABUL, PCP).
type RateAlgo interface {
	Name() string
	// Start is called once when the flow begins.
	Start(now float64)
	// Rate returns the current target pacing rate in bytes/s. The harness
	// polls it before every transmission.
	Rate(now float64) float64
	// OnSend notifies the algorithm that seq was (re)transmitted.
	OnSend(seq int64, size int, now float64)
	// OnAck notifies a selective acknowledgment for seq with an RTT sample.
	OnAck(seq int64, rtt float64, now float64)
	// OnLost notifies that the harness declared seq lost (SACK-gap or RTO).
	OnLost(seq int64, now float64)
}
