package cc

import (
	"pcc/internal/netem"
	"pcc/internal/sim"
)

// pktState tracks one outstanding data packet at the sender.
type pktState struct {
	seq    int64
	sentAt float64 // time of the most recent (re)transmission
	sacked bool
	lost   bool
	rtx    bool
}

// WindowSender drives a WindowAlgo over a simulated path. Reliability is
// SACK-based: every ACK carries the sequence it acknowledges; a packet is
// declared lost when DupThresh packets above it have been SACKed (the SACK
// analogue of triple-duplicate-ACK), or when the retransmission timer fires.
type WindowSender struct {
	Eng  *sim.Engine
	Flow int
	Algo WindowAlgo
	// SendData transmits a data packet (wired to Dumbbell.SendData).
	SendData func(*netem.Packet)
	Est      *RTTEstimator

	// FlowPackets, when > 0, limits the flow length; 0 means unbounded.
	FlowPackets int64
	// OnDone fires when every packet of a finite flow has been acknowledged.
	OnDone func(now float64)
	// Paced enables packet pacing at cwnd/SRTT (the "TCP Pacing" baseline
	// of §4.1.6).
	Paced bool
	// RTTHint seeds the pacing rate before the first RTT sample.
	RTTHint float64
	// DupThresh is the SACK reordering threshold (default 3).
	DupThresh int64
	// MaxCwnd models the receiver window / socket buffer: the congestion
	// window is clamped to this many packets (default 65536).
	MaxCwnd float64
	// Pool, when set, recycles packets: data packets are allocated from it
	// and consumed ACKs are returned to it. It must belong to this sender's
	// engine (pooling never crosses goroutines).
	Pool *netem.PacketPool
	// PktSize is the wire size of every data packet this flow sends
	// (default MSS); the cwnd stays packet-denominated, so a small-packet
	// flow's window covers proportionally fewer bytes.
	PktSize int

	win      seqWindow
	nextSeq  int64
	cumAck   int64
	sackHigh int64 // highest SACKed sequence
	lossScan int64 // sequences below this have been examined for SACK loss
	pipe     int
	// rtxQ[rtxHead:] is the retransmission FIFO. Consuming by index instead
	// of re-slicing the front keeps the backing array's capacity: a
	// front-sliced queue strands its consumed prefix, so in steady state
	// (queue near-empty, head at the end of the backing) every push
	// allocates a fresh array — one allocation per detected loss.
	rtxQ    []int64
	rtxHead int

	inRecovery bool
	recover    int64

	rtoTimer    sim.Timer
	rtoDeadline float64
	rtoBackoff  float64
	onRTOFn     func()

	paceTimer sim.Timer
	paceFn    func()

	sentPkts int64
	rtxPkts  int64
	rttSum   float64
	rttCnt   int64
	done     bool
	started  bool
	// frozen parks the sender during an injected node crash: the RTO and
	// pacing timers stop and arriving ACKs are consumed without effect.
	frozen bool
}

// NewWindowSender wires a window-based algorithm to a path.
func NewWindowSender(eng *sim.Engine, flow int, algo WindowAlgo, sendData func(*netem.Packet)) *WindowSender {
	s := &WindowSender{
		Eng:      eng,
		Flow:     flow,
		SendData: sendData,
		Est:      NewRTTEstimator(),
	}
	s.initDefaults(algo)
	// Bound once: these loops reschedule themselves constantly and a method
	// value or capturing closure would allocate per use.
	s.onRTOFn = s.onRTO
	s.paceFn = func() {
		if s.frozen {
			return
		}
		if float64(s.pipe) < s.cwnd() && s.hasData() && !s.done {
			s.sendOne()
		}
		s.schedulePace()
	}
	return s
}

// initDefaults applies the non-zero constructor defaults, shared by
// NewWindowSender and Reset so an arena-reused sender cannot drift from a
// fresh one when a default changes.
func (s *WindowSender) initDefaults(algo WindowAlgo) {
	s.Algo = algo
	s.RTTHint = 0.1
	s.DupThresh = 3
	s.MaxCwnd = 65536
	s.PktSize = MSS
	s.sackHigh = -1
	s.rtoBackoff = 1
}

// Reset returns the sender to its just-constructed state around a new
// algorithm, for a new trial on a reset engine. The sequence window's entry
// chunks, the retransmission queue backing and the Eng/Flow/SendData/Pool
// wiring are retained; every tunable returns to its constructor default and
// callers re-apply per-trial knobs exactly as on a fresh sender.
func (s *WindowSender) Reset(algo WindowAlgo) {
	s.initDefaults(algo)
	s.Est.Reset()
	s.FlowPackets = 0
	s.OnDone = nil
	s.Paced = false
	s.win.reset()
	s.nextSeq, s.cumAck, s.lossScan = 0, 0, 0
	s.pipe = 0
	s.rtxQ, s.rtxHead = s.rtxQ[:0], 0
	s.inRecovery = false
	s.recover = 0
	s.rtoTimer, s.paceTimer = sim.Timer{}, sim.Timer{}
	s.rtoDeadline = 0
	s.sentPkts, s.rtxPkts = 0, 0
	s.rttSum, s.rttCnt = 0, 0
	s.done, s.started = false, false
	s.frozen = false
}

// SetArena points the sequence window's free-list refills at a shared
// chunk arena (one per experiment worker). Like the Eng/Flow/SendData/Pool
// wiring, the arena survives Reset.
func (s *WindowSender) SetArena(a *PktArena) { s.win.arena = a }

// Start begins transmission.
func (s *WindowSender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.trySend()
}

// Freeze parks the sender for an injected node crash: both timers stop and
// every hook becomes a no-op until Unfreeze. Window state (pipe, SACK marks,
// recovery point) is retained untouched.
func (s *WindowSender) Freeze() {
	s.frozen = true
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
}

// Unfreeze resumes a frozen sender where it stopped, re-arming the RTO for
// whatever is still outstanding (those packets died with the crashed links
// and only the timeout can rescue them).
func (s *WindowSender) Unfreeze() {
	s.frozen = false
	if s.started && !s.done {
		s.trySend()
		if s.pipe > 0 || s.rtxHead < len(s.rtxQ) {
			s.armRTO()
		}
	}
}

// Sent returns total data transmissions (including retransmissions).
func (s *WindowSender) Sent() int64 { return s.sentPkts }

// Retransmitted returns the number of retransmissions.
func (s *WindowSender) Retransmitted() int64 { return s.rtxPkts }

// MeanRTT returns the average of all valid RTT samples (0 if none).
func (s *WindowSender) MeanRTT() float64 {
	if s.rttCnt == 0 {
		return 0
	}
	return s.rttSum / float64(s.rttCnt)
}

func (s *WindowSender) cwnd() float64 {
	w := s.Algo.Cwnd()
	if w < 1 {
		w = 1
	}
	if s.MaxCwnd > 0 && w > s.MaxCwnd {
		w = s.MaxCwnd
	}
	return w
}

func (s *WindowSender) hasData() bool {
	if s.rtxHead < len(s.rtxQ) {
		return true
	}
	return s.FlowPackets == 0 || s.nextSeq < s.FlowPackets
}

// trySend transmits as allowed by cwnd (immediately, or via the pacer).
func (s *WindowSender) trySend() {
	if s.done || s.frozen {
		return
	}
	if s.Paced {
		s.schedulePace()
		return
	}
	// Hoist the window once: Cwnd is a pure getter and sendOne runs no
	// algorithm hooks, so the value cannot change inside the loop — one
	// interface dispatch covers the whole send train.
	w := s.cwnd()
	for float64(s.pipe) < w && s.hasData() {
		s.sendOne()
	}
}

// schedulePace arms the pacing timer if it is idle and there is work.
func (s *WindowSender) schedulePace() {
	if s.paceTimer.Active() || s.done || s.frozen {
		return
	}
	w := s.cwnd()
	if float64(s.pipe) >= w || !s.hasData() {
		return
	}
	rtt := s.Est.SRTT
	if !s.Est.HasSample() {
		rtt = s.RTTHint
	}
	rate := w * float64(s.PktSize) / rtt // bytes/s
	interval := float64(s.PktSize) / rate
	s.Eng.Rearm(&s.paceTimer, interval, s.paceFn)
}

// sendOne transmits the next retransmission or new packet.
func (s *WindowSender) sendOne() {
	now := s.Eng.Now()
	var st *pktState
	for s.rtxHead < len(s.rtxQ) {
		seq := s.rtxQ[s.rtxHead]
		s.rtxHead++
		if s.rtxHead == len(s.rtxQ) {
			s.rtxQ, s.rtxHead = s.rtxQ[:0], 0
		}
		cand := s.win.lookup(seq)
		if cand != nil && cand.lost && !cand.sacked {
			st = cand
			st.lost = false
			st.rtx = true
			s.rtxPkts++
			break
		}
	}
	if st == nil {
		if s.FlowPackets > 0 && s.nextSeq >= s.FlowPackets {
			return
		}
		st = s.win.add(s.nextSeq)
		s.nextSeq++
	}
	s.pipe++
	s.sentPkts++
	st.sentAt = now
	p := s.Pool.Get()
	p.Flow, p.Seq, p.Size, p.Sent = s.Flow, st.seq, s.PktSize, now
	s.SendData(p)
	s.armRTO()
}

// armRTO starts the retransmission timer if it is not already running. It
// must not refresh an armed timer: only cumulative-ACK progress may do that
// (resetRTO), or a stuck hole would never time out while traffic flows.
func (s *WindowSender) armRTO() {
	if s.rtoTimer.Active() {
		return
	}
	s.rtoDeadline = s.Eng.Now() + s.Est.RTO()*s.rtoBackoff
	s.Eng.Rearm(&s.rtoTimer, s.Est.RTO()*s.rtoBackoff, s.onRTOFn)
}

func (s *WindowSender) resetRTO() {
	if s.pipe > 0 || s.rtxHead < len(s.rtxQ) {
		s.rtoDeadline = s.Eng.Now() + s.Est.RTO()*s.rtoBackoff
	} else {
		s.rtoTimer.Stop()
	}
}

// OnAck processes an arriving acknowledgment. The sender consumes the ACK:
// when a pool is set the packet is recycled immediately, so callers must not
// touch it afterwards.
func (s *WindowSender) OnAck(p *netem.Packet) {
	sackSeq, cumAck, echoSent := p.SackSeq, p.CumAck, p.EchoSent
	s.Pool.Put(p)
	if s.done || s.frozen {
		// Frozen (crashed node): the ACK is consumed but the host is not
		// there to process it.
		return
	}
	now := s.Eng.Now()
	newly := 0
	var rttSample float64

	if st := s.win.lookup(sackSeq); st != nil && !st.sacked {
		st.sacked = true
		if st.lost {
			st.lost = false // was queued for rtx but arrived after all
		} else {
			s.pipe--
		}
		newly++
		if !st.rtx { // Karn: no samples from retransmitted packets
			rttSample = now - echoSent
		}
	}
	if sackSeq > s.sackHigh {
		s.sackHigh = sackSeq
	}

	// Advance the cumulative window head.
	cumAdvanced := false
	if cumAck > s.cumAck {
		s.cumAck = cumAck
		cumAdvanced = true
	}
	for s.win.headBelow(s.cumAck) {
		st := s.win.popHead()
		if !st.sacked {
			if st.lost {
				st.sacked = true // neutralize any queued rtx
			} else {
				s.pipe--
			}
			newly++
		}
		s.win.recycle(st)
	}
	s.win.maybeCompact()

	if rttSample > 0 {
		s.Est.Sample(rttSample)
		s.rttSum += rttSample
		s.rttCnt++
	}
	if newly > 0 {
		for i := 0; i < newly; i++ {
			s.Algo.OnAck(now, rttSample, s.Est)
		}
	} else {
		s.Algo.OnDupAck()
	}
	// RFC 6298 semantics: the retransmission timer restarts only when
	// SND.UNA advances. SACKs for later packets must NOT refresh it, or a
	// lost retransmission (which SACK-gap detection cannot re-mark) would
	// stall recovery forever while the window grows unchecked.
	if cumAdvanced {
		s.rtoBackoff = 1
		s.resetRTO()
	}

	// SACK loss detection: a packet is lost once DupThresh packets above it
	// have been SACKed. Each sequence is examined at most once (lossScan is
	// monotone outside of RTO recovery).
	lossEvent := false
	limit := s.sackHigh - s.DupThresh
	if limit >= s.lossScan {
		for i := s.win.search(s.lossScan); i < len(s.win.entries); i++ {
			st := s.win.entries[i]
			if st.seq > limit {
				break
			}
			if !st.sacked && !st.lost {
				st.lost = true
				s.pipe--
				s.rtxQ = append(s.rtxQ, st.seq)
				lossEvent = true
			}
		}
		s.lossScan = limit + 1
	}
	if lossEvent && !s.inRecovery {
		s.inRecovery = true
		s.recover = s.nextSeq - 1
		s.Algo.OnLossEvent(now)
	}
	if s.inRecovery && s.cumAck > s.recover {
		s.inRecovery = false
	}

	// Completion for finite flows.
	if s.FlowPackets > 0 && s.nextSeq >= s.FlowPackets && s.outstanding() == 0 {
		s.done = true
		s.rtoTimer.Stop()
		s.paceTimer.Stop()
		if s.OnDone != nil {
			s.OnDone(now)
		}
		return
	}

	s.trySend()
}

// outstanding counts packets neither SACKed nor cumulatively acknowledged.
func (s *WindowSender) outstanding() int { return s.win.outstanding() }

// onRTO handles a retransmission timeout: every un-SACKed outstanding packet
// is presumed lost and the algorithm collapses its window.
func (s *WindowSender) onRTO() {
	if s.done || s.frozen {
		return
	}
	if now := s.Eng.Now(); now < s.rtoDeadline {
		// ACKs refreshed the deadline since this timer was armed.
		s.Eng.Rearm(&s.rtoTimer, s.rtoDeadline-now, s.onRTOFn)
		return
	}
	s.Algo.OnTimeout(s.Eng.Now())
	s.rtoBackoff *= 2
	if s.rtoBackoff > 64 {
		s.rtoBackoff = 64
	}
	s.rtxQ, s.rtxHead = s.rtxQ[:0], 0
	for i := s.win.head; i < len(s.win.entries); i++ {
		st := s.win.entries[i]
		if !st.sacked {
			st.lost = true
			s.rtxQ = append(s.rtxQ, st.seq)
		}
	}
	s.pipe = 0
	s.lossScan = s.nextSeq // re-examine nothing until new SACK evidence
	s.inRecovery = true
	s.recover = s.nextSeq - 1
	s.trySend()
	s.armRTO()
}
