package cc

import (
	"pcc/internal/baseline"
	"pcc/internal/core"
	"pcc/internal/netem"
	"pcc/internal/sim"
)

// RateSender drives a RateAlgo (PCC, SABUL, PCP) over a simulated path.
// Transmission is clocked purely by the algorithm's pacing rate — there is
// no window. Reliability is SACK-based like WindowSender's: packets are
// declared lost by SACK gap or by a tail timer, queued for retransmission,
// and retransmissions consume pacing slots exactly like new data (§3.1:
// "the Sending Module sends packets (new or retransmission) at a certain
// sending rate").
type RateSender struct {
	Eng  *sim.Engine
	Flow int
	Algo RateAlgo
	// SendData transmits a data packet (wired to Dumbbell.SendData).
	SendData func(*netem.Packet)
	Est      *RTTEstimator

	// FlowPackets, when > 0, limits the flow length; 0 means unbounded.
	FlowPackets int64
	// OnDone fires when every packet of a finite flow has been acknowledged.
	OnDone func(now float64)
	// DupThresh is the SACK reordering threshold (default 3).
	DupThresh int64
	// MinRate floors the pacing rate so a flow can never stall itself
	// (default 2 packets/second).
	MinRate float64
	// RTTHint seeds timers before the first RTT sample (default 0.1 s).
	RTTHint float64
	// Pool, when set, recycles packets: data packets are allocated from it
	// and consumed ACKs are returned to it. It must belong to this sender's
	// engine (pooling never crosses goroutines).
	Pool *netem.PacketPool
	// PktSize is the wire size of every data packet this flow sends
	// (default MSS). It is what the pacing clock spaces, what the network
	// serializes, and what the algorithm's OnSend hook is told.
	PktSize int

	win      seqWindow
	nextSeq  int64
	cumAck   int64
	sackHigh int64
	lossScan int64
	// rtxQ[rtxHead:] is the retransmission FIFO, consumed by index so the
	// backing array's capacity survives (front re-slicing would cost one
	// allocation per detected loss in steady state; see WindowSender.rtxQ).
	rtxQ    []int64
	rtxHead int

	sendTimer    sim.Timer
	tailTimer    sim.Timer
	tailDeadline float64
	sendLoopFn   func()
	onTailFn     func()

	sentPkts int64
	rtxPkts  int64
	rttSum   float64
	rttCnt   int64
	done     bool
	started  bool
	// frozen parks the sender during an injected node crash: pacing and
	// tail-loss timers stop and arriving ACKs are consumed without effect.
	frozen bool

	// rate trace for rate-over-time plots: appended whenever the polled
	// rate changes by more than 0.1%.
	TraceRate bool
	RateTrace []RatePoint
	lastRate  float64

	// algoPCC/algoSabul/algoPCP cache Algo's concrete type (set in
	// initDefaults) so the per-packet hooks — Rate on every pacing tick,
	// OnSend per transmission, OnAck per acknowledgment — dispatch directly
	// instead of through the RateAlgo interface. At most one is non-nil; an
	// algorithm outside the three built-ins falls back to the interface.
	algoPCC   *core.PCC
	algoSabul *baseline.Sabul
	algoPCP   *baseline.PCP
}

// RatePoint is one (time, rate bytes/s) sample of the sender's target rate.
type RatePoint struct {
	At   float64
	Rate float64
}

// NewRateSender wires a rate-based algorithm to a path.
func NewRateSender(eng *sim.Engine, flow int, algo RateAlgo, sendData func(*netem.Packet)) *RateSender {
	s := &RateSender{
		Eng:      eng,
		Flow:     flow,
		SendData: sendData,
		Est:      NewRTTEstimator(),
	}
	// Bound once: the pacing and tail-loss loops reschedule themselves every
	// packet, and a method value allocates a closure per use.
	s.sendLoopFn = s.sendLoop
	s.onTailFn = s.onTail
	s.initDefaults(algo)
	return s
}

// initDefaults applies the non-zero constructor defaults, shared by
// NewRateSender and Reset so an arena-reused sender cannot drift from a
// fresh one when a default changes.
func (s *RateSender) initDefaults(algo RateAlgo) {
	s.Algo = algo
	s.algoPCC, s.algoSabul, s.algoPCP = nil, nil, nil
	switch a := algo.(type) {
	case *core.PCC:
		s.algoPCC = a
	case *baseline.Sabul:
		s.algoSabul = a
	case *baseline.PCP:
		s.algoPCP = a
	}
	s.DupThresh = 3
	s.MinRate = 2 * MSS
	s.RTTHint = 0.1
	s.PktSize = MSS
	s.sackHigh = -1
}

// algoRate, algoOnSend, algoOnAck and algoOnLost are the devirtualized
// algorithm hooks: one predictable nil check and a direct (inlinable) call
// for the built-in algorithms, interface dispatch otherwise.
func (s *RateSender) algoRate(now float64) float64 {
	if s.algoPCC != nil {
		return s.algoPCC.Rate(now)
	}
	if s.algoSabul != nil {
		return s.algoSabul.Rate(now)
	}
	if s.algoPCP != nil {
		return s.algoPCP.Rate(now)
	}
	return s.Algo.Rate(now)
}

func (s *RateSender) algoOnSend(seq int64, size int, now float64) {
	if s.algoPCC != nil {
		s.algoPCC.OnSend(seq, size, now)
		return
	}
	if s.algoSabul != nil {
		s.algoSabul.OnSend(seq, size, now)
		return
	}
	if s.algoPCP != nil {
		s.algoPCP.OnSend(seq, size, now)
		return
	}
	s.Algo.OnSend(seq, size, now)
}

func (s *RateSender) algoOnAck(seq int64, rtt float64, now float64) {
	if s.algoPCC != nil {
		s.algoPCC.OnAck(seq, rtt, now)
		return
	}
	if s.algoSabul != nil {
		s.algoSabul.OnAck(seq, rtt, now)
		return
	}
	if s.algoPCP != nil {
		s.algoPCP.OnAck(seq, rtt, now)
		return
	}
	s.Algo.OnAck(seq, rtt, now)
}

func (s *RateSender) algoOnLost(seq int64, now float64) {
	if s.algoPCC != nil {
		s.algoPCC.OnLost(seq, now)
		return
	}
	if s.algoSabul != nil {
		s.algoSabul.OnLost(seq, now)
		return
	}
	if s.algoPCP != nil {
		s.algoPCP.OnLost(seq, now)
		return
	}
	s.Algo.OnLost(seq, now)
}

// Reset returns the sender to its just-constructed state around a new
// algorithm, for a new trial on a reset engine. The sequence window's entry
// chunks, the retransmission queue backing, the rate-trace backing and the
// Eng/Flow/SendData/Pool wiring are all retained, so steady-state reuse
// allocates nothing; every tunable returns to its constructor default and
// callers re-apply per-trial knobs exactly as they would on a fresh sender.
func (s *RateSender) Reset(algo RateAlgo) {
	s.initDefaults(algo)
	s.Est.Reset()
	s.FlowPackets = 0
	s.OnDone = nil
	s.win.reset()
	s.nextSeq, s.cumAck, s.lossScan = 0, 0, 0
	s.rtxQ, s.rtxHead = s.rtxQ[:0], 0
	s.sendTimer, s.tailTimer = sim.Timer{}, sim.Timer{}
	s.tailDeadline = 0
	s.sentPkts, s.rtxPkts = 0, 0
	s.rttSum, s.rttCnt = 0, 0
	s.done, s.started = false, false
	s.frozen = false
	s.TraceRate = false
	s.RateTrace = s.RateTrace[:0]
	s.lastRate = 0
}

// SetArena points the sequence window's free-list refills at a shared
// chunk arena (one per experiment worker). Like the Eng/Flow/SendData/Pool
// wiring, the arena survives Reset.
func (s *RateSender) SetArena(a *PktArena) { s.win.arena = a }

// Start begins transmission.
func (s *RateSender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.Algo.Start(s.Eng.Now())
	s.sendLoop()
}

// Freeze parks the sender for an injected node crash: both timers stop and
// every hook becomes a no-op until Unfreeze. In-window state (sent, sacked,
// lost, the algorithm's monitor intervals) is retained untouched.
func (s *RateSender) Freeze() {
	s.frozen = true
	s.sendTimer.Stop()
	s.tailTimer.Stop()
}

// Unfreeze resumes a frozen sender where it stopped; the tail timer re-arms
// through the send path as usual.
func (s *RateSender) Unfreeze() {
	s.frozen = false
	if s.started && !s.done {
		s.sendLoop()
		if s.outstandingUnsacked() > 0 {
			s.armTail()
		}
	}
}

// Sent returns total data transmissions (including retransmissions).
func (s *RateSender) Sent() int64 { return s.sentPkts }

// Retransmitted returns the number of retransmissions.
func (s *RateSender) Retransmitted() int64 { return s.rtxPkts }

// MeanRTT returns the average of all valid RTT samples (0 if none).
func (s *RateSender) MeanRTT() float64 {
	if s.rttCnt == 0 {
		return 0
	}
	return s.rttSum / float64(s.rttCnt)
}

func (s *RateSender) rate() float64 {
	r := s.algoRate(s.Eng.Now())
	if r < s.MinRate {
		r = s.MinRate
	}
	return r
}

func (s *RateSender) hasData() bool {
	if s.rtxHead < len(s.rtxQ) {
		return true
	}
	return s.FlowPackets == 0 || s.nextSeq < s.FlowPackets
}

// sendLoop transmits one packet and schedules the next transmission at the
// current pacing rate.
func (s *RateSender) sendLoop() {
	if s.done || s.frozen || !s.hasData() {
		return
	}
	now := s.Eng.Now()
	s.sendOne(now)
	r := s.rate()
	if s.TraceRate {
		if s.lastRate == 0 || r < s.lastRate*0.999 || r > s.lastRate*1.001 {
			s.RateTrace = append(s.RateTrace, RatePoint{At: now, Rate: r})
			s.lastRate = r
		}
	}
	interval := float64(s.PktSize) / r
	s.Eng.Rearm(&s.sendTimer, interval, s.sendLoopFn)
}

func (s *RateSender) sendOne(now float64) {
	var st *pktState
	for s.rtxHead < len(s.rtxQ) {
		seq := s.rtxQ[s.rtxHead]
		s.rtxHead++
		if s.rtxHead == len(s.rtxQ) {
			s.rtxQ, s.rtxHead = s.rtxQ[:0], 0
		}
		cand := s.win.lookup(seq)
		if cand != nil && cand.lost && !cand.sacked {
			st = cand
			st.lost = false
			st.rtx = true
			s.rtxPkts++
			break
		}
	}
	if st == nil {
		if s.FlowPackets > 0 && s.nextSeq >= s.FlowPackets {
			return
		}
		st = s.win.add(s.nextSeq)
		s.nextSeq++
	}
	s.sentPkts++
	st.sentAt = now
	p := s.Pool.Get()
	p.Flow, p.Seq, p.Size, p.Sent = s.Flow, st.seq, s.PktSize, now
	s.algoOnSend(st.seq, s.PktSize, now)
	s.SendData(p)
	s.armTail()
}

// tailDelay is the tail-loss detection delay. Unlike kernel TCP's RTO
// (floored at 200 ms — the very floor behind incast collapse, §4.1.8),
// user-space rate-based transports like UDT keep fine-grained timers; a few
// RTTs with a 10 ms floor matches that behaviour.
func (s *RateSender) tailDelay() float64 {
	if !s.Est.HasSample() {
		// No RTT estimate yet: derive from the hint, conservatively, or a
		// long-RTT path's entire first flight would be declared lost
		// before any ACK could possibly return.
		d := 4 * s.RTTHint
		if d < 0.1 {
			d = 0.1
		}
		return d
	}
	d := 3 * s.Est.SRTT
	if d < 0.01 {
		d = 0.01
	}
	return d
}

// armTail schedules the tail-loss timer lazily: the deadline field is
// refreshed on every ACK and the timer re-arms itself when it fires early,
// avoiding a heap operation per acknowledgment.
func (s *RateSender) armTail() {
	if s.tailTimer.Active() {
		return
	}
	s.tailDeadline = s.Eng.Now() + s.tailDelay()
	s.Eng.Rearm(&s.tailTimer, s.tailDelay(), s.onTailFn)
}

func (s *RateSender) onTail() {
	if s.done || s.frozen {
		return
	}
	now := s.Eng.Now()
	if now < s.tailDeadline {
		// ACKs arrived since this timer was armed: sleep until the
		// refreshed deadline.
		s.Eng.Rearm(&s.tailTimer, s.tailDeadline-now, s.onTailFn)
		return
	}
	rto := s.tailDelay()
	for i := s.win.head; i < len(s.win.entries); i++ {
		st := s.win.entries[i]
		// Only packets older than the tail delay are presumed lost;
		// fresher ones may simply still be in flight.
		if !st.sacked && !st.lost && now-st.sentAt > rto {
			st.lost = true
			s.rtxQ = append(s.rtxQ, st.seq)
			s.algoOnLost(st.seq, now)
		}
	}
	if s.outstandingUnsacked() > 0 || s.hasData() {
		s.Eng.Rearm(&s.tailTimer, s.tailDelay(), s.onTailFn)
	}
	// Pacing may have stopped on a fully-sent finite flow; resume for the
	// queued retransmissions.
	if !s.sendTimer.Active() {
		s.sendLoop()
	}
}

func (s *RateSender) outstandingUnsacked() int { return s.win.outstanding() }

// OnAck processes an arriving acknowledgment. The sender consumes the ACK:
// when a pool is set the packet is recycled immediately, so callers must not
// touch it afterwards.
func (s *RateSender) OnAck(p *netem.Packet) {
	sackSeq, cumAck, echoSent := p.SackSeq, p.CumAck, p.EchoSent
	s.Pool.Put(p)
	if s.done || s.frozen {
		// Frozen (crashed node): the ACK is consumed but the host is not
		// there to process it.
		return
	}
	now := s.Eng.Now()

	if st := s.win.lookup(sackSeq); st != nil && !st.sacked {
		st.sacked = true
		rtt := now - echoSent
		if !st.rtx {
			s.Est.Sample(rtt)
			s.rttSum += rtt
			s.rttCnt++
		}
		s.algoOnAck(sackSeq, rtt, now)
	}
	if sackSeq > s.sackHigh {
		s.sackHigh = sackSeq
	}
	cumAdvanced := false
	if cumAck > s.cumAck {
		s.cumAck = cumAck
		cumAdvanced = true
	}
	for s.win.headBelow(s.cumAck) {
		st := s.win.popHead()
		if !st.sacked {
			// Delivered, but its own SACK was lost on the reverse path:
			// cumulative coverage proves delivery, so tell the algorithm
			// (no RTT sample). Without this, ACK-path loss would inflate
			// the monitor's measured loss rate.
			st.sacked = true
			s.algoOnAck(st.seq, 0, now)
		}
		s.win.recycle(st)
	}
	s.win.maybeCompact()

	// Refresh the tail deadline only when the cumulative point advances:
	// a lost retransmission leaves a hole SACK-gap detection cannot
	// re-mark, and only the tail timer can rescue it.
	if cumAdvanced {
		s.tailDeadline = now + s.tailDelay()
	}

	// SACK-gap loss detection. The window slice is sorted by seq, so start
	// at the first unexamined entry; each sequence is visited once.
	limit := s.sackHigh - s.DupThresh
	if limit >= s.lossScan {
		for i := s.win.search(s.lossScan); i < len(s.win.entries); i++ {
			st := s.win.entries[i]
			if st.seq > limit {
				break
			}
			if !st.sacked && !st.lost {
				st.lost = true
				s.rtxQ = append(s.rtxQ, st.seq)
				s.algoOnLost(st.seq, now)
			}
		}
		s.lossScan = limit + 1
	}

	if s.FlowPackets > 0 && s.nextSeq >= s.FlowPackets && s.outstandingUnsacked() == 0 {
		s.done = true
		s.sendTimer.Stop()
		s.tailTimer.Stop()
		if s.OnDone != nil {
			s.OnDone(now)
		}
		return
	}
	// Pacing may have stopped on a fully-sent finite flow; resume if
	// retransmissions are now queued.
	if !s.sendTimer.Active() && s.hasData() {
		s.sendLoop()
	}
}
