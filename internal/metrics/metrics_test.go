package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty inputs must yield 0")
	}
	if s := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(s-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Median(xs); p != 3 {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{5, 5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal allocation: %v", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("single hog over 4: %v, want 0.25", j)
	}
}

// Property: Jain's index lies in [1/n, 1] for positive allocations.
func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		if len(xs) == 0 {
			return true
		}
		alloc := make([]float64, len(xs))
		for i, x := range xs {
			alloc[i] = float64(x) + 1
		}
		j := JainIndex(alloc)
		n := float64(len(alloc))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAndFracAtLeast(t *testing.T) {
	xs := []float64{3, 1, 2}
	cdf := CDF(xs)
	if cdf[0].X != 1 || cdf[2].X != 3 || cdf[2].Frac != 1 {
		t.Fatalf("cdf = %v", cdf)
	}
	if f := FracAtLeast(xs, 2); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("frac >= 2: %v", f)
	}
}

func TestConvergenceTime(t *testing.T) {
	// Converges at t=3: within ±25% of 50 from there on.
	series := []float64{10, 20, 90, 50, 45, 55, 50, 48, 52, 50, 50}
	if c := ConvergenceTime(series, 50, 5, 0.25); c != 3 {
		t.Fatalf("convergence = %v, want 3", c)
	}
	if c := ConvergenceTime([]float64{1, 1, 1}, 50, 5, 0.25); c != -1 {
		t.Fatalf("non-convergent series gave %v", c)
	}
}

func TestWindowedJain(t *testing.T) {
	// Two flows alternating 0/10 are unfair at scale 1 but fair at scale 2.
	a := []float64{10, 0, 10, 0, 10, 0, 10, 0}
	b := []float64{0, 10, 0, 10, 0, 10, 0, 10}
	short := WindowedJain([][]float64{a, b}, 1)
	long := WindowedJain([][]float64{a, b}, 2)
	if short >= 0.6 {
		t.Fatalf("alternating flows fair at scale 1: %v", short)
	}
	if long < 0.99 {
		t.Fatalf("alternating flows unfair at scale 2: %v", long)
	}
}

func TestSortedScratchPathsMatchAllocatingOnes(t *testing.T) {
	xs := []float64{9, 2, 7, 2, 5, 1, 8}
	buf := SortInto(nil, xs)
	for _, p := range []float64{0, 10, 50, 90, 95, 100} {
		if got, want := PercentileSorted(buf, p), Percentile(xs, p); got != want {
			t.Fatalf("PercentileSorted(%v) = %v, want %v", p, got, want)
		}
	}
	if xs[0] != 9 {
		t.Fatal("SortInto mutated its input")
	}
	cdf := CDF(xs)
	cdf2, _ := CDFInto(nil, nil, xs)
	if len(cdf) != len(cdf2) {
		t.Fatalf("CDFInto len %d, want %d", len(cdf2), len(cdf))
	}
	for i := range cdf {
		if cdf[i] != cdf2[i] {
			t.Fatalf("CDFInto[%d] = %v, want %v", i, cdf2[i], cdf[i])
		}
	}
}

func TestScratchPathsAllocateNothingWhenWarm(t *testing.T) {
	xs := []float64{9, 2, 7, 2, 5, 1, 8, 4, 6, 3}
	buf := make([]float64, 0, len(xs))
	if avg := testing.AllocsPerRun(20, func() {
		buf = SortInto(buf, xs)
		_ = PercentileSorted(buf, 95)
	}); avg != 0 {
		t.Errorf("SortInto+PercentileSorted with warm scratch: %.1f allocs, want 0", avg)
	}
	dst := make([]CDFPoint, 0, len(xs))
	if avg := testing.AllocsPerRun(20, func() {
		dst, buf = CDFInto(dst, buf, xs)
	}); avg != 0 {
		t.Errorf("CDFInto with warm scratch: %.1f allocs, want 0", avg)
	}
}
