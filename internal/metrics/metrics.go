// Package metrics implements the statistics the paper's evaluation reports:
// Jain's fairness index (Fig. 13), percentiles and CDFs (Figs. 5, 15),
// throughput standard deviation and the §4.2.2 forward-looking convergence
// time (Fig. 16).
package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SortInto returns xs sorted ascending in buf's storage (buf is truncated
// and grown as needed; pass a retained scratch slice for 0 allocations once
// its capacity covers the inputs). xs is not modified.
func SortInto(buf, xs []float64) []float64 {
	buf = append(buf[:0], xs...)
	sort.Float64s(buf)
	return buf
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input; use
// SortInto + PercentileSorted to amortize the sort over several quantiles
// of one sample set with caller-owned scratch.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return PercentileSorted(SortInto(nil, xs), p)
}

// PercentileSorted is Percentile for an already-ascending sample slice. It
// allocates nothing.
func PercentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) for the given
// allocations: 1 for perfect fairness, 1/n when one flow takes everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1 // all-zero allocations are (vacuously) fair
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64 // fraction of samples <= X
}

// CDF returns the empirical CDF of xs (sorted ascending).
func CDF(xs []float64) []CDFPoint {
	out, _ := CDFInto(nil, nil, xs)
	return out
}

// CDFInto is CDF building into dst's storage, with buf as the sort scratch;
// it returns the points plus the (possibly grown) scratch for the caller to
// retain. With warm scratch of sufficient capacity it allocates nothing.
func CDFInto(dst []CDFPoint, buf, xs []float64) ([]CDFPoint, []float64) {
	dst = dst[:0]
	if len(xs) == 0 {
		return dst, buf
	}
	buf = SortInto(buf, xs)
	for i, x := range buf {
		dst = append(dst, CDFPoint{X: x, Frac: float64(i+1) / float64(len(buf))})
	}
	return dst, buf
}

// FracAtLeast returns the fraction of samples >= threshold.
func FracAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// ConvergenceTime implements the §4.2.2 forward-looking definition: given a
// per-second throughput series for the newly arrived flow (indexed by
// seconds since flow start), the ideal equal-share rate, and a window
// (paper: 5 s), it returns the smallest t such that every second in
// [t, t+window] is within ±tol (paper: 0.25) of ideal. It returns -1 when
// the flow never converges within the series.
func ConvergenceTime(perSecond []float64, ideal float64, window int, tol float64) float64 {
	if ideal <= 0 {
		return -1
	}
	ok := func(v float64) bool {
		return v >= ideal*(1-tol) && v <= ideal*(1+tol)
	}
	for t := 0; t+window < len(perSecond); t++ {
		good := true
		for i := t; i <= t+window; i++ {
			if !ok(perSecond[i]) {
				good = false
				break
			}
		}
		if good {
			return float64(t)
		}
	}
	return -1
}

// WindowedJain computes Jain's index over non-overlapping windows of the
// given width (in samples) across per-flow series, returning the mean index
// — the Fig. 13 "fairness at time scale" metric. Series are truncated to
// the shortest one.
func WindowedJain(series [][]float64, window int) float64 {
	if len(series) == 0 || window <= 0 {
		return 0
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) < n {
			n = len(s)
		}
	}
	if n < window {
		return 0
	}
	var sum float64
	var cnt int
	alloc := make([]float64, len(series))
	for start := 0; start+window <= n; start += window {
		for i, s := range series {
			var a float64
			for j := start; j < start+window; j++ {
				a += s[j]
			}
			alloc[i] = a
		}
		sum += JainIndex(alloc)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
