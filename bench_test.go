// Package pccbench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (§4). Each benchmark runs its
// experiment at a reduced scale (benchScale) and reports the headline
// quantity the paper reports as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// prints both the cost of regenerating each result and the result itself.
// Full-scale runs: cmd/pccbench -exp <id> -scale 1.
package pccbench

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"pcc/internal/exp"
)

// benchScale keeps the whole bench suite tractable; shapes are preserved.
const benchScale = 0.1

const benchSeed = 42

// reportRatio extracts a float from a report cell, tolerating "-".
func cell(rep *exp.Report, row, col int) float64 {
	if row >= len(rep.Rows) || col >= len(rep.Rows[row]) {
		return 0
	}
	v, err := strconv.ParseFloat(rep.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

// findRow returns the first row whose first cell equals key.
func findRow(rep *exp.Report, key string) int {
	for i, r := range rep.Rows {
		if len(r) > 0 && r[0] == key {
			return i
		}
	}
	return -1
}

func BenchmarkFig05Internet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig5(benchScale, benchSeed)
		if r := findRow(rep, "cubic"); r >= 0 {
			b.ReportMetric(cell(rep, r, 2), "median_ratio_vs_cubic")
		}
	}
}

func BenchmarkTable1InterDC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunTable1(benchScale, benchSeed)
		// Average PCC throughput over the nine pairs.
		var sum float64
		for r := range rep.Rows {
			sum += cell(rep, r, 2)
		}
		b.ReportMetric(sum/float64(len(rep.Rows)), "pcc_avg_Mbps")
	}
}

func BenchmarkFig06Satellite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig6(benchScale, benchSeed)
		last := len(rep.Rows) - 1
		pcc, hybla := cell(rep, last, 1), cell(rep, last, 2)
		if hybla > 0 {
			b.ReportMetric(pcc/hybla, "pcc_over_hybla_1MB")
		}
	}
}

func BenchmarkFig07Loss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig7(benchScale, benchSeed)
		if r := findRow(rep, "0.010"); r >= 0 {
			b.ReportMetric(cell(rep, r, 1), "pcc_Mbps_at_1pct")
			if c := cell(rep, r, 3); c > 0 {
				b.ReportMetric(cell(rep, r, 1)/c, "pcc_over_cubic_at_1pct")
			}
		}
	}
}

func BenchmarkFig08RTTFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig8(benchScale, benchSeed)
		if r := findRow(rep, "100.0"); r >= 0 {
			b.ReportMetric(cell(rep, r, 1), "pcc_ratio_at_100ms")
		}
	}
}

func BenchmarkFig09Buffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig9(benchScale, benchSeed)
		if r := findRow(rep, "9.0"); r >= 0 {
			b.ReportMetric(cell(rep, r, 1), "pcc_Mbps_at_6MSS")
		}
	}
}

func BenchmarkFig10Incast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig10(benchScale, benchSeed)
		// Mean PCC/TCP ratio across rows with >= 10 senders.
		var sum float64
		var n int
		for r := range rep.Rows {
			if cell(rep, r, 0) >= 10 {
				sum += cell(rep, r, 4)
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "pcc_over_tcp")
		}
	}
}

func BenchmarkFig11Dynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, _ := exp.RunFig11(benchScale, benchSeed)
		if r := findRow(rep, "pcc"); r >= 0 {
			b.ReportMetric(cell(rep, r, 2), "pcc_frac_of_optimal")
		}
	}
}

func BenchmarkFig12Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig12(benchScale, benchSeed)
		// Mean stddev of the PCC rows (column 3).
		var sum float64
		var n int
		for r := range rep.Rows {
			if rep.Rows[r][0] == "pcc" {
				sum += cell(rep, r, 3)
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "pcc_mean_stddev_Mbps")
		}
	}
}

func BenchmarkFig13Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig13(benchScale, benchSeed)
		if r := findRow(rep, "pcc"); r >= 0 {
			b.ReportMetric(cell(rep, r, 2), "pcc_jain_1s")
		}
	}
}

func BenchmarkFig14Friendliness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig14(benchScale, benchSeed)
		if len(rep.Rows) > 0 {
			b.ReportMetric(cell(rep, 0, 1), "unfriendliness_1_selfish")
		}
	}
}

func BenchmarkFig15FCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig15(benchScale, benchSeed)
		// Median FCT at the highest load for both protocols.
		var pccMed, tcpMed float64
		for r := range rep.Rows {
			if rep.Rows[r][0] == "0.75" {
				switch rep.Rows[r][1] {
				case "pcc":
					pccMed = cell(rep, r, 3)
				case "newreno":
					tcpMed = cell(rep, r, 3)
				}
			}
		}
		if tcpMed > 0 {
			b.ReportMetric(pccMed/tcpMed, "fct_median_ratio_75load")
		}
	}
}

func BenchmarkFig16Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig16(benchScale, benchSeed)
		if r := findRow(rep, "pcc Tm=1.0RTT eps=0.01"); r >= 0 {
			b.ReportMetric(cell(rep, r, 2), "pcc_stddev_Mbps")
		}
	}
}

func BenchmarkFig17Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunFig17(benchScale, benchSeed)
		pcc := findRow(rep, "PCC+Bufferbloat+FQ")
		tcp := findRow(rep, "TCP+Bufferbloat+FQ")
		if pcc >= 0 && tcp >= 0 && cell(rep, tcp, 3) > 0 {
			b.ReportMetric(cell(rep, pcc, 3)/cell(rep, tcp, 3), "pcc_over_tcp_bloat_power")
		}
	}
}

func BenchmarkLossResilient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunLossResilient(benchScale, benchSeed)
		if r := findRow(rep, "0.50"); r >= 0 {
			b.ReportMetric(cell(rep, r, 4), "frac_of_achievable_50pct")
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunAblation(benchScale, benchSeed)
		if r := findRow(rep, "default (1% loss)"); r >= 0 {
			b.ReportMetric(cell(rep, r, 1), "default_1pct_Mbps")
		}
	}
}

// The Sequential/Parallel pair quantifies the worker-pool speedup on the
// trial-heavy incast experiment (results are byte-identical either way; see
// internal/exp/determinism_test.go). On an N-core machine the parallel run
// should approach N times faster.
func BenchmarkFig10IncastSequential(b *testing.B) {
	exp.SetWorkers(1)
	defer exp.SetWorkers(0)
	for i := 0; i < b.N; i++ {
		exp.RunFig10(benchScale, benchSeed)
	}
}

func BenchmarkFig10IncastParallel(b *testing.B) {
	// Both axes of the parallelism budget (PCC_PAR trial workers ×
	// PCC_SHARDS intra-trial shards) are reported so recorded runs
	// (BENCH_*.json) say what they measured.
	b.ReportMetric(float64(exp.Workers()), "workers")
	b.ReportMetric(float64(exp.Shards()), "shards")
	for i := 0; i < b.N; i++ {
		exp.RunFig10(benchScale, benchSeed)
	}
}

// BenchmarkWideChain measures the sharded conservative engine inside a single
// trial: the same 12-hop widechain trial at shards=1 (one engine) and
// shards=NumCPU (one engine per shard, null-message-free windowed sync).
// The reported goodput is byte-identical across sub-benchmarks — only the
// wall-clock may differ. On an N-core machine the sharded run should
// approach min(N, shards) times faster once per-round sync is amortized.
func BenchmarkWideChain(b *testing.B) {
	for _, shards := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var ts exp.TrialScratch
			var goodput float64
			for i := 0; i < b.N; i++ {
				goodput = exp.RunWideChainTrial(&ts, shards, benchSeed)
			}
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(goodput, "long_Mbps")
		})
	}
}

// BenchmarkWANBuild isolates the generated-WAN construction path: transit-
// stub graph generation, deterministic shortest-path routing for 200
// stub-to-stub flows, and TopologySpec assembly — everything RunWAN does
// once per report before any trial runs.
func BenchmarkWANBuild(b *testing.B) {
	b.ReportAllocs()
	var nodes int
	for i := 0; i < b.N; i++ {
		sh := exp.NewWANShape(100, 200, 1, 10, benchSeed)
		nodes = sh.NumNodes()
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkWAN runs one benchmark-shaped wan trial (120 generated nodes,
// 200 routed flows, 10 simulated seconds, backbone flap active) on a
// prebuilt shape and warm arena, so it tracks the simulation cost of the
// internet-scale scenario separately from its construction cost.
func BenchmarkWAN(b *testing.B) {
	sh := exp.NewWANShape(100, 200, 1, 10, benchSeed)
	var ts exp.TrialScratch
	var agg float64
	for i := 0; i < b.N; i++ {
		agg = exp.RunWANTrial(&ts, sh, 10, benchSeed)
	}
	b.ReportMetric(agg, "agg_Mbps")
}

func BenchmarkTheoryConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := exp.RunTheory(context.Background(), benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		ok := 0.0
		for r := range rep.Rows {
			if rep.Rows[r][6] == "true" {
				ok++
			}
		}
		b.ReportMetric(ok/float64(len(rep.Rows)), "converged_frac")
	}
}

func BenchmarkParkingLot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := exp.RunParkingLot(context.Background(), benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		// Long-flow share on the 3-hop PCC row: the multi-bottleneck squeeze.
		if r := findRow(rep, "3"); r >= 0 {
			b.ReportMetric(cell(rep, r, 2), "pcc_long_3hop_Mbps")
		}
	}
}

func BenchmarkRevPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunRevPath(benchScale, benchSeed)
		// PCC's fat-link retention under ACK congestion (duplex/solo).
		if r := findRow(rep, "pcc"); r >= 0 {
			b.ReportMetric(cell(rep, r, 5), "pcc_fwd_ratio")
		}
	}
}

func BenchmarkMixMTU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.RunMixMTU(benchScale, benchSeed)
		// Cross-flow fairness when 512/1400/9000 B packets share the path.
		if r := findRow(rep, "pcc"); r >= 0 {
			b.ReportMetric(cell(rep, r, 5), "pcc_jain")
		}
	}
}
