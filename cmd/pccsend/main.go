// Command pccsend sends one file over the PCC UDP transport.
//
// Usage:
//
//	pccsend -to host:9000 -in file.bin [-rtt 50ms] [-utility safe|resilient|latency]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"pcc/internal/core"
	"pcc/internal/transport"
)

func main() {
	to := flag.String("to", "", "receiver UDP address (host:port)")
	in := flag.String("in", "", "input file ('-' or empty = stdin)")
	rtt := flag.Duration("rtt", 50*time.Millisecond, "RTT hint for the starting rate")
	utility := flag.String("utility", "safe", "utility function: safe, resilient, latency")
	flag.Parse()

	if *to == "" {
		log.Fatal("pccsend: -to is required")
	}
	peer, err := net.ResolveUDPAddr("udp", *to)
	if err != nil {
		log.Fatalf("pccsend: %v", err)
	}
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		log.Fatalf("pccsend: %v", err)
	}
	defer conn.Close()

	r := os.Stdin
	if *in != "" && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("pccsend: %v", err)
		}
		defer f.Close()
		r = f
	}

	cfg := core.DefaultConfig(rtt.Seconds())
	switch *utility {
	case "safe":
	case "resilient":
		cfg.Utility = core.LossResilientUtility{}
	case "latency":
		cfg = core.InteractiveConfig(rtt.Seconds())
	default:
		log.Fatalf("pccsend: unknown utility %q", *utility)
	}

	s, err := transport.NewSender(conn, peer, cfg, r)
	if err != nil {
		log.Fatalf("pccsend: %v", err)
	}
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- s.Run() }()

	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			if err != nil {
				log.Fatalf("pccsend: %v", err)
			}
			sent, rtx := s.Stats()
			fmt.Fprintf(os.Stderr, "pccsend: done in %.2fs (%d packets, %d retransmitted)\n",
				time.Since(start).Seconds(), sent, rtx)
			return
		case <-tick.C:
			fmt.Fprintf(os.Stderr, "pccsend: rate %.2f Mbps\n", s.Rate()*8/1e6)
		}
	}
}
