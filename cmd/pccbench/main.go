// Command pccbench regenerates any table or figure from the paper's
// evaluation (§4) as a text table.
//
// Usage:
//
//	pccbench -exp fig7            # one experiment at default scale
//	pccbench -exp all -scale 1.0  # every experiment at paper-duration scale
//	pccbench -exp fig10 -par 8    # pin the worker pool to 8 goroutines
//	pccbench -exp widechain -shards 4  # shard each trial's engine 4 ways
//	pccbench -list
//
// Scale shortens experiment durations/trial counts proportionally (default
// 0.2); shapes are preserved, absolute convergence detail improves with
// scale. Seeds make every run reproducible: each experiment fans its trials
// out across a worker pool (bounded by -par, the PCC_PAR environment
// variable, or GOMAXPROCS, in that order) and produces byte-identical
// tables at any worker count. -shards (or PCC_SHARDS) additionally caps how
// many conservative engine shards a single trial may use (experiments opt
// in per topology; see internal/sim.ShardGroup) — reports are byte-identical
// at any shard count too, so the two knobs budget cores between
// across-trial and within-trial parallelism without affecting results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pcc/internal/exp"
)

// Flags are package-level so tests can drive the knob plumbing through the
// real flag instances (flag.Set + applyKnobs) without spawning a process.
var (
	id         = flag.String("exp", "", "experiment id (figN, table1, loss50, theory) or 'all'")
	scale      = flag.Float64("scale", 0.2, "duration/trial scale in (0,1]; 1.0 = paper durations")
	seed       = flag.Int64("seed", 42, "root RNG seed")
	par        = flag.Int("par", 0, "worker goroutines per experiment (0 = auto: PCC_PAR env, then GOMAXPROCS; 1 = sequential)")
	shards     = flag.Int("shards", 0, "max conservative engine shards per trial (0 = auto: PCC_SHARDS env, then 1)")
	nodes      = flag.Int("nodes", 0, "target node count for generated-topology experiments (0 = auto: PCC_NODES env, then scale-derived)")
	flows      = flag.Int("flows", 0, "target concurrent flow count for generated-topology experiments (0 = auto: PCC_FLOWS env, then scale-derived)")
	trialTO    = flag.Duration("trialtimeout", 0, "per-trial watchdog: a trial exceeding this fails typed instead of hanging the run (0 = PCC_TRIAL_TIMEOUT env, then disabled)")
	list       = flag.Bool("list", false, "list experiment ids and exit")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
)

// applyKnobs pushes the parsed parallelism and scale flags into exp's
// process-wide overrides. Every driver fans its independent trials out over
// exp's worker pool and shards opted-in topologies across engines; results
// are bit-identical at any worker or shard count. -nodes/-flows pin the
// size of generated-topology experiments (wan) independently of -scale —
// unlike the parallelism knobs, they change what is simulated, so they
// change the report.
func applyKnobs() {
	exp.SetWorkers(*par)
	exp.SetShards(*shards)
	exp.SetNodes(*nodes)
	exp.SetFlows(*flows)
	exp.SetTrialTimeout(*trialTO)
}

func main() {
	// Exit via a return code so the profile-flushing defers in run always
	// execute — os.Exit in the body would truncate an in-flight CPU profile
	// exactly when profiling a failing run matters most.
	os.Exit(run())
}

func run() int {
	flag.Parse()

	// Profiling hooks so hot-path regressions can be chased on the real
	// experiment mix (go tool pprof <binary> <file>) without writing a
	// throwaway harness.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pccbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pccbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pccbench:", err)
			}
		}()
	}

	applyKnobs()

	if *list || *id == "" {
		fmt.Println("experiments:")
		for _, e := range exp.IDs() {
			fmt.Println(" ", e)
		}
		if *id == "" && !*list {
			return 2
		}
		return 0
	}

	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	for _, e := range ids {
		start := time.Now()
		rep, err := exp.Run(e, *scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccbench:", err)
			return 1
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s in %.1fs)\n\n", e, time.Since(start).Seconds())
	}
	return 0
}
