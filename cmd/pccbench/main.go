// Command pccbench regenerates any table or figure from the paper's
// evaluation (§4) as a text table.
//
// Usage:
//
//	pccbench -exp fig7            # one experiment at default scale
//	pccbench -exp all -scale 1.0  # every experiment at paper-duration scale
//	pccbench -exp fig10 -par 8    # pin the worker pool to 8 goroutines
//	pccbench -list
//
// Scale shortens experiment durations/trial counts proportionally (default
// 0.2); shapes are preserved, absolute convergence detail improves with
// scale. Seeds make every run reproducible: each experiment fans its trials
// out across a worker pool (bounded by -par, the PCC_PAR environment
// variable, or GOMAXPROCS, in that order) and produces byte-identical
// tables at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pcc/internal/exp"
)

func main() {
	id := flag.String("exp", "", "experiment id (figN, table1, loss50, theory) or 'all'")
	scale := flag.Float64("scale", 0.2, "duration/trial scale in (0,1]; 1.0 = paper durations")
	seed := flag.Int64("seed", 42, "root RNG seed")
	par := flag.Int("par", 0, "worker goroutines per experiment (0 = auto: PCC_PAR env, then GOMAXPROCS; 1 = sequential)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	// Every driver fans its independent trials out over exp's worker pool;
	// results are bit-identical at any worker count.
	exp.SetWorkers(*par)

	if *list || *id == "" {
		fmt.Println("experiments:")
		for _, e := range exp.IDs() {
			fmt.Println(" ", e)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	for _, e := range ids {
		start := time.Now()
		rep, err := exp.Run(e, *scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s in %.1fs)\n\n", e, time.Since(start).Seconds())
	}
}
