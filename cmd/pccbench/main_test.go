package main

import (
	"flag"
	"slices"
	"testing"
	"time"

	"pcc/internal/exp"
)

// TestListGolden pins the `pccbench -list` output: experiment ids are part
// of the CLI contract (scripts, CI jobs, EXPERIMENTS.md all refer to them),
// so the registry must stay stable and sorted. Adding an experiment means
// updating this golden list — deliberately, in the same change.
func TestListGolden(t *testing.T) {
	want := []string{
		"ablation",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig5", "fig6", "fig7", "fig8", "fig9",
		"linkflap",
		"loss50",
		"mixmtu",
		"parklot",
		"partition",
		"revpath",
		"table1",
		"theory",
		"wan",
		"widechain",
	}
	got := exp.IDs()
	if !slices.Equal(got, want) {
		t.Fatalf("exp.IDs() drifted from the golden list:\n got: %v\nwant: %v", got, want)
	}
	if !slices.IsSorted(got) {
		t.Fatalf("exp.IDs() not sorted: %v", got)
	}
}

// TestShardsFlag pins the -shards → exp.SetShards plumbing through the real
// flag instances: after applyKnobs, exp.Shards() must reflect the flag, and
// resetting it must restore the default resolution order (env, then 1).
func TestShardsFlag(t *testing.T) {
	defer func() {
		exp.SetShards(0)
		exp.SetWorkers(0)
		if err := flag.Set("shards", "0"); err != nil {
			t.Error(err)
		}
		if err := flag.Set("par", "0"); err != nil {
			t.Error(err)
		}
	}()
	if err := flag.Set("shards", "3"); err != nil {
		t.Fatal(err)
	}
	if err := flag.Set("par", "2"); err != nil {
		t.Fatal(err)
	}
	applyKnobs()
	if got := exp.Shards(); got != 3 {
		t.Errorf("after -shards 3, exp.Shards() = %d, want 3", got)
	}
	if got := exp.Workers(); got != 2 {
		t.Errorf("after -par 2, exp.Workers() = %d, want 2", got)
	}
}

// TestTrialTimeoutFlag pins the -trialtimeout → exp.SetTrialTimeout plumbing
// through the real flag instance, and that resetting the flag restores the
// default resolution order (PCC_TRIAL_TIMEOUT env, then disabled).
func TestTrialTimeoutFlag(t *testing.T) {
	defer func() {
		exp.SetTrialTimeout(0)
		if err := flag.Set("trialtimeout", "0"); err != nil {
			t.Error(err)
		}
	}()
	if err := flag.Set("trialtimeout", "750ms"); err != nil {
		t.Fatal(err)
	}
	applyKnobs()
	if got := exp.TrialTimeout(); got != 750*time.Millisecond {
		t.Errorf("after -trialtimeout 750ms, exp.TrialTimeout() = %v, want 750ms", got)
	}
	exp.SetTrialTimeout(0)
	if got := exp.TrialTimeout(); got != 0 {
		t.Errorf("after reset, exp.TrialTimeout() = %v, want 0 (disabled)", got)
	}
}

// TestScaleFlags pins the -nodes/-flows → exp.SetNodes/SetFlows plumbing:
// the generated-topology size knobs ride through applyKnobs exactly like
// the parallelism flags, and resetting them restores the scale-derived
// default (exp.Nodes()/Flows() report 0 = no override).
func TestScaleFlags(t *testing.T) {
	defer func() {
		exp.SetNodes(0)
		exp.SetFlows(0)
		if err := flag.Set("nodes", "0"); err != nil {
			t.Error(err)
		}
		if err := flag.Set("flows", "0"); err != nil {
			t.Error(err)
		}
	}()
	if err := flag.Set("nodes", "120"); err != nil {
		t.Fatal(err)
	}
	if err := flag.Set("flows", "1500"); err != nil {
		t.Fatal(err)
	}
	applyKnobs()
	if got := exp.Nodes(); got != 120 {
		t.Errorf("after -nodes 120, exp.Nodes() = %d, want 120", got)
	}
	if got := exp.Flows(); got != 1500 {
		t.Errorf("after -flows 1500, exp.Flows() = %d, want 1500", got)
	}
	exp.SetNodes(0)
	exp.SetFlows(0)
	if got := exp.Nodes(); got != 0 {
		t.Errorf("after reset, exp.Nodes() = %d, want 0 (scale-derived)", got)
	}
	if got := exp.Flows(); got != 0 {
		t.Errorf("after reset, exp.Flows() = %d, want 0 (scale-derived)", got)
	}
}
