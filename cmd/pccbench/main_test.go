package main

import (
	"slices"
	"testing"

	"pcc/internal/exp"
)

// TestListGolden pins the `pccbench -list` output: experiment ids are part
// of the CLI contract (scripts, CI jobs, EXPERIMENTS.md all refer to them),
// so the registry must stay stable and sorted. Adding an experiment means
// updating this golden list — deliberately, in the same change.
func TestListGolden(t *testing.T) {
	want := []string{
		"ablation",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig5", "fig6", "fig7", "fig8", "fig9",
		"loss50",
		"mixmtu",
		"parklot",
		"revpath",
		"table1",
		"theory",
	}
	got := exp.IDs()
	if !slices.Equal(got, want) {
		t.Fatalf("exp.IDs() drifted from the golden list:\n got: %v\nwant: %v", got, want)
	}
	if !slices.IsSorted(got) {
		t.Fatalf("exp.IDs() not sorted: %v", got)
	}
}
