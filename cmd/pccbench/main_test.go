package main

import (
	"flag"
	"slices"
	"testing"

	"pcc/internal/exp"
)

// TestListGolden pins the `pccbench -list` output: experiment ids are part
// of the CLI contract (scripts, CI jobs, EXPERIMENTS.md all refer to them),
// so the registry must stay stable and sorted. Adding an experiment means
// updating this golden list — deliberately, in the same change.
func TestListGolden(t *testing.T) {
	want := []string{
		"ablation",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig5", "fig6", "fig7", "fig8", "fig9",
		"linkflap",
		"loss50",
		"mixmtu",
		"parklot",
		"partition",
		"revpath",
		"table1",
		"theory",
		"widechain",
	}
	got := exp.IDs()
	if !slices.Equal(got, want) {
		t.Fatalf("exp.IDs() drifted from the golden list:\n got: %v\nwant: %v", got, want)
	}
	if !slices.IsSorted(got) {
		t.Fatalf("exp.IDs() not sorted: %v", got)
	}
}

// TestShardsFlag pins the -shards → exp.SetShards plumbing through the real
// flag instances: after applyKnobs, exp.Shards() must reflect the flag, and
// resetting it must restore the default resolution order (env, then 1).
func TestShardsFlag(t *testing.T) {
	defer func() {
		exp.SetShards(0)
		exp.SetWorkers(0)
		if err := flag.Set("shards", "0"); err != nil {
			t.Error(err)
		}
		if err := flag.Set("par", "0"); err != nil {
			t.Error(err)
		}
	}()
	if err := flag.Set("shards", "3"); err != nil {
		t.Fatal(err)
	}
	if err := flag.Set("par", "2"); err != nil {
		t.Fatal(err)
	}
	applyKnobs()
	if got := exp.Shards(); got != 3 {
		t.Errorf("after -shards 3, exp.Shards() = %d, want 3", got)
	}
	if got := exp.Workers(); got != 2 {
		t.Errorf("after -par 2, exp.Workers() = %d, want 2", got)
	}
}
