// Command pccsim runs an ad-hoc dumbbell simulation: pick a path, a set of
// flows, and get per-flow goodput plus an optional rate time series. It is
// the free-form companion to pccbench's fixed paper experiments.
//
// Usage examples:
//
//	pccsim -rate 100 -rtt 30ms -buf 375000 -flows pcc,cubic -dur 60
//	pccsim -rate 42 -rtt 800ms -loss 0.0074 -flows pcc,hybla -dur 100
//	pccsim -rate 40 -rtt 20ms -queue fqcodel -flows pcc:latency,pcc:latency -series
//
// Flow syntax: PROTO[:UTILITY][@START], e.g. "pcc:latency@5" starts a
// latency-utility PCC flow at t=5s. Utilities: safe (default), latency,
// resilient, vivace. Protocols: pcc, sabul, pcp, pacing, newreno, cubic,
// illinois, hybla, vegas, bic, westwood.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pcc/internal/core"
	"pcc/internal/exp"
)

func main() {
	rate := flag.Float64("rate", 100, "bottleneck rate, Mbps")
	rtt := flag.Duration("rtt", 30*time.Millisecond, "path RTT")
	loss := flag.Float64("loss", 0, "forward Bernoulli loss probability")
	buf := flag.Int("buf", 375000, "bottleneck buffer, bytes")
	queue := flag.String("queue", "droptail", "queue kind: droptail, codel, fq, fqcodel")
	flows := flag.String("flows", "pcc", "comma-separated flow specs (see doc comment)")
	dur := flag.Float64("dur", 60, "simulated duration, seconds")
	seed := flag.Int64("seed", 42, "root RNG seed")
	series := flag.Bool("series", false, "print 1 Hz per-flow goodput series")
	flag.Parse()

	r := exp.NewRunner(exp.PathSpec{
		RateMbps:  *rate,
		RTT:       rtt.Seconds(),
		Loss:      *loss,
		BufBytes:  *buf,
		QueueKind: *queue,
		Seed:      *seed,
	})

	var handles []*exp.Flow
	var labels []string
	for _, spec := range strings.Split(*flows, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		fs, label, err := parseFlow(spec, rtt.Seconds())
		if err != nil {
			log.Fatalf("pccsim: %v", err)
		}
		fs.Bucket = 1
		handles = append(handles, r.AddFlow(fs))
		labels = append(labels, label)
	}
	if len(handles) == 0 {
		log.Fatal("pccsim: no flows given")
	}

	r.Run(*dur)

	fmt.Printf("path: %.0f Mbps, %v RTT, loss %.4f, buffer %d B, %s queue, %gs\n",
		*rate, *rtt, *loss, *buf, *queue, *dur)
	for i, f := range handles {
		mean := f.GoodputMbps(*dur)
		rttMs := 0.0
		if f.RS != nil {
			rttMs = f.RS.MeanRTT() * 1e3
		} else if f.WS != nil {
			rttMs = f.WS.MeanRTT() * 1e3
		}
		fmt.Printf("flow %d %-16s goodput %8.2f Mbps   mean RTT %7.2f ms\n", i, labels[i], mean, rttMs)
	}

	if *series {
		fmt.Println("\nt(s)  " + strings.Join(labels, "  "))
		n := int(*dur)
		for s := 0; s < n; s++ {
			row := fmt.Sprintf("%4d", s)
			for _, f := range handles {
				sr := f.SeriesMbps()
				v := 0.0
				if s < len(sr) {
					v = sr[s]
				}
				row += fmt.Sprintf("  %8.2f", v)
			}
			fmt.Println(row)
		}
	}
	_ = os.Stdout
}

// parseFlow decodes PROTO[:UTILITY][@START].
func parseFlow(spec string, rtt float64) (exp.FlowSpec, string, error) {
	label := spec
	start := 0.0
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		v, err := strconv.ParseFloat(spec[at+1:], 64)
		if err != nil {
			return exp.FlowSpec{}, "", fmt.Errorf("bad start time in %q: %v", spec, err)
		}
		start = v
		spec = spec[:at]
	}
	proto, utility := spec, ""
	if c := strings.Index(spec, ":"); c >= 0 {
		proto, utility = spec[:c], spec[c+1:]
	}
	fs := exp.FlowSpec{Proto: proto, StartAt: start}
	switch utility {
	case "", "safe":
	case "latency":
		cfg := core.InteractiveConfig(rtt)
		fs.PCCConfig = &cfg
	case "resilient":
		cfg := core.HeavyLossConfig(rtt)
		fs.PCCConfig = &cfg
	case "vivace":
		cfg := core.DefaultConfig(rtt)
		cfg.Utility = core.NewVivaceUtility()
		fs.PCCConfig = &cfg
	default:
		return exp.FlowSpec{}, "", fmt.Errorf("unknown utility %q", utility)
	}
	return fs, label, nil
}
