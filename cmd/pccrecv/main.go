// Command pccrecv receives one file over the PCC UDP transport.
//
// Usage:
//
//	pccrecv -listen :9000 -out received.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"pcc/internal/transport"
)

func main() {
	listen := flag.String("listen", ":9000", "UDP address to listen on")
	out := flag.String("out", "", "output file ('-' or empty = stdout)")
	flag.Parse()

	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		log.Fatalf("pccrecv: %v", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		log.Fatalf("pccrecv: %v", err)
	}
	defer conn.Close()

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("pccrecv: %v", err)
		}
		defer f.Close()
		w = f
	}

	r := transport.NewReceiver(conn, w)
	// The receiver lingers after completion to answer retransmitted FINs
	// (its fin-ack may be lost); give it a grace window past Done, then
	// close the socket to stop Run.
	go func() {
		<-r.Done()
		time.Sleep(2 * time.Second)
		conn.Close()
	}()
	if err := r.Run(); err != nil {
		log.Fatalf("pccrecv: %v", err)
	}
	fmt.Fprintf(os.Stderr, "pccrecv: received %d bytes (%d packets)\n", r.BytesWritten(), r.UniquePackets())
}
