// Command pccserve is the sweep-serving daemon: it accepts experiment
// sweep requests over HTTP, schedules units onto the same trial pool
// pccbench uses, streams per-unit reports as NDJSON, and memoizes results
// in a crash-safe content-addressed cache.
//
// Usage:
//
//	pccserve -addr :8080 -cachedir /var/cache/pcc
//	curl -sN localhost:8080/v1/sweep -d '{"experiments":["theory"],"scales":[0.2],"seeds":[42]}'
//
// Endpoints:
//
//	POST /v1/sweep       run a sweep, stream NDJSON result lines in unit order
//	GET  /v1/experiments list experiment ids
//	GET  /v1/errors      recent quarantined trial panics/timeouts (with stacks)
//	GET  /v1/stats       cache + scheduler counters
//	GET  /healthz        liveness (200 even while draining)
//	GET  /readyz         readiness (503 once draining)
//
// SIGTERM/SIGINT drain: in-flight sweeps finish and flush, new work gets
// 503, then the process exits 0. Bodies are byte-identical run over run —
// the second identical sweep is served from the cache (see /v1/stats).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pcc/internal/exp"
	"pcc/internal/serve"
)

var (
	addr         = flag.String("addr", ":8080", "listen address")
	cachedir     = flag.String("cachedir", "pccserve-cache", "result cache directory ('' disables caching)")
	workers      = flag.Int("workers", 2, "concurrent sweep units (each unit runs its own trial pool)")
	queue        = flag.Int("queue", 64, "admitted units across all requests before 429")
	maxunits     = flag.Int("maxunits", 256, "per-request unit budget")
	sweeptimeout = flag.Duration("sweeptimeout", 0, "server-side deadline per sweep (0 = none)")
	trialtimeout = flag.Duration("trialtimeout", 0, "per-trial watchdog (0 = PCC_TRIAL_TIMEOUT env, then disabled)")
	par          = flag.Int("par", 0, "worker goroutines per unit's trial pool (0 = auto)")
	shards       = flag.Int("shards", 0, "max engine shards per trial (0 = auto)")
	draingrace   = flag.Duration("draingrace", 30*time.Second, "max time to wait for in-flight sweeps on shutdown")
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Parse()
	exp.SetWorkers(*par)
	exp.SetShards(*shards)
	exp.SetTrialTimeout(*trialtimeout)

	srv, err := serve.NewServer(serve.Config{
		CacheDir:     *cachedir,
		Workers:      *workers,
		Queue:        *queue,
		MaxUnits:     *maxunits,
		SweepTimeout: *sweeptimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccserve:", err)
		return 1
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("pccserve: listening on %s (cache %q)", *addr, *cachedir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		log.Printf("pccserve: %v: draining", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "pccserve:", err)
		return 1
	}

	// Drain: reject new sweeps, let in-flight ones finish and flush, then
	// close the listener. Streams still writing keep their connections via
	// Shutdown's graceful close; draingrace bounds a wedged sweep.
	done := make(chan struct{})
	go func() { srv.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(*draingrace):
		log.Printf("pccserve: drain grace %v elapsed, forcing shutdown", *draingrace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "pccserve: shutdown:", err)
		return 1
	}
	log.Printf("pccserve: drained, exiting")
	return 0
}
